#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json trajectory artifacts.

Compares a freshly generated benchmark artifact (the *candidate*) against
the checked-in baseline and fails (exit 1) when the headline metric has
regressed.  Three checks, in increasing strictness:

1. **The deterministic virtual quantity** per sweep point (virtual
   throughput per batch cap for ``BENCH_serve.json`` / per worker count
   for ``BENCH_fleet.json``, measured-best virtual solve time per
   (matrix, grid) point for ``BENCH_planner.json``) must match the
   baseline within 1% — virtual time is deterministic, so any drift
   here is a functional change to the serving tier or cost model, not
   noise.  The sweep axes must also be *identical* sets: a candidate
   point absent from the baseline (or vice versa) means the sweep
   definition drifted, which would otherwise let a renamed point dodge
   the comparison.  (Both are skipped with a notice when the two
   artifacts were generated at different matrix scales, where the
   virtual numbers are legitimately different.)
2. **The headline metric** must not regress more than 20% against the
   baseline.  For ``replay_speedup`` (simulated wall / replay wall at
   the widest cap) raw wall-clock is not comparable across machines, but
   the ratio of two legs measured back-to-back on the same host is; for
   ``throughput_scaling`` (4-worker / 1-worker virtual throughput) and
   ``planner_hit_rate`` (fraction of points where the planner's pick
   measures within 10% of best) the number is deterministic outright.
3. The headline metric must stay at or above the artifact's recorded
   acceptance floor — 5x replay speedup (ISSUE 7), 2x 4-worker fleet
   scaling (ISSUE 8), 0.9 planner hit rate (ISSUE 9).

Usage::

    python tools/check_bench_regression.py CANDIDATE BASELINE

CI regenerates each artifact in its smoke job and gates it against the
copy from the checked-out revision.
"""

from __future__ import annotations

import json
import sys

VIRTUAL_TOL = 0.01      # deterministic: anything past rounding is a change
SPEEDUP_TOL = 0.20      # wall-clock ratio: allow 20% host noise

# Known headline metrics:
# (metric key, sweep-axis key, default floor, per-point virtual key).
METRICS = (
    ("replay_speedup", "max_batch", 5.0, "virtual_throughput_req_s"),
    ("throughput_scaling", "workers", 2.0, "virtual_throughput_req_s"),
    ("planner_hit_rate", "points", 0.9, "measured_best_s"),
)


def load(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    for key in ("sweep", "headline", "config"):
        if key not in doc:
            raise SystemExit(f"error: {path} has no {key!r} section "
                             f"(schema_version {doc.get('schema_version')})")
    return doc


def headline_metric(doc: dict, path: str) -> tuple:
    """The artifact's (metric, axis, default floor, virtual key) row."""
    for row in METRICS:
        if row[0] in doc["headline"]:
            return row
    known = ", ".join(m[0] for m in METRICS)
    raise SystemExit(f"error: {path} headline has none of the known "
                     f"metrics ({known})")


def _axis_order(key: str):
    """Sort sweep keys numerically when they are numbers, else lexically."""
    try:
        return (0, int(key), "")
    except ValueError:
        return (1, 0, key)


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    cand = load(argv[1])
    base = load(argv[2])
    failures = []

    metric, axis, default_floor, virtual_key = headline_metric(cand, argv[1])
    b_metric = headline_metric(base, argv[2])[0]
    if b_metric != metric:
        raise SystemExit(
            f"error: candidate measures {metric!r} but baseline measures "
            f"{b_metric!r} — not comparable artifacts")

    if cand["config"].get("scale") != base["config"].get("scale"):
        print(f"note: scale differs (candidate "
              f"{cand['config'].get('scale')!r} vs baseline "
              f"{base['config'].get('scale')!r}); skipping the virtual-"
              f"determinism check")
    else:
        for cap in sorted(cand["sweep"], key=_axis_order):
            if cap not in base["sweep"]:
                failures.append(
                    f"point {cap} in candidate sweep but not in baseline: "
                    f"the sweep axis drifted (new or renamed point) — "
                    f"regenerate and commit the baseline deliberately if "
                    f"intended")
        for cap in sorted(base["sweep"], key=_axis_order):
            if cap not in cand["sweep"]:
                failures.append(f"point {cap} missing from candidate sweep")
                continue
            b = base["sweep"][cap][virtual_key]
            c = cand["sweep"][cap][virtual_key]
            if abs(c - b) > VIRTUAL_TOL * b:
                failures.append(
                    f"{virtual_key} changed at point {cap}: "
                    f"{b:.6g} -> {c:.6g} (> {VIRTUAL_TOL:.0%}); "
                    f"virtual time is deterministic, so this is a "
                    f"functional change — update the baseline deliberately "
                    f"if intended")

    label = metric.replace("_", " ")
    b_speed = base["headline"][metric]
    c_speed = cand["headline"][metric]
    floor = cand["headline"].get("acceptance_floor", default_floor)
    print(f"{label} at {axis.replace('_', '-')} "
          f"{cand['headline'].get(axis, '?')}: "
          f"candidate {c_speed:.2f}x, baseline {b_speed:.2f}x "
          f"(floor {floor:.1f}x)")
    if c_speed < (1.0 - SPEEDUP_TOL) * b_speed:
        failures.append(
            f"{label} regressed >{SPEEDUP_TOL:.0%}: "
            f"{b_speed:.2f}x -> {c_speed:.2f}x")
    if c_speed < floor:
        failures.append(
            f"{label} {c_speed:.2f}x below the {floor:.1f}x "
            f"acceptance floor")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
