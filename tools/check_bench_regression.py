#!/usr/bin/env python3
"""Perf-regression gate over BENCH_serve.json.

Compares a freshly generated benchmark artifact (the *candidate*) against
the checked-in baseline and fails (exit 1) when the replay fast path has
regressed.  Three checks, in increasing strictness:

1. **Virtual throughput** per batch cap must match the baseline within
   1% — virtual time is deterministic, so any drift here is a functional
   change to the serving tier or cost model, not noise.  (Skipped with a
   notice when the two artifacts were generated at different matrix
   scales, where the virtual numbers are legitimately different.)
2. **Replay speedup** (simulated wall / replay wall at the widest cap)
   must not regress more than 20% against the baseline.  Raw wall-clock
   throughput is not comparable across machines, but the *ratio* of the
   two legs — measured back-to-back on the same host in the same run —
   is: both legs share the factorization, the workload, and the BLAS, so
   the ratio isolates exactly the dispatch cost the replay compiler
   removes.
3. The headline speedup must stay at or above the artifact's recorded
   acceptance floor (5x), the bar ISSUE 7 fixed.

Usage::

    python tools/check_bench_regression.py CANDIDATE BASELINE

CI regenerates ``BENCH_serve.json`` in the serve-smoke job and gates it
against the copy from the checked-out revision.
"""

from __future__ import annotations

import json
import sys

VIRTUAL_TOL = 0.01      # deterministic: anything past rounding is a change
SPEEDUP_TOL = 0.20      # wall-clock ratio: allow 20% host noise


def load(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    for key in ("sweep", "headline", "config"):
        if key not in doc:
            raise SystemExit(f"error: {path} has no {key!r} section "
                             f"(schema_version {doc.get('schema_version')})")
    return doc


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    cand = load(argv[1])
    base = load(argv[2])
    failures = []

    if cand["config"].get("scale") != base["config"].get("scale"):
        print(f"note: scale differs (candidate "
              f"{cand['config'].get('scale')!r} vs baseline "
              f"{base['config'].get('scale')!r}); skipping the virtual-"
              f"throughput determinism check")
    else:
        for cap in sorted(base["sweep"], key=int):
            if cap not in cand["sweep"]:
                failures.append(f"cap {cap} missing from candidate sweep")
                continue
            b = base["sweep"][cap]["virtual_throughput_req_s"]
            c = cand["sweep"][cap]["virtual_throughput_req_s"]
            if abs(c - b) > VIRTUAL_TOL * b:
                failures.append(
                    f"virtual throughput changed at cap {cap}: "
                    f"{b:.1f} -> {c:.1f} req/s (> {VIRTUAL_TOL:.0%}); "
                    f"virtual time is deterministic, so this is a "
                    f"functional change — update the baseline deliberately "
                    f"if intended")

    b_speed = base["headline"]["replay_speedup"]
    c_speed = cand["headline"]["replay_speedup"]
    floor = cand["headline"].get("acceptance_floor", 5.0)
    print(f"replay speedup at max-batch {cand['headline']['max_batch']}: "
          f"candidate {c_speed:.2f}x, baseline {b_speed:.2f}x "
          f"(floor {floor:.1f}x)")
    if c_speed < (1.0 - SPEEDUP_TOL) * b_speed:
        failures.append(
            f"replay speedup regressed >{SPEEDUP_TOL:.0%}: "
            f"{b_speed:.2f}x -> {c_speed:.2f}x")
    if c_speed < floor:
        failures.append(
            f"replay speedup {c_speed:.2f}x below the {floor:.1f}x "
            f"acceptance floor")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("bench regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
