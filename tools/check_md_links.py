#!/usr/bin/env python
"""Check intra-repo markdown links (CI docs job; also a tier-1 test).

Scans every tracked ``*.md`` file for inline links and validates the ones
that point inside the repository:

- relative file links (``docs/API.md``, ``../README.md``) must resolve to
  an existing file or directory;
- fragment links into a markdown file (``API.md#solve``) must match a
  heading anchor in the target (GitHub's slug rules, simplified);
- bare ``#fragment`` links must match a heading in the same file.

External links (``http(s)://``, ``mailto:``) are not fetched — CI must not
depend on the network.  Exits non-zero listing every broken link.
"""

from __future__ import annotations

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def repo_markdown_files(root: str) -> list[str]:
    out = []
    skip = {".git", "__pycache__", "node_modules", ".pytest_cache"}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in skip]
        for fn in filenames:
            if fn.endswith(".md"):
                out.append(os.path.join(dirpath, fn))
    return sorted(out)


def slugify(heading: str) -> str:
    """GitHub-style heading anchor (simplified: enough for this repo)."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: str) -> set[str]:
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {slugify(h) for h in HEADING_RE.findall(text)}


def check_file(path: str, root: str) -> list[str]:
    errors = []
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    rel = os.path.relpath(path, root)
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(path):
                errors.append(f"{rel}: broken fragment {target}")
            continue
        file_part, _, frag = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), file_part))
        if not os.path.exists(resolved):
            errors.append(f"{rel}: broken link {target}")
            continue
        if frag and resolved.endswith(".md"):
            if slugify(frag) not in anchors_of(resolved):
                errors.append(f"{rel}: broken anchor {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    root = (argv or sys.argv[1:] or ["."])[0]
    root = os.path.abspath(root)
    errors: list[str] = []
    files = repo_markdown_files(root)
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print(f"{len(errors)} broken markdown link(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
