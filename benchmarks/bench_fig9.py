"""Fig. 9: Crusher (AMD MI250X) 1x1xPz — CPU vs GPU, 1 and 50 RHS.

ROC-SHMEM lacks MPI sub-communicator support, so the paper runs Crusher
with Px = Py = 1 only (no intra-grid communication).  For each Pz the
figure reports total, L-solve, U-solve and inter-grid (Z) time, for the
proposed CPU and GPU 3D algorithms.

Shape claims (paper §4.2.1):
- the inter-grid time is negligible (sparse allreduce);
- GPU beats CPU at small Pz, with shrinking gains as Pz grows
  (replicated FP dominates once per-grid work is small);
- multi-RHS solves amortize: time(50 rhs) << 50 x time(1 rhs).
"""

import numpy as np
import pytest

from common import (
    check_solution,
    fmt_ms,
    get_solver,
    rhs_for,
    write_report,
)
from repro.comm import CRUSHER_CPU, CRUSHER_GPU

PZ_VALUES = [1, 4, 16, 64]


def run_cpu_gpu(name, machine_gpu, machine_cpu, pz_values=PZ_VALUES,
                nrhs_values=(1, 50)):
    """{(pz, nrhs, dev): report} for one matrix on one machine pair."""
    out = {}
    for pz in pz_values:
        solver = get_solver(name, 1, 1, pz, machine=machine_gpu)
        for nrhs in nrhs_values:
            b = rhs_for(solver, nrhs)
            g = solver.solve(b, device="gpu")
            check_solution(solver, g, b)
            c = solver.solve(b, device="cpu", machine=machine_cpu)
            check_solution(solver, c, b)
            out[(pz, nrhs, "gpu")] = g.report
            out[(pz, nrhs, "cpu")] = c.report
    return out


def cpu_gpu_rows(name, machine_name, data, pz_values=PZ_VALUES,
                 nrhs_values=(1, 50)):
    rows = [f"Fig 9/10 ({name}, {machine_name}): 1x1xPz CPU vs GPU [ms]",
            f"{'Pz':>4s} {'nrhs':>5s} {'dev':>4s} {'total':>9s} "
            f"{'L-solve':>9s} {'U-solve':>9s} {'Z-comm':>9s} "
            f"{'cpu/gpu':>8s}"]
    for pz in pz_values:
        for nrhs in nrhs_values:
            for dev in ("cpu", "gpu"):
                rep = data[(pz, nrhs, dev)]
                l = float(rep.per_rank(phase="l").max())
                u = float(rep.per_rank(phase="u").max())
                z = float(rep.per_rank(category="z").max())
                speed = (data[(pz, nrhs, "cpu")].total_time
                         / data[(pz, nrhs, "gpu")].total_time)
                rows.append(
                    f"{pz:4d} {nrhs:5d} {dev:>4s} {fmt_ms(rep.total_time)} "
                    f"{fmt_ms(l)} {fmt_ms(u)} {fmt_ms(z)} "
                    f"{speed:7.2f}x")
    return rows


@pytest.mark.parametrize("name", ["s1_mat_0_253872", "s2D9pt2048", "ldoor"])
def test_fig9(benchmark, name):
    data = run_cpu_gpu(name, CRUSHER_GPU, CRUSHER_CPU)
    write_report(f"fig9_crusher_{name}.txt",
                 cpu_gpu_rows(name, "crusher", data))

    for nrhs in (1, 50):
        # GPU wins at small Pz.
        assert (data[(1, nrhs, "gpu")].total_time
                < data[(1, nrhs, "cpu")].total_time)
        # Z-comm is a small fraction of the GPU total (sparse allreduce).
        rep = data[(16, nrhs, "gpu")]
        assert (rep.per_rank(category="z").max()
                < 0.5 * rep.total_time)
        # Multi-RHS amortization.
        t1 = data[(4, 1, "gpu")].total_time
        t50 = data[(4, 50, "gpu")].total_time
        assert t50 < 15 * t1
    # GPU gains shrink as Pz grows (replication).
    gain_small = (data[(1, 1, "cpu")].total_time
                  / data[(1, 1, "gpu")].total_time)
    gain_large = (data[(64, 1, "cpu")].total_time
                  / data[(64, 1, "gpu")].total_time)
    assert gain_large < gain_small

    solver = get_solver(name, 1, 1, 4, machine=CRUSHER_GPU)
    b = rhs_for(solver, 1)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
