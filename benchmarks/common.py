"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation section: it sweeps the same parameters (scaled down per
EXPERIMENTS.md), prints the paper-style rows, writes them to
``benchmarks/results/``, and asserts the qualitative claims the paper makes
about that experiment.

Pipelines (nested dissection → symbolic → numeric LU) are cached per matrix
and shared across grid shapes via :meth:`SpTRSVSolver.from_pipeline`, so a
whole figure's sweep factorizes each matrix once.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np
import scipy.sparse as sp

from repro.comm.costmodel import CORI_HASWELL, Machine
from repro.core.solver import SpTRSVSolver
from repro.matrices import get_matrix, make_rhs
from repro.numfact import lu_factorize, solve_residual
from repro.ordering import nested_dissection
from repro.symbolic import symbolic_factor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
PROFILES_DIR = os.path.join(RESULTS_DIR, "profiles")

# Depth every cached separator tree is binary-complete to (supports Pz<=64).
MAX_DEPTH = 6
# Benchmark matrix scale; "medium" keeps full sweeps within minutes.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "medium")
# Profile every benchmarked solve (``pytest --profile`` or the env var):
# each solve through :func:`get_solver` runs with ``profile=True`` and its
# rendered report lands in ``benchmarks/results/profiles/``.  Checked at
# call time so the pytest option can flip it after import.
PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "") not in ("", "0")

# The four matrices of the paper's CPU figures (Fig. 4) and the subsets
# used by the GPU figures (Figs. 9-11).
FIG4_MATRICES = ["s2D9pt2048", "nlpkkt80", "ldoor", "dielFilterV3real"]
FIG9_MATRICES = ["s1_mat_0_253872", "s2D9pt2048", "ldoor"]
FIG10_MATRICES = ["s1_mat_0_253872", "s2D9pt2048", "nlpkkt80",
                  "dielFilterV3real"]
FIG11_MATRICES = ["s1_mat_0_253872", "nlpkkt80", "Ga19As19H42",
                  "dielFilterV3real"]


@lru_cache(maxsize=None)
def pipeline(name: str, scale: str = SCALE, max_supernode: int = 16,
             mode: str = "fixed"):
    """Factor one suite matrix once: (A, tree, sym, lu)."""
    A = get_matrix(name, scale)
    n = A.shape[0]
    tree = nested_dissection(A, leaf_size=max(8, n // 256),
                             min_depth=MAX_DEPTH)
    Ap = sp.csr_matrix(A[tree.perm][:, tree.perm])
    sym = symbolic_factor(Ap, max_supernode=max_supernode,
                          boundaries=tree.boundaries(), mode=mode)
    lu = lu_factorize(Ap, sym.partition)
    return A, tree, sym, lu


def get_solver(name: str, px: int, py: int, pz: int,
               machine: Machine = CORI_HASWELL,
               scale: str = SCALE) -> SpTRSVSolver:
    """Solver over the cached pipeline of a suite matrix.

    When profiling is enabled (``pytest --profile`` in ``benchmarks/`` or
    ``REPRO_BENCH_PROFILE=1``), every ``solve()`` through the returned
    solver runs with metrics collection on and writes its rendered profile
    under ``benchmarks/results/profiles/`` — no per-benchmark changes
    needed.
    """
    A, tree, sym, lu = pipeline(name, scale)
    solver = SpTRSVSolver.from_pipeline(A, tree, sym, lu, px, py, pz,
                                        machine=machine)
    _install_profiling(solver, name)
    return solver


def _install_profiling(solver: SpTRSVSolver, name: str) -> None:
    """Wrap ``solver.solve`` to honor the module-level ``PROFILE`` flag."""
    inner = solver.solve

    def solve(b, **kw):
        if not PROFILE or kw.get("profile") or kw.get("resilience") is not None:
            return inner(b, **kw)
        out = inner(b, profile=True, **kw)
        if out.report.metrics is not None:
            _write_profile(name, solver, kw, out)
        return out

    solver.solve = solve


def _write_profile(name: str, solver: SpTRSVSolver, kw: dict, out) -> None:
    from repro.obs import format_profile

    g = solver.grid
    stem = (f"{name}_{g.px}x{g.py}x{g.pz}_"
            f"{kw.get('algorithm', 'new3d')}_{kw.get('device', 'cpu')}.txt")
    os.makedirs(PROFILES_DIR, exist_ok=True)
    with open(os.path.join(PROFILES_DIR, stem), "w") as f:
        f.write(format_profile(out.report.metrics) + "\n")


def grid_for(P: int, pz: int) -> tuple[int, int]:
    """Near-square (Px, Py) with Px * Py = P / pz, as the paper sets it."""
    if P % pz:
        raise ValueError(f"P={P} not divisible by pz={pz}")
    pxy = P // pz
    px = int(np.sqrt(pxy))
    while pxy % px:
        px -= 1
    return px, pxy // px


def rhs_for(solver: SpTRSVSolver, nrhs: int = 1) -> np.ndarray:
    return make_rhs(solver.n, nrhs, kind="manufactured")


def check_solution(solver: SpTRSVSolver, out, b) -> None:
    """Benchmarked solves must stay numerically exact."""
    res = solve_residual(solver.A, out.x, b)
    assert res < 1e-9, f"solve residual {res:.2e}"


def write_report(filename: str, lines: list[str]) -> str:
    """Write (and echo) one experiment's output rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    text = "\n".join(lines) + "\n"
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.3f}"
