"""Headline claims of the paper, checked end-to-end in one place.

Paper abstract:
1. proposed 3D SpTRSV attains up to 3.45x over the baseline 3D SpTRSV on
   Cori (CPU) — here: the new-vs-baseline speedup grows with P and Pz and
   clearly exceeds 1 at the largest configuration;
2. the GPU 3D SpTRSV achieves up to 6.5x over the CPU 3D SpTRSV with Pz up
   to 64 (Perlmutter) — here: peak CPU/GPU speedup above 2x, Perlmutter
   above Crusher;
3. the GPU 3D SpTRSV scales to 256 GPUs while the 2D GPU algorithm stops
   at ~4 GPUs — here: the best 3D GPU config beats the best 2D GPU config
   and 2D gains nothing past one node.
"""

from common import (
    CORI_HASWELL,
    check_solution,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)
from repro.comm import CRUSHER_CPU, CRUSHER_GPU, PERLMUTTER_CPU, PERLMUTTER_GPU


def test_headline(benchmark):
    rows = ["Headline claims (paper abstract) — measured on the analogues"]

    # --- claim 1: new vs baseline on the CPU model ---------------------
    # The paper's peak (3.45x) is at P=2048; the gap must grow with P.
    name = "s2D9pt2048"
    gains = []
    for P, pz in [(64, 16), (256, 16), (512, 32), (1024, 32)]:
        px, py = grid_for(P, pz)
        solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
        b = rhs_for(solver)
        tn = solver.solve(b).report.total_time
        tb = solver.solve(b, algorithm="baseline3d").report.total_time
        gains.append((P, tb / tn))
        rows.append(f"claim1 {name} P={P} Pz={pz}: baseline/new = {tb/tn:.2f}x"
                    f" (paper: up to 3.45x at P=2048)")
    assert max(g for _, g in gains) > 1.3
    # Monotone-ish growth with P (the paper's strong-scaling story).
    assert gains[-1][1] > gains[0][1]

    # --- claim 2: GPU vs CPU, Perlmutter > Crusher ----------------------
    def peak_cpu_gpu(machine_gpu, machine_cpu):
        peak = 0.0
        for pz in (4, 16):
            solver = get_solver(name, 1, 1, pz, machine=machine_gpu)
            b = rhs_for(solver)
            g = solver.solve(b, device="gpu")
            check_solution(solver, g, b)
            c = solver.solve(b, device="cpu", machine=machine_cpu)
            peak = max(peak, c.report.total_time / g.report.total_time)
        return peak

    perl = peak_cpu_gpu(PERLMUTTER_GPU, PERLMUTTER_CPU)
    crush = peak_cpu_gpu(CRUSHER_GPU, CRUSHER_CPU)
    rows.append(f"claim2 {name}: CPU/GPU peak perlmutter={perl:.2f}x "
                f"crusher={crush:.2f}x (paper: 6.5x / 2.9x peaks)")
    assert perl > 2.0
    assert perl > crush

    # --- claim 3: 3D GPU outscales 2D GPU -------------------------------
    t2d = {}
    for px in (1, 2, 4, 8):
        solver = get_solver(name, px, 1, 1, machine=PERLMUTTER_GPU)
        b = rhs_for(solver)
        t2d[px] = solver.solve(b, device="gpu").report.total_time
    solver = get_solver(name, 4, 1, 64, machine=PERLMUTTER_GPU)
    b = rhs_for(solver)
    t3d_256 = solver.solve(b, device="gpu").report.total_time
    solver = get_solver(name, 1, 1, 16, machine=PERLMUTTER_GPU)
    b = rhs_for(solver)
    t3d_best = solver.solve(b, device="gpu").report.total_time
    rows.append(f"claim3 {name}: 2D GPU best={min(t2d.values())*1e3:.3f}ms "
                f"(stalls past 4 GPUs: t(8)={t2d[8]*1e3:.3f} vs "
                f"t(4)={t2d[4]*1e3:.3f}); 3D GPU 16 GPUs="
                f"{t3d_best*1e3:.3f}ms, 256 GPUs={t3d_256*1e3:.3f}ms")
    assert t2d[8] > 0.95 * t2d[4]       # one node is the 2D limit
    assert t3d_best < min(t2d.values())  # 3D beats any 2D configuration

    write_report("headline.txt", rows)

    solver = get_solver(name, 1, 1, 16, machine=PERLMUTTER_GPU)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
