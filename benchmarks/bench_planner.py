"""Planner benchmark: the cost model's picks against measured virtual times.

Sweeps (matrix x grid) points over every CPU backend the planner prices
(``repro.planner.candidates``), measures each candidate's virtual solve
time in the simulator, and scores the planner's cached pick against the
measured best.  The artifact's headline is the *hit rate* — the fraction
of sweep points where the pick's measured time is within 10% of the
measured best — recorded machine-readably in ``BENCH_planner.json`` at
the repo root and gated by ``tools/check_bench_regression.py`` in CI
(acceptance floor: 0.9).

Shape claims checked:
- the planner's pick is within 10% of measured-best on >= 90% of points;
- ``algorithm="auto"`` resolves to the same pick the benchmark's own
  planner computes (one shared cost model, no dispatch drift);
- the decision log is deterministic: re-planning any point reproduces
  the same Decision summary byte-for-byte.
"""

import json
import os

from common import CORI_HASWELL, SCALE, get_solver, rhs_for, write_report

from repro.matrices import matrix_fingerprint
from repro.planner import Planner, candidates

# Decisions and virtual times are deterministic at any scale; tiny keeps
# the 5-candidate x 12-point sweep fast, and matches the CI gate.
PLANNER_SCALE = "tiny" if SCALE == "medium" else SCALE
MATRICES = ["s2D9pt2048", "nlpkkt80", "ldoor"]
GRIDS = [(2, 2, 1), (2, 1, 2), (2, 2, 2), (1, 2, 4)]
NRHS = 4
HIT_TOL = 0.10          # "within 10% of measured best"
ACCEPTANCE_FLOOR = 0.9  # on >= 90% of the sweep
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_planner.json")


def _measure_point(name, grid, planner):
    """Plan one (matrix, grid) point and measure every candidate."""
    px, py, pz = grid
    solver = get_solver(name, px, py, pz, scale=PLANNER_SCALE)
    d = planner.choose(solver, nrhs=NRHS)
    b = rhs_for(solver, NRHS)
    measured = {alg: solver.solve(b, algorithm=alg).report.total_time
                for alg in candidates(solver)}
    return solver, d, measured


def test_planner_pick_vs_measured(benchmark):
    planner = Planner()
    points = {}
    hits = 0
    for name in MATRICES:
        for grid in GRIDS:
            solver, d, measured = _measure_point(name, grid, planner)
            best = min(measured, key=measured.get)
            ratio = measured[d.algorithm] / measured[best]
            within = ratio <= 1.0 + HIT_TOL
            hits += within

            # auto dispatches through the same cost model: the solve's
            # resolved algorithm must equal this planner's pick.
            out = solver.solve(b=rhs_for(solver, NRHS), algorithm="auto")
            assert out.report.algorithm == d.algorithm, (
                f"auto diverged from the planner at {name} {grid}")

            key = f"{name}/{grid[0]}x{grid[1]}x{grid[2]}"
            points[key] = {
                "fingerprint": matrix_fingerprint(solver.A).hexdigest[:12],
                "pick": d.algorithm,
                "measured_best": best,
                "measured_best_s": measured[best],
                "measured_pick_s": measured[d.algorithm],
                "pick_over_best": ratio,
                "within_tol": bool(within),
                "predicted_s": dict(sorted(d.predicted.items())),
                "measured_s": dict(sorted(measured.items())),
            }

    n_points = len(points)
    hit_rate = hits / n_points

    # Determinism: re-planning the first point from a fresh planner
    # reproduces the same decision summary byte-for-byte.
    s0, d0, _ = _measure_point(MATRICES[0], GRIDS[0], Planner())
    assert d0.summary() == planner.choose(s0, nrhs=NRHS).summary()

    doc = {
        "benchmark": "planner-accuracy",
        "schema_version": 1,
        "generated_by": "benchmarks/bench_planner.py::"
                        "test_planner_pick_vs_measured",
        "config": {
            "matrices": MATRICES, "scale": PLANNER_SCALE,
            "grids": [f"{px}x{py}x{pz}" for px, py, pz in GRIDS],
            "machine": CORI_HASWELL.name, "nrhs": NRHS,
            "hit_tolerance": HIT_TOL,
        },
        "sweep": points,
        "headline": {
            "points": n_points,
            "planner_hit_rate": hit_rate,
            "acceptance_floor": ACCEPTANCE_FLOOR,
        },
    }
    with open(BENCH_JSON, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    rows = [f"Planner: cost-model picks vs measured virtual times "
            f"({len(MATRICES)} matrices x {len(GRIDS)} grids at "
            f"{PLANNER_SCALE}, nrhs={NRHS}, {CORI_HASWELL.name})",
            f"{'point':>24s} {'pick':>20s} {'best':>20s} "
            f"{'pick/best':>10s}"]
    for key, pt in points.items():
        flag = "" if pt["within_tol"] else "  MISS"
        rows.append(f"{key:>24s} {pt['pick']:>20s} "
                    f"{pt['measured_best']:>20s} "
                    f"{pt['pick_over_best']:9.4f}x{flag}")
    rows.append(f"wrote {os.path.relpath(BENCH_JSON)} "
                f"(hit rate {hit_rate:.2f} over {n_points} points, "
                f"floor {ACCEPTANCE_FLOOR})")
    write_report("planner_sweep.txt", rows)

    assert hit_rate >= ACCEPTANCE_FLOOR, (
        f"planner hit rate {hit_rate:.2f} below the "
        f"{ACCEPTANCE_FLOOR} acceptance floor")

    benchmark.pedantic(
        lambda: _measure_point(MATRICES[0], GRIDS[1], Planner()),
        rounds=1, iterations=1)
