"""Pytest path setup so the bench modules can import ``common``, plus the
``--profile`` flag every benchmark gains for free (see ``common.PROFILE``)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="profile every benchmarked solve: collect per-phase metrics "
             "and write rendered reports to benchmarks/results/profiles/")


def pytest_configure(config):
    if config.getoption("--profile", default=False):
        import common

        common.PROFILE = True
