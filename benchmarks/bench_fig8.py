"""Fig. 8: load balance for nlpkkt80 — the baseline's imbalance story.

The paper's observation: at large Pz the baseline shows large per-rank
imbalance on the 3D-PDE matrix (idle grids and per-level lockstep expose
uneven node sizes), while the proposed algorithm stays balanced because
every grid performs the replicated ancestor work.  The proposed code shows
higher *mean* time (duplicated FP) but lower *max* — and the max is what
determines the runtime.
"""

from bench_fig7 import balance_rows, load_balance
from common import CORI_HASWELL, get_solver, grid_for, rhs_for, write_report


def test_fig8(benchmark):
    name = "nlpkkt80"
    data = load_balance(name)
    write_report("fig8_nlpkkt80.txt", balance_rows(name, data))

    # At the largest Pz, the proposed algorithm's relative imbalance
    # (max / mean) in the L phase is no worse than the baseline's.
    for P in (64, 256):
        mean_b, _, max_b = data[(P, 16, "baseline3d", "l")]
        mean_n, _, max_n = data[(P, 16, "new3d", "l")]
        imb_base = max_b / mean_b
        imb_new = max_n / mean_n
        assert imb_new <= imb_base * 1.10, (P, imb_new, imb_base)
        # Replication raises the proposed algorithm's mean.
        assert mean_n >= 0.9 * mean_b

    px, py = grid_for(64, 16)
    solver = get_solver(name, px, py, 16, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(
        lambda: solver.solve(b, algorithm="baseline3d").report.per_rank(),
        rounds=1, iterations=1)
