"""Ablation: the WAIT/SOLVE two-kernel trick (§3.4).

NVSHMEM limits concurrently scheduled thread blocks to the SM count to
avoid deadlock with point-to-point synchronization; naively, spin-waiting
columns then occupy SMs and "significantly restrict SpTRSV concurrency".
The paper's two-kernel design (a one-block WAIT kernel probing messages +
the SOLVE kernel) removes the restriction.  This bench measures the solve
with and without the trick.
"""

import numpy as np

from common import fmt_ms, get_solver, rhs_for, write_report
from repro.comm import PERLMUTTER_GPU
from repro.core.plan2d import build_2d_plans
from repro.gpu import run_gpu_2d_solve
from repro.grids import BlockCyclicMap, Grid3D


def run_lsolve(name, px, two_kernel):
    solver = get_solver(name, px, 1, 1, machine=PERLMUTTER_GPU)
    lu = solver.lu
    part = lu.partition
    grid = Grid3D(px, 1, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    cmap = BlockCyclicMap(grid)
    b = rhs_for(solver)[solver.perm]
    rhs = {r: {} for r in range(px)}
    for K in range(lu.nsup):
        rhs[cmap.diag_owner_rank(K, 0)][K] = np.array(
            b[part.first(K):part.last(K)])
    res = run_gpu_2d_solve(plan, PERLMUTTER_GPU, rhs, 1,
                           two_kernel=two_kernel)
    # Assemble and verify against the sequential reference.
    y = np.empty_like(b)
    for K in range(lu.nsup):
        r = cmap.diag_owner_rank(K, 0)
        y[part.first(K):part.last(K)] = res.values[r][K]
    assert np.allclose(y, lu.solve_L(b), atol=1e-9)
    return max(res.finish.values())


def test_ablation_twokernel(benchmark):
    rows = ["Ablation: WAIT/SOLVE two-kernel design (L-solve) [ms]",
            f"{'matrix':>16s} {'GPUs':>5s} {'two-kernel':>11s} "
            f"{'single':>9s} {'slowdown':>9s}"]
    data = {}
    for name in ("s2D9pt2048", "nlpkkt80"):
        for px in (1, 2, 4):
            t2 = run_lsolve(name, px, True)
            t1 = run_lsolve(name, px, False)
            data[(name, px)] = (t2, t1)
            rows.append(f"{name:>16s} {px:5d} {fmt_ms(t2)}   {fmt_ms(t1)} "
                        f"{t1 / t2:8.2f}x")
    write_report("ablation_twokernel.txt", rows)

    # The naive single-kernel schedule is never faster and clearly slower
    # somewhere (waiting blocks occupying SMs serialize the window).
    assert all(t1 >= t2 * 0.999 for (t2, t1) in data.values())
    assert max(t1 / t2 for (t2, t1) in data.values()) > 1.2

    benchmark.pedantic(lambda: run_lsolve("s2D9pt2048", 2, False),
                       rounds=1, iterations=1)
