"""Fig. 11: Perlmutter Px x 1 x Pz GPU scaling — the headline scaling plot.

The paper's flagship result: the NVSHMEM 2D GPU solver (Pz = 1) stops
scaling at 8 GPUs because inter-node NVSHMEM bandwidth is ~24x lower than
NVLink (12.5 vs 300 GB/s per GPU), while the proposed 3D solver keeps all
NVSHMEM traffic inside a node (Px <= 4) and scales to 256 GPUs.
The CPU curves for the same layouts are included, as in the figure.

Shape claims (paper §4.2.2):
- the 2D GPU curve degrades once Px crosses a node boundary (Px = 8);
- for a fixed GPU count, larger Pz beats larger Px;
- the proposed 3D solver runs efficiently at 256 GPUs: faster than the
  best 2D configuration.
"""

import pytest

from common import check_solution, fmt_ms, get_solver, rhs_for, write_report
from repro.comm import PERLMUTTER_CPU, PERLMUTTER_GPU

PX_2D = [1, 2, 4, 8, 16]
CONFIGS_3D = [(1, 4), (2, 4), (4, 4), (1, 16), (2, 16), (4, 16),
              (1, 64), (2, 64), (4, 64)]


def run_fig11(name):
    data = {}
    for px in PX_2D:
        solver = get_solver(name, px, 1, 1, machine=PERLMUTTER_GPU)
        b = rhs_for(solver)
        out = solver.solve(b, device="gpu")
        check_solution(solver, out, b)
        data[(px, 1, "gpu")] = out.report.total_time
    for px, pz in CONFIGS_3D:
        solver = get_solver(name, px, 1, pz, machine=PERLMUTTER_GPU)
        b = rhs_for(solver)
        out = solver.solve(b, device="gpu")
        check_solution(solver, out, b)
        data[(px, pz, "gpu")] = out.report.total_time
        cpu = solver.solve(b, device="cpu", machine=PERLMUTTER_CPU)
        data[(px, pz, "cpu")] = cpu.report.total_time
    return data


@pytest.mark.parametrize("name", ["nlpkkt80", "Ga19As19H42"])
def test_fig11(benchmark, name):
    data = run_fig11(name)
    rows = [f"Fig 11 ({name}): Px x 1 x Pz on the Perlmutter model [ms]",
            f"{'Px':>4s} {'Pz':>4s} {'GPUs':>5s} {'GPU':>9s} {'CPU':>9s}"]
    for (px, pz, dev) in sorted(data):
        if dev != "gpu":
            continue
        cpu = data.get((px, pz, "cpu"))
        rows.append(f"{px:4d} {pz:4d} {px*pz:5d} {fmt_ms(data[(px,pz,'gpu')])} "
                    f"{fmt_ms(cpu) if cpu else '      - '}")
    from repro.perf.ascii_plot import ascii_line_chart

    series = {"2D-gpu": [(px, data[(px, 1, "gpu")] * 1e3) for px in PX_2D]}
    for px in (1, 2, 4):
        series[f"3D-px{px}"] = [
            (px * pz, data[(px, pz, "gpu")] * 1e3)
            for (p2, pz) in CONFIGS_3D if p2 == px]
    rows.append("")
    rows.append(ascii_line_chart(
        series, title=f"Fig11 {name}: GPU time vs GPU count",
        xlabel="GPUs", ylabel="ms"))
    write_report(f"fig11_{name}.txt", rows)

    # 2D GPU stops scaling at the node boundary: crossing from 4 to 8 GPUs
    # (one Perlmutter node has 4) does not help, nor does 16.
    assert data[(8, 1, "gpu")] > 0.95 * data[(4, 1, "gpu")]
    assert data[(16, 1, "gpu")] > data[(4, 1, "gpu")] * 0.95
    best_2d = min(data[(px, 1, "gpu")] for px in PX_2D)
    # The 3D solver keeps scaling far past the 2D limit: its best config
    # beats any 2D config, and even the 256-GPU point stays competitive
    # (the paper's matrices are ~100x larger, so 256 GPUs is far beyond
    # this analogue's saturation point).
    best_3d = min(data[(px, pz, "gpu")] for px, pz in CONFIGS_3D)
    assert best_3d < best_2d
    assert data[(4, 64, "gpu")] < 1.3 * best_2d
    # For a fixed GPU count, larger Pz beats larger Px: 1x1x16 vs 4x1x4.
    assert data[(1, 16, "gpu")] < data[(4, 4, "gpu")]

    solver = get_solver(name, 4, 1, 16, machine=PERLMUTTER_GPU)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
