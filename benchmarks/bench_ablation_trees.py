"""Ablation: binary communication trees vs flat fan-out (§3.3).

The paper integrates the CSC'18 binary broadcast/reduction trees into the
proposed algorithm's intra-grid solves.  The tree win requires large
fan-outs: a column's broadcast reaches the process rows owning its nonzero
blocks, so sparse matrices with short columns (small analogues) see little
effect, while the dense-fill chemistry matrix on a tall grid reproduces the
crossover.  ``auto`` must track the better of the two everywhere.
"""

from common import CORI_HASWELL, check_solution, get_solver, rhs_for, write_report

CONFIGS = [("Ga19As19H42", 32, 1, 1), ("Ga19As19H42", 16, 1, 1),
           ("s2D9pt2048", 8, 8, 1), ("s2D9pt2048", 4, 4, 4)]


def test_ablation_trees(benchmark):
    rows = ["Ablation: intra-grid tree kind [ms]",
            f"{'matrix':>16s} {'grid':>9s} {'flat':>8s} {'binary':>8s} "
            f"{'auto':>8s}"]
    results = {}
    for name, px, py, pz in CONFIGS:
        solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
        b = rhs_for(solver)
        t = {}
        for kind in ("flat", "binary", "auto"):
            out = solver.solve(b, tree_kind=kind)
            check_solution(solver, out, b)
            t[kind] = out.report.total_time
        results[(name, px, py, pz)] = t
        rows.append(f"{name:>16s} {px:3d}x{py}x{pz:<3d} {t['flat']*1e3:8.3f} "
                    f"{t['binary']*1e3:8.3f} {t['auto']*1e3:8.3f}")
    write_report("ablation_trees.txt", rows)

    # The crossover is real and two-sided: binary wins on the wide square
    # grid (many trees, shared roots serialize the flat fan-out)...
    t = results[("s2D9pt2048", 8, 8, 1)]
    assert t["binary"] < t["flat"]
    # ...while the banded chemistry matrix on a tall thin grid has short
    # per-column fan-outs where flat's lower hop latency wins.
    t = results[("Ga19As19H42", 16, 1, 1)]
    assert t["flat"] <= t["binary"]
    # Auto never loses badly to the best pure strategy.
    for t in results.values():
        assert t["auto"] <= 1.20 * min(t["flat"], t["binary"])

    solver = get_solver("Ga19As19H42", 32, 1, 1, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, tree_kind="binary"),
                       rounds=1, iterations=1)
