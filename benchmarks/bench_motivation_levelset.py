"""Motivation: shared-memory level-set SpTRSV vs the distributed 3D solver.

The paper's introduction: "shared-memory SpTRSV implementation quickly
becomes incapable of handling large linear systems and one needs to turn
to distributed-memory SpTRSV".  This bench quantifies the two limits of
the level-set method on one simulated node — thread scaling saturating at
the DAG width, and the per-level barrier floor — against the distributed
3D solver's continued scaling across nodes.
"""

from common import CORI_HASWELL, check_solution, fmt_ms, get_solver, grid_for, rhs_for, write_report
from repro.core.levelset import solve_levelset


def test_motivation_levelset(benchmark):
    name = "s2D9pt2048"
    solver1 = get_solver(name, 1, 1, 1, machine=CORI_HASWELL)
    lu = solver1.lu
    b = rhs_for(solver1)
    bp = b[solver1.perm]

    rows = ["Motivation: shared-memory level-set vs distributed 3D [ms]",
            f"{'config':>22s} {'time':>9s}"]
    t_threads = {}
    for nt in (1, 4, 16, 64, 256):
        res = solve_levelset(lu, bp, CORI_HASWELL, nthreads=nt)
        t_threads[nt] = res.time
        rows.append(f"level-set {nt:4d} threads {fmt_ms(res.time)}")
    dist = {}
    for P, pz in [(16, 4), (64, 16), (256, 16)]:
        px, py = grid_for(P, pz)
        s = get_solver(name, px, py, pz, machine=CORI_HASWELL)
        out = s.solve(rhs_for(s))
        check_solution(s, out, rhs_for(s))
        dist[P] = out.report.total_time
        rows.append(f"3D solve P={P:4d} (pz={pz}) {fmt_ms(dist[P])}")
    write_report("motivation_levelset.txt", rows)

    # Thread scaling saturates: 256 threads barely beat 64.
    assert t_threads[256] > 0.8 * t_threads[64]
    # More threads never hurt; a few threads clearly help.
    assert t_threads[4] < t_threads[1]
    # The distributed solver keeps scaling past the shared-memory floor.
    assert dist[256] < t_threads[256]

    benchmark.pedantic(
        lambda: solve_levelset(lu, bp, CORI_HASWELL, nthreads=16),
        rounds=1, iterations=1)
