"""Fleet benchmark: virtual throughput vs worker count on a Zipf stream.

Sweeps the size of a :class:`repro.fleet.FleetService` under a fixed
Zipf-skewed backlogged arrival stream over the full paper suite and
measures aggregate served throughput in *virtual* time.  The serving-tier
analogue of the paper's strong-scaling argument: consistent-hash routing
shards factorizations across workers, replication plus least-loaded
replica choice splits the hot fingerprints, and the fleet's makespan is
the slowest shard — so throughput should rise with worker count until
the Zipf head saturates its replica set.

Shape claims checked:
- throughput never regresses (within 5%) as the fleet grows 1 -> 8;
- the 4-worker fleet clears 2x the single worker's throughput on the
  same stream — recorded machine-readably in ``BENCH_fleet.json`` at the
  repo root and gated by ``tools/check_bench_regression.py`` in CI;
- the sweep is replay-deterministic: rerunning any point reproduces the
  same FleetReport byte-for-byte.
"""

import json
import os

import pytest

from common import SCALE, write_report

from repro.fleet import FleetConfig, FleetService
from repro.matrices import PAPER_MATRICES
from repro.serve import (
    BatchPolicy,
    ServiceConfig,
    WorkloadSpec,
    generate_bulk_workload,
    zipf_mix,
)

WORKER_COUNTS = [1, 2, 4, 8]
# tiny keeps the sweep fast at any REPRO_BENCH_SCALE; fleet routing and
# shard balance in virtual time are scale-free.
FLEET_SCALE = "tiny" if SCALE == "medium" else SCALE
N_REQUESTS = 192
RATE = 1e6        # always backlogged: isolates routing/sharding gain
ZIPF_S = 1.0
REPLICATION = 2
CFG = ServiceConfig(px=1, py=1, pz=4)
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_fleet.json")


def _workload():
    return generate_bulk_workload(WorkloadSpec(
        seed=42, rate=RATE, n_requests=N_REQUESTS, deadline=10.0,
        mix=zipf_mix(tuple(sorted(PAPER_MATRICES)), FLEET_SCALE, s=ZIPF_S)))


def _run(workers: int, wl):
    fs = FleetService(
        FleetConfig(workers=workers, replication=REPLICATION),
        CFG,
        BatchPolicy(max_batch=8, max_wait=1e-3, queue_bound=1024))
    return fs.run(wl)


def run_sweep():
    """Returns {workers: FleetResult} over one Zipf stream."""
    wl = _workload()
    return {w: _run(w, wl) for w in WORKER_COUNTS}


def test_fleet_throughput_vs_workers(benchmark):
    sweep = run_sweep()
    for w, res in sweep.items():
        assert res.slo.n_completed == N_REQUESTS, (
            f"{w}-worker fleet dropped requests")

    # Replay determinism at the headline point.
    again = _run(4, _workload())
    assert again.report.to_json() == sweep[4].report.to_json()

    thr = {w: sweep[w].slo.throughput for w in WORKER_COUNTS}
    scaling = thr[4] / thr[1]

    doc = {
        "benchmark": "fleet-scaling",
        "schema_version": 1,
        "generated_by": "benchmarks/bench_fleet.py::"
                        "test_fleet_throughput_vs_workers",
        "config": {
            "matrices": sorted(PAPER_MATRICES), "scale": FLEET_SCALE,
            "zipf_s": ZIPF_S, "replication": REPLICATION,
            "grid": "1x1x4", "machine": CFG.machine,
            "algorithm": CFG.algorithm, "max_supernode": CFG.max_supernode,
            "n_requests": N_REQUESTS, "rate": RATE,
        },
        "sweep": {},
    }
    for w in WORKER_COUNTS:
        slo = sweep[w].slo
        doc["sweep"][str(w)] = {
            "virtual_throughput_req_s": slo.throughput,
            "virtual_makespan_s": slo.makespan,
            "latency_p50_s": slo.latency_p50,
            "latency_p95_s": slo.latency_p95,
            "latency_p99_s": slo.latency_p99,
            "n_batches": slo.n_batches,
            "batch_mean": slo.batch_mean,
            "cache": {"hits": slo.cache_hits, "misses": slo.cache_misses,
                      "hit_rate": slo.cache_hit_rate},
            "scaling_vs_1": slo.throughput / thr[1],
        }
    doc["headline"] = {
        "workers": 4,
        "throughput_scaling": scaling,
        "acceptance_floor": 2.0,
    }
    with open(BENCH_JSON, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    rows = ["Fleet: virtual throughput vs worker count "
            f"(6-matrix Zipf s={ZIPF_S} stream at {FLEET_SCALE}, "
            f"replication {REPLICATION}, backlogged, grid 1x1x4)",
            f"{'workers':>8s} {'batches':>8s} {'req/s':>10s} "
            f"{'makespan ms':>12s} {'scaling':>8s}"]
    for w in WORKER_COUNTS:
        slo = sweep[w].slo
        rows.append(f"{w:8d} {slo.n_batches:8d} {slo.throughput:10.1f} "
                    f"{slo.makespan * 1e3:12.3f} {thr[w] / thr[1]:7.2f}x")

    from repro.perf.ascii_plot import ascii_line_chart

    rows.append("")
    rows.append(ascii_line_chart(
        {"req/s": [(w, thr[w]) for w in WORKER_COUNTS]},
        title="Fleet throughput vs workers (Zipf stream)",
        xlabel="workers", ylabel="req/s"))
    rows.append(f"wrote {os.path.relpath(BENCH_JSON)} "
                f"(headline scaling {scaling:.2f}x at 4 workers)")
    write_report("fleet_scaling.txt", rows)

    # Monotone-ish growth, and the acceptance bar at 4 workers.
    for lo, hi in zip(WORKER_COUNTS, WORKER_COUNTS[1:]):
        assert thr[hi] >= 0.95 * thr[lo], (
            f"throughput regressed from {lo} to {hi} workers")
    assert scaling > 2.0, (
        f"4-worker scaling {scaling:.2f}x below the 2x acceptance floor")

    benchmark.pedantic(lambda: _run(4, _workload()), rounds=1, iterations=1)


def test_fleet_crash_recovery_cost(benchmark):
    """Mid-run crash of one worker: everything still completes, the
    detour shows up as bounded extra makespan, and the report replays."""
    from repro.comm.faults import FaultPlan, FaultSchedule

    wl = _workload()
    plain = _run(4, wl)
    t_mid = plain.slo.makespan / 2
    crash = FaultSchedule(((t_mid, plain.slo.makespan,
                            FaultPlan.uniform(seed=1, crash={1: t_mid})),))

    def crashed_run():
        fs = FleetService(
            FleetConfig(workers=4, replication=REPLICATION), CFG,
            BatchPolicy(max_batch=8, max_wait=1e-3, queue_bound=1024),
            crash_schedule=crash)
        return fs.run(wl)

    res = crashed_run()
    assert res.counters["n_crashes"] == 1
    assert res.slo.n_completed + res.slo.n_shed == N_REQUESTS
    assert res.report.to_json() == crashed_run().report.to_json()
    # Losing a quarter of the fleet mid-run costs, but boundedly so.
    assert res.slo.makespan <= 3.0 * plain.slo.makespan

    rows = ["Fleet: crash/recovery cost (4 workers, worker 1 down at "
            "half-makespan)",
            f"  plain   makespan {plain.slo.makespan * 1e3:8.3f} ms, "
            f"p95 {plain.slo.latency_p95 * 1e3:8.3f} ms",
            f"  crashed makespan {res.slo.makespan * 1e3:8.3f} ms, "
            f"p95 {res.slo.latency_p95 * 1e3:8.3f} ms, "
            f"{res.counters['n_rerouted']} re-routed"]
    write_report("fleet_crash.txt", rows)
    benchmark.pedantic(crashed_run, rounds=1, iterations=1)
