"""Fig. 4: CPU SpTRSV time on Cori Haswell vs total MPI count and Pz.

The paper varies P = Px*Py*Pz from 128 to 2048 with Pz in 1..32 on four
matrices, comparing the baseline 3D algorithm against the proposed one
(Pz=1 reduces to the latency-optimized 2D solver).  We run the same sweep
shape at P in {64, 256}, Pz in {1, 4, 16} on the medium-scale analogues.

Shape claims checked (paper §4.1):
- increasing Pz (up to ~16) improves runtime for both algorithms;
- the proposed algorithm beats (or matches) the baseline at Pz >= 4,
  with the gap growing with P and Pz;
- the best 3D configuration beats the pure 2D solver (Pz = 1).
"""

import pytest

from common import (
    CORI_HASWELL,
    FIG4_MATRICES,
    check_solution,
    fmt_ms,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)

P_VALUES = [64, 256]
PZ_VALUES = [1, 4, 16]


def run_sweep(name):
    """Returns {(P, pz, alg): seconds} for one matrix."""
    times = {}
    for P in P_VALUES:
        for pz in PZ_VALUES:
            px, py = grid_for(P, pz)
            solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
            b = rhs_for(solver)
            for alg in ("new3d", "baseline3d"):
                out = solver.solve(b, algorithm=alg)
                check_solution(solver, out, b)
                times[(P, pz, alg)] = out.report.total_time
    return times


@pytest.mark.parametrize("name", FIG4_MATRICES)
def test_fig4(benchmark, name):
    times = run_sweep(name)
    rows = [f"Fig 4 ({name}): SpTRSV time [ms], Cori Haswell model",
            f"{'P':>5s} {'Pz':>4s} {'baseline':>10s} {'new':>10s} "
            f"{'speedup':>8s}"]
    for P in P_VALUES:
        for pz in PZ_VALUES:
            tb = times[(P, pz, "baseline3d")]
            tn = times[(P, pz, "new3d")]
            rows.append(f"{P:5d} {pz:4d} {fmt_ms(tb)} {fmt_ms(tn)} "
                        f"{tb / tn:7.2f}x")
    from repro.perf.ascii_plot import ascii_line_chart

    series = {}
    for alg in ("baseline3d", "new3d"):
        for pz in PZ_VALUES:
            series[f"{alg[:4]}-pz{pz}"] = [
                (P, times[(P, pz, alg)] * 1e3) for P in P_VALUES]
    rows.append("")
    rows.append(ascii_line_chart(series, title=f"Fig4 {name}: time vs P",
                                 xlabel="P (ranks)", ylabel="ms"))
    write_report(f"fig4_{name}.txt", rows)

    for P in P_VALUES:
        # 3D (best pz) beats 2D for both algorithms.
        best3d_new = min(times[(P, pz, "new3d")] for pz in PZ_VALUES if pz > 1)
        assert best3d_new < times[(P, 1, "new3d")]
        # The proposed algorithm matches or beats the baseline at pz=16.
        assert times[(P, 16, "new3d")] <= 1.05 * times[(P, 16, "baseline3d")]
    # The gap grows with P at the largest Pz.
    gain_small = (times[(P_VALUES[0], 16, "baseline3d")]
                  / times[(P_VALUES[0], 16, "new3d")])
    gain_large = (times[(P_VALUES[-1], 16, "baseline3d")]
                  / times[(P_VALUES[-1], 16, "new3d")])
    assert gain_large >= 0.9 * gain_small

    px, py = grid_for(256, 16)
    solver = get_solver(name, px, py, 16, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b), rounds=1, iterations=1)
