"""Ablation: the cost and payoff of replicated computation (§3.1 Remark).

The proposed algorithm trades inter-grid synchronization for replicated
ancestor computation.  The Remark's claims:
- total FP work grows (replication) but the *parallel* FP time does not,
  because replicas run concurrently on otherwise-idle grids;
- removing the baseline's per-level synchronization (the `level_sync`
  knob) recovers part — but not all — of the proposed algorithm's win.
"""

from common import (
    CORI_HASWELL,
    check_solution,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)


def test_ablation_replication(benchmark):
    name = "nlpkkt80"
    P = 256
    rows = ["Ablation: replicated computation vs per-level synchronization",
            f"{'Pz':>4s} {'variant':>18s} {'total[ms]':>10s} "
            f"{'sum FP[ms]':>11s} {'max FP[us]':>11s}"]
    data = {}
    for pz in (4, 16):
        px, py = grid_for(P, pz)
        solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
        b = rhs_for(solver)
        variants = {
            "new3d": dict(algorithm="new3d"),
            "baseline+sync": dict(algorithm="baseline3d"),
            "baseline-nosync": dict(algorithm="baseline3d",
                                    baseline_level_sync=False),
        }
        for label, kw in variants.items():
            out = solver.solve(b, **kw)
            check_solution(solver, out, b)
            fp = out.report.per_rank(category="fp")
            data[(pz, label)] = (out.report.total_time, fp.sum(), fp.max())
            rows.append(f"{pz:4d} {label:>18s} "
                        f"{out.report.total_time*1e3:10.3f} "
                        f"{fp.sum()*1e3:11.3f} {fp.max()*1e6:11.1f}")
    write_report("ablation_replication.txt", rows)

    for pz in (4, 16):
        # Replication: the proposed algorithm does more total FP work...
        assert data[(pz, "new3d")][1] > data[(pz, "baseline+sync")][1]
        # ...but is not slower end-to-end than the synchronized baseline.
        assert (data[(pz, "new3d")][0]
                <= 1.05 * data[(pz, "baseline+sync")][0])
        # The sync cost is real: removing it helps the baseline.
        assert (data[(pz, "baseline-nosync")][0]
                <= data[(pz, "baseline+sync")][0] * 1.02)

    px, py = grid_for(P, 16)
    solver = get_solver(name, px, py, 16, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(
        lambda: solver.solve(b, algorithm="baseline3d",
                             baseline_level_sync=False),
        rounds=1, iterations=1)
