"""Ablation: sparse allreduce (Alg. 2) vs naive per-node MPI_Allreduce.

§3.2 argues that reducing each replicated node with its own MPI_Allreduce
"can become costly both in terms of latency and synchronization"; the
sparse allreduce needs only O(log Pz) packed pairwise messages per rank.
Both implementations must produce identical solutions; the sparse one must
send fewer inter-grid messages and spend less inter-grid time at large Pz.
"""

import numpy as np

from common import CORI_HASWELL, check_solution, get_solver, rhs_for, write_report


def test_ablation_allreduce(benchmark):
    name = "s2D9pt2048"
    rows = ["Ablation: inter-grid allreduce implementation",
            f"{'Pz':>4s} {'impl':>8s} {'z-time[us]':>11s} {'z-msgs':>7s} "
            f"{'total[ms]':>10s}"]
    data = {}
    for pz in (4, 16, 64):
        solver = get_solver(name, 1, 1, pz, machine=CORI_HASWELL)
        b = rhs_for(solver)
        sols = {}
        for impl in ("sparse", "naive"):
            out = solver.solve(b, allreduce_impl=impl)
            check_solution(solver, out, b)
            sols[impl] = out.x
            rep = out.report
            data[(pz, impl)] = (rep.per_rank(category="z").mean(),
                                rep.message_count("z"), rep.total_time)
            rows.append(f"{pz:4d} {impl:>8s} "
                        f"{data[(pz, impl)][0]*1e6:11.1f} "
                        f"{data[(pz, impl)][1]:7d} "
                        f"{data[(pz, impl)][2]*1e3:10.3f}")
        assert np.allclose(sols["sparse"], sols["naive"], atol=1e-11)
    write_report("ablation_allreduce.txt", rows)

    for pz in (16, 64):
        z_sparse, m_sparse, _ = data[(pz, "sparse")]
        z_naive, m_naive, _ = data[(pz, "naive")]
        assert m_sparse < m_naive
        assert z_sparse < z_naive

    solver = get_solver(name, 1, 1, 16, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, allreduce_impl="sparse"),
                       rounds=1, iterations=1)
