"""Ablation: GPU/node placement — why confining NVSHMEM traffic matters.

Fig. 11's story hinges on placement: Perlmutter nodes hold 4 GPUs, so a
2D grid wider than 4 must cross the 24x-slower inter-node links, while the
3D layout's contiguous grid-per-node placement keeps broadcasts on NVLink.
This ablation re-runs the same configurations on a degraded machine with
ONE GPU per node (every message inter-node) to isolate the placement term.
"""

from common import check_solution, fmt_ms, get_solver, rhs_for, write_report
from repro.comm import PERLMUTTER_GPU

SPREAD = PERLMUTTER_GPU.with_(name="perlmutter-gpu-spread", ranks_per_node=1)


def test_ablation_placement(benchmark):
    name = "s2D9pt2048"
    rows = ["Ablation: GPU placement (4 GPUs/node vs 1 GPU/node) [ms]",
            f"{'config':>10s} {'packed':>9s} {'spread':>9s} {'penalty':>8s}"]
    data = {}
    for px, pz in [(2, 1), (4, 1), (2, 8), (4, 16)]:
        t = {}
        for label, mach in (("packed", PERLMUTTER_GPU), ("spread", SPREAD)):
            solver = get_solver(name, px, 1, pz, machine=mach)
            b = rhs_for(solver)
            out = solver.solve(b, device="gpu")
            check_solution(solver, out, b)
            t[label] = out.report.total_time
        data[(px, pz)] = t
        rows.append(f"{px}x1x{pz:<5d} {fmt_ms(t['packed'])} "
                    f"{fmt_ms(t['spread'])} "
                    f"{t['spread'] / t['packed']:7.2f}x")
    write_report("ablation_placement.txt", rows)

    # Multi-GPU grids must suffer when every hop crosses nodes...
    for cfg in [(2, 1), (4, 1), (4, 16)]:
        assert data[cfg]["spread"] > data[cfg]["packed"], cfg
    # ...and the penalty grows with the grid width (more NVSHMEM traffic).
    assert (data[(4, 1)]["spread"] / data[(4, 1)]["packed"]
            >= data[(2, 1)]["spread"] / data[(2, 1)]["packed"] * 0.95)

    solver = get_solver(name, 4, 1, 4, machine=SPREAD)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
