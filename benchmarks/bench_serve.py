"""Serving benchmark: α-amortization through request batching.

Sweeps the batch-width cap of :class:`repro.serve.SolveService` under a
fixed Poisson arrival stream and measures served throughput.  Because the
distributed solve is latency (α) bound, a batch of ``k`` coalesced
right-hand sides pays each per-message α once instead of ``k`` times, so
throughput should rise with the cap until the per-flop β/compute term
takes over — the serving-tier analogue of the paper's multi-RHS
amortization argument.

Shape claims checked:
- throughput strictly improves from max-batch 1 to the largest cap;
- per-request virtual service time (server busy time / completed) falls
  monotonically-ish (within 5% noise) as the cap grows;
- a mixed-matrix stream gets a nonzero factorization-cache hit rate and
  its cache-hit answers are bit-identical to cold per-request solves;
- the compiled schedule-replay path serves a warm backlogged stream >= 5x
  faster (host wall-clock) than the simulated path at max-batch 16, with
  byte-identical virtual-time SLO reports — recorded machine-readably in
  ``BENCH_serve.json`` at the repo root and gated by
  ``tools/check_bench_regression.py`` in CI.
"""

import json
import os
import time

import numpy as np
import pytest

from common import SCALE, write_report

from repro.serve import (
    BatchPolicy,
    ServiceConfig,
    SolveService,
    WorkloadSpec,
    generate_workload,
)

BATCH_CAPS = [1, 2, 4, 8, 16]
# tiny keeps the sweep fast at any REPRO_BENCH_SCALE; the serving tier's
# virtual-time behaviour (batch formation, amortization) is scale-free.
SERVE_SCALE = "tiny" if SCALE == "medium" else SCALE
N_REQUESTS = 48
RATE = 1e6        # effectively "always backlogged": isolates batching gain
CFG = ServiceConfig(px=1, py=1, pz=4)
# Machine-readable trajectory artifact, checked in at the repo root and
# regression-gated in CI (tools/check_bench_regression.py).
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_serve.json")


def run_sweep():
    """Returns {cap: (throughput, busy_per_req, slo)} over one stream."""
    wl = generate_workload(WorkloadSpec(
        seed=42, rate=RATE, n_requests=N_REQUESTS, deadline=10.0,
        mix=(("s2D9pt2048", SERVE_SCALE, 1.0),)))
    out = {}
    for cap in BATCH_CAPS:
        svc = SolveService(CFG, BatchPolicy(max_batch=cap, max_wait=1e-3,
                                            queue_bound=4 * N_REQUESTS),
                           keep_solutions=False)
        slo = svc.run(wl).slo
        assert slo.n_completed == N_REQUESTS
        busy = (slo.setup_time + slo.solve_time) / slo.n_completed
        out[cap] = (slo.throughput, busy, slo)
    return out


def test_serve_throughput_vs_batch(benchmark):
    sweep = run_sweep()
    rows = ["Serving: throughput vs batch-width cap "
            f"(s2D9pt2048/{SERVE_SCALE}, backlogged stream, "
            "grid 1x1x4, Cori model)",
            f"{'cap':>4s} {'batches':>8s} {'mean width':>10s} "
            f"{'req/s':>10s} {'busy/req':>12s}"]
    for cap in BATCH_CAPS:
        thr, busy, slo = sweep[cap]
        rows.append(f"{cap:4d} {slo.n_batches:8d} {slo.batch_mean:10.2f} "
                    f"{thr:10.1f} {busy * 1e6:9.2f} us")

    from repro.perf.ascii_plot import ascii_line_chart

    rows.append("")
    rows.append(ascii_line_chart(
        {"req/s": [(cap, sweep[cap][0]) for cap in BATCH_CAPS]},
        title="Serving throughput vs max-batch (alpha amortization)",
        xlabel="max-batch", ylabel="req/s"))
    write_report("serve_batch_sweep.txt", rows)

    # α-amortization: wider batches serve strictly more requests per second.
    assert sweep[BATCH_CAPS[-1]][0] > sweep[1][0]
    for lo, hi in zip(BATCH_CAPS, BATCH_CAPS[1:]):
        assert sweep[hi][0] >= 0.95 * sweep[lo][0], (
            f"throughput regressed from cap {lo} to {hi}")
        assert sweep[hi][1] <= 1.05 * sweep[lo][1], (
            f"per-request busy time grew from cap {lo} to {hi}")

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)


def test_serve_cache_and_bit_identity(benchmark):
    """Mixed-matrix stream: cache hit rate > 0, hits bit-identical to cold."""
    wl = generate_workload(WorkloadSpec(
        seed=7, rate=5000.0, n_requests=24, deadline=10.0,
        mix=(("s2D9pt2048", SERVE_SCALE, 2.0),
             ("nlpkkt80", SERVE_SCALE, 1.0))))
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3))
    res = svc.run(wl)
    slo = res.slo
    assert slo.n_completed == len(wl)
    assert slo.cache_hit_rate > 0
    assert slo.cache_misses == 2      # one factorization per matrix

    cold = {}
    mism = 0
    for r in wl.requests:
        key = (r.matrix, r.scale)
        if key not in cold:
            cold[key] = SolveService(CFG)._build_solver(*key)
        x = cold[key].solve(r.rhs(cold[key].n)).x
        mism += not np.array_equal(res.solutions[r.id], x.ravel())
    assert mism == 0, f"{mism} served answers differ from cold solves"

    rows = ["Serving: factorization cache on a mixed stream "
            f"(2:1 s2D9pt2048:nlpkkt80, {SERVE_SCALE})",
            f"  requests {slo.n_requests}, batches {slo.n_batches}, "
            f"hit rate {100 * slo.cache_hit_rate:.1f}%",
            f"  resident {slo.cache_resident_bytes} B "
            f"(peak {slo.cache_peak_bytes} B), evictions "
            f"{slo.cache_evictions}",
            "  served answers bit-identical to cold per-request solves: "
            f"{slo.n_completed}/{slo.n_completed}"]
    write_report("serve_cache.txt", rows)
    benchmark.pedantic(lambda: SolveService(
        CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
        keep_solutions=False).run(wl), rounds=1, iterations=1)


def _steady_state(cap: int, replay: bool, wl):
    """One warmed, wall-timed serve of the backlogged stream.

    The warm-up run pays factorization (and, on the replay leg, the one
    recording solve per batch width) so the timed run measures the steady
    state a long-lived server actually operates in: every batch a cache
    hit, the replay leg executing only compiled programs.
    """
    svc = SolveService(ServiceConfig(px=1, py=1, pz=4, replay=replay),
                       BatchPolicy(max_batch=cap, max_wait=1e-3,
                                   queue_bound=4 * N_REQUESTS),
                       keep_solutions=False)
    svc.run(wl)
    t0 = time.perf_counter()
    res = svc.run(wl)
    wall = time.perf_counter() - t0
    return res, wall


def test_serve_replay_fast_path(benchmark):
    """Replay-vs-simulated wall-clock sweep; emits ``BENCH_serve.json``.

    Virtual time is bit-identical between the two legs by construction
    (the tape engine copies validated clocks), so the SLO reports must
    match byte-for-byte modulo the ``n_replayed`` counter; the *only*
    axis on which replay can win is host wall-clock, which is what the
    paper's "compile the schedule once" argument is about.
    """
    wl = generate_workload(WorkloadSpec(
        seed=42, rate=RATE, n_requests=N_REQUESTS, deadline=10.0,
        mix=(("s2D9pt2048", SERVE_SCALE, 1.0),)))
    sweep = {}
    for cap in BATCH_CAPS:
        sim_res, sim_wall = _steady_state(cap, replay=False, wl=wl)
        rep_res, rep_wall = _steady_state(cap, replay=True, wl=wl)
        assert sim_res.slo.n_completed == N_REQUESTS
        assert rep_res.slo.n_replayed == rep_res.slo.n_batches
        assert sim_res.slo.n_replayed == 0
        # Virtual-time SLO bit-equality: replay changes nothing observable
        # in the modeled system, only how fast the host produces it.
        sim_doc = json.loads(sim_res.slo.to_json())
        rep_doc = json.loads(rep_res.slo.to_json())
        sim_doc.pop("n_replayed"), rep_doc.pop("n_replayed")
        assert sim_doc == rep_doc, f"virtual SLO diverged at cap {cap}"
        sweep[cap] = (sim_res.slo, sim_wall, rep_wall)

    doc = {
        "benchmark": "serve-replay",
        "schema_version": 1,
        "generated_by": "benchmarks/bench_serve.py::test_serve_replay_fast_path",
        "config": {
            "matrix": "s2D9pt2048", "scale": SERVE_SCALE,
            "grid": "1x1x4", "machine": CFG.machine,
            "algorithm": CFG.algorithm, "max_supernode": CFG.max_supernode,
            "n_requests": N_REQUESTS, "rate": RATE,
            "steady_state": True,
        },
        "sweep": {},
    }
    for cap, (slo, sim_wall, rep_wall) in sweep.items():
        doc["sweep"][str(cap)] = {
            "virtual_throughput_req_s": slo.throughput,
            "virtual_makespan_s": slo.makespan,
            "latency_p50_s": slo.latency_p50,
            "latency_p95_s": slo.latency_p95,
            "latency_p99_s": slo.latency_p99,
            "n_batches": slo.n_batches,
            "batch_mean": slo.batch_mean,
            "cache": {"hits": slo.cache_hits, "misses": slo.cache_misses,
                      "hit_rate": slo.cache_hit_rate},
            "simulated": {"wall_s": sim_wall,
                          "wall_throughput_req_s": N_REQUESTS / sim_wall},
            "replay": {"wall_s": rep_wall,
                       "wall_throughput_req_s": N_REQUESTS / rep_wall},
            "replay_speedup": sim_wall / rep_wall,
        }
    top = BATCH_CAPS[-1]
    doc["headline"] = {
        "max_batch": top,
        "replay_speedup": sweep[top][1] / sweep[top][2],
        "acceptance_floor": 5.0,
    }
    with open(BENCH_JSON, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")

    rows = ["Serving: compiled schedule replay vs simulated path "
            f"(s2D9pt2048/{SERVE_SCALE}, warm backlogged stream, "
            "grid 1x1x4, wall-clock)",
            f"{'cap':>4s} {'sim ms':>10s} {'replay ms':>10s} "
            f"{'speedup':>8s} {'virtual req/s':>14s}"]
    for cap, (slo, sim_wall, rep_wall) in sweep.items():
        rows.append(f"{cap:4d} {sim_wall * 1e3:10.1f} {rep_wall * 1e3:10.1f} "
                    f"{sim_wall / rep_wall:7.2f}x {slo.throughput:14.1f}")
    rows.append("")
    rows.append(f"wrote {os.path.relpath(BENCH_JSON)} "
                f"(headline speedup {doc['headline']['replay_speedup']:.2f}x "
                f"at max-batch {top})")
    write_report("serve_replay.txt", rows)

    # Acceptance: the compiled path is >= 5x the simulated path at the
    # widest cap (where the arena executor amortizes best).
    assert doc["headline"]["replay_speedup"] >= 5.0, (
        f"replay speedup {doc['headline']['replay_speedup']:.2f}x below the "
        f"5x acceptance floor at max-batch {top}")

    benchmark.pedantic(lambda: _steady_state(top, replay=True, wl=wl),
                       rounds=1, iterations=1)
