"""Serving benchmark: α-amortization through request batching.

Sweeps the batch-width cap of :class:`repro.serve.SolveService` under a
fixed Poisson arrival stream and measures served throughput.  Because the
distributed solve is latency (α) bound, a batch of ``k`` coalesced
right-hand sides pays each per-message α once instead of ``k`` times, so
throughput should rise with the cap until the per-flop β/compute term
takes over — the serving-tier analogue of the paper's multi-RHS
amortization argument.

Shape claims checked:
- throughput strictly improves from max-batch 1 to the largest cap;
- per-request virtual service time (server busy time / completed) falls
  monotonically-ish (within 5% noise) as the cap grows;
- a mixed-matrix stream gets a nonzero factorization-cache hit rate and
  its cache-hit answers are bit-identical to cold per-request solves.
"""

import numpy as np
import pytest

from common import SCALE, write_report

from repro.serve import (
    BatchPolicy,
    ServiceConfig,
    SolveService,
    WorkloadSpec,
    generate_workload,
)

BATCH_CAPS = [1, 2, 4, 8, 16]
# tiny keeps the sweep fast at any REPRO_BENCH_SCALE; the serving tier's
# virtual-time behaviour (batch formation, amortization) is scale-free.
SERVE_SCALE = "tiny" if SCALE == "medium" else SCALE
N_REQUESTS = 48
RATE = 1e6        # effectively "always backlogged": isolates batching gain
CFG = ServiceConfig(px=1, py=1, pz=4)


def run_sweep():
    """Returns {cap: (throughput, busy_per_req, slo)} over one stream."""
    wl = generate_workload(WorkloadSpec(
        seed=42, rate=RATE, n_requests=N_REQUESTS, deadline=10.0,
        mix=(("s2D9pt2048", SERVE_SCALE, 1.0),)))
    out = {}
    for cap in BATCH_CAPS:
        svc = SolveService(CFG, BatchPolicy(max_batch=cap, max_wait=1e-3,
                                            queue_bound=4 * N_REQUESTS),
                           keep_solutions=False)
        slo = svc.run(wl).slo
        assert slo.n_completed == N_REQUESTS
        busy = (slo.setup_time + slo.solve_time) / slo.n_completed
        out[cap] = (slo.throughput, busy, slo)
    return out


def test_serve_throughput_vs_batch(benchmark):
    sweep = run_sweep()
    rows = ["Serving: throughput vs batch-width cap "
            f"(s2D9pt2048/{SERVE_SCALE}, backlogged stream, "
            "grid 1x1x4, Cori model)",
            f"{'cap':>4s} {'batches':>8s} {'mean width':>10s} "
            f"{'req/s':>10s} {'busy/req':>12s}"]
    for cap in BATCH_CAPS:
        thr, busy, slo = sweep[cap]
        rows.append(f"{cap:4d} {slo.n_batches:8d} {slo.batch_mean:10.2f} "
                    f"{thr:10.1f} {busy * 1e6:9.2f} us")

    from repro.perf.ascii_plot import ascii_line_chart

    rows.append("")
    rows.append(ascii_line_chart(
        {"req/s": [(cap, sweep[cap][0]) for cap in BATCH_CAPS]},
        title="Serving throughput vs max-batch (alpha amortization)",
        xlabel="max-batch", ylabel="req/s"))
    write_report("serve_batch_sweep.txt", rows)

    # α-amortization: wider batches serve strictly more requests per second.
    assert sweep[BATCH_CAPS[-1]][0] > sweep[1][0]
    for lo, hi in zip(BATCH_CAPS, BATCH_CAPS[1:]):
        assert sweep[hi][0] >= 0.95 * sweep[lo][0], (
            f"throughput regressed from cap {lo} to {hi}")
        assert sweep[hi][1] <= 1.05 * sweep[lo][1], (
            f"per-request busy time grew from cap {lo} to {hi}")

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)


def test_serve_cache_and_bit_identity(benchmark):
    """Mixed-matrix stream: cache hit rate > 0, hits bit-identical to cold."""
    wl = generate_workload(WorkloadSpec(
        seed=7, rate=5000.0, n_requests=24, deadline=10.0,
        mix=(("s2D9pt2048", SERVE_SCALE, 2.0),
             ("nlpkkt80", SERVE_SCALE, 1.0))))
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3))
    res = svc.run(wl)
    slo = res.slo
    assert slo.n_completed == len(wl)
    assert slo.cache_hit_rate > 0
    assert slo.cache_misses == 2      # one factorization per matrix

    cold = {}
    mism = 0
    for r in wl.requests:
        key = (r.matrix, r.scale)
        if key not in cold:
            cold[key] = SolveService(CFG)._build_solver(*key)
        x = cold[key].solve(r.rhs(cold[key].n)).x
        mism += not np.array_equal(res.solutions[r.id], x.ravel())
    assert mism == 0, f"{mism} served answers differ from cold solves"

    rows = ["Serving: factorization cache on a mixed stream "
            f"(2:1 s2D9pt2048:nlpkkt80, {SERVE_SCALE})",
            f"  requests {slo.n_requests}, batches {slo.n_batches}, "
            f"hit rate {100 * slo.cache_hit_rate:.1f}%",
            f"  resident {slo.cache_resident_bytes} B "
            f"(peak {slo.cache_peak_bytes} B), evictions "
            f"{slo.cache_evictions}",
            "  served answers bit-identical to cold per-request solves: "
            f"{slo.n_completed}/{slo.n_completed}"]
    write_report("serve_cache.txt", rows)
    benchmark.pedantic(lambda: SolveService(
        CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
        keep_solutions=False).run(wl), rounds=1, iterations=1)
