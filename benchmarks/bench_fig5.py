"""Fig. 5: time breakdown for s2D9pt2048 (Z-comm / XY-comm / FP).

The paper splits mean per-rank time into inter-grid communication (Z-Comm),
intra-grid communication (XY-Comm) and floating-point work, for the
baseline and proposed algorithms over the Fig. 4 sweep.

Shape claims (paper §4.1, Fig. 5):
- the proposed algorithm's Z-comm is much smaller than the baseline's
  (sparse allreduce vs per-level exchanges) at Pz > 1;
- the proposed algorithm adds replicated FP work, growing with Pz;
- for this 2D-PDE matrix the replication overhead stays mild.
"""

import pytest

from common import (
    CORI_HASWELL,
    check_solution,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)

MATRIX = "s2D9pt2048"
P_VALUES = [64, 256]
PZ_VALUES = [1, 4, 16]


def run_breakdowns(name):
    data = {}
    for P in P_VALUES:
        for pz in PZ_VALUES:
            px, py = grid_for(P, pz)
            solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
            b = rhs_for(solver)
            for alg in ("new3d", "baseline3d"):
                out = solver.solve(b, algorithm=alg)
                check_solution(solver, out, b)
                data[(P, pz, alg)] = out.report.breakdown()
    return data


def report_rows(name, data):
    rows = [f"Fig 5/6 ({name}): mean per-rank breakdown [us]",
            f"{'P':>5s} {'Pz':>4s} {'alg':>11s} {'Z-Comm':>8s} "
            f"{'XY-Comm':>8s} {'FP-Op':>8s}"]
    for P in P_VALUES:
        for pz in PZ_VALUES:
            for alg in ("baseline3d", "new3d"):
                bd = data[(P, pz, alg)]
                rows.append(
                    f"{P:5d} {pz:4d} {alg:>11s} {bd['z_comm']*1e6:8.1f} "
                    f"{bd['xy_comm']*1e6:8.1f} {bd['fp']*1e6:8.1f}")
    return rows


def test_fig5(benchmark):
    data = run_breakdowns(MATRIX)
    write_report("fig5_s2D9pt2048.txt", report_rows(MATRIX, data))

    for P in P_VALUES:
        for pz in (4, 16):
            # Sparse allreduce keeps the proposed Z-comm below the
            # baseline's per-level exchanges.
            assert (data[(P, pz, "new3d")]["z_comm"]
                    < data[(P, pz, "baseline3d")]["z_comm"])
            # Replicated computation: the proposed algorithm does at least
            # as much mean FP work as the baseline.
            assert (data[(P, pz, "new3d")]["fp"]
                    >= 0.99 * data[(P, pz, "baseline3d")]["fp"])
        # Replication overhead grows with Pz.
        assert (data[(P, 16, "new3d")]["fp"]
                >= data[(P, 1, "new3d")]["fp"] * 0.9)

    px, py = grid_for(64, 4)
    solver = get_solver(MATRIX, px, py, 4, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b).report.breakdown(),
                       rounds=1, iterations=1)
