"""Resilience tax: ack/retransmit envelope overhead on the Fig. 4 sweep.

The paper's experiments assume a lossless fabric; ``docs/FAULTS.md``
describes the opt-in reliable transport that survives a lossy one.  This
bench quantifies what that envelope costs on the Fig. 4 sweep shape
(s2D9pt2048, P in {64, 256}, Pz in {1, 16}), comparing:

- ``lossless``   — the paper's configuration (no faults, no envelope);
- ``ack-only``   — reliable transport on a clean network: pure protocol
  overhead (per-delivery acks, no retransmits);
- ``drop-2%``    — reliable transport with 2% seeded message drops: acks
  plus retransmission and backoff.

Claims checked: the envelope never changes the answer; ack-only overhead
is bounded (< 50% here — per-message constant, worst at the
latency-dominated small-message end); drops only add to it; every drop is
matched by a retransmission.
"""

import pytest

from common import (
    CORI_HASWELL,
    check_solution,
    fmt_ms,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)
from repro.comm import FaultPlan
from repro.core import Resilience

MATRIX = "s2D9pt2048"
P_VALUES = [64, 256]
PZ_VALUES = [1, 16]
DROP = 0.02


def run_cell(P, pz):
    """One (P, pz) cell: {config: (seconds, retransmits, acks)}."""
    px, py = grid_for(P, pz)
    solver = get_solver(MATRIX, px, py, pz, machine=CORI_HASWELL)
    alg = "2d" if pz == 1 else "new3d"
    b = rhs_for(solver)
    res = Resilience(reliable=True, checksums=False, residual_tol=1e-9,
                     retries_per_tier=0)
    out = {}
    for config, faults, resilience in (
            ("lossless", None, None),
            ("ack-only", None, res),
            ("drop-2%", FaultPlan.uniform(seed=1, drop=DROP), res)):
        o = solver.solve(b, algorithm=alg, faults=faults,
                         resilience=resilience)
        check_solution(solver, o, b)
        if resilience is not None:
            # The envelope must carry the run in-tier, not via fallback.
            assert o.resilience.tier == alg
            assert len(o.resilience.attempts) == 1
        counts = o.report.sim.fault_counts()
        out[config] = (o.report.total_time,
                       counts.get("retransmit", 0),
                       o.report.sim.msgs_by(category="ack"))
    return out, alg


def test_resilience_overhead(benchmark):
    rows = [f"Resilience overhead ({MATRIX}): Fig. 4 sweep, "
            f"Cori Haswell model, drop rate {DROP:.0%}",
            f"{'P':>5s} {'Pz':>4s} {'alg':>6s} {'lossless':>10s} "
            f"{'ack-only':>10s} {'ovh':>6s} {'drop-2%':>10s} {'ovh':>6s} "
            f"{'rexmit':>7s} {'acks':>8s}"]
    cells = {}
    for P in P_VALUES:
        for pz in PZ_VALUES:
            cell, alg = run_cell(P, pz)
            cells[(P, pz)] = cell
            t0, _, _ = cell["lossless"]
            t1, _, acks1 = cell["ack-only"]
            t2, rex2, acks2 = cell["drop-2%"]
            rows.append(
                f"{P:5d} {pz:4d} {alg:>6s} {fmt_ms(t0)} {fmt_ms(t1)} "
                f"{(t1 / t0 - 1) * 100:5.1f}% {fmt_ms(t2)} "
                f"{(t2 / t0 - 1) * 100:5.1f}% {rex2:7d} {acks2:8d}")
    write_report("resilience_overhead.txt", rows)

    for (P, pz), cell in cells.items():
        t0, rex0, acks0 = cell["lossless"]
        t1, rex1, acks1 = cell["ack-only"]
        t2, rex2, acks2 = cell["drop-2%"]
        # Lossless runs carry no envelope traffic at all.
        assert rex0 == 0 and acks0 == 0
        # Acks cost time but never retransmit on a clean network.
        assert rex1 == 0 and acks1 > 0
        assert t0 < t1 < 1.5 * t0
        # Drops add retransmissions (and their backoff) on top.
        assert rex2 > 0 and acks2 > 0
        assert t2 > t1
