"""Future-work projection: Crusher with ROC-SHMEM sub-communicators (§3.4).

The paper: "The AMD GPU's counterpart ROC-SHMEM currently does not support
MPI subcommunicators... Adding support for MPI subbcommunicators in
ROC-SHMEM will enable significantly improved scalability of SpTRSV for
large numbers of GPU nodes."

This bench quantifies that projection on the Crusher model: today's
constraint (Px = Py = 1, so per-grid work cannot be spread across GPUs)
versus the projected machine (`crusher-gpu-future`) running the
NVSHMEM-style multi-GPU solves with Px up to 4.
"""

from common import check_solution, fmt_ms, get_solver, rhs_for, write_report
from repro.comm import CRUSHER_GPU, CRUSHER_GPU_FUTURE


def test_future_rocshmem(benchmark):
    name = "s2D9pt2048"
    rows = ["Future-work: Crusher GPU with one-sided sub-communicators [ms]",
            f"{'config':>10s} {'GPUs':>5s} {'today':>9s} {'projected':>10s}"]
    data = {}
    for px, pz in [(1, 4), (1, 16), (2, 16), (4, 16), (4, 64)]:
        solver = get_solver(name, px, 1, pz, machine=CRUSHER_GPU_FUTURE)
        b = rhs_for(solver)
        out = solver.solve(b, device="gpu")
        check_solution(solver, out, b)
        data[(px, pz, "future")] = out.report.total_time
        if px == 1:
            today = solver.solve(b, device="gpu",
                                 machine=CRUSHER_GPU).report.total_time
            data[(px, pz, "today")] = today
        rows.append(
            f"{px}x1x{pz:<5d} {px*pz:5d} "
            f"{fmt_ms(data.get((px, pz, 'today'), float('nan')))} "
            f"{fmt_ms(data[(px, pz, 'future')])}")
    write_report("future_rocshmem.txt", rows)

    # Today's Crusher cannot use px > 1 at all.
    import pytest

    solver = get_solver(name, 2, 1, 4, machine=CRUSHER_GPU)
    with pytest.raises(ValueError, match="sub-communicators"):
        solver.solve(rhs_for(solver), device="gpu")
    # With sub-communicators, px=1 configurations behave identically...
    assert data[(1, 16, "future")] == pytest.approx(data[(1, 16, "today")],
                                                    rel=1e-9)
    # ...and multi-GPU grids become *possible*, opening configurations the
    # current stack cannot reach (the projection the paper makes).
    assert (4, 64, "future") in data

    solver = get_solver(name, 4, 1, 16, machine=CRUSHER_GPU_FUTURE)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
