"""Fig. 6: time breakdown for nlpkkt80 (3D-PDE replication growth).

Same axes as Fig. 5, for the 3D-PDE-class matrix.  The paper's key
observation: 3D discretizations have separators that grow with problem
size, so the proposed algorithm's replicated computation and intra-grid
communication grow *asymptotically faster with Pz* than for the 2D-PDE
matrix — at large Pz this erodes (but does not reverse, at the paper's
scales) the 3D advantage.
"""

from bench_fig5 import report_rows, run_breakdowns
from common import CORI_HASWELL, get_solver, grid_for, rhs_for, write_report

MATRIX = "nlpkkt80"
P_VALUES = [64, 256]


def test_fig6(benchmark):
    data = run_breakdowns(MATRIX)
    write_report("fig6_nlpkkt80.txt", report_rows(MATRIX, data))
    data2d = run_breakdowns("s2D9pt2048")

    for P in P_VALUES:
        # Replicated FP grows with Pz for the proposed algorithm...
        fp1 = data[(P, 1, "new3d")]["fp"]
        fp16 = data[(P, 16, "new3d")]["fp"]
        assert fp16 > fp1 * 0.9
        # ... and the 3D-PDE matrix replicates proportionally more than
        # the 2D-PDE matrix (fat separators).
        growth_3d = fp16 / fp1
        growth_2d = (data2d[(P, 16, "new3d")]["fp"]
                     / data2d[(P, 1, "new3d")]["fp"])
        assert growth_3d > growth_2d

    px, py = grid_for(64, 16)
    solver = get_solver(MATRIX, px, py, 16, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b).report.breakdown(),
                       rounds=1, iterations=1)
