"""Fig. 10: Perlmutter (NVIDIA A100) 1x1xPz — CPU vs GPU, 1 and 50 RHS.

Same experiment as Fig. 9 on the A100 system.  The paper reports much
larger CPU→GPU speedups on Perlmutter (up to 6.5x with 1 RHS, 3.7-5.2x
with 50) than on Crusher, and both CPU and GPU scale until Pz = 64.
"""

import pytest

from bench_fig9 import cpu_gpu_rows, run_cpu_gpu
from common import check_solution, get_solver, rhs_for, write_report
from repro.comm import PERLMUTTER_CPU, PERLMUTTER_GPU

PZ_VALUES = [1, 4, 16, 64]


@pytest.mark.parametrize("name", ["s1_mat_0_253872", "s2D9pt2048",
                                  "nlpkkt80", "dielFilterV3real"])
def test_fig10(benchmark, name):
    data = run_cpu_gpu(name, PERLMUTTER_GPU, PERLMUTTER_CPU)
    write_report(f"fig10_perlmutter_{name}.txt",
                 cpu_gpu_rows(name, "perlmutter", data))

    # GPU beats CPU across small/mid Pz for both RHS counts.
    for nrhs in (1, 50):
        for pz in (1, 4):
            assert (data[(pz, nrhs, "gpu")].total_time
                    < data[(pz, nrhs, "cpu")].total_time), (pz, nrhs)
    # Perlmutter speedups exceed Crusher's (checked cross-file in the
    # headline bench); here: peak 1-RHS speedup lands in a plausible band
    # around the paper's 4.6-6.5x.
    best = max(data[(pz, 1, "cpu")].total_time
               / data[(pz, 1, "gpu")].total_time for pz in PZ_VALUES)
    assert best > 2.0
    # Scalability: some Pz > 1 beats (or at small analogue scale, at least
    # matches) Pz = 1 on both devices.
    for dev in ("cpu", "gpu"):
        best_3d = min(data[(pz, 1, dev)].total_time for pz in (4, 16, 64))
        assert best_3d < 1.05 * data[(1, 1, dev)].total_time, dev

    solver = get_solver(name, 1, 1, 16, machine=PERLMUTTER_GPU)
    b = rhs_for(solver, 1)
    benchmark.pedantic(lambda: solver.solve(b, device="gpu"),
                       rounds=1, iterations=1)
