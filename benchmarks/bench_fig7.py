"""Fig. 7: load balance of the L/U solve phases for s2D9pt2048.

The paper plots, for P = 128 and P = 1024 and varying Pz, the mean per-rank
time of the L and U phases with error bars at the min/max over ranks
(Z-comm excluded).  For the balanced 2D-PDE matrix both algorithms show
reasonable balance.
"""

import numpy as np
import pytest

from common import (
    CORI_HASWELL,
    check_solution,
    get_solver,
    grid_for,
    rhs_for,
    write_report,
)

P_VALUES = [64, 256]
PZ_VALUES = [1, 4, 16]


def load_balance(name):
    """{(P, pz, alg, phase): (mean, min, max)} of per-rank non-Z time."""
    data = {}
    for P in P_VALUES:
        for pz in PZ_VALUES:
            px, py = grid_for(P, pz)
            solver = get_solver(name, px, py, pz, machine=CORI_HASWELL)
            b = rhs_for(solver)
            for alg in ("new3d", "baseline3d"):
                out = solver.solve(b, algorithm=alg)
                check_solution(solver, out, b)
                for phase in ("l", "u"):
                    # Z-comm excluded, as in the paper's figure.
                    t = (out.report.per_rank(phase=phase, category="fp")
                         + out.report.per_rank(phase=phase, category="xy"))
                    data[(P, pz, alg, phase)] = (t.mean(), t.min(), t.max())
    return data


def balance_rows(name, data):
    rows = [f"Fig 7/8 ({name}): per-rank L/U time [us] mean (min..max), "
            f"Z-comm excluded",
            f"{'P':>5s} {'Pz':>4s} {'alg':>11s} {'phase':>5s} "
            f"{'mean':>8s} {'min':>8s} {'max':>8s} {'max/mean':>8s}"]
    for key in sorted(data):
        P, pz, alg, phase = key
        mean, lo, hi = data[key]
        imb = hi / mean if mean > 0 else 1.0
        rows.append(f"{P:5d} {pz:4d} {alg:>11s} {phase:>5s} "
                    f"{mean*1e6:8.1f} {lo*1e6:8.1f} {hi*1e6:8.1f} "
                    f"{imb:8.2f}")
    return rows


def test_fig7(benchmark):
    name = "s2D9pt2048"
    data = load_balance(name)
    write_report("fig7_s2D9pt2048.txt", balance_rows(name, data))

    # Reasonable balance on the 2D-PDE matrix.  The baseline's spread grows
    # at large Pz (idle grids below the active level); the proposed
    # algorithm stays tight because every grid does the replicated work.
    for (P, pz, alg, phase), (mean, lo, hi) in data.items():
        if mean > 0:
            assert hi / mean < 4.0, (P, pz, alg, phase)
    for P in P_VALUES:
        for phase in ("l", "u"):
            mean_b, _, max_b = data[(P, 16, "baseline3d", phase)]
            mean_n, _, max_n = data[(P, 16, "new3d", phase)]
            assert max_n / mean_n <= max_b / mean_b

    px, py = grid_for(64, 4)
    solver = get_solver(name, px, py, 4, machine=CORI_HASWELL)
    b = rhs_for(solver)
    benchmark.pedantic(lambda: solver.solve(b).report.per_rank(phase="l"),
                       rounds=1, iterations=1)
