"""Table 1: the test-matrix suite (size, nonzeros in LU, density).

The paper's Table 1 lists six matrices; we regenerate the same table for
their structural analogues at benchmark scale, using the *exact* scalar
fill count from the symbolic factorization (``detect`` mode), and print the
paper's original values next to ours for reference.
"""

import scipy.sparse as sp

from common import SCALE, write_report
from repro.matrices import PAPER_MATRICES, get_matrix
from repro.ordering import nested_dissection
from repro.symbolic import symbolic_factor


def build_table_row(name):
    spec = PAPER_MATRICES[name]
    A = get_matrix(name, SCALE)
    tree = nested_dissection(A, leaf_size=max(8, A.shape[0] // 256),
                             min_depth=2)
    Ap = sp.csr_matrix(A[tree.perm][:, tree.perm])
    sym = symbolic_factor(Ap, max_supernode=16,
                          boundaries=tree.boundaries(), mode="detect")
    return spec, A.shape[0], sym.nnz_LU, sym.density()


def test_table1(benchmark):
    rows = []
    header = (f"{'Matrix':18s} {'n':>9s} {'nnz(LU)':>12s} {'Density':>8s}   "
              f"{'paper n':>9s} {'paper nnz(LU)':>14s} {'paper dens':>10s}")
    rows.append(header)
    results = {}
    for name in PAPER_MATRICES:
        spec, n, nnz_lu, dens = build_table_row(name)
        results[name] = (n, nnz_lu, dens)
        rows.append(f"{name:18s} {n:9d} {nnz_lu:12d} {dens:8.4%}   "
                    f"{spec.paper_n:9d} {spec.paper_nnz_lu:14d} "
                    f"{spec.paper_density:10.4%}")
    write_report("table1.txt", rows)

    # Structural-class claims from the paper's Table 1 must survive the
    # scale-down: the chemistry matrix is by far the densest; the 2D
    # Poisson is the sparsest of the PDE matrices.
    dens = {k: v[2] for k, v in results.items()}
    assert dens["Ga19As19H42"] == max(dens.values())
    assert dens["Ga19As19H42"] > 10 * dens["s2D9pt2048"]
    assert dens["s2D9pt2048"] == min(dens.values())
    # All factorizations show fill beyond A itself.
    for name, (n, nnz_lu, _) in results.items():
        assert nnz_lu > get_matrix(name, SCALE).nnz

    benchmark.pedantic(lambda: build_table_row("s2D9pt2048"),
                       rounds=1, iterations=1)
