"""GPU scaling study: why the 3D layout rescues multi-GPU SpTRSV.

Reproduces the paper's headline Fig. 11 story interactively on the
Perlmutter machine model:

1. the NVSHMEM 2D GPU solver (Pz = 1) scales only within one node
   (4 GPUs) — inter-node NVSHMEM bandwidth is ~24x lower than NVLink;
2. the proposed 3D GPU solver keeps NVSHMEM traffic inside each node and
   runs efficiently out to 256 GPUs;
3. the CPU-vs-GPU comparison at 1 x 1 x Pz (Figs. 9-10).

Run:  python examples/gpu_scaling_study.py
"""

from repro.comm import PERLMUTTER_CPU, PERLMUTTER_GPU
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.numfact import solve_residual


def main():
    A = poisson2d(64, stencil=9, seed=6)
    b = make_rhs(A.shape[0], 1)
    print(f"matrix: n={A.shape[0]} (2D 9-pt Poisson)\n")

    print("2D GPU solver (Pz=1), NVSHMEM across Px GPUs:")
    best_2d = None
    for px in (1, 2, 4, 8):
        s = SpTRSVSolver(A, px, 1, 1, machine=PERLMUTTER_GPU,
                         max_supernode=16, symbolic_mode="fixed")
        out = s.solve(b, device="gpu")
        assert solve_residual(A, out.x, b) < 1e-9
        t = out.report.total_time
        best_2d = t if best_2d is None else min(best_2d, t)
        node_note = " <- crosses the node boundary" if px > 4 else ""
        print(f"  {px:3d} GPUs: {t * 1e3:7.3f} ms{node_note}")

    print("\n3D GPU solver (Px x 1 x Pz), NVSHMEM confined per node:")
    for px, pz in [(1, 4), (1, 16), (2, 16), (4, 16), (4, 64)]:
        s = SpTRSVSolver(A, px, 1, pz, machine=PERLMUTTER_GPU,
                         max_supernode=16, symbolic_mode="fixed")
        out = s.solve(b, device="gpu")
        assert solve_residual(A, out.x, b) < 1e-9
        t = out.report.total_time
        marker = " <- beats every 2D configuration" if t < best_2d else ""
        print(f"  {px}x1x{pz:<3d} = {px * pz:3d} GPUs: {t * 1e3:7.3f} ms{marker}")

    print("\nCPU vs GPU at 1 x 1 x Pz (one rank per GPU slot):")
    for pz in (1, 4, 16):
        s = SpTRSVSolver(A, 1, 1, pz, machine=PERLMUTTER_GPU,
                         max_supernode=16, symbolic_mode="fixed")
        tg = s.solve(b, device="gpu").report.total_time
        tc = s.solve(b, device="cpu", machine=PERLMUTTER_CPU).report.total_time
        print(f"  Pz={pz:3d}: CPU {tc * 1e3:7.3f} ms, GPU {tg * 1e3:7.3f} ms "
              f"-> {tc / tg:4.1f}x")


if __name__ == "__main__":
    main()
