"""SpTRSV as a preconditioner inside an iterative solver.

Direct-solver preconditioning applies ``M^-1 = U^-1 L^-1`` every iteration
— the "repeated application of SpTRSV" workload from the paper's intro.
Here we solve a *perturbed* system ``(A + E) x = b`` by preconditioned
Richardson iteration using the factorization of ``A`` as the
preconditioner; each iteration is one distributed 3D SpTRSV.

Run:  python examples/preconditioned_richardson.py
"""

import numpy as np
import scipy.sparse as sp

from repro.comm import CORI_HASWELL
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d


def main():
    A = poisson2d(32, stencil=9, seed=3)
    n = A.shape[0]
    # Perturbed operator: A plus a small random diagonal drift (e.g. a
    # Jacobian that moved slightly since the last factorization).
    rng = np.random.default_rng(4)
    E = sp.diags(0.05 * rng.standard_normal(n) * A.diagonal())
    A_pert = sp.csr_matrix(A + E)

    solver = SpTRSVSolver(A, px=2, py=2, pz=4, machine=CORI_HASWELL,
                          max_supernode=16)
    b = make_rhs(n, 1, kind="random", seed=5)[:, 0]

    x = np.zeros(n)
    r = b.copy()
    b_norm = np.linalg.norm(b)
    sim_time = 0.0
    print("preconditioned Richardson on (A + E) x = b, M = LU(A):")
    for it in range(30):
        out = solver.solve(r, algorithm="new3d")   # z = M^-1 r
        sim_time += out.report.total_time
        x += out.x
        r = b - A_pert @ x
        rel = np.linalg.norm(r) / b_norm
        if it % 5 == 0 or rel < 1e-10:
            print(f"  iter {it:2d}: |r|/|b| = {rel:.3e}")
        if rel < 1e-10:
            break
    assert rel < 1e-10, "Richardson failed to converge"
    print(f"\nconverged in {it + 1} iterations, "
          f"{sim_time * 1e3:.2f} ms simulated SpTRSV time "
          f"({sim_time / (it + 1) * 1e3:.3f} ms/application)")

    # Exactness check on the perturbed system.
    assert np.linalg.norm(A_pert @ x - b) / b_norm < 1e-9


if __name__ == "__main__":
    main()
