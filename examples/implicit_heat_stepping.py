"""Implicit time stepping: the repeated-solve workload that motivates SpTRSV.

The paper's introduction: SpTRSV "can become a computational bottleneck for
linear systems with many RHSs or preconditioned iterative solvers requiring
repeated application of SpTRSV".  This example integrates the heat equation
``u_t = laplace(u) + f`` with backward Euler on a 2D grid: the operator
``(I - dt*L)`` is factorized once, then every time step is a pair of
triangular solves — exactly the amortization scenario.

It also demonstrates the multi-RHS path: stepping an ensemble of 8 initial
conditions at once costs far less than 8 separate solves.

Run:  python examples/implicit_heat_stepping.py
"""

import numpy as np
import scipy.sparse as sp

from repro.comm import PERLMUTTER_CPU
from repro.core import SpTRSVSolver
from repro.matrices import poisson2d
from repro.numfact import solve_residual


def main():
    nx = 40
    n = nx * nx
    dt = 0.05
    nsteps = 10
    nensemble = 8

    # Backward Euler operator: (I + dt * A) with A the (positive) Laplacian.
    A = poisson2d(nx, stencil=5, seed=1)
    M = sp.identity(n, format="csr") + dt * A

    solver = SpTRSVSolver(M, px=2, py=2, pz=2, machine=PERLMUTTER_CPU,
                          max_supernode=16)
    print(f"factorized (I + dt*A): n={n}, {solver.lu.nsup} supernodes")

    # Ensemble of initial conditions: hot spots at different locations.
    rng = np.random.default_rng(2)
    u = np.zeros((n, nensemble))
    for k in range(nensemble):
        u[rng.integers(0, n), k] = 1.0

    total_sim_time = 0.0
    for step in range(nsteps):
        out = solver.solve(u, algorithm="new3d")
        assert solve_residual(M, out.x, u) < 1e-9
        u = out.x
        total_sim_time += out.report.total_time
        if step % 2 == 0:
            print(f"  step {step:2d}: max u = {u.max():.4f}, "
                  f"solve {out.report.total_time * 1e3:.3f} ms (simulated)")

    print(f"\n{nsteps} implicit steps of an {nensemble}-member ensemble: "
          f"{total_sim_time * 1e3:.2f} ms simulated solve time")

    # Amortization: one 8-RHS solve vs eight 1-RHS solves.
    b = np.ascontiguousarray(u)
    t8 = solver.solve(b).report.total_time
    t1 = solver.solve(b[:, :1]).report.total_time
    print(f"multi-RHS amortization: 8 RHS in one solve = {t8 * 1e3:.3f} ms, "
          f"8 x single = {8 * t1 * 1e3:.3f} ms "
          f"({8 * t1 / t8:.1f}x saved)")
    assert t8 < 8 * t1

    # Energy decays under diffusion: a cheap physics sanity check.
    assert u.max() < 1.0


if __name__ == "__main__":
    main()
