"""Factor once, persist, and solve under different machines and grids.

The paper's artifact notes that "most of the time is spent in symbolic and
numeric LU factorization before calling SpTRSV" — so the library lets you
factor once, save the factors, and replay solves across machine models and
grid shapes (including the autotuner) without refactorizing.

Run:  python examples/factor_once_solve_everywhere.py
"""

import os
import tempfile

import numpy as np

from repro.comm import CORI_HASWELL, PERLMUTTER_CPU
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.numfact import load_factors, save_factors, solve_residual
from repro.perf import compare_outcomes, format_report


def main():
    A = poisson2d(32, stencil=9, seed=1)
    n = A.shape[0]
    b = make_rhs(n, 2)

    # Factor once (deepest grid we will ever want: pz <= 4).
    base = SpTRSVSolver(A, 1, 1, 4, max_supernode=16)
    print(f"factorized once: n={n}, {base.lu.nsup} supernodes")

    # Persist and reload — e.g. a later session, or another process.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "factors.npz")
        save_factors(path, base.lu)
        print(f"factors saved to {path} "
              f"({os.path.getsize(path) / 1024:.0f} KiB)")
        lu = load_factors(path)

    # Replay the same factors on several grids/machines.
    outcomes = {}
    for label, (px, py, pz, mach) in {
        "1x1x1 cori": (1, 1, 1, CORI_HASWELL),
        "2x2x1 cori": (2, 2, 1, CORI_HASWELL),
        "2x2x4 cori": (2, 2, 4, CORI_HASWELL),
        "2x2x4 perlmutter": (2, 2, 4, PERLMUTTER_CPU),
    }.items():
        solver = SpTRSVSolver.from_pipeline(A, base.tree, base.sym, lu,
                                            px, py, pz, machine=mach)
        out = solver.solve(b)
        assert solve_residual(A, out.x, b) < 1e-9
        outcomes[label] = out

    print("\n" + compare_outcomes(outcomes))
    best = min(outcomes, key=lambda k: outcomes[k].report.total_time)
    print("\nbest configuration in detail:")
    print(format_report(outcomes[best].report))


if __name__ == "__main__":
    main()
