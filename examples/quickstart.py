"""Quickstart: factor a sparse matrix once, solve with the 3D SpTRSV.

Builds a 2D Poisson system, runs the paper's proposed 3D solver on a
simulated 2 x 2 x 4 process grid of the Cori Haswell model, verifies the
solution against a sequential reference, and prints the performance report
(total simulated time plus the Z-comm / XY-comm / FP breakdown of the
paper's figures).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.comm import CORI_HASWELL
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.numfact import solve_residual


def main():
    # A diagonally dominant 2D Poisson operator (s2D9pt analogue).
    A = poisson2d(48, stencil=9, seed=0)
    n = A.shape[0]
    print(f"matrix: 2D 9-point Poisson, n={n}, nnz={A.nnz}")

    # Preprocessing: nested dissection -> symbolic -> supernodal LU -> the
    # 3D layout for a Px x Py x Pz = 2 x 2 x 4 grid (16 simulated ranks).
    solver = SpTRSVSolver(A, px=2, py=2, pz=4, machine=CORI_HASWELL,
                          max_supernode=16)
    print(f"pipeline: {solver.lu.nsup} supernodes, "
          f"{len(solver.lu.Lblocks)} L blocks, "
          f"layout depth {solver.layout.depth}")

    b = make_rhs(n, nrhs=1)
    out = solver.solve(b, algorithm="new3d")

    residual = solve_residual(A, out.x, b)
    print(f"\nsolved A x = b with the proposed 3D SpTRSV")
    print(f"  residual           : {residual:.2e}")
    print(f"  simulated time     : {out.report.total_time * 1e3:.3f} ms")
    for cat, t in out.report.breakdown().items():
        print(f"  mean {cat:8s}      : {t * 1e6:.1f} us/rank")
    print(f"  messages (intra)   : {out.report.message_count('xy')}")
    print(f"  messages (inter)   : {out.report.message_count('z')}")

    # Compare against the baseline 3D algorithm on the same factors.
    base = solver.solve(b, algorithm="baseline3d")
    assert np.allclose(out.x, base.x, atol=1e-10)
    print(f"\nbaseline 3D SpTRSV : {base.report.total_time * 1e3:.3f} ms "
          f"(proposed is {base.report.total_time / out.report.total_time:.2f}x)")


if __name__ == "__main__":
    main()
