"""Walkthrough of the paper's Fig. 1: how a matrix maps onto the 3D layout.

Reproduces, for a concrete matrix, the three panels of the paper's Fig. 1:
(a) the mapping of elimination-tree nodes onto the Pz = 4 grids, (b)/(c)
the block structure one grid handles, and the Fig. 2 RHS-zeroing rule of
the proposed algorithm.

Run:  python examples/fig1_layout_walkthrough.py
"""

from repro.core import SpTRSVSolver
from repro.core.sptrsv3d_new import grid_supernodes
from repro.matrices import poisson2d
from repro.ordering.viz import render_block_structure, render_layout, render_septree


def main():
    A = poisson2d(16, stencil=9, seed=0)
    solver = SpTRSVSolver(A, px=2, py=3, pz=4, max_supernode=8)
    layout = solver.layout
    part = solver.lu.partition

    print("=== separator tree (top levels)")
    print(render_septree(solver.tree, max_depth=2))

    print("\n=== Fig. 1(a): layout tree and grid assignment")
    print(render_layout(layout))

    print("\n=== Fig. 1(c): Grid-3's matrix L^3 "
          "(leaf 3 + its ancestors, one 2D block-cyclic matrix)")
    print(render_block_structure(layout, solver.lu, z=3, max_cells=36))

    print("\n=== Fig. 2: the RHS-zeroing rule (b^z per grid)")
    for z in range(4):
        kept, zeroed = [], []
        for nd in layout.path(z):
            lo, hi = part.sn_range(nd.first, nd.last)
            (kept if nd.owner_grid == z else zeroed).append(
                f"node{nd.heap_id}[{hi - lo} sn]")
        print(f"  grid {z}: keeps b for {', '.join(kept)}; "
              f"zeros {', '.join(zeroed) if zeroed else '(nothing)'}")

    print("\nreplication summary:")
    total = sum(len(grid_supernodes(layout, part, z)) for z in range(4))
    print(f"  {part.nsup} supernodes stored {total} times across 4 grids "
          f"({total / part.nsup:.2f}x memory replication — the CA trade)")


if __name__ == "__main__":
    main()
