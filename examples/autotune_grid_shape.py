"""Autotune the 3D grid shape for a rank budget.

The paper hand-sweeps (Px, Py, Pz); with a simulated machine the sweep can
be exhaustive.  This example tunes a 16-rank budget for two very different
matrices — the latency-bound 2D Poisson operator and the compute-bound
chemistry analogue — and shows the optimizer picking different shapes.

Run:  python examples/autotune_grid_shape.py
"""

from repro.comm import CORI_HASWELL, PERLMUTTER_GPU
from repro.matrices import chemistry_like, poisson2d
from repro.perf import autotune_grid


def main():
    P = 16

    print(f"=== 2D Poisson (latency-bound), P={P}, Cori CPU model")
    A = poisson2d(32, stencil=9, seed=1)
    res = autotune_grid(A, P=P, machine=CORI_HASWELL, symbolic_mode="fixed")
    print(res.format())
    px, py, pz = res.best
    print(f"-> best grid {px}x{py}x{pz}; deep Pz wins on latency-bound "
          f"problems\n")
    assert pz > 1

    print(f"=== chemistry (compute-bound, dense fill), P={P}")
    B = chemistry_like(600, band=30, extra_density=0.0, seed=2)
    res_b = autotune_grid(B, P=P, machine=CORI_HASWELL,
                          symbolic_mode="fixed")
    print(res_b.format())
    print(f"-> best grid {'x'.join(map(str, res_b.best))}\n")

    print(f"=== GPU tuning (Perlmutter, Py=1 enforced), P={P}")
    res_g = autotune_grid(A, P=P, machine=PERLMUTTER_GPU, device="gpu",
                          symbolic_mode="fixed")
    print(res_g.format())
    print(f"-> best GPU grid {'x'.join(map(str, res_g.best))}")
    assert all(py == 1 for (_, py, _), _ in res_g.table)


if __name__ == "__main__":
    main()
