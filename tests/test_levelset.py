"""Tests for the shared-memory level-set solver (and its scaling limits)."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL
from repro.core.levelset import solve_levelset
from repro.matrices import make_rhs, poisson2d, random_spd_like
from repro.numfact import lu_factorize, solve_residual
from repro.symbolic import symbolic_factor


@pytest.fixture(scope="module")
def lu_and_A():
    A = poisson2d(14, stencil=9, seed=1)
    part = symbolic_factor(A, max_supernode=8).partition
    return A, lu_factorize(A, part)


def test_levelset_exact(lu_and_A):
    A, lu = lu_and_A
    b = make_rhs(A.shape[0], 2)
    res = solve_levelset(lu, b, CORI_HASWELL, nthreads=4)
    assert solve_residual(A, res.x, b) < 1e-10
    assert res.time > 0
    assert res.levels_l >= 1 and res.levels_u >= 1


def test_levelset_1d_rhs(lu_and_A):
    A, lu = lu_and_A
    b = np.ones(A.shape[0])
    res = solve_levelset(lu, b, CORI_HASWELL)
    assert res.x.ndim == 1


def test_levelset_more_threads_never_slower(lu_and_A):
    A, lu = lu_and_A
    b = make_rhs(A.shape[0], 1)
    t = [solve_levelset(lu, b, CORI_HASWELL, nthreads=nt).time
         for nt in (1, 2, 4, 16)]
    assert all(t[i + 1] <= t[i] + 1e-15 for i in range(len(t) - 1))


def test_levelset_saturates():
    """Thread scaling saturates at the max level width — the shared-memory
    limitation the paper's introduction motivates 3D distribution with."""
    A = poisson2d(16, stencil=9, seed=2)
    part = symbolic_factor(A, max_supernode=8).partition
    lu = lu_factorize(A, part)
    b = make_rhs(A.shape[0], 1)
    t64 = solve_levelset(lu, b, CORI_HASWELL, nthreads=64).time
    t4096 = solve_levelset(lu, b, CORI_HASWELL, nthreads=4096).time
    barrier_floor = solve_levelset(lu, b, CORI_HASWELL, nthreads=4096)
    # Beyond the DAG width extra threads change nothing.
    assert t4096 == pytest.approx(t64, rel=0.2)
    # The per-level barrier is a hard floor.
    assert t4096 >= barrier_floor.barrier_time


def test_levelset_barrier_cost_scales_with_depth(lu_and_A):
    A, lu = lu_and_A
    b = make_rhs(A.shape[0], 1)
    r = solve_levelset(lu, b, CORI_HASWELL, nthreads=8, barrier_cost=1e-6)
    assert r.barrier_time == pytest.approx(
        1e-6 * (r.levels_l + r.levels_u))


def test_levelset_unstructured():
    A = random_spd_like(100, avg_degree=5, seed=3)
    part = symbolic_factor(A, max_supernode=6).partition
    lu = lu_factorize(A, part)
    b = make_rhs(100, 3, "random", seed=4)
    res = solve_levelset(lu, b, CORI_HASWELL)
    assert solve_residual(A, res.x, b) < 1e-9
