"""Failure-injection tests: broken protocols must fail loudly, not wrongly.

A distributed runtime that silently produces wrong answers under protocol
bugs is worse than one that crashes; these tests corrupt plans, drop
messages and violate invariants, and assert the system surfaces each
failure as a diagnosable error.
"""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, DeadlockError, Simulator
from repro.core import SpTRSVSolver, sptrsv_2d
from repro.core.plan2d import build_2d_plans
from repro.grids import Grid3D
from repro.matrices import make_rhs, poisson2d


@pytest.fixture(scope="module")
def small_lu():
    A = poisson2d(8, stencil=9, seed=1)
    solver = SpTRSVSolver(A, 1, 1, 1, max_supernode=8)
    return solver.lu


def _run_plan(lu, plan, nranks, mutate=None):
    part = lu.partition
    b = make_rhs(lu.n, 1)

    def rank_fn(ctx):
        p = plan.plan_of(ctx.rank)
        if mutate:
            mutate(ctx.rank, p)
        rhs = {K: np.array(b[part.first(K):part.last(K)])
               for K in p.solve_cols}
        return (yield from sptrsv_2d(ctx, plan, rhs, 1, tag_salt="f"))

    return Simulator(nranks, CORI_HASWELL).run(rank_fn)


def test_dropped_message_deadlocks(small_lu):
    """Removing a rank's broadcast trees (so it never forwards) deadlocks
    the dependents instead of producing a wrong answer."""
    plan = build_2d_plans(small_lu, Grid3D(4, 1, 1), 0, "L",
                          list(range(small_lu.nsup)))

    def mutate(rank, p):
        if rank == 0:
            p.bcast_trees = {}

    with pytest.raises(DeadlockError):
        _run_plan(small_lu, plan, 4, mutate)


def test_inflated_recv_count_deadlocks(small_lu):
    """A rank expecting one message too many blocks forever — and the
    deadlock report names the waiting rank."""
    plan = build_2d_plans(small_lu, Grid3D(2, 2, 1), 0, "L",
                          list(range(small_lu.nsup)))

    def mutate(rank, p):
        if rank == 3:
            p.nrecv += 1

    with pytest.raises(DeadlockError, match="rank 3"):
        _run_plan(small_lu, plan, 4, mutate)


def test_missing_rhs_is_keyerror(small_lu):
    """Forgetting a diagonal owner's RHS fails fast at the diagonal solve."""
    plan = build_2d_plans(small_lu, Grid3D(1, 1, 1), 0, "L",
                          list(range(small_lu.nsup)))

    def rank_fn(ctx):
        return (yield from sptrsv_2d(ctx, plan, {}, 1, tag_salt="m"))

    with pytest.raises(KeyError):
        Simulator(1, CORI_HASWELL).run(rank_fn)


def test_corrupted_fmod_raises_incomplete(small_lu):
    """An undercounted dependency makes a supernode solve too early or the
    final completeness check fire — never a silent wrong answer."""
    plan = build_2d_plans(small_lu, Grid3D(2, 1, 1), 0, "L",
                          list(range(small_lu.nsup)))

    def mutate(rank, p):
        # Pretend a column has no consumers on this rank: its rows never
        # complete, so the reduction/receive protocol hangs or the solve
        # finishes incomplete.
        if rank == 1 and p.consumer_blocks:
            J = sorted(p.consumer_blocks)[0]
            del p.consumer_blocks[J]

    with pytest.raises((DeadlockError, RuntimeError)):
        _run_plan(small_lu, plan, 2, mutate)


def test_simulator_max_events_guard():
    """A runaway program trips the event-budget guard."""
    def fn(ctx):
        while True:
            yield ctx.compute(0.0)

    sim = Simulator(1, CORI_HASWELL, max_events=1000)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(fn)


def test_generator_exception_propagates():
    """User-code exceptions inside a rank surface with their own type."""
    def fn(ctx):
        yield ctx.compute(1.0)
        raise ZeroDivisionError("rank code bug")

    with pytest.raises(ZeroDivisionError, match="rank code bug"):
        Simulator(2, CORI_HASWELL).run(fn)
