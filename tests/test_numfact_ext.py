"""Tests for the factorization extensions: left-looking LU, serialization,
stability monitoring, and DAG level profiles."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import (
    chemistry_like,
    kkt3d,
    make_rhs,
    poisson2d,
    random_spd_like,
)
from repro.numfact import (
    load_factors,
    lu_factorize,
    lu_factorize_leftlooking,
    save_factors,
    solve_residual,
    stability_report,
)
from repro.perf import critical_path, level_profile
from repro.comm import CORI_HASWELL
from repro.symbolic import fixed_partition, symbolic_factor


MATS = [
    lambda: poisson2d(8, stencil=9, seed=1),
    lambda: kkt3d(3, seed=2),
    lambda: chemistry_like(70, seed=3),
    lambda: random_spd_like(90, avg_degree=5, seed=4),
]


# ---- left-looking LU ----------------------------------------------------------

@pytest.mark.parametrize("gen", MATS)
@pytest.mark.parametrize("mx", [1, 4, 16])
def test_leftlooking_matches_rightlooking(gen, mx):
    A = gen()
    part = symbolic_factor(A, max_supernode=mx).partition
    rl = lu_factorize(A, part)
    ll = lu_factorize_leftlooking(A, part)
    assert set(rl.Lblocks) == set(ll.Lblocks)
    assert set(rl.Ublocks) == set(ll.Ublocks)
    for key in rl.Lblocks:
        assert np.allclose(rl.Lblocks[key], ll.Lblocks[key], atol=1e-10)
    for key in rl.Ublocks:
        assert np.allclose(rl.Ublocks[key], ll.Ublocks[key], atol=1e-10)
    for s in range(rl.nsup):
        assert np.allclose(rl.diagU[s], ll.diagU[s], atol=1e-10)


def test_leftlooking_solves():
    A = poisson2d(10, stencil=5, seed=5)
    part = fixed_partition(100, 8)
    lu = lu_factorize_leftlooking(A, part)
    b = make_rhs(100, 2)
    assert solve_residual(A, lu.solve(b), b) < 1e-10


def test_leftlooking_size_mismatch():
    with pytest.raises(ValueError):
        lu_factorize_leftlooking(poisson2d(5), fixed_partition(10, 2))


# ---- serialization --------------------------------------------------------------

def test_factor_roundtrip(tmp_path):
    A = poisson2d(9, stencil=9, seed=6)
    part = symbolic_factor(A, max_supernode=6).partition
    lu = lu_factorize(A, part)
    path = str(tmp_path / "factors.npz")
    save_factors(path, lu)
    lu2 = load_factors(path)
    assert lu2.nsup == lu.nsup
    assert set(lu2.Lblocks) == set(lu.Lblocks)
    b = make_rhs(81, 3, "random", seed=7)
    assert np.allclose(lu.solve(b), lu2.solve(b), atol=1e-12)
    for K in range(lu.nsup):
        assert (lu2.l_blockrows[K] == lu.l_blockrows[K]).all()
        assert (lu2.u_blockcols[K] == lu.u_blockcols[K]).all()


def test_factor_roundtrip_diag_only(tmp_path):
    A = sp.identity(8, format="csr") * 3.0
    part = fixed_partition(8, 4)
    lu = lu_factorize(A, part)
    path = str(tmp_path / "d.npz")
    save_factors(path, lu)
    lu2 = load_factors(path)
    assert not lu2.Lblocks and not lu2.Ublocks
    b = np.ones(8)
    assert np.allclose(lu2.solve(b), b / 3.0)


def test_loaded_factors_drive_distributed_solve(tmp_path):
    """A saved factorization plugs back into the 3D solver."""
    from repro.core.solver import SpTRSVSolver

    A = poisson2d(10, stencil=9, seed=8)
    solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    path = str(tmp_path / "f.npz")
    save_factors(path, solver.lu)
    lu2 = load_factors(path)
    via = SpTRSVSolver.from_pipeline(A, solver.tree, solver.sym, lu2,
                                     2, 1, 2)
    b = make_rhs(100, 1)
    assert np.allclose(via.solve(b).x, solver.solve(b).x, atol=1e-12)


# ---- stability -------------------------------------------------------------------

def test_stability_clean_for_dd_matrices():
    A = poisson2d(10, stencil=9, seed=9)
    part = symbolic_factor(A, max_supernode=8).partition
    lu = lu_factorize(A, part)
    rep = stability_report(A, lu)
    assert rep.is_stable()
    assert rep.warnings() == []
    # Diagonally dominant: growth factor stays modest.
    assert rep.growth_factor < 10.0
    assert 0 < rep.min_pivot <= rep.max_pivot


def test_stability_flags_growth():
    """A nearly singular pivot produces huge growth and a warning."""
    M = np.array([[1e-9, 1.0, 0.1],
                  [1.0, 1.0, 0.2],
                  [0.1, 0.2, 1.0]])
    A = sp.csr_matrix(M)
    part = fixed_partition(3, 1)
    lu = lu_factorize(A, part)
    rep = stability_report(A, lu)
    assert rep.growth_factor > 1e4
    assert not rep.is_stable()
    assert any("growth" in w for w in rep.warnings())


# ---- level profiles ----------------------------------------------------------------

def test_level_profile_basic():
    A = poisson2d(10, stencil=9, seed=10)
    part = symbolic_factor(A, max_supernode=8).partition
    lu = lu_factorize(A, part)
    prof = level_profile(lu, "L")
    assert prof.widths.sum() == lu.nsup
    assert prof.depth >= 1
    assert prof.max_width >= 1
    assert prof.avg_parallelism == pytest.approx(lu.nsup / prof.depth)
    # Level consistency: every producer sits strictly below its consumers.
    for J in range(lu.nsup):
        for I in lu.l_blockrows[J]:
            assert prof.levels[int(I)] > prof.levels[J]


def test_level_profile_U_mirror():
    A = poisson2d(8, stencil=5, seed=11)
    part = symbolic_factor(A, max_supernode=8).partition
    lu = lu_factorize(A, part)
    pl = level_profile(lu, "L")
    pu = level_profile(lu, "U")
    # Symmetric pattern: both phases have the same depth.
    assert pl.depth == pu.depth
    with pytest.raises(ValueError):
        level_profile(lu, "X")


def test_level_depth_matches_critical_path_length():
    """With unit task costs the critical path visits exactly `depth`
    supernodes per phase."""
    A = poisson2d(9, stencil=9, seed=12)
    part = symbolic_factor(A, max_supernode=8).partition
    lu = lu_factorize(A, part)
    prof = level_profile(lu, "L")
    cp = critical_path(lu, CORI_HASWELL)
    # cp.length counts L + U solves along the chain; each phase's chain has
    # at most `depth` nodes.
    assert cp.length <= 2 * prof.depth


def test_diagonal_matrix_is_one_level():
    A = sp.identity(12, format="csr") * 2.0
    part = fixed_partition(12, 3)
    lu = lu_factorize(A, part)
    prof = level_profile(lu)
    assert prof.depth == 1
    assert prof.max_width == lu.nsup
