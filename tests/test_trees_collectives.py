"""Unit tests for communication trees and collectives."""

import numpy as np
import pytest

from repro.comm import (
    CORI_HASWELL,
    Simulator,
    allreduce,
    barrier,
    bcast,
    binary_tree,
    flat_tree,
    reduce,
)


# ---- trees ------------------------------------------------------------------

def _check_tree(tree, members, root):
    assert tree.root == root
    assert sorted(tree.members) == sorted(members)
    # Every non-root has a parent; edges are consistent both ways.
    seen = {root}
    for r in tree.members:
        for c in tree.children(r):
            assert tree.parent(c) == r
            assert c not in seen
            seen.add(c)
    assert seen == set(members)


@pytest.mark.parametrize("builder", [binary_tree, flat_tree])
@pytest.mark.parametrize("n", [1, 2, 3, 7, 16])
def test_tree_is_spanning(builder, n):
    members = [3 * i + 1 for i in range(n)]
    root = members[n // 2]
    _check_tree(builder(members, root), members, root)


def test_binary_tree_fanout_and_depth():
    members = list(range(33))
    t = binary_tree(members, 0)
    assert t.max_fanout() <= 2
    assert t.depth() <= 6  # ceil(log2(33)) + 1


def test_flat_tree_shape():
    members = list(range(9))
    t = flat_tree(members, 4)
    assert t.max_fanout() == 8
    assert t.depth() == 1
    assert t.nchildren(4) == 8
    for r in members:
        if r != 4:
            assert t.children(r) == ()


def test_tree_rejects_bad_input():
    with pytest.raises(ValueError):
        binary_tree([1, 1, 2], 1)
    with pytest.raises(ValueError):
        binary_tree([1, 2], 3)
    with pytest.raises(KeyError):
        binary_tree([1, 2], 1).parent(9)


def test_tree_deterministic_across_computation():
    a = binary_tree([5, 2, 9, 7], 9)
    b = binary_tree([7, 9, 2, 5], 9)
    assert a == b


# ---- collectives -----------------------------------------------------------

def run(nranks, fn):
    return Simulator(nranks, CORI_HASWELL).run(fn)


@pytest.mark.parametrize("nmembers", [1, 2, 3, 5, 8])
def test_bcast_delivers_to_all(nmembers):
    members = list(range(nmembers))
    root = nmembers - 1

    def fn(ctx):
        value = np.arange(4.0) if ctx.rank == root else None
        got = yield from bcast(ctx, members, root, value)
        return got.sum()

    res = run(nmembers, fn)
    assert all(v == pytest.approx(6.0) for v in res.results)


@pytest.mark.parametrize("nmembers", [1, 2, 4, 7])
def test_reduce_sums_on_root(nmembers):
    members = list(range(nmembers))

    def fn(ctx):
        acc = yield from reduce(ctx, members, 0, np.full(3, float(ctx.rank)))
        return acc if ctx.rank == 0 else None

    res = run(nmembers, fn)
    expected = sum(range(nmembers))
    assert np.allclose(res.results[0], expected)


@pytest.mark.parametrize("nmembers", [1, 2, 3, 6, 8])
def test_allreduce_everyone_gets_sum(nmembers):
    members = list(range(nmembers))

    def fn(ctx):
        out = yield from allreduce(ctx, members, np.array([float(ctx.rank)]))
        return float(out[0])

    res = run(nmembers, fn)
    expected = float(sum(range(nmembers)))
    assert all(v == pytest.approx(expected) for v in res.results)


def test_allreduce_subset_of_ranks():
    """Non-members keep working while a subset allreduces."""
    members = [0, 2, 4]

    def fn(ctx):
        if ctx.rank in members:
            out = yield from allreduce(ctx, members,
                                       np.array([1.0]), tag="sub")
            return float(out[0])
        yield ctx.compute(0.1)
        return -1.0

    res = run(5, fn)
    assert res.results == [3.0, -1.0, 3.0, -1.0, 3.0]


def test_reduce_custom_op():
    members = [0, 1, 2]

    def fn(ctx):
        acc = yield from reduce(ctx, members, 0,
                                np.array([float(ctx.rank)]), op=np.maximum)
        return float(acc[0]) if ctx.rank == 0 else None

    res = run(3, fn)
    assert res.results[0] == 2.0


def test_barrier_synchronizes_clocks():
    def fn(ctx):
        yield ctx.compute(float(ctx.rank))  # staggered arrivals
        yield from barrier(ctx, [0, 1, 2, 3])
        ctx.mark("after")

    res = run(4, fn)
    after = [m["after"] for m in res.marks]
    assert max(after) - min(after) < 3 * 4 * CORI_HASWELL.net.alpha_inter + 1e-6
    assert min(after) >= 3.0  # nobody passes before the slowest arrives


def test_bcast_binary_beats_flat_latency():
    """Latency comparison backing the paper's tree optimization: a binomial
    bcast over many ranks beats a flat root fan-out."""
    members = list(range(32))
    payload = np.zeros(1)

    def flat_fn(ctx):
        if ctx.rank == 0:
            for dst in members[1:]:
                yield ctx.send(dst, payload, tag="f")
        else:
            yield ctx.recv(src=0, tag="f")

    def tree_fn(ctx):
        yield from bcast(ctx, members, 0, payload if ctx.rank == 0 else None)

    flat = Simulator(32, CORI_HASWELL).run(flat_fn).makespan
    tree = Simulator(32, CORI_HASWELL).run(tree_fn).makespan
    assert tree < flat
