"""Tests for the compile-once schedule-replay fast path (repro.replay).

The contract under test is *bit-identity*: for a fault-free CPU solve,
the recording run, the compiled value program (both its reference
interpreter and its level-batched vector executor) and the replayed
timing tape must reproduce the simulated solve exactly — solution bits,
virtual clocks, per-label time/message/byte accounting and phase marks.
"""

import numpy as np
import pytest

from repro.comm.costmodel import MACHINES
from repro.core.solver import SpTRSVSolver
from repro.matrices import get_matrix, poisson2d
from repro.replay import (
    ReplayError,
    Tape,
    TapeRecorder,
    replay_info,
    replay_state,
    replay_tape,
)
from repro.replay.program import _VectorPlan, compile_program
from repro.replay.tape import TapeError
from repro.serve import (
    BatchPolicy,
    ServiceConfig,
    SolveService,
    WorkloadSpec,
    generate_workload,
)


def make_solver(px=1, py=1, pz=4, **kw):
    A = get_matrix("s2D9pt2048", scale="tiny")
    return SpTRSVSolver(A, px=px, py=py, pz=pz, max_supernode=8, **kw)


def assert_same_outcome(ref, out):
    assert np.array_equal(ref.x, out.x)
    assert np.array_equal(ref.report.sim.clocks, out.report.sim.clocks)
    assert ref.report.sim.times == out.report.sim.times
    assert ref.report.sim.marks == out.report.sim.marks
    assert ref.report.sim.sent_msgs == out.report.sim.sent_msgs
    assert ref.report.sim.sent_bytes == out.report.sim.sent_bytes


# -- bit-identity across algorithms, grids and batch widths ------------------

@pytest.mark.parametrize("algorithm,grid", [
    ("new3d", (2, 1, 4)),
    ("new3d", (1, 2, 2)),
    ("baseline3d", (1, 1, 4)),
    ("2d", (2, 2, 1)),
])
@pytest.mark.parametrize("nrhs", [1, 3])
def test_replay_bit_identical(algorithm, grid, nrhs):
    px, py, pz = grid
    s = make_solver(px, py, pz)
    b = np.random.default_rng(7).standard_normal((s.n, nrhs))
    ref = s.solve(b, algorithm=algorithm)
    rec = s.solve(b, algorithm=algorithm, replay=True)    # recording run
    hot = s.solve(b, algorithm=algorithm, replay=True)    # compiled replay
    assert_same_outcome(ref, rec)
    assert_same_outcome(ref, hot)
    st = replay_state(s)
    assert st.stats.compiles == 1
    assert st.stats.records == 1
    assert st.stats.replays == 1


def test_replay_multi_rhs_batches_and_tape_per_width():
    s = make_solver()
    rng = np.random.default_rng(3)
    for nrhs in (1, 2, 16):
        b = rng.standard_normal((s.n, nrhs))
        ref = s.solve(b)
        assert_same_outcome(ref, s.solve(b, replay=True))
        assert_same_outcome(ref, s.solve(b, replay=True))
    st = replay_state(s)
    # one value program total; one tape (recording) per batch width
    assert st.stats.compiles == 1
    assert st.stats.records == 3
    assert st.stats.replays == 3


def test_replay_columns_match_single_rhs():
    """Batching contract carries over: replayed batch columns are the
    same bits as replayed single-RHS solves."""
    s = make_solver()
    b = np.random.default_rng(11).standard_normal((s.n, 4))
    X = s.solve(b, replay=True).x
    X = s.solve(b, replay=True).x
    for j in range(4):
        xj = s.solve(b[:, j], replay=True).x
        assert np.array_equal(X[:, j], xj)


def test_vector_executor_matches_interpreter():
    s = make_solver(2, 1, 4)
    prog = compile_program(s._new3d_setup("auto"), "new3d", "auto", s.n)
    rng = np.random.default_rng(5)
    for nrhs in (1, 5):
        bp = rng.standard_normal((s.n, nrhs))
        assert np.array_equal(prog.execute(bp, nrhs),
                              prog.execute_interp(bp, nrhs))
    assert prog.kernel_count > 0
    assert sum(prog.op_counts().values()) == len(prog.instrs)


def test_stacked_matmul_is_per_slice_bitwise():
    """The vector executor's soundness hinges on numpy evaluating a
    stacked matmul as the identical per-slice 2-D matmul, for both C- and
    F-ordered constant blocks."""
    rng = np.random.default_rng(0)
    for order in ("C", "F"):
        for (m, k) in ((1, 3), (2, 2), (7, 4), (16, 16)):
            M = np.asarray(rng.standard_normal((m, k)), order=order)
            G, nr = 9, 5
            X = np.ascontiguousarray(rng.standard_normal((G, nr, k, 1)))
            if order == "F":
                stack = np.ascontiguousarray(
                    np.stack([M.T] * G)).transpose(0, 2, 1)
            else:
                stack = np.ascontiguousarray(np.stack([M] * G))
            out = np.matmul(stack[:, None], X)
            for g in range(G):
                for j in range(nr):
                    assert np.array_equal(
                        out[g, j], M @ np.ascontiguousarray(X[g, j]))


# -- timing tapes ------------------------------------------------------------

def test_tape_engine_minimal():
    rec = TapeRecorder(2)
    rec.on_compute(0, 1.0, "L", "gemm")
    rec.on_send(0, 0, 800, 0.5, "L", "x")
    rec.on_recv(1, 0, "L", "x")
    rec.on_mark(1, "done")
    tape = Tape(nranks=2, ops=rec.ops, send_overhead=0.1, recv_overhead=0.2)
    out = replay_tape(tape)
    # rank 0: compute 1.0 + send overhead 0.1
    assert out.clocks[0] == 1.0 + 0.1
    # rank 1: arrival at 1.1 + 0.5, + recv overhead
    assert out.clocks[1] == 1.6 + 0.2
    assert out.marks[1]["done"] == out.clocks[1]
    assert out.sent_msgs[0][("L", "x")] == 1
    assert out.sent_bytes[0][("L", "x")] == 800


def test_tape_engine_detects_deadlock():
    rec = TapeRecorder(1)
    rec.on_recv(0, 99, "L", "x")      # message never posted
    tape = Tape(nranks=1, ops=rec.ops, send_overhead=0.0, recv_overhead=0.0)
    with pytest.raises(TapeError, match="deadlock"):
        replay_tape(tape)


# -- cache shape and error paths ---------------------------------------------

def test_replay_cache_is_keyed_by_algorithm_and_machine():
    s = make_solver(1, 1, 4)
    b = np.ones((s.n, 1))
    for _ in range(2):
        s.solve(b, algorithm="new3d", replay=True)
        s.solve(b, algorithm="baseline3d", replay=True)
        s.solve(b, algorithm="new3d", machine=MACHINES["perlmutter-cpu"],
                replay=True)
    st = replay_state(s)
    assert sorted(st.programs) == [("baseline3d", "flat"), ("new3d", "auto")]
    assert st.stats.compiles == 2 and st.stats.records == 3
    assert st.stats.replays == 3


def test_replay_rejects_unsupported_modes():
    s = make_solver()
    b = np.ones(s.n)
    from repro.comm.faults import FaultPlan

    with pytest.raises(ValueError, match="fault"):
        s.solve(b, replay=True, faults=FaultPlan.uniform(seed=1, drop=0.1))
    with pytest.raises(ValueError, match="trace"):
        s.solve(b, replay=True, trace=True)
    with pytest.raises(ValueError, match="device"):
        s.solve(b, replay=True, device="gpu")
    with pytest.raises(ReplayError, match="sparse"):
        s.solve(b, replay=True, allreduce_impl="naive")


def test_replay_profile_serves_recorded_metrics():
    s = make_solver()
    b = np.ones(s.n)
    ref = s.solve(b, profile=True)
    s.solve(b, replay=True)
    out = s.solve(b, replay=True, profile=True)
    assert out.report.metrics is not None
    assert out.report.metrics.nsyncs == ref.report.metrics.nsyncs
    st = ref.report.metrics.stats()
    so = out.report.metrics.stats()
    assert (st.msgs, st.bytes) == (so.msgs, so.bytes)


def test_replay_info_summarizes_artifacts():
    s = make_solver()
    info = replay_info(s, algorithm="new3d")
    assert info["impl"] == "new3d" and info["grid"] == "1x1x4"
    assert info["instructions"] > info["kernels"] > 0
    assert info["messages"] > 0 and info["message_bytes"] > 0
    assert info["tape_ops"] > info["messages"]
    assert info["est_virtual_time"] > 0


def test_small_poisson_replay_all_algorithms():
    A = poisson2d(10, stencil=9, seed=1)
    s = SpTRSVSolver(A, px=1, py=1, pz=2, max_supernode=4)
    b = np.random.default_rng(1).standard_normal((A.shape[0], 2))
    for alg in ("new3d", "baseline3d"):
        ref = s.solve(b, algorithm=alg)
        assert_same_outcome(ref, s.solve(b, algorithm=alg, replay=True))
        assert_same_outcome(ref, s.solve(b, algorithm=alg, replay=True))


def test_vector_plan_arena_covers_all_registers():
    s = make_solver(1, 1, 2)
    prog = compile_program(s._new3d_setup("auto"), "new3d", "auto", s.n)
    vp = _VectorPlan(prog)
    assert vp.size > 0
    assert len(vp.store_d) == s.n        # every row of x written exactly once
    assert len(np.unique(vp.store_d)) == s.n


# -- serve integration -------------------------------------------------------

def test_serve_uses_replay_on_cache_hits():
    wl = generate_workload(WorkloadSpec(
        seed=42, rate=1e6, n_requests=32, deadline=10.0,
        mix=(("s2D9pt2048", "tiny", 1.0),)))
    svc = SolveService(ServiceConfig(),
                       BatchPolicy(max_batch=8, max_wait=1e-3,
                                   queue_bound=128),
                       invariants=True)
    res = svc.run(wl)
    assert res.slo.n_completed == 32
    assert res.slo.n_replayed >= 1
    assert res.slo.n_replayed == sum(b.replayed for b in res.batches)
    # replay only ever rides a cache hit
    assert all(b.cache_hit for b in res.batches if b.replayed)
    # the first batch is a cold miss -> simulated
    assert not res.batches[0].replayed
    # answers are bit-identical to cold per-request solves
    cold = SolveService(ServiceConfig())._build_solver("s2D9pt2048", "tiny")
    for r in wl.requests:
        x = cold.solve(r.rhs(cold.n)).x
        assert np.array_equal(res.solutions[r.id], x.ravel())


def test_serve_faulted_batches_stay_on_simulator():
    from repro.comm.faults import FaultPlan

    wl = generate_workload(WorkloadSpec(
        seed=9, rate=1e6, n_requests=12, deadline=10.0,
        mix=(("s2D9pt2048", "tiny", 1.0),)))
    svc = SolveService(ServiceConfig(),
                       BatchPolicy(max_batch=4, max_wait=1e-3),
                       faults=FaultPlan.uniform(seed=5, drop=0.02),
                       resilience=None, keep_solutions=False)
    res = svc.run(wl)
    assert res.slo.n_replayed == 0
    assert not any(b.replayed for b in res.batches)
