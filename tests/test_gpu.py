"""Unit and integration tests for the GPU execution model (Algs. 4-5)."""

import numpy as np
import pytest

from repro.comm import CRUSHER_GPU, PERLMUTTER_CPU, PERLMUTTER_GPU
from repro.core import SpTRSVSolver
from repro.core.plan2d import build_2d_plans
from repro.gpu import run_gpu_2d_solve, solve_new3d_gpu
from repro.grids import BlockCyclicMap, Grid3D
from repro.matrices import make_rhs, poisson2d, random_spd_like
from repro.numfact import solve_residual


def run_gpu_lsolve(lu, px, b, nrhs, machine=PERLMUTTER_GPU, u_solve=False):
    grid = Grid3D(px, 1, 1)
    phase = "U" if u_solve else "L"
    plan = build_2d_plans(lu, grid, 0, phase, list(range(lu.nsup)))
    part = lu.partition
    cmap = BlockCyclicMap(grid)
    rhs = {r: {} for r in range(px)}
    for K in range(lu.nsup):
        r = cmap.diag_owner_rank(K, 0)
        rhs[r][K] = np.array(b[part.first(K):part.last(K)])
    res = run_gpu_2d_solve(plan, machine, rhs, nrhs, u_solve=u_solve)
    x = np.empty((part.n, nrhs))
    for K in range(lu.nsup):
        r = cmap.diag_owner_rank(K, 0)
        x[part.first(K):part.last(K)] = res.values[r][K]
    return x, res


@pytest.mark.parametrize("px", [1, 2, 4])
def test_gpu_lsolve_matches_reference(poisson_problem, px):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 2)
    x, _ = run_gpu_lsolve(lu, px, b, 2)
    assert np.allclose(x, lu.solve_L(b), atol=1e-10)


@pytest.mark.parametrize("px", [1, 2, 4])
def test_gpu_usolve_matches_reference(poisson_problem, px):
    lu = poisson_problem["lu"]
    y = make_rhs(lu.n, 2, "random", seed=4)
    x, _ = run_gpu_lsolve(lu, px, y, 2, u_solve=True)
    assert np.allclose(x, lu.solve_U(y), atol=1e-10)


def test_gpu_unstructured_matrix(random_problem):
    lu = random_problem["lu"]
    b = make_rhs(lu.n, 1, "random", seed=2)
    x, _ = run_gpu_lsolve(lu, 2, b, 1)
    assert np.allclose(x, lu.solve_L(b), atol=1e-10)


def test_gpu_requires_py1(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(2, 2, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    with pytest.raises(ValueError, match="Py == 1"):
        run_gpu_2d_solve(plan, PERLMUTTER_GPU, {}, 1)


def test_gpu_requires_gpu_model(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(1, 1, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    with pytest.raises(ValueError, match="no GPU model"):
        run_gpu_2d_solve(plan, PERLMUTTER_CPU, {}, 1)


def test_single_gpu_no_messages(poisson_problem):
    """Px = Py = 1: Algorithm 4, no intra-grid communication at all."""
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    _, res = run_gpu_lsolve(lu, 1, b, 1)
    assert res.nvshmem_msgs == 0


def test_multi_gpu_sends_messages(poisson_problem):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    _, res = run_gpu_lsolve(lu, 4, b, 1)
    assert res.nvshmem_msgs > 0
    assert res.nvshmem_bytes > 0


def test_occupied_time_below_finish_time(poisson_problem):
    """Occupied wall time (union of compute intervals) fits in the elapsed
    window; SM-seconds (busy) may exceed it thanks to concurrency."""
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    _, res = run_gpu_lsolve(lu, 2, b, 1)
    for r in res.busy:
        assert res.occupied[r] <= res.finish[r] + 1e-12
        assert res.occupied[r] <= res.busy[r] + 1e-12


def test_start_times_offset_finish(poisson_problem):
    lu = poisson_problem["lu"]
    part = lu.partition
    grid = Grid3D(1, 1, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    b = make_rhs(lu.n, 1)
    rhs = {0: {K: np.array(b[part.first(K):part.last(K)])
               for K in range(lu.nsup)}}
    r0 = run_gpu_2d_solve(plan, PERLMUTTER_GPU, rhs, 1)
    r1 = run_gpu_2d_solve(plan, PERLMUTTER_GPU, rhs, 1,
                          start_times={0: 5.0})
    assert r1.finish[0] == pytest.approx(r0.finish[0] + 5.0, rel=1e-9)


def test_sm_limit_serializes():
    """With one SM, the solve time approaches the serial sum of task costs."""
    A = poisson2d(10, stencil=9, seed=3)
    from tests.conftest import build_problem

    prob = build_problem(A, pz=1, max_supernode=4)
    lu = prob["lu"]
    b = make_rhs(lu.n, 1)
    many = PERLMUTTER_GPU
    one = PERLMUTTER_GPU.with_(gpu=PERLMUTTER_GPU.gpu.__class__(
        **{**PERLMUTTER_GPU.gpu.__dict__, "num_sms": 1}))
    _, res_many = run_gpu_lsolve(lu, 1, b, 1, machine=many)
    _, res_one = run_gpu_lsolve(lu, 1, b, 1, machine=one)
    assert res_one.finish[0] >= res_many.finish[0]
    assert res_one.finish[0] == pytest.approx(res_one.busy[0], rel=1e-9)


def test_usolve_penalty_slower(poisson_problem):
    """The modeled U-solve coalescing penalty makes U slower than L."""
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    _, rl = run_gpu_lsolve(lu, 1, b, 1)
    _, ru = run_gpu_lsolve(lu, 1, b, 1, u_solve=True)
    assert ru.busy[0] > rl.busy[0]


# ---- full 3D GPU solver ------------------------------------------------------

@pytest.mark.parametrize("px,pz", [(1, 1), (1, 4), (2, 2), (4, 4)])
def test_gpu3d_solution_exact(px, pz):
    A = poisson2d(14, stencil=9, seed=5)
    s = SpTRSVSolver(A, px, 1, pz, max_supernode=8, machine=PERLMUTTER_GPU)
    b = make_rhs(A.shape[0], 2)
    out = s.solve(b, device="gpu")
    assert solve_residual(A, out.x, b) < 1e-10


def test_gpu3d_matches_cpu_solution():
    A = random_spd_like(150, avg_degree=5, seed=6)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU)
    b = make_rhs(A.shape[0], 3, "random", seed=1)
    x_gpu = s.solve(b, device="gpu").x
    x_cpu = s.solve(b, device="cpu").x
    assert np.allclose(x_gpu, x_cpu, atol=1e-10)


def test_gpu3d_report_phases():
    A = poisson2d(12, stencil=9, seed=7)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU)
    out = s.solve(make_rhs(A.shape[0], 1), device="gpu")
    rep = out.report
    assert rep.total_time > 0
    assert rep.per_rank(phase="l").sum() > 0
    assert rep.per_rank(phase="u").sum() > 0
    assert rep.per_rank(category="z").sum() > 0  # pz=2: allreduce happened
    assert rep.algorithm.endswith("-gpu")


def test_gpu_crusher_single_gpu_grids_work():
    A = poisson2d(12, stencil=9, seed=8)
    s = SpTRSVSolver(A, 1, 1, 4, max_supernode=8, machine=CRUSHER_GPU)
    b = make_rhs(A.shape[0], 1)
    out = s.solve(b, device="gpu")
    assert solve_residual(A, out.x, b) < 1e-10


def test_gpu_crusher_multi_gpu_grid_rejected():
    A = poisson2d(12, stencil=9, seed=8)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8, machine=CRUSHER_GPU)
    with pytest.raises(ValueError, match="sub-communicators"):
        s.solve(make_rhs(A.shape[0], 1), device="gpu")


def test_gpu_rejects_baseline_and_bad_device():
    A = poisson2d(10, seed=9)
    s = SpTRSVSolver(A, 1, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU)
    b = make_rhs(A.shape[0], 1)
    with pytest.raises(ValueError):
        s.solve(b, algorithm="baseline3d", device="gpu")
    with pytest.raises(ValueError):
        s.solve(b, device="tpu")


def test_gpu_multirhs_amortizes_overhead():
    """50 RHS must cost far less than 50x the 1-RHS time (paper's GEMM win)."""
    A = poisson2d(16, stencil=9, seed=10)
    s = SpTRSVSolver(A, 1, 1, 1, max_supernode=8, machine=PERLMUTTER_GPU)
    t1 = s.solve(make_rhs(A.shape[0], 1), device="gpu").report.total_time
    t50 = s.solve(make_rhs(A.shape[0], 50), device="gpu").report.total_time
    assert t50 < 10 * t1


def test_single_kernel_mode_correct_and_slower(poisson_problem):
    """two_kernel=False (the pre-WAIT/SOLVE NVSHMEM schedule) produces the
    same numerics but never runs faster; U direction works too."""
    lu = poisson_problem["lu"]
    part = lu.partition
    for u_solve in (False, True):
        b = make_rhs(lu.n, 2, "random", seed=12)
        grid = Grid3D(2, 1, 1)
        phase = "U" if u_solve else "L"
        plan = build_2d_plans(lu, grid, 0, phase, list(range(lu.nsup)))
        cmap = BlockCyclicMap(grid)
        rhs = {r: {} for r in range(2)}
        for K in range(lu.nsup):
            rhs[cmap.diag_owner_rank(K, 0)][K] = np.array(
                b[part.first(K):part.last(K)])
        two = run_gpu_2d_solve(plan, PERLMUTTER_GPU, rhs, 2, u_solve=u_solve)
        one = run_gpu_2d_solve(plan, PERLMUTTER_GPU, rhs, 2, u_solve=u_solve,
                               two_kernel=False)
        for r in two.values:
            for K in two.values[r]:
                assert np.allclose(two.values[r][K], one.values[r][K],
                                   atol=1e-12)
        assert max(one.finish.values()) >= max(two.finish.values()) * 0.999
