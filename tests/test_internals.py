"""Coverage for internal helpers not exercised by the main suites."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator
from repro.comm.simulator import _copy_payload, _payload_nbytes
from repro.core import SpTRSVSolver
from repro.core.sptrsv3d_baseline import _active_steps
from repro.core.sparse_allreduce import ancestor_supernodes
from repro.matrices import make_rhs, poisson2d
from repro.util import as_2d_rhs, check_permutation, ilog2, is_power_of_two


# ---- util --------------------------------------------------------------------

def test_is_power_of_two():
    assert all(is_power_of_two(x) for x in (1, 2, 4, 64, 1024))
    assert not any(is_power_of_two(x) for x in (0, -2, 3, 6, 12))


def test_ilog2():
    assert ilog2(1) == 0 and ilog2(64) == 6
    with pytest.raises(ValueError):
        ilog2(6)


def test_as_2d_rhs():
    b, was1d = as_2d_rhs(np.ones(5))
    assert b.shape == (5, 1) and was1d
    b, was1d = as_2d_rhs(np.ones((5, 2)))
    assert b.shape == (5, 2) and not was1d
    with pytest.raises(ValueError):
        as_2d_rhs(np.ones((2, 2, 2)))


def test_check_permutation_rejects():
    with pytest.raises(ValueError):
        check_permutation(np.array([0, 0, 2]), 3)
    with pytest.raises(ValueError):
        check_permutation(np.array([0, 1]), 3)


# ---- simulator payload helpers -------------------------------------------------

def test_payload_nbytes():
    assert _payload_nbytes(np.zeros(10)) == 80
    assert _payload_nbytes((np.zeros(2), np.zeros(3))) == 40 + 16
    assert _payload_nbytes("control") == 32


def test_copy_payload_deep_for_arrays():
    a = np.ones(3)
    nested = [a, (a, "x")]
    c = _copy_payload(nested)
    a[:] = -1
    assert (c[0] == 1).all() and (c[1][0] == 1).all() and c[1][1] == "x"


def test_recv_callable_tag_filter():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, "skip", tag=("other", 1))
            yield ctx.send(1, "take", tag=("mine", 2))
        else:
            _, tag, v = yield ctx.recv(
                src=0, tag=lambda t: t[0] == "mine")
            assert v == "take"
            _, _, v2 = yield ctx.recv(src=0)
            assert v2 == "skip"

    Simulator(2, CORI_HASWELL).run(fn)


# ---- baseline helpers ----------------------------------------------------------

def test_active_steps():
    # trailing zeros, capped at depth.
    assert _active_steps(0, 3) == 3   # grid 0 active at every level
    assert _active_steps(1, 3) == 0
    assert _active_steps(2, 3) == 1
    assert _active_steps(4, 3) == 2
    assert _active_steps(6, 3) == 1
    assert _active_steps(0, 0) == 0


def test_ancestor_supernodes_monotone():
    """Later allreduce steps exchange (weakly) fewer supernodes."""
    solver = SpTRSVSolver(poisson2d(12, stencil=9, seed=1), 1, 1, 8,
                          max_supernode=8)
    for z in range(8):
        steps = ancestor_supernodes(solver.layout, solver.lu.partition, z)
        sizes = [len(s) for s in steps]
        assert sizes == sorted(sizes, reverse=True)
        # Step l exchanges exactly the supernodes of path[l+1:].
        for l, sns in enumerate(steps):
            path = solver.layout.path(z)[l + 1:]
            total = sum(
                solver.lu.partition.sn_range(nd.first, nd.last)[1]
                - solver.lu.partition.sn_range(nd.first, nd.last)[0]
                for nd in path)
            assert len(sns) == total


# ---- report internals -----------------------------------------------------------

def test_phase_time_and_categories():
    solver = SpTRSVSolver(poisson2d(10, stencil=9, seed=2), 2, 1, 2,
                          max_supernode=8)
    out = solver.solve(make_rhs(100, 1))
    rep = out.report
    assert rep.phase_time("l") > 0
    assert rep.phase_time("u") > 0
    cats = rep.sim.categories()
    assert ("l", "fp") in cats and ("u", "fp") in cats
    # Phase times sum to the overall mean.
    total = sum(rep.phase_time(p) for p in ("l", "z", "u"))
    assert total == pytest.approx(float(rep.per_rank().mean()), rel=1e-9)


def test_plan_total_messages_sent_consistency():
    from repro.core.plan2d import build_2d_plans
    from repro.grids import Grid3D

    solver = SpTRSVSolver(poisson2d(10, stencil=9, seed=3), 1, 1, 1,
                          max_supernode=8)
    plan = build_2d_plans(solver.lu, Grid3D(3, 2, 1), 0, "L",
                          list(range(solver.lu.nsup)))
    sends = sum(p.total_messages_sent() for p in plan.ranks.values())
    recvs = sum(p.nrecv for p in plan.ranks.values())
    assert sends == recvs


# ---- rhs kinds round trip --------------------------------------------------------

def test_manufactured_rhs_deterministic():
    a = make_rhs(20, 3)
    b = make_rhs(20, 3)
    assert np.array_equal(a, b)
    assert (a > 0).all()  # sin(...) + 1 stays positive


def test_solver_exposes_pipeline_attrs():
    A = poisson2d(8, stencil=9, seed=4)
    s = SpTRSVSolver(A, 1, 1, 2, max_supernode=8)
    assert s.n == 64
    assert s.sym.partition.n == 64
    assert s.layout.pz == 2
    assert len(s.perm) == 64
    assert (s.perm[s.iperm] == np.arange(64)).all()
