"""Unit tests for the machine/cost models."""

import pytest

from repro.comm import (
    CORI_HASWELL,
    CRUSHER_CPU,
    CRUSHER_GPU,
    CRUSHER_GPU_FUTURE,
    MACHINES,
    PERLMUTTER_CPU,
    PERLMUTTER_GPU,
    gemm_bytes,
    gemm_flops,
)


def test_machines_registry():
    assert set(MACHINES) == {
        "cori-haswell", "perlmutter-cpu", "perlmutter-gpu",
        "crusher-cpu", "crusher-gpu", "crusher-gpu-future",
    }
    for name, m in MACHINES.items():
        assert m.name == name
        assert m.cpu.flop_rate > 0 and m.cpu.mem_bw > 0
        assert m.net.alpha_inter >= m.net.alpha_intra
        assert m.net.beta_inter >= m.net.beta_intra


def test_gemm_counts():
    assert gemm_flops(4, 3, 5) == 2 * 4 * 3 * 5
    assert gemm_bytes(4, 3, 5) == 8 * (4 * 5 + 5 * 3 + 2 * 4 * 3)


def test_cpu_op_time_roofline():
    cpu = CORI_HASWELL.cpu
    # Tiny op: overhead dominates.
    assert cpu.op_time(1, 1) == pytest.approx(cpu.op_overhead, rel=1e-2)
    # Memory-bound op: bytes term dominates flops term.
    t = cpu.op_time(1e6, 1e9)
    assert t == pytest.approx(1e9 / cpu.mem_bw + cpu.op_overhead)
    # Compute-bound op.
    t = cpu.op_time(1e12, 8.0)
    assert t == pytest.approx(1e12 / cpu.flop_rate + cpu.op_overhead)


def test_network_latency_tiers():
    net = PERLMUTTER_GPU.net
    small = 64
    assert net.latency(small, True) < net.latency(small, False)
    big = 10_000_000
    assert net.latency(big, False) > net.latency(small, False)


def test_same_node_boundaries():
    m = CORI_HASWELL  # 32 ranks per node
    assert m.same_node(0, 31)
    assert not m.same_node(31, 32)
    assert m.same_node(64, 95)


def test_gpu_msg_latency_tiers():
    """The paper's 300 vs 12.5 GB/s NVLink/Slingshot split (§4.2.2)."""
    gpu = PERLMUTTER_GPU.gpu
    big = 1_000_000
    intra = gpu.msg_latency(big, True)
    inter = gpu.msg_latency(big, False)
    assert inter > 10 * intra  # ~24x bandwidth gap dominates at 1 MB


def test_gpu_u_penalty():
    gpu = CRUSHER_GPU.gpu
    t_l = gpu.op_time(1e6, 1e6, u_solve=False)
    t_u = gpu.op_time(1e6, 1e6, u_solve=True)
    assert t_u == pytest.approx(t_l * gpu.u_penalty)


def test_with_returns_modified_copy():
    m2 = CORI_HASWELL.with_(ranks_per_node=1)
    assert m2.ranks_per_node == 1
    assert CORI_HASWELL.ranks_per_node == 32
    assert m2.net is CORI_HASWELL.net


def test_crusher_future_differs_only_in_subcomms():
    assert not CRUSHER_GPU.gpu.one_sided_subcomms
    assert CRUSHER_GPU_FUTURE.gpu.one_sided_subcomms
    assert (CRUSHER_GPU_FUTURE.gpu.block_mem_bw
            == CRUSHER_GPU.gpu.block_mem_bw)


def test_cpu_reference_machines_share_network():
    """The paper's CPU reference runs use the same interconnect as the GPU
    runs on each system."""
    assert PERLMUTTER_GPU.net == PERLMUTTER_CPU.net
    assert CRUSHER_GPU.net == CRUSHER_CPU.net
