"""Unit tests for symbolic factorization and supernode partitions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson2d, random_spd_like
from repro.symbolic import SupernodePartition, fixed_partition, symbolic_factor


def dense_fill_pattern(A):
    """Reference scalar fill pattern via dense symmetric elimination."""
    M = (A.toarray() != 0)
    n = M.shape[0]
    for k in range(n):
        nz = np.nonzero(M[k + 1:, k])[0] + k + 1
        M[np.ix_(nz, nz)] = True
    return M


# ---- SupernodePartition -----------------------------------------------------

def test_partition_basic():
    p = SupernodePartition(np.array([0, 3, 5, 9]))
    assert p.n == 9 and p.nsup == 3
    assert p.size(0) == 3 and p.size(2) == 4
    assert list(p.cols(1)) == [3, 4]
    assert (p.col2sn() == [0, 0, 0, 1, 1, 2, 2, 2, 2]).all()


def test_partition_validation():
    with pytest.raises(ValueError):
        SupernodePartition(np.array([1, 3]))
    with pytest.raises(ValueError):
        SupernodePartition(np.array([0, 3, 3]))
    with pytest.raises(ValueError):
        SupernodePartition(np.array([0]))


def test_partition_sn_range():
    p = SupernodePartition(np.array([0, 3, 5, 9]))
    assert p.sn_range(0, 5) == (0, 2)
    assert p.sn_range(5, 9) == (2, 3)
    with pytest.raises(ValueError):
        p.sn_range(1, 5)


def test_fixed_partition_respects_boundaries():
    p = fixed_partition(20, 4, np.array([0, 7, 20]))
    starts = p.sn_start.tolist()
    assert 7 in starts
    assert max(np.diff(p.sn_start)) <= 4
    assert p.n == 20


def test_fixed_partition_no_boundaries():
    p = fixed_partition(10, 3)
    assert p.sn_start.tolist() == [0, 3, 6, 9, 10]
    with pytest.raises(ValueError):
        fixed_partition(10, 0)


# ---- symbolic factorization -------------------------------------------------

@pytest.mark.parametrize("gen", [
    lambda: poisson2d(8, stencil=5),
    lambda: poisson2d(6, stencil=9),
    lambda: random_spd_like(70, avg_degree=4, seed=3),
])
def test_fill_count_matches_dense_reference(gen):
    """nnz_L from the column-merge symbolic equals the dense elimination fill
    (modulo the dense diagonal blocks of the supernodal format)."""
    A = gen()
    # Supernodes of size 1 make the supernodal nnz exactly the scalar nnz(L).
    sym = symbolic_factor(A, max_supernode=1)
    M = dense_fill_pattern(A)
    nnz_L_ref = int(np.tril(M).sum())
    assert sym.nnz_L == nnz_L_ref
    assert sym.nnz_U == sym.nnz_L
    assert sym.nnz_LU == 2 * nnz_L_ref - A.shape[0]


def test_below_rows_match_dense_reference():
    A = poisson2d(7, stencil=5)
    sym = symbolic_factor(A, max_supernode=1)
    M = dense_fill_pattern(A)
    for s in range(sym.partition.nsup):
        j = sym.partition.first(s)
        ref = np.nonzero(M[j + 1:, j])[0] + j + 1
        assert (sym.below_rows[s] == ref).all()


def test_supernodes_share_patterns():
    """Within a detected supernode, every column's below-supernode pattern
    equals the supernode's below_rows."""
    A = poisson2d(8, stencil=9)
    sym = symbolic_factor(A, max_supernode=16)
    M = dense_fill_pattern(A)
    part = sym.partition
    for s in range(part.nsup):
        c1 = part.last(s)
        for c in part.cols(s):
            ref = np.nonzero(M[c1:, c])[0] + c1
            assert (sym.below_rows[s] == ref).all()


def test_supernode_max_size_respected():
    A = poisson2d(10, stencil=9)
    for mx in (1, 2, 4, 8):
        sym = symbolic_factor(A, max_supernode=mx)
        assert max(np.diff(sym.partition.sn_start)) <= mx


def test_supernode_boundaries_respected():
    A = poisson2d(10, stencil=5)
    b = np.array([0, 13, 50, 100])
    sym = symbolic_factor(A, max_supernode=64, boundaries=b)
    starts = set(sym.partition.sn_start.tolist())
    assert {13, 50}.issubset(starts)


def test_detect_finds_nontrivial_supernodes():
    """A dense-ish matrix must yield supernodes wider than one column."""
    A = sp.csr_matrix(np.ones((12, 12)) * -1 + np.diag(np.full(12, 30.0)))
    sym = symbolic_factor(A, max_supernode=12)
    assert sym.partition.nsup < 12


def test_fixed_mode_pattern_is_superset():
    A = random_spd_like(60, avg_degree=5, seed=9)
    det = symbolic_factor(A, max_supernode=4, mode="detect")
    fix = symbolic_factor(A, max_supernode=4, mode="fixed")
    assert fix.partition.nsup >= 1
    # Fixed chunks cover all columns.
    assert fix.partition.n == 60
    # Fixed-mode nnz estimate is at least the exact scalar fill of 'detect'
    # at the same chunking (it stores whole-chunk-width rows).
    assert fix.nnz_L >= det.nnz_L * 0.5  # sanity: same order of magnitude


def test_symbolic_invalid_mode():
    with pytest.raises(ValueError):
        symbolic_factor(poisson2d(4), mode="bogus")


def test_density_column():
    A = poisson2d(6)
    sym = symbolic_factor(A)
    assert 0 < sym.density() <= 1.0
