"""Tests for the adversarial scenario suite (repro.scenarios)."""

import json

import pytest

from repro.scenarios import (
    CATALOG,
    DegradationContract,
    FaultPhaseSpec,
    PhaseSpec,
    Scenario,
    ScenarioReport,
    build_fault_schedule,
    build_workload,
    get_scenario,
    run_all,
    run_scenario,
    scenario_names,
)
from repro.serve import dedup_key

CHEAP = [n for n, sc in CATALOG.items() if "cheap" in sc.tags]


# -- spec validation ---------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        PhaseSpec(label="x", n_requests=0, rate=1.0)
    with pytest.raises(ValueError):
        PhaseSpec(label="x", n_requests=1, rate=-1.0)
    with pytest.raises(ValueError):
        PhaseSpec(label="x", n_requests=1, rate=1.0, dup_factor=0)
    with pytest.raises(ValueError):
        PhaseSpec(label="x", n_requests=1, rate=1.0, poison_rhs_fraction=2.0)
    with pytest.raises(ValueError):
        FaultPhaseSpec(t0=1.0, t1=1.0, kind="drop", rate=0.1)
    with pytest.raises(ValueError):
        Scenario(name="x", summary="s", seed=1, phases=())
    with pytest.raises(ValueError):
        Scenario(name="x", summary="s", seed=1,
                 phases=(PhaseSpec(label="p", n_requests=1, rate=1.0),),
                 verify_fraction=2.0)


# -- the catalog -------------------------------------------------------------

def test_catalog_has_at_least_eight_scenarios():
    assert len(CATALOG) >= 8
    assert len(set(CATALOG)) == len(CATALOG)
    for name, sc in CATALOG.items():
        assert sc.name == name
        assert sc.summary and sc.phases
    assert len(CHEAP) >= 3          # the CI smoke job needs cheap episodes
    assert scenario_names() == list(CATALOG)
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_catalog_covers_the_attack_taxonomy():
    tags = {t for sc in CATALOG.values() for t in sc.tags}
    assert {"overload", "poison", "dedup"} <= tags
    assert any(sc.fault_phases for sc in CATALOG.values())   # byzantine
    assert any(sc.resilience for sc in CATALOG.values())
    assert any(sc.cache_entries is not None for sc in CATALOG.values())


# -- workload synthesis ------------------------------------------------------

def test_build_workload_deterministic_and_seed_sensitive():
    sc = get_scenario("flash-crowd")
    a, b = build_workload(sc), build_workload(sc)
    assert a.requests == b.requests and a.meta == b.meta
    from dataclasses import replace
    c = build_workload(replace(sc, seed=sc.seed + 1))
    assert c.requests != a.requests


def test_build_workload_arrivals_sorted_with_unique_ids():
    for name in CATALOG:
        wl = build_workload(get_scenario(name))
        arr = [r.arrival for r in wl.requests]
        assert arr == sorted(arr), name
        ids = [r.id for r in wl.requests]
        assert len(set(ids)) == len(ids), name


def test_duplicate_storm_fans_out_dedup_keys():
    wl = build_workload(get_scenario("duplicate-storm"))
    sc = get_scenario("duplicate-storm")
    dup = sc.phases[0].dup_factor
    assert len(wl) == sc.phases[0].n_requests * dup
    by_key = {}
    for r in wl.requests:
        by_key.setdefault(dedup_key(r), []).append(r)
    assert all(len(v) == dup for v in by_key.values())


def test_disturbance_window_recorded_in_meta():
    wl = build_workload(get_scenario("flash-crowd"))
    t0, t1 = wl.meta["disturbance"]
    assert 0.0 <= t0 < t1
    # The flood phase's arrivals fall inside the recorded window.
    byz = build_workload(get_scenario("byzantine-fabric"))
    ft0, ft1 = byz.meta["disturbance"]
    sc = get_scenario("byzantine-fabric")
    assert ft0 <= min(fp.t0 for fp in sc.fault_phases)
    assert ft1 >= max(fp.t1 for fp in sc.fault_phases)


def test_poison_phase_injects_poison_rhs_kinds():
    wl = build_workload(get_scenario("poison-rhs"))
    kinds = {r.rhs_kind for r in wl.requests}
    assert "random" in kinds
    assert any(k.startswith("poison-") for k in kinds)


# -- fault schedules ---------------------------------------------------------

def test_fault_schedule_escalates_and_derives_seed():
    sc = get_scenario("byzantine-fabric")
    sched = build_fault_schedule(sc)
    assert sched is not None and len(sched.phases) == len(sc.fault_phases)
    for (t0, t1, plan), fp in zip(sched.phases, sc.fault_phases):
        assert (t0, t1) == (fp.t0, fp.t1) and plan is not None
        assert sched.plan_at((t0 + t1) / 2) is plan
    # Distinct phases get distinct derived plans (no shared RNG stream).
    plans = [p for (_, _, p) in sched.phases]
    assert plans[0].seed != plans[1].seed
    assert build_fault_schedule(get_scenario("flash-crowd")) is None


# -- running: determinism and contracts --------------------------------------

def test_scenario_report_bit_identical_across_replays():
    name = CHEAP[0]
    r1 = run_scenario(get_scenario(name))
    r2 = run_scenario(get_scenario(name))
    assert r1.to_json() == r2.to_json()


def test_full_catalog_sweep_passes_contracts():
    """Every catalog scenario meets its degradation contract — hard and
    soft tiers — at its declared seed."""
    reports = run_all()
    assert list(reports) == scenario_names()
    for name, rep in reports.items():
        failed = [c for c in rep.checks if not c["passed"]]
        assert rep.passed, f"{name}: {failed or rep.error}"
        assert rep.version == 1 and rep.n_requests > 0


def test_seed_override_keeps_hard_tier():
    """The hard tier holds at a non-declared seed (the fuzzer's replay
    knob); soft SLO bounds are only calibrated to the declared seed."""
    rep = run_scenario(get_scenario("poison-rhs"), seed=123456)
    assert rep.seed == 123456
    assert rep.hard_ok, [c for c in rep.checks
                         if c["hard"] and not c["passed"]]


def test_poison_scenarios_shed_typed_and_uncorrupted():
    for name in ("poison-rhs", "poison-matrix"):
        rep = run_scenario(get_scenario(name))
        assert rep.slo["shed_by_reason"].get("poison-input", 0) > 0, name
        assert rep.slo["n_integrity_failures"] == 0
        assert rep.slo["n_verified"] > 0


def test_duplicate_storm_coalesces():
    rep = run_scenario(get_scenario("duplicate-storm"))
    assert rep.slo["deduped"] >= 30
    assert rep.slo["n_completed"] == rep.n_requests    # nobody shed


def test_flash_crowd_recovers_within_bound():
    rep = run_scenario(get_scenario("flash-crowd"))
    w = rep.windows
    assert w["disturbance"] is not None
    assert w["baseline_n"] > 0 and w["recovery_n"] > 0
    names = {c["check"] for c in rep.checks}
    assert {"typed-sheds", "integrity", "no-escaped-exception",
            "recovery-p95", "drain-time"} <= names


def test_report_json_contract():
    rep = run_scenario(get_scenario(CHEAP[0]))
    doc = json.loads(rep.to_json())
    for key in ("scenario", "seed", "version", "n_requests", "slo",
                "windows", "checks", "hard_ok", "passed", "error"):
        assert key in doc
    assert doc["passed"] and doc["hard_ok"] and doc["error"] == ""
    # sort_keys makes the artifact diff-stable.
    assert list(doc) == sorted(doc)


def test_hard_ok_vs_passed_semantics():
    rep = ScenarioReport(scenario="x", seed=1)
    rep.checks.append({"check": "h", "hard": True, "passed": True,
                       "detail": ""})
    rep.checks.append({"check": "s", "hard": False, "passed": False,
                       "detail": ""})
    assert rep.hard_ok and not rep.passed
    assert "HARD-OK" in rep.summary_line()
    rep.error = "boom"
    assert not rep.hard_ok and "ERROR" in rep.summary_line()


def test_escaped_exception_is_hard_failure():
    """A scenario whose service run raises is captured as a hard breach,
    never propagated."""
    sc = Scenario(
        name="broken", summary="provider blows up", seed=1,
        phases=(PhaseSpec(label="p", n_requests=2, rate=1000.0,
                          mix=(("no-such-matrix", "tiny", 1.0),),
                          deadline=1.0),),
        contract=DegradationContract())
    rep = run_scenario(sc)
    assert rep.error and not rep.hard_ok
    [c] = [c for c in rep.checks if c["check"] == "no-escaped-exception"]
    assert c["hard"] and not c["passed"]


def test_chaos_bridge_scenario_sweep():
    from repro.comm.chaos import scenario_sweep

    reports = scenario_sweep(names=[CHEAP[0]])
    assert list(reports) == [CHEAP[0]]
    assert reports[CHEAP[0]].passed


# -- fleet scenarios ---------------------------------------------------------

def test_fleet_spec_validation():
    ph = (PhaseSpec(label="p", n_requests=1, rate=1.0),)
    with pytest.raises(ValueError):
        Scenario(name="x", summary="s", seed=1, phases=ph, workers=0)
    with pytest.raises(ValueError):
        Scenario(name="x", summary="s", seed=1, phases=ph, workers=2,
                 worker_crash=((2, 0.001, 0.002),))
    with pytest.raises(ValueError):
        Scenario(name="x", summary="s", seed=1, phases=ph, workers=2,
                 worker_crash=((0, 0.002, 0.001),))


def test_worker_crash_storm_runs_on_a_fleet():
    from repro.fleet import FleetService
    from repro.scenarios.runner import build_service

    sc = get_scenario("worker-crash-storm")
    assert sc.workers == 3 and len(sc.worker_crash) == 2
    assert "fleet" in sc.tags
    svc = build_service(sc)
    assert isinstance(svc, FleetService)
    res = svc.run(build_workload(sc))
    assert res.counters["n_crashes"] == 2
    assert res.counters["n_recoveries"] == 2
    assert res.counters["n_rerouted"] > 0


def test_worker_crash_storm_contract_and_replay():
    sc = get_scenario("worker-crash-storm")
    r1, r2 = run_scenario(sc), run_scenario(sc)
    assert r1.passed, r1.summary_line()
    assert r1.to_json() == r2.to_json()
    # The crash windows widen the disturbance for recovery accounting.
    lo, hi = json.loads(r1.to_json())["windows"]["disturbance"]
    assert lo <= 0.006 and hi >= 0.013
    # Hard tier holds on a fresh seed too.
    assert run_scenario(sc, seed=4242).hard_ok


def test_worker_crash_disturbance_fold_in_meta():
    sc = get_scenario("worker-crash-storm")
    wl = build_workload(sc)
    lo, hi = wl.meta["disturbance"]
    assert lo <= min(tc for _w, tc, _tr in sc.worker_crash)
    assert hi >= max(tr for _w, _tc, tr in sc.worker_crash)
