"""Unit tests for the block-sparse supernodal LU factorization."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import (
    chemistry_like,
    fusion_block,
    kkt3d,
    make_rhs,
    poisson2d,
    poisson3d,
    random_spd_like,
)
from repro.numfact import (
    dense_lu_nopivot,
    factorization_residual,
    lu_factorize,
    solve_residual,
)
from repro.symbolic import fixed_partition, symbolic_factor


def test_dense_lu_nopivot_reconstructs():
    rng = np.random.default_rng(0)
    D = rng.standard_normal((12, 12)) + 20 * np.eye(12)
    L, U = dense_lu_nopivot(D)
    assert np.allclose(L @ U, D)
    assert np.allclose(np.diag(L), 1.0)
    assert np.allclose(np.triu(L, 1), 0.0)
    assert np.allclose(np.tril(U, -1), 0.0)


def test_dense_lu_nopivot_zero_pivot_raises():
    with pytest.raises(np.linalg.LinAlgError):
        dense_lu_nopivot(np.array([[0.0, 1.0], [1.0, 0.0]]))


def test_dense_lu_empty_and_one():
    L, U = dense_lu_nopivot(np.zeros((0, 0)))
    assert L.shape == (0, 0)
    L, U = dense_lu_nopivot(np.array([[3.0]]))
    assert U[0, 0] == 3.0


MATS = [
    lambda: poisson2d(8, stencil=5),
    lambda: poisson2d(7, stencil=9, seed=2),
    lambda: poisson3d(4, stencil=7, seed=1),
    lambda: kkt3d(3),
    lambda: chemistry_like(80, seed=4),
    lambda: fusion_block(8, block=4),
    lambda: random_spd_like(90, avg_degree=5, seed=8),
]


@pytest.mark.parametrize("gen", MATS)
@pytest.mark.parametrize("mx", [1, 4, 16])
def test_lu_reconstructs_A(gen, mx):
    A = gen()
    sym = symbolic_factor(A, max_supernode=mx)
    lu = lu_factorize(A, sym.partition)
    assert factorization_residual(A, lu) < 1e-12


@pytest.mark.parametrize("gen", MATS)
def test_lu_solve_matches_scipy(gen):
    A = gen()
    sym = symbolic_factor(A, max_supernode=8)
    lu = lu_factorize(A, sym.partition)
    b = make_rhs(A.shape[0], 3, kind="manufactured")
    x = lu.solve(b)
    assert solve_residual(A, x, b) < 1e-10
    x_ref = sp.linalg.spsolve(sp.csc_matrix(A), b)
    assert np.allclose(x, x_ref, atol=1e-8)


def test_lu_solve_1d_rhs_roundtrip():
    A = poisson2d(6)
    sym = symbolic_factor(A)
    lu = lu_factorize(A, sym.partition)
    b = np.ones(36)
    x = lu.solve(b)
    assert x.shape == (36,)
    assert solve_residual(A, x, b) < 1e-10


def test_lu_with_fixed_partition():
    A = random_spd_like(60, seed=1)
    part = fixed_partition(60, 7)
    lu = lu_factorize(A, part)
    assert factorization_residual(A, lu) < 1e-12


def test_lu_triangular_structure():
    A = poisson2d(6, stencil=9)
    sym = symbolic_factor(A, max_supernode=4)
    lu = lu_factorize(A, sym.partition)
    for (I, K) in lu.Lblocks:
        assert I > K
    for (K, J) in lu.Ublocks:
        assert J > K
    for s in range(lu.nsup):
        assert np.allclose(np.diag(lu.diagL[s]), 1.0)
        assert np.allclose(lu.diagL[s] @ lu.diagLinv[s],
                           np.eye(lu.partition.size(s)), atol=1e-10)
        assert np.allclose(lu.diagU[s] @ lu.diagUinv[s],
                           np.eye(lu.partition.size(s)), atol=1e-10)


def test_lu_adjacency_lists_consistent():
    A = poisson2d(7, stencil=5)
    sym = symbolic_factor(A, max_supernode=4)
    lu = lu_factorize(A, sym.partition)
    for K in range(lu.nsup):
        assert set(lu.l_blockrows[K]) == {I for (I, K2) in lu.Lblocks if K2 == K}
        assert set(lu.u_blockcols[K]) == {J for (K2, J) in lu.Ublocks if K2 == K}
        assert (np.diff(lu.l_blockrows[K]) > 0).all()


def test_lu_block_pattern_symmetric():
    """Structurally symmetric input keeps the block pattern symmetric."""
    A = poisson2d(6, stencil=5)
    sym = symbolic_factor(A, max_supernode=4)
    lu = lu_factorize(A, sym.partition)
    assert {(i, k) for (i, k) in lu.Lblocks} == \
           {(j, k) for (k, j) in lu.Ublocks}


def test_lu_mismatched_partition_raises():
    A = poisson2d(5)
    with pytest.raises(ValueError):
        lu_factorize(A, fixed_partition(10, 2))


def test_nnz_stored_and_flops_positive():
    A = poisson2d(6)
    sym = symbolic_factor(A, max_supernode=4)
    lu = lu_factorize(A, sym.partition)
    assert lu.nnz_stored() >= A.nnz
    assert lu.solve_flops(1) > 0
    assert lu.solve_flops(4) == 4 * lu.solve_flops(1)


def test_to_csr_triangularity():
    A = poisson2d(6)
    sym = symbolic_factor(A, max_supernode=4)
    lu = lu_factorize(A, sym.partition)
    L, U = lu.to_csr()
    assert (abs(sp.triu(L, 1)) > 1e-300).nnz == 0
    assert (abs(sp.tril(U, -1)) > 1e-300).nnz == 0
