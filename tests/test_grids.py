"""Unit tests for the 3D process grid and block-cyclic map."""

import pytest

from repro.grids import BlockCyclicMap, Grid3D


def test_rank_coord_roundtrip():
    g = Grid3D(3, 2, 4)
    assert g.nranks == 24
    seen = set()
    for z in range(4):
        for i in range(3):
            for j in range(2):
                r = g.rank_of(i, j, z)
                assert g.coords_of(r) == (i, j, z)
                seen.add(r)
    assert seen == set(range(24))


def test_grids_are_contiguous_rank_ranges():
    g = Grid3D(2, 2, 4)
    for z in range(4):
        ranks = g.grid_ranks(z)
        assert ranks == list(range(z * 4, z * 4 + 4))


def test_zpeer_preserves_2d_coords():
    g = Grid3D(2, 3, 2)
    r = g.rank_of(1, 2, 0)
    p = g.zpeer(r, 1)
    assert g.coords_of(p) == (1, 2, 1)


def test_grid_validation():
    with pytest.raises(ValueError):
        Grid3D(0, 1, 1)
    with pytest.raises(ValueError):
        Grid3D(1, 1, 3)  # pz not a power of two
    g = Grid3D(2, 2, 2)
    with pytest.raises(ValueError):
        g.rank_of(2, 0, 0)
    with pytest.raises(ValueError):
        g.coords_of(99)


def test_block_cyclic_owner():
    g = Grid3D(2, 3, 2)
    m = BlockCyclicMap(g)
    assert m.owner_coords(5, 7) == (1, 1)
    assert m.owner_rank(5, 7, 0) == g.rank_of(1, 1, 0)
    assert m.diag_owner_rank(4, 1) == g.rank_of(0, 1, 1)


def test_block_cyclic_owner_consistent_across_grids():
    """Replicated ancestors must map to the same 2D coords on every grid —
    the property the sparse allreduce relies on."""
    g = Grid3D(3, 2, 4)
    m = BlockCyclicMap(g)
    for K in range(20):
        coords = {g.coords_of(m.diag_owner_rank(K, z))[:2] for z in range(4)}
        assert len(coords) == 1


def test_block_cyclic_diag_owner_cycle():
    """Diagonal blocks cycle over lcm(px, py) coordinate pairs, evenly."""
    from collections import Counter
    from math import lcm

    for px, py in [(4, 4), (2, 3), (3, 1)]:
        g = Grid3D(px, py, 1)
        m = BlockCyclicMap(g)
        period = lcm(px, py)
        nsup = 4 * period
        cnt = Counter(m.owner_coords(I, I) for I in range(nsup))
        assert len(cnt) == period
        assert set(cnt.values()) == {4}
