"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_grid, build_parser, main
from repro.matrices import random_spd_like, save_matrix_market


def test_parse_grid():
    assert _parse_grid("2x2x4") == (2, 2, 4)
    assert _parse_grid("1X1X1") == (1, 1, 1)
    with pytest.raises(SystemExit):
        _parse_grid("2x2")
    with pytest.raises(SystemExit):
        _parse_grid("axbxc")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_solve_suite_matrix(capsys):
    rc = main(["solve", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "2x1x2", "--max-supernode", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "residual" in out and "total (makespan)" in out


def test_solve_gpu(capsys):
    rc = main(["solve", "--matrix", "ldoor", "--scale", "tiny",
               "--grid", "2x1x2", "--machine", "perlmutter-gpu",
               "--device", "gpu", "--max-supernode", "8"])
    assert rc == 0
    assert "new3d-gpu" in capsys.readouterr().out


def test_solve_mtx_file(tmp_path, capsys):
    A = random_spd_like(40, seed=3)
    path = str(tmp_path / "A.mtx")
    save_matrix_market(path, A)
    rc = main(["solve", "--matrix", path, "--grid", "1x1x2",
               "--max-supernode", "4"])
    assert rc == 0


def test_info(capsys):
    rc = main(["info", "--matrix", "nlpkkt80", "--scale", "tiny"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "memory-bound" in out


def test_replay_info(capsys):
    rc = main(["replay", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "1x1x4", "--max-supernode", "8", "--info"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replay program" in out
    assert "kernels" in out
    assert "messages" in out
    assert "est. virtual time" in out
    # --info skips the demonstration solve
    assert "recording solve" not in out


def test_replay_demo_bit_identical(capsys):
    rc = main(["replay", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "1x1x2", "--max-supernode", "8",
               "--algorithm", "baseline3d"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bit-identical      : True" in out


def test_tune(capsys):
    rc = main(["tune", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--ranks", "4", "--symbolic", "fixed",
               "--max-supernode", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "best: --grid" in out


def test_profile(capsys, tmp_path):
    trace = str(tmp_path / "trace.json")
    rc = main(["profile", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "2x1x4", "--max-supernode", "8",
               "--trace", trace])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inter-grid synchronization points: 1" in out
    assert "critical path:" in out
    assert "rank utilization" in out
    import json
    import os

    assert os.path.exists(trace)
    data = json.loads(open(trace).read())
    assert any(e["ph"] == "s" for e in data["traceEvents"])


def test_profile_baseline_sync_count(capsys):
    rc = main(["profile", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "1x1x4", "--algorithm", "baseline3d",
               "--max-supernode", "8"])
    assert rc == 0
    # ceil(log2(4)) = 2 per-level rendezvous for the baseline.
    assert "inter-grid synchronization points: 2" in capsys.readouterr().out


def test_profile_gpu(capsys):
    rc = main(["profile", "--matrix", "ldoor", "--scale", "tiny",
               "--grid", "2x1x2", "--machine", "perlmutter-gpu",
               "--device", "gpu", "--max-supernode", "8"])
    assert rc == 0
    assert "critical path: unavailable" in capsys.readouterr().out


def test_error_paths():
    with pytest.raises(SystemExit, match="neither a suite matrix"):
        main(["solve", "--matrix", "not-a-matrix", "--grid", "1x1x1"])
    with pytest.raises(SystemExit, match="unknown machine"):
        main(["solve", "--matrix", "ldoor", "--scale", "tiny",
              "--grid", "1x1x1", "--machine", "summit"])


def test_analyze_single_config(capsys):
    rc = main(["analyze", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--grid", "2x1x2", "--algorithm", "new3d",
               "--max-supernode", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[certified]" in out
    assert "syncs 1 (expected 1)" in out
    assert "all schedules certified" in out


def test_analyze_sweep(capsys):
    rc = main(["analyze", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--sweep", "--max-supernode", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "REJECTED" not in out
    # Both algorithms, the 2D solver, the allreduce, and the GPU phases.
    assert "baseline3d" in out and "2d[" in out
    assert "sparse_allreduce" in out and "gpu-allreduce" in out


def test_lint_clean_and_dirty(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x=None):\n    return x\n")
    assert main(["lint", str(clean)]) == 0
    assert "lint: clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f(x=[]):\n    return time.time()\n")
    rc = main(["lint", str(dirty)])
    out = capsys.readouterr().out
    assert rc == 1
    # Nonzero exit and the offending rule ids printed.
    assert "RPR004" in out and "RPR005" in out


def test_lint_src_tree_gate():
    assert main(["lint", "src"]) == 0


def test_fleet_double_run_byte_identical(tmp_path, capsys):
    out1, out2 = tmp_path / "f1.json", tmp_path / "f2.json"
    argv = ["fleet", "--workers", "3", "--requests", "24", "--rate", "1e6",
            "--matrices", "s2D9pt2048,nlpkkt80", "--crash", "1@0.0005:0.004"]
    assert main(argv + ["--out", str(out1)]) == 0
    assert main(argv + ["--out", str(out2)]) == 0
    capsys.readouterr()
    assert out1.read_bytes() == out2.read_bytes()


def test_fleet_text_and_json(capsys):
    import json

    argv = ["fleet", "--workers", "2", "--requests", "16", "--rate", "1e6"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "fleet report" in out and "per worker" in out
    assert main(argv + ["--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["n_requests"] == 16
    assert doc["config"]["workers"] == 2


def test_fleet_autoscale_smoke(capsys):
    assert main(["fleet", "--workers", "1", "--requests", "32",
                 "--rate", "1e6", "--autoscale", "--max-workers", "4",
                 "--scale-period", "0.0005"]) == 0
    out = capsys.readouterr().out
    assert "scale-up" in out


def test_fleet_error_paths():
    with pytest.raises(SystemExit):
        main(["fleet", "--requests", "4", "--crash", "bogus"])
    with pytest.raises(SystemExit):
        main(["fleet", "--requests", "4", "--crash", "1@0.009:0.004"])
    with pytest.raises(SystemExit):
        main(["fleet", "--requests", "4", "--matrices", "nosuch"])


def test_fleet_crash_validation_rejects_malformed_windows():
    """Regression: malformed --crash windows must die at parse time with
    a typed message, never deep inside the fleet run."""
    base = ["fleet", "--requests", "4"]
    # Negative crash time.
    with pytest.raises(SystemExit, match="finite and >= 0"):
        main(base + ["--crash", "1@-0.1:0.5"])
    # Non-finite times parse as floats but must still be rejected.
    with pytest.raises(SystemExit, match="finite and >= 0"):
        main(base + ["--crash", "1@nan:0.5"])
    with pytest.raises(SystemExit, match="finite and >= 0"):
        main(base + ["--crash", "1@0.001:inf"])
    # Negative worker index (= form: argparse eats a bare leading dash).
    with pytest.raises(SystemExit, match="worker index must be >= 0"):
        main(base + ["--crash=-1@0.001:0.002"])
    # Worker index beyond the fleet (default --workers is 2).
    with pytest.raises(SystemExit, match="only ever has workers 0..1"):
        main(base + ["--crash", "9@0.001:0.002"])
    # Recovery must strictly follow the crash (tr == tc).
    with pytest.raises(SystemExit, match="recovery must follow"):
        main(base + ["--crash", "1@0.002:0.002"])
    # A window list with no windows in it.
    with pytest.raises(SystemExit, match="no windows"):
        main(base + ["--crash", ","])


def test_fleet_crash_ceiling_uses_autoscaler_max():
    # Worker 3 can never exist in a fixed 2-worker fleet...
    with pytest.raises(SystemExit, match="workers 0..1"):
        main(["fleet", "--requests", "4", "--workers", "2",
              "--crash", "3@0.001:0.002"])
    # ...but is a legal target under --autoscale with a higher ceiling.
    assert main(["fleet", "--requests", "8", "--rate", "1e6",
                 "--workers", "2", "--autoscale", "--max-workers", "4",
                 "--crash", "3@0.001:0.002"]) == 0
