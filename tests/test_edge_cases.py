"""Edge-case integration tests: degenerate shapes the sweeps don't hit."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.comm import CORI_HASWELL, PERLMUTTER_GPU
from repro.core import SpTRSVSolver
from repro.matrices import kkt3d, make_rhs, poisson2d, random_spd_like
from repro.numfact import solve_residual


def test_deep_pz_with_empty_layout_nodes():
    """Pz = 64 forces dissection deep enough to create empty separators;
    all algorithms must stay exact (regression for the pz=64 bug)."""
    A = kkt3d(7, seed=2)  # n = 686
    solver = SpTRSVSolver(A, 1, 1, 64, max_supernode=8,
                          symbolic_mode="fixed")
    # The layout really does contain empty nodes at this depth.
    assert any(nd.ncols == 0 for nd in solver.layout.nodes)
    b = make_rhs(A.shape[0], 2)
    for alg in ("new3d", "baseline3d"):
        out = solver.solve(b, algorithm=alg)
        assert solve_residual(A, out.x, b) < 1e-9
    gpu = SpTRSVSolver(A, 1, 1, 64, max_supernode=8, symbolic_mode="fixed",
                       machine=PERLMUTTER_GPU)
    out = gpu.solve(b, device="gpu")
    assert solve_residual(A, out.x, b) < 1e-9


def test_single_supernode_matrix():
    """A tiny dense matrix collapsing to very few supernodes."""
    A = random_spd_like(6, avg_degree=6, seed=1)
    solver = SpTRSVSolver(A, 1, 1, 1, max_supernode=16)
    b = make_rhs(6, 1)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-12


def test_more_ranks_than_supernodes():
    """Px*Py far exceeding the supernode count leaves ranks idle but must
    stay correct."""
    A = poisson2d(6, stencil=5, seed=2)  # n = 36
    solver = SpTRSVSolver(A, 6, 6, 1, max_supernode=16)
    assert solver.lu.nsup < 36
    b = make_rhs(36, 1)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-10


def test_matrix_with_isolated_rows():
    """Rows coupled to nothing (diagonal-only) flow through ND, symbolic,
    LU and all solvers."""
    A = poisson2d(6, stencil=5, seed=3).tolil()
    # Detach two vertices completely.
    for v in (7, 20):
        A[v, :] = 0.0
        A[:, v] = 0.0
        A[v, v] = 5.0
    A = sp.csr_matrix(A)
    solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=4)
    b = make_rhs(36, 1)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-10
    assert out.x[7] == pytest.approx(b[7, 0] / 5.0)


def test_many_rhs():
    A = poisson2d(10, stencil=9, seed=4)
    solver = SpTRSVSolver(A, 2, 2, 2, max_supernode=8)
    b = make_rhs(100, 50, "random", seed=5)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-10
    assert out.x.shape == (100, 50)


def test_baseline_without_level_sync_is_exact():
    A = poisson2d(12, stencil=9, seed=5)
    solver = SpTRSVSolver(A, 2, 2, 4, max_supernode=8)
    b = make_rhs(A.shape[0], 1)
    with_sync = solver.solve(b, algorithm="baseline3d",
                             baseline_level_sync=True)
    without = solver.solve(b, algorithm="baseline3d",
                           baseline_level_sync=False)
    assert np.allclose(with_sync.x, without.x, atol=1e-12)
    # Removing synchronization can only reduce the makespan.
    assert without.report.total_time <= with_sync.report.total_time + 1e-12


def test_naive_allreduce_equivalent():
    A = poisson2d(12, stencil=9, seed=6)
    solver = SpTRSVSolver(A, 1, 2, 4, max_supernode=8)
    b = make_rhs(A.shape[0], 2)
    sparse = solver.solve(b, allreduce_impl="sparse")
    naive = solver.solve(b, allreduce_impl="naive")
    assert np.allclose(sparse.x, naive.x, atol=1e-11)
    with pytest.raises(ValueError):
        solver.solve(b, allreduce_impl="bogus")


def test_symbolic_modes_agree():
    A = random_spd_like(80, avg_degree=5, seed=7)
    b = make_rhs(80, 1)
    xs = []
    for mode in ("detect", "fixed"):
        solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=6,
                              symbolic_mode=mode)
        out = solver.solve(b)
        assert solve_residual(A, out.x, b) < 1e-9
        xs.append(out.x)
    assert np.allclose(xs[0], xs[1], atol=1e-9)


def test_from_pipeline_matches_direct_construction():
    from repro.core.solver import SpTRSVSolver as S

    A = poisson2d(10, stencil=9, seed=8)
    direct = S(A, 2, 1, 2, max_supernode=8)
    via = S.from_pipeline(A, direct.tree, direct.sym, direct.lu, 2, 1, 2,
                          machine=CORI_HASWELL)
    b = make_rhs(100, 1)
    x1 = direct.solve(b).x
    x2 = via.solve(b).x
    assert np.allclose(x1, x2, atol=1e-13)


def test_from_pipeline_rejects_insufficient_depth():
    A = poisson2d(10, stencil=9, seed=9)
    shallow = SpTRSVSolver(A, 1, 1, 1, max_supernode=8, leaf_size=1000)
    with pytest.raises(ValueError):
        SpTRSVSolver.from_pipeline(A, shallow.tree, shallow.sym, shallow.lu,
                                   1, 1, 8)


def test_asymmetric_grids():
    """Extreme aspect-ratio grids (tall/wide) on both algorithms."""
    A = poisson2d(12, stencil=9, seed=10)
    b = make_rhs(A.shape[0], 1)
    for px, py in [(8, 1), (1, 8)]:
        solver = SpTRSVSolver(A, px, py, 2, max_supernode=8)
        for alg in ("new3d", "baseline3d"):
            out = solver.solve(b, algorithm=alg)
            assert solve_residual(A, out.x, b) < 1e-10


def test_pz_exceeding_natural_tree_depth():
    """A matrix so small that forced dissection produces many empty leaves."""
    A = random_spd_like(20, avg_degree=3, seed=11)
    solver = SpTRSVSolver(A, 1, 1, 16, max_supernode=4)
    b = make_rhs(20, 1)
    for alg in ("new3d", "baseline3d"):
        out = solver.solve(b, algorithm=alg)
        assert solve_residual(A, out.x, b) < 1e-10
