"""Tests for the batching solve service (repro.serve)."""

import math

import numpy as np
import pytest

from repro.comm.faults import FaultPlan
from repro.core.solver import Resilience
from repro.matrices import get_matrix, matrix_fingerprint
from repro.serve import (
    BatchPolicy,
    BatchingScheduler,
    FactorizationCache,
    RejectReason,
    Request,
    ServiceConfig,
    SolveService,
    Workload,
    WorkloadSpec,
    format_slo,
    generate_workload,
)
from repro.serve.cache import CacheKey


def req(i, arrival=0.0, matrix="m", scale="tiny", deadline=1.0, priority=0):
    return Request(id=i, arrival=arrival, matrix=matrix, scale=scale,
                   rhs_seed=i, deadline=deadline, priority=priority)


# -- workload generation / trace round trip ---------------------------------

def test_workload_deterministic_and_sorted():
    spec = WorkloadSpec(seed=5, rate=100.0, n_requests=20,
                        mix=(("s2D9pt2048", "tiny", 1.0),
                             ("nlpkkt80", "tiny", 2.0)),
                        priorities=((0, 1.0), (3, 1.0)))
    a, b = generate_workload(spec), generate_workload(spec)
    assert a.requests == b.requests
    arr = [r.arrival for r in a.requests]
    assert arr == sorted(arr)
    assert all(r.deadline > r.arrival for r in a.requests)
    assert {r.matrix for r in a.requests} <= {"s2D9pt2048", "nlpkkt80"}
    assert generate_workload(
        WorkloadSpec(seed=6, rate=100.0, n_requests=20)).requests \
        != a.requests


def test_workload_trace_round_trip(tmp_path):
    wl = generate_workload(WorkloadSpec(seed=1, n_requests=8))
    path = str(tmp_path / "trace.json")
    wl.save(path)
    wl2 = Workload.load(path)
    assert wl2.requests == wl.requests
    assert wl2.meta == wl.meta


def test_workload_trace_version_check():
    with pytest.raises(ValueError, match="version"):
        Workload.from_json('{"version": 999, "requests": []}')


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        generate_workload(WorkloadSpec(rate=0.0))
    with pytest.raises(ValueError):
        generate_workload(WorkloadSpec(n_requests=0))
    with pytest.raises(ValueError):
        generate_workload(WorkloadSpec(mix=()))


# -- factorization cache -----------------------------------------------------

class FakeSolver:
    def __init__(self, nbytes=100, setup=1.0):
        self._nbytes = nbytes
        self._setup = setup

    def storage_nbytes(self):
        return self._nbytes

    def factor_time_estimate(self, machine=None):
        return self._setup


def key(tag):
    return CacheKey(fingerprint=tag, px=1, py=1, pz=1, machine="m",
                    max_supernode=16, symbolic_mode="detect", ordering="nd")


def test_cache_hit_miss_counters():
    c = FactorizationCache()
    assert c.get(key("a")) is None
    s = FakeSolver()
    c.put(key("a"), s)
    assert c.get(key("a")) is s
    assert c.stats.hits == 1 and c.stats.misses == 1
    assert c.stats.hit_rate == 0.5
    assert c.stats.resident_bytes == 100


def test_cache_lru_eviction_by_entries():
    c = FactorizationCache(max_entries=2)
    c.put(key("a"), FakeSolver())
    c.put(key("b"), FakeSolver())
    c.get(key("a"))                    # refresh a; b is now LRU
    evicted = c.put(key("c"), FakeSolver())
    assert evicted == [key("b")]
    assert c.get(key("a")) is not None
    assert c.get(key("b")) is None
    assert c.stats.evictions == 1


def test_cache_byte_bound_eviction():
    c = FactorizationCache(max_bytes=250)
    c.put(key("a"), FakeSolver(nbytes=100))
    c.put(key("b"), FakeSolver(nbytes=100))
    c.put(key("c"), FakeSolver(nbytes=100))   # 300 > 250: evict oldest
    assert len(c) == 2
    assert c.stats.resident_bytes == 200
    assert c.stats.peak_bytes == 300
    # An oversized entry is still admitted (never evict the only entry).
    c2 = FactorizationCache(max_bytes=50)
    c2.put(key("big"), FakeSolver(nbytes=500))
    assert len(c2) == 1


def test_cache_put_refresh_accounting():
    """Re-putting an existing key (rebuilt under a racing miss) must swap
    the entry's bytes, not double-count them."""
    from repro.check import check_cache

    c = FactorizationCache()
    c.put(key("a"), FakeSolver(nbytes=100))
    c.put(key("a"), FakeSolver(nbytes=120))
    assert len(c) == 1
    assert c.stats.resident_bytes == 120
    assert c.stats.resident_entries == 1
    assert c.stats.evictions == 0
    check_cache(c)


def test_cache_oversize_admission_accounting():
    """An entry larger than max_bytes is admitted (evicting the rest) and
    the byte accounting stays conserved."""
    from repro.check import check_cache

    c = FactorizationCache(max_bytes=50)
    c.put(key("a"), FakeSolver(nbytes=40))
    evicted = c.put(key("big"), FakeSolver(nbytes=500))
    assert evicted == [key("a")]
    assert len(c) == 1
    assert c.stats.resident_bytes == 500
    assert c.stats.peak_bytes == 540
    assert c.stats.evictions == 1
    check_cache(c)


def test_cache_get_or_build():
    c = FactorizationCache()
    built = []

    def build():
        built.append(1)
        return FakeSolver(setup=2.5)

    s1, t1, hit1 = c.get_or_build(key("a"), build)
    s2, t2, hit2 = c.get_or_build(key("a"), build)
    assert s1 is s2 and built == [1]
    assert (hit1, hit2) == (False, True)
    assert t1 == 2.5 and t2 == 0.0


# -- scheduler: batching, admission, shedding --------------------------------

def test_scheduler_batches_when_full():
    s = BatchingScheduler(BatchPolicy(max_batch=3, max_wait=10.0))
    for i in range(3):
        assert s.offer(req(i, arrival=0.1 * i), 0.1 * i) is None
    k = s.ready_group(0.2)
    assert k == ("m", "tiny")
    batch, shed = s.pop_batch(k, 0.2)
    assert [r.id for r in batch] == [0, 1, 2] and not shed
    assert s.depth() == 0


def test_scheduler_dispatches_on_max_wait():
    s = BatchingScheduler(BatchPolicy(max_batch=8, max_wait=0.5))
    s.offer(req(0, arrival=1.0, deadline=10.0), 1.0)
    assert s.ready_group(1.4) is None
    assert s.next_trigger() == 1.5
    assert s.ready_group(1.5) == ("m", "tiny")


def test_scheduler_next_trigger_includes_earliest_deadline():
    """Regression: an expiry during an idle gap must wake the loop.

    Before the fix ``next_trigger`` only knew about the max-wait age
    trigger, so a request expiring while the queue idled below
    ``max_batch`` was shed at the *next unrelated dispatch* with that
    later timestamp."""
    s = BatchingScheduler(BatchPolicy(max_batch=8, max_wait=100.0))
    s.offer(req(0, arrival=0.0, deadline=2.0), 0.0)
    trig = s.next_trigger()
    # Strictly after the deadline (deadline < t sheds) but immediately so.
    assert trig == math.nextafter(2.0, math.inf)
    shed = s.expire(trig)
    assert [r.request.id for r in shed] == [0]
    assert shed[0].reason is RejectReason.DEADLINE_PASSED
    assert shed[0].time > shed[0].request.deadline
    assert s.depth() == 0 and s.next_trigger() is None


def test_scheduler_next_trigger_zero_slack_clamps_to_arrival():
    """Regression: the expiry trigger must never precede the arrival.

    The fleet's crash path can deliver a request to a worker *before*
    its own arrival (the run loop pre-routes future arrivals; a crash
    evacuates and re-homes them at the crash instant).  When such a
    request's deadline has already passed in flight, the pre-fix
    ``next_trigger`` returned ``nextafter(deadline)`` unclamped, waking
    the loop — and timestamping the shed — before the request exists; an
    acausal ``Rejection.time`` the ``serve.causal-shed`` invariant now
    rejects.  Each expiry trigger is clamped to
    ``max(arrival, nextafter(deadline))``."""
    s = BatchingScheduler(BatchPolicy(max_batch=8, max_wait=100.0))
    # Delivered at t=0.5 ahead of its arrival=2.0, deadline long gone.
    s.offer(req(0, arrival=2.0, deadline=1.0), 0.5)
    trig = s.next_trigger()
    assert trig == 2.0                  # clamped: not nextafter(1.0)
    shed = s.expire(trig)
    assert [r.request.id for r in shed] == [0]
    assert shed[0].time >= shed[0].request.arrival
    assert shed[0].time > shed[0].request.deadline

    # Zero slack (deadline == arrival, the fuzzer's deadline=0.0 draw):
    # the trigger is the first representable instant past the deadline,
    # which is already causal.
    s.offer(req(1, arrival=3.0, deadline=3.0), 2.5)
    trig = s.next_trigger()
    assert trig == math.nextafter(3.0, math.inf)
    assert s.expire(3.0) == []          # t == deadline: still alive
    shed = s.expire(trig)
    assert [r.request.id for r in shed] == [1]
    assert shed[0].time >= shed[0].request.arrival


def test_scheduler_deadline_boundary():
    """Regression: the tier-wide boundary convention (docs/SERVING.md).

    A request is expired only once ``deadline < t`` *strictly*: a pop or
    expiry sweep exactly at the deadline still solves it, matching the
    ``t_complete <= deadline`` completion-side convention.  The pre-fix
    ``deadline <= t`` shed work that could still finish on time."""
    s = BatchingScheduler(BatchPolicy(max_batch=4, max_wait=0.0))
    s.offer(req(0, deadline=1.0), 0.0)
    assert s.expire(1.0) == []                     # t == deadline: alive
    batch, shed = s.pop_batch(s.ready_group(1.0), 1.0)
    assert [r.id for r in batch] == [0] and not shed
    s.offer(req(1, deadline=1.0), 0.0)
    t = math.nextafter(1.0, math.inf)
    batch, shed = s.pop_batch(("m", "tiny"), t)    # t > deadline: shed
    assert not batch and [r.request.id for r in shed] == [1]


def test_scheduler_expire_does_not_early_dispatch_survivors():
    s = BatchingScheduler(BatchPolicy(max_batch=8, max_wait=10.0))
    s.offer(req(0, deadline=0.5), 0.0)
    s.offer(req(1, deadline=9.0), 0.0)
    shed = s.expire(1.0)
    assert [r.request.id for r in shed] == [0]
    assert s.depth() == 1                          # 1 still queued, not popped
    assert s.ready_group(1.0) is None              # and not dispatch-due


def test_scheduler_edf_across_groups():
    s = BatchingScheduler(BatchPolicy(max_batch=1, max_wait=10.0))
    s.offer(req(0, matrix="a", deadline=5.0), 0.0)
    s.offer(req(1, matrix="b", deadline=2.0), 0.0)
    assert s.ready_group(0.0) == ("b", "tiny")  # earliest deadline first


def test_scheduler_queue_full_and_displacement():
    s = BatchingScheduler(BatchPolicy(max_batch=8, max_wait=10.0,
                                      queue_bound=2))
    s.offer(req(0, priority=1), 0.0)
    s.offer(req(1, priority=1), 0.0)
    rej = s.offer(req(2, priority=0), 0.1)     # lower priority: bounced
    assert rej is not None and rej.reason is RejectReason.QUEUE_FULL
    assert rej.request.id == 2
    rej = s.offer(req(3, priority=5), 0.2)     # higher priority: displaces
    assert rej is not None and rej.reason is RejectReason.DISPLACED
    assert rej.request.id in (0, 1)
    assert s.depth() == 2


def test_scheduler_sheds_expired_at_dispatch():
    s = BatchingScheduler(BatchPolicy(max_batch=4, max_wait=0.0))
    s.offer(req(0, deadline=0.5), 0.0)
    s.offer(req(1, deadline=9.0), 0.0)
    batch, shed = s.pop_batch(s.ready_group(1.0), 1.0)
    assert [r.id for r in batch] == [1]
    assert len(shed) == 1 and shed[0].reason is RejectReason.DEADLINE_PASSED


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)
    with pytest.raises(ValueError):
        BatchPolicy(max_wait=-1.0)
    with pytest.raises(ValueError):
        BatchPolicy(queue_bound=0)


# -- the service loop --------------------------------------------------------

CFG = ServiceConfig(px=1, py=1, pz=2)


@pytest.fixture(scope="module")
def small_workload():
    return generate_workload(WorkloadSpec(
        seed=11, rate=3000.0, n_requests=12, deadline=0.5,
        mix=(("s2D9pt2048", "tiny", 1.0),)))


def test_service_completes_and_batches(small_workload):
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3))
    res = svc.run(small_workload)
    assert res.slo.n_completed == 12 and res.slo.n_shed == 0
    assert res.slo.n_batches < 12            # coalescing happened
    assert any(b.size > 1 for b in res.batches)
    assert res.slo.cache_hit_rate > 0        # repeat matrix reused
    assert res.slo.makespan > 0 and res.slo.throughput > 0
    # Completion bookkeeping is consistent.
    assert sorted(r.id for r in small_workload.requests) == \
        sorted(c.request.id for c in res.completions)
    assert all(c.latency > 0 for c in res.completions)


def test_service_deterministic(small_workload):
    def go():
        return SolveService(
            CFG, BatchPolicy(max_batch=4, max_wait=1e-3)).run(small_workload)
    a, b = go(), go()
    assert a.slo.to_json() == b.slo.to_json()
    assert [x.size for x in a.batches] == [x.size for x in b.batches]
    assert [x.request_ids for x in a.batches] == \
        [x.request_ids for x in b.batches]
    for i in a.solutions:
        assert np.array_equal(a.solutions[i], b.solutions[i])


def test_served_solutions_bit_identical_to_cold_single_solves(small_workload):
    """The headline contract: batched + cached answers are the same bits
    as a fresh solver solving each request alone."""
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3))
    res = svc.run(small_workload)
    cold = SolveService(CFG)._build_solver("s2D9pt2048", "tiny")
    for r in small_workload.requests:
        x = cold.solve(r.rhs(cold.n)).x
        assert np.array_equal(res.solutions[r.id], x.ravel()), r


def test_cache_hit_solves_bit_identical_to_cold(small_workload):
    hot = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3))
    res_hot = hot.run(small_workload)
    assert res_hot.slo.cache_hits > 0
    # Same workload with a cache too small to ever hit.
    cold = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
                        cache=FactorizationCache(max_entries=1))
    # max_entries=1 with one matrix still hits; force misses by clearing.
    res_cold_sols = {}
    for r in small_workload.requests:
        s = SolveService(CFG)._build_solver(r.matrix, r.scale)
        res_cold_sols[r.id] = s.solve(r.rhs(s.n)).x.ravel()
    for i, x in res_hot.solutions.items():
        assert np.array_equal(x, res_cold_sols[i])


def test_service_sheds_under_overload():
    wl = generate_workload(WorkloadSpec(
        seed=2, rate=50000.0, n_requests=30, deadline=0.001,
        priorities=((0, 3.0), (5, 1.0))))
    svc = SolveService(CFG, BatchPolicy(max_batch=2, max_wait=1e-4,
                                        queue_bound=4), keep_solutions=False)
    res = svc.run(svc_wl := wl)
    assert res.slo.n_shed > 0
    assert res.slo.n_completed + res.slo.n_shed == len(svc_wl)
    assert set(res.slo.shed_by_reason) <= {
        "queue-full", "displaced", "deadline-passed"}
    # Every shed is typed and timestamped.
    assert all(r.reason in RejectReason for r in res.rejections)


def test_service_deadline_sheds_stamped_at_expiry():
    """Regression: a request expiring during an idle gap is shed at (just
    past) its own deadline, not at the next unrelated dispatch.

    With a batch that never fills and a long max_wait, every request sits
    queued past its deadline; each must be shed at exactly
    ``nextafter(deadline)`` — the expiry trigger — with
    ``time > deadline`` strictly."""
    wl = generate_workload(WorkloadSpec(
        seed=7, rate=50000.0, n_requests=10, deadline=0.001))
    svc = SolveService(CFG, BatchPolicy(max_batch=64, max_wait=0.05),
                       keep_solutions=False)
    res = svc.run(wl)
    assert res.slo.n_completed == 0
    assert res.slo.shed_by_reason == {"deadline-passed": 10}
    for r in res.rejections:
        assert r.reason is RejectReason.DEADLINE_PASSED
        assert r.time > r.request.deadline
        assert r.time == math.nextafter(r.request.deadline, math.inf)


def test_queue_depth_integral_time_weighted():
    from repro.serve.service import _QueueDepthIntegral

    q = _QueueDepthIntegral()
    q.record(1.0, 2)      # depth 0 over [0, 1)
    q.record(1.0, 3)      # same instant: last write wins, no area
    q.record(3.0, 0)      # depth 3 over [1, 3)
    q.record(4.0, 0)      # depth 0 over [3, 4)
    assert q.area == pytest.approx(6.0)
    assert q.mean() == pytest.approx(1.5)
    assert _QueueDepthIntegral().mean() == 0.0


def test_slo_queue_depth_mean_is_time_weighted():
    """Regression: the SLO queue-depth mean integrates over virtual time.

    One request waits exactly ``max_wait`` and then solves: depth is 1
    for ``max_wait`` seconds out of the makespan, so the time-weighted
    mean is ``max_wait / makespan`` — not the per-loop-iteration sample
    average the report used before."""
    wl = generate_workload(WorkloadSpec(
        seed=3, rate=1000.0, n_requests=1, deadline=10.0))
    svc = SolveService(CFG, BatchPolicy(max_batch=8, max_wait=0.5),
                       keep_solutions=False)
    res = svc.run(wl)
    assert res.slo.n_completed == 1
    assert res.slo.queue_depth_max == 1
    assert res.slo.queue_depth_mean == pytest.approx(0.5 / res.slo.makespan)


def test_service_invariants_hook(small_workload):
    """The runtime invariant layer accepts a clean service run."""
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
                       invariants=True)
    res = svc.run(small_workload)
    assert res.slo.n_completed == len(small_workload)


def test_service_profile_aggregates_comm(small_workload):
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
                       profile=True, keep_solutions=False)
    res = svc.run(small_workload)
    assert res.slo.profiled
    assert res.slo.comm_msgs > 0
    assert res.slo.comm_alpha_time > 0


def test_service_over_lossy_fabric(small_workload):
    """Served workload survives a lossy network via the resilience tiers."""
    svc = SolveService(
        CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
        faults=FaultPlan.uniform(seed=3, drop=0.05),
        resilience=Resilience(reliable=True))
    res = svc.run(small_workload)
    assert res.slo.n_completed == len(small_workload)
    cold = SolveService(CFG)._build_solver("s2D9pt2048", "tiny")
    for r in small_workload.requests[:3]:
        x = cold.solve(r.rhs(cold.n)).x
        assert np.array_equal(res.solutions[r.id], x.ravel())


def test_service_cache_keyed_by_content():
    svc = SolveService(CFG)
    k1 = svc.cache_key("s2D9pt2048", "tiny")
    k2 = svc.cache_key("nlpkkt80", "tiny")
    assert k1 != k2
    assert k1.fingerprint == matrix_fingerprint(
        get_matrix("s2D9pt2048", "tiny")).hexdigest


def test_slo_report_format_and_json(small_workload):
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
                       keep_solutions=False)
    rep = svc.run(small_workload).slo
    text = format_slo(rep, title="t")
    for token in ("requests", "latency", "throughput", "batches", "cache"):
        assert token in text
    import json
    doc = json.loads(rep.to_json())
    assert doc["n_completed"] == 12
    assert 0.0 <= doc["cache_hit_rate"] <= 1.0
    assert doc["deadline_met_rate"] == rep.deadline_met_rate


# -- hardened ingestion: typed poison sheds ----------------------------------

def _poison_svc(**kw):
    from repro.matrices import resolve_matrix
    kw.setdefault("policy", BatchPolicy(max_batch=4, max_wait=1e-3))
    return SolveService(CFG, matrix_provider=resolve_matrix, **kw)


@pytest.mark.parametrize("name", ["poison-singular", "poison-nan",
                                  "poison-inf", "poison-nonsquare",
                                  "poison-illcond"])
def test_service_sheds_poison_matrix_typed(name):
    """Regression: a malformed matrix is a typed poison-input rejection,
    not an escaped exception or a corrupted accepted answer."""
    wl = Workload(requests=[
        Request(id=0, arrival=0.0, matrix=name, scale="tiny",
                rhs_seed=1, deadline=1.0),
        Request(id=1, arrival=0.001, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=2, deadline=1.0),
    ])
    res = _poison_svc().run(wl)
    assert res.slo.n_completed == 1
    assert res.slo.shed_by_reason == {"poison-input": 1}
    [rej] = [r for r in res.rejections
             if r.reason is RejectReason.POISON_INPUT]
    assert rej.request.id == 0 and rej.detail  # slug names the defect


@pytest.mark.parametrize("kind", ["poison-nan", "poison-inf",
                                  "poison-shape", "poison-empty"])
def test_service_sheds_poison_rhs_individually(kind):
    """A poisoned RHS sheds that request only; batchmates still solve."""
    wl = Workload(requests=[
        Request(id=0, arrival=0.0, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=1, deadline=1.0, rhs_kind=kind),
        Request(id=1, arrival=0.0001, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=2, deadline=1.0),
    ])
    res = _poison_svc().run(wl)
    assert res.slo.n_completed == 1 and res.slo.n_shed == 1
    [rej] = res.rejections
    assert rej.reason is RejectReason.POISON_INPUT
    assert rej.request.id == 0 and rej.detail
    # The good batchmate's answer is untouched by its poisoned neighbor.
    cold = SolveService(CFG)._build_solver("s2D9pt2048", "tiny")
    r1 = wl.requests[1]
    assert np.array_equal(res.solutions[1],
                          cold.solve(r1.rhs(cold.n)).x.ravel())


def test_poison_matrix_memoized_not_rebuilt():
    """The second request for a known-bad matrix is shed without paying
    the (possibly huge) build again, and the cache stays clean."""
    wl = Workload(requests=[
        Request(id=i, arrival=0.001 * i, matrix="poison-nan", scale="tiny",
                rhs_seed=i, deadline=1.0)
        for i in range(3)
    ])
    svc = _poison_svc()
    res = svc.run(wl)
    assert res.slo.shed_by_reason == {"poison-input": 3}
    assert svc.cache.stats.resident_entries == 0  # poison never cached


def test_service_rejects_oversize_matrix():
    from repro.matrices import resolve_matrix
    svc = SolveService(
        ServiceConfig(px=1, py=1, pz=2, max_matrix_n=100),
        matrix_provider=resolve_matrix)
    wl = Workload(requests=[
        Request(id=0, arrival=0.0, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=1, deadline=1.0)])
    res = svc.run(wl)
    assert res.slo.shed_by_reason == {"poison-input": 1}
    assert res.rejections[0].detail == "too-large"


# -- duplicate coalescing ----------------------------------------------------

def test_scheduler_dedups_identical_requests():
    from repro.serve import dedup_key

    sched = BatchingScheduler(BatchPolicy(max_batch=2, max_wait=1e-3))
    reqs = [Request(id=i, arrival=0.0, matrix="m", scale="tiny",
                    rhs_seed=7, deadline=1.0) for i in range(3)]
    reqs.append(Request(id=3, arrival=0.0, matrix="m", scale="tiny",
                        rhs_seed=8, deadline=1.0))
    for r in reqs:
        assert sched.offer(r, 0.0) is None
    batch, shed = sched.pop_batch(("m", "tiny"), 0.0)
    # Two distinct keys fill the batch; duplicates ride along for free.
    assert len(batch) == 4 and shed == []
    assert len({dedup_key(r) for r in batch}) == 2
    assert sched.depth() == 0                # nothing left behind


def test_service_dedup_counter_and_fanout_bit_identity():
    """Satellite contract: N requests sharing (rhs_seed, kind, deadline)
    solve one column; every caller gets the same bits as a cold solve."""
    dup = [Request(id=i, arrival=0.0, matrix="s2D9pt2048", scale="tiny",
                   rhs_seed=42, deadline=1.0) for i in range(5)]
    solo = Request(id=5, arrival=0.0001, matrix="s2D9pt2048", scale="tiny",
                   rhs_seed=43, deadline=1.0)
    svc = SolveService(CFG, BatchPolicy(max_batch=8, max_wait=1e-3),
                       invariants=True)
    res = svc.run(Workload(requests=dup + [solo]))
    assert res.slo.n_completed == 6 and res.slo.n_shed == 0
    assert res.slo.deduped == 4
    [batch] = res.batches
    assert batch.size == 2 and len(batch.request_ids) == 6
    cold = SolveService(CFG)._build_solver("s2D9pt2048", "tiny")
    for r in dup + [solo]:
        x = cold.solve(r.rhs(cold.n)).x.ravel()
        assert np.array_equal(res.solutions[r.id], x)


def test_dedup_key_excludes_priority():
    from repro.serve import dedup_key

    a = Request(id=0, arrival=0.0, matrix="m", scale="tiny", rhs_seed=7,
                deadline=1.0, priority=0)
    b = Request(id=1, arrival=0.0, matrix="m", scale="tiny", rhs_seed=7,
                deadline=1.0, priority=5)
    assert dedup_key(a) == dedup_key(b)


# -- integrity verification & crash-fault cache recovery ---------------------

def test_sampled_verification_counts(small_workload):
    svc = SolveService(CFG, BatchPolicy(max_batch=4, max_wait=1e-3),
                       verify_fraction=1.0, verify_seed=9)
    res = svc.run(small_workload)
    assert res.slo.n_verified == len(small_workload)
    assert res.slo.n_integrity_failures == 0
    assert res.integrity_failures == []


def test_verify_fraction_validation():
    with pytest.raises(ValueError):
        SolveService(CFG, verify_fraction=1.5)


def test_cache_not_poisoned_by_crash_fault_failover():
    """Satellite contract: a batch that rides through a crash-fault
    failover must not leave a corrupted factorization behind — the next
    request (fault window over) is bit-identical to a cold solve."""
    from repro.comm.chaos import plan_for
    from repro.comm.faults import FaultSchedule

    crash = plan_for("crash", 0.5, seed=77, nranks=2, makespan=2e-3)
    assert crash is not None and crash.crash
    sched = FaultSchedule(((0.0, 0.05, crash),))
    wl = Workload(requests=[
        Request(id=0, arrival=0.0, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=5, deadline=1.0),
        Request(id=1, arrival=0.1, matrix="s2D9pt2048", scale="tiny",
                rhs_seed=6, deadline=1.1),
    ])
    svc = SolveService(CFG, BatchPolicy(max_batch=1, max_wait=1e-4),
                       fault_schedule=sched, resilience=Resilience(),
                       verify_fraction=1.0, verify_seed=3)
    res = svc.run(wl)
    assert res.slo.n_completed == 2
    assert res.slo.n_integrity_failures == 0
    assert res.slo.cache_hits >= 1           # second solve reused the entry
    cold = SolveService(CFG)._build_solver("s2D9pt2048", "tiny")
    r1 = wl.requests[1]
    assert sched.plan_at(res.completions[-1].t_complete) is None  # calm
    assert np.array_equal(res.solutions[1],
                          cold.solve(r1.rhs(cold.n)).x.ravel())


def test_fault_schedule_plan_at():
    from repro.comm.faults import FaultSchedule

    p = FaultPlan.uniform(seed=1, drop=0.1)
    s = FaultSchedule(((0.0, 1.0, p), (2.0, 3.0, None)))
    assert s.plan_at(0.5) is p
    assert s.plan_at(1.0) is None            # half-open window
    assert s.plan_at(2.5) is None            # explicit calm phase
    assert s.plan_at(5.0) is None
    assert s.end == 3.0
    with pytest.raises(ValueError):
        FaultSchedule(((1.0, 1.0, p),))
