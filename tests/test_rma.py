"""One-sided communication: runtime primitives, the put-based reduction,
and the static RMA certifier (races, resource bounds, mutation self-test).
"""

import numpy as np
import pytest

from repro.analyze import (
    delete_op,
    expected_syncs,
    solver_schedule,
    verify_rma,
    verify_schedule,
)
from repro.check.invariants import check_sim
from repro.comm import (
    CORI_HASWELL,
    FaultPlan,
    RMAConflictError,
    RMAError,
    Simulator,
)
from repro.core.solver import SpTRSVSolver
from repro.matrices import poisson2d
from repro.planner import candidates
from repro.planner.cost import predict_time

MACHINE = CORI_HASWELL


def run(nranks, fn, **kw):
    return Simulator(nranks, MACHINE, **kw).run(fn)


# ---------------------------------------------------------------------------
# runtime primitives


def test_put_fence_read_roundtrip():
    data = np.arange(4, dtype=float)

    def fn(ctx):
        peer = 1 - ctx.rank
        yield ctx.put(peer, "slot", data * (ctx.rank + 1))
        yield ctx.fence(tag="epoch")
        got = yield ctx.read("slot")
        return got

    res = run(2, fn)
    assert np.array_equal(res.results[0], data * 2)   # written by rank 1
    assert np.array_equal(res.results[1], data * 1)
    # Both ranks leave the fence at the same virtual time.
    assert res.clocks[0] == res.clocks[1]
    assert res.rma_put_bytes == 2 * data.nbytes
    assert res.rma_applied_bytes == res.rma_put_bytes
    assert res.unapplied_puts == []
    assert res.rma_peak_bytes == [data.nbytes, data.nbytes]
    check_sim(res)


def test_put_flush_read():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.put(1, "k", np.ones(3))
            yield ctx.flush(1)
            # Tell the target the write landed (flush is origin-side only).
            yield ctx.send(1, None, tag="done")
        else:
            yield ctx.recv(src=0, tag="done")
            got = yield ctx.read("k")
            return got

    res = run(2, fn)
    assert np.array_equal(res.results[1], np.ones(3))
    assert res.rma_applied_bytes == 24
    check_sim(res)


def test_put_payload_is_copied_at_issue():
    buf = np.zeros(2)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.put(1, "k", buf)
            buf[:] = 99.0           # mutate after issue, before the fence
        yield ctx.fence()
        if ctx.rank == 1:
            got = yield ctx.read("k")
            return got

    res = run(2, fn)
    assert np.array_equal(res.results[1], np.zeros(2))


def test_read_before_apply_raises():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.put(1, "k", np.ones(1))
        yield ctx.fence()
        if ctx.rank == 0:
            got = yield ctx.read("never-written")
            return got

    with pytest.raises(RMAError):
        run(2, fn)


def test_unapplied_put_is_surfaced_and_rejected():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.put(1, "k", np.ones(2))
        else:
            yield ctx.compute(1e-6)

    res = run(2, fn)
    assert len(res.unapplied_puts) == 1
    leak = res.unapplied_puts[0]
    assert (leak.origin, leak.dst, leak.key) == (0, 1, "k")
    assert res.rma_applied_bytes == 0
    with pytest.raises(AssertionError, match="rma"):
        check_sim(res)


def test_strict_mode_flags_overlapping_writes():
    def fn(ctx):
        if ctx.rank < 2:
            yield ctx.put(2, "hot", np.full(2, float(ctx.rank)))
        yield ctx.fence()

    with pytest.raises(RMAConflictError):
        run(3, fn, rma_strict=True)
    # Non-strict runs keep last-writer-wins determinism instead.
    run(3, fn)


def test_strict_mode_allows_disjoint_keys():
    def fn(ctx):
        if ctx.rank < 2:
            yield ctx.put(2, ("hot", ctx.rank), np.ones(2))
        yield ctx.fence()
        if ctx.rank == 2:
            a = yield ctx.read(("hot", 0))
            b = yield ctx.read(("hot", 1))
            return float(a.sum() + b.sum())

    res = run(3, fn, rma_strict=True)
    assert res.results[2] == 4.0


def test_rma_refused_under_fault_injection():
    plan = FaultPlan.uniform(seed=7, drop=0.5)

    def fn(ctx):
        yield ctx.put(1 - ctx.rank, "k", np.ones(1))
        yield ctx.fence()

    with pytest.raises(RMAError):
        Simulator(2, MACHINE, faults=plan, reliable=True).run(fn)


# ---------------------------------------------------------------------------
# the put-based inter-grid reduction


@pytest.fixture(scope="module")
def A():
    return poisson2d(20, stencil=9, seed=3)


STOCK_GRIDS = [(2, 1, 2), (2, 2, 2), (1, 2, 4)]


@pytest.mark.parametrize("grid", STOCK_GRIDS)
def test_onesided_put_bit_identical_to_new3d(A, grid):
    px, py, pz = grid
    solver = SpTRSVSolver(A, px, py, pz, max_supernode=8)
    b = np.linspace(-1.0, 1.0, A.shape[0])
    x_two = solver.solve(b, algorithm="new3d").x
    out = solver.solve(b, algorithm="onesided_put", profile=True)
    assert np.array_equal(x_two, out.x)
    # One labeled inter-grid sync point, like the paper's algorithm.
    assert out.report.metrics.nsyncs == 1
    res = out.report.sim
    assert res.unapplied_puts == []
    assert res.rma_applied_bytes == res.rma_put_bytes > 0
    check_sim(res)


def test_onesided_put_resilient_fallback(A):
    # Under injected faults the RMA path refuses to run; the resilience
    # tiers degrade to the two-sided backends and still verify.
    solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    b = np.linspace(-1.0, 1.0, A.shape[0])
    from repro.core.solver import Resilience

    plan = FaultPlan.uniform(seed=5, drop=0.05)
    out = solver.solve(b, algorithm="onesided_put", faults=plan,
                       resilience=Resilience(reliable=True))
    assert out.resilience is not None
    assert out.resilience.tier in ("new3d", "baseline3d")


# ---------------------------------------------------------------------------
# static certification


@pytest.mark.parametrize("grid", STOCK_GRIDS)
def test_schedule_certified_and_resources_exact(A, grid):
    px, py, pz = grid
    solver = SpTRSVSolver(A, px, py, pz, max_supernode=8)
    sched = solver_schedule(solver, algorithm="onesided_put")
    assert sched.complete
    assert sched.nsyncs == expected_syncs("onesided_put", pz) == 1

    vrep = verify_schedule(sched)
    assert vrep.ok

    rrep = verify_rma(sched)
    assert rrep.ok and rrep.race_free
    assert rrep.resources.nepochs == 1

    # The static resource certificate must equal the runtime's measured
    # window occupancy exactly — peaks, totals, and conservation.
    b = np.linspace(-1.0, 1.0, A.shape[0])
    sim = solver.solve(b, algorithm="onesided_put").report.sim
    assert rrep.resources.peak_bytes == sim.rma_peak_bytes
    assert rrep.resources.total_put_bytes == sim.rma_put_bytes
    assert rrep.resources.applied_bytes == sim.rma_applied_bytes
    assert rrep.resources.unapplied_bytes == 0
    assert rrep.resources.conserved


def test_planner_candidates_and_pricing(A):
    solver = SpTRSVSolver(A, 2, 2, 2, max_supernode=8)
    assert "onesided_put" in candidates(solver)
    b = np.linspace(-1.0, 1.0, A.shape[0])
    measured = solver.solve(b, algorithm="onesided_put").report.sim.makespan
    assert predict_time(solver, "onesided_put") == pytest.approx(
        measured, rel=1e-9)


def test_non_rma_schedule_reports_no_onesided(A):
    solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    sched = solver_schedule(solver, algorithm="new3d")
    rep = verify_rma(sched)
    assert rep.ok
    assert rep.resources.total_put_bytes == 0
    assert "no one-sided operations" in rep.summary()


# ---------------------------------------------------------------------------
# mutation self-test: the certifier must catch an injected missing fence


def _tiny_rma_schedule(A):
    """1x1x2 grid: two ranks, one put each, one fence, one read each."""
    solver = SpTRSVSolver(A, 1, 1, 2, max_supernode=8)
    return solver_schedule(solver, algorithm="onesided_put")


def test_fence_deletion_is_caught(A):
    sched = _tiny_rma_schedule(A)
    assert verify_rma(sched).ok

    mut = delete_op(sched, 1, "fence")
    rep = verify_rma(mut)
    assert not rep.ok

    # Exactly the injected defects, nothing else: both put/read pairs
    # race (rank 1 skips the epoch), rank 1's put is never applied, and
    # the fence counts disagree.
    assert len(rep.races) == 2
    kinds = sorted(i.kind for i in rep.issues)
    assert kinds == ["fence-mismatch", "unapplied-put"]
    for race in rep.races:
        ops = {race.first.kind, race.second.kind}
        assert ops == {"put", "read"}
        # Minimal two-op witness, ordered by global extraction index.
        assert race.first.gidx < race.second.gidx


def test_flush_deletion_is_caught():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.put(1, "k", np.ones(2))
            yield ctx.flush(1)
            yield ctx.send(1, None, tag="done")
        else:
            yield ctx.recv(src=0, tag="done")
            _ = yield ctx.read("k")

    from repro.analyze import extract_schedule

    sched = extract_schedule(2, fn, name="flush-demo")
    assert verify_rma(sched).ok
    mut = delete_op(sched, 0, "flush")
    rep = verify_rma(mut)
    assert not rep.ok
    assert len(rep.races) == 1
    assert any(i.kind == "unapplied-put" for i in rep.issues)
    assert rep.resources.unapplied_bytes == 16


def test_mutation_witnesses_are_stable(A):
    """Re-extracting and re-mutating yields byte-identical witnesses."""
    reports = []
    for _ in range(2):
        mut = delete_op(_tiny_rma_schedule(A), 1, "fence")
        reports.append(verify_rma(mut))
    a, b = reports
    assert [r.describe() for r in a.races] == [r.describe() for r in b.races]
    assert [i.describe() for i in a.issues] == [i.describe()
                                                for i in b.issues]
    assert a.resources == b.resources


# ---------------------------------------------------------------------------
# witness minimality on RMA schedules


def test_fence_recv_deadlock_cycle_is_minimal_and_rotated():
    # Rank 0 parks at a fence; rank 1 waits on a message rank 0 never
    # sends.  The wait-for cycle is exactly [0, 1], smallest rank first.
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.fence()
        else:
            yield ctx.recv(src=0, tag="never")

    from repro.analyze import extract_schedule

    sched = extract_schedule(2, fn, name="fence-deadlock")
    assert not sched.complete
    assert sched.blocked_fences == [(0, 0)]
    rep = verify_schedule(sched)
    assert rep.deadlock is not None
    assert rep.deadlock.cycle == [0, 1]
    assert "fence" in rep.deadlock.edges[0]


def test_all_ranks_fencing_is_not_a_deadlock():
    def fn(ctx):
        yield ctx.fence(tag="only")
        yield ctx.compute(1e-9)

    from repro.analyze import extract_schedule

    sched = extract_schedule(2, fn, name="pure-fence")
    assert sched.complete
    assert verify_schedule(sched).ok


def test_race_witness_is_two_ops():
    # Three unordered accesses to one key -> pairwise witnesses, each
    # naming exactly two operations (minimal by construction).
    def fn(ctx):
        if ctx.rank in (0, 1):
            yield ctx.put(2, "hot", np.ones(1))
        yield ctx.fence()
        yield ctx.fence()   # second epoch keeps rank programs aligned

    from repro.analyze import extract_schedule

    sched = extract_schedule(3, fn, name="pair-race")
    rep = verify_rma(sched)
    assert len(rep.races) == 1          # put vs put, same key, same epoch
    r = rep.races[0]
    assert {r.first.rank, r.second.rank} == {0, 1}
    assert r.first.gidx < r.second.gidx
