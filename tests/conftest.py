"""Shared fixtures: small factorized problems reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson2d, random_spd_like
from repro.numfact import lu_factorize
from repro.ordering import build_layout_tree, nested_dissection
from repro.symbolic import symbolic_factor


def build_problem(A: sp.spmatrix, pz: int = 4, max_supernode: int = 8,
                  mode: str = "detect"):
    """Run the full pre-solve pipeline: ND -> symbolic -> LU -> layout tree.

    Returns a dict with keys: A (permuted), perm, tree, layout, sym, lu.
    """
    from repro.util import ilog2

    tree = nested_dissection(A, leaf_size=max(8, A.shape[0] // (4 * pz)),
                             min_depth=ilog2(pz))
    perm = tree.perm
    Ap = sp.csr_matrix(A)[perm][:, perm]
    sym = symbolic_factor(Ap, max_supernode=max_supernode,
                          boundaries=tree.boundaries(), mode=mode)
    lu = lu_factorize(Ap, sym.partition)
    layout = build_layout_tree(tree, pz)
    return {"A": Ap, "perm": perm, "tree": tree, "layout": layout,
            "sym": sym, "lu": lu}


@pytest.fixture(scope="session")
def poisson_problem():
    """24x24 2D 9-point Poisson, Pz-ready to 8 grids."""
    A = poisson2d(24, stencil=9, seed=11)
    return build_problem(A, pz=8)


@pytest.fixture(scope="session")
def random_problem():
    """Unstructured random diagonally dominant matrix."""
    A = random_spd_like(180, avg_degree=5, seed=7)
    return build_problem(A, pz=4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
