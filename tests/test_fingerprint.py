"""Unit tests for the content fingerprint (repro.matrices.fingerprint)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import get_matrix, matrix_fingerprint, poisson2d


def test_fingerprint_deterministic():
    A = poisson2d(12, seed=3)
    f1 = matrix_fingerprint(A)
    f2 = matrix_fingerprint(A.copy())
    assert f1 == f2
    assert f1.hexdigest == f2.hexdigest
    assert f1.n == A.shape[0] and f1.nnz == A.nnz


def test_fingerprint_format_independent():
    """CSR / CSC / COO of the same matrix fingerprint identically."""
    A = poisson2d(10, seed=1)
    fp = matrix_fingerprint(sp.csr_matrix(A))
    assert matrix_fingerprint(sp.csc_matrix(A)) == fp
    assert matrix_fingerprint(sp.coo_matrix(A)) == fp


def test_fingerprint_separates_structure_and_values():
    A = sp.csr_matrix(poisson2d(10, seed=1))
    B = A.copy()
    B.data = B.data.copy()
    B.data[0] *= 2.0  # same sparsity, different values
    fa, fb = matrix_fingerprint(A), matrix_fingerprint(B)
    assert fa.same_structure(fb)
    assert fa.structure == fb.structure
    assert fa.numeric != fb.numeric
    assert fa.hexdigest != fb.hexdigest


def test_fingerprint_structure_sensitivity():
    fa = matrix_fingerprint(poisson2d(10, seed=1))
    fb = matrix_fingerprint(poisson2d(11, seed=1))
    assert not fa.same_structure(fb)
    assert fa != fb


def test_fingerprint_short_and_str():
    fp = matrix_fingerprint(poisson2d(8))
    assert fp.short(8) == fp.hexdigest[:8]
    assert fp.short() in str(fp)
    assert len(fp.hexdigest) == 64  # sha256 hex


def test_fingerprint_distinguishes_suite_matrices():
    digests = {matrix_fingerprint(get_matrix(name, "tiny")).hexdigest
               for name in ("s2D9pt2048", "nlpkkt80", "ldoor")}
    assert len(digests) == 3


def test_fingerprint_rejects_non_2d():
    with pytest.raises((ValueError, TypeError, AttributeError)):
        matrix_fingerprint(np.ones(4))  # type: ignore[arg-type]
