"""Unit tests for the performance-analysis package (repro.perf)."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, PERLMUTTER_CPU, PERLMUTTER_GPU
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.perf import (
    autotune_grid,
    compare_outcomes,
    critical_path,
    format_report,
    roofline,
)


@pytest.fixture(scope="module")
def solver():
    A = poisson2d(16, stencil=9, seed=3)
    return SpTRSVSolver(A, 2, 2, 2, max_supernode=8, machine=CORI_HASWELL)


# ---- critical path ----------------------------------------------------------

def test_critical_path_positive_and_split(solver):
    cp = critical_path(solver.lu, CORI_HASWELL)
    assert cp.time > 0
    assert cp.length >= 2  # at least one L and one U solve step
    assert cp.time == pytest.approx(cp.l_time + cp.u_time)


def test_critical_path_is_lower_bound_cpu(solver):
    """No simulated CPU schedule may beat the dependency chain."""
    b = make_rhs(solver.n, 1)
    cp = critical_path(solver.lu, CORI_HASWELL, nrhs=1)
    for alg in ("new3d", "baseline3d"):
        t = solver.solve(b, algorithm=alg).report.total_time
        assert t >= cp.time * 0.999, alg


def test_critical_path_is_lower_bound_gpu():
    A = poisson2d(14, stencil=9, seed=4)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU)
    b = make_rhs(A.shape[0], 2)
    cp = critical_path(s.lu, PERLMUTTER_GPU, nrhs=2, device="gpu")
    t = s.solve(b, device="gpu").report.total_time
    assert t >= cp.time * 0.999


def test_critical_path_scales_with_nrhs(solver):
    cp1 = critical_path(solver.lu, CORI_HASWELL, nrhs=1)
    cp8 = critical_path(solver.lu, CORI_HASWELL, nrhs=8)
    assert cp8.time > cp1.time


def test_critical_path_device_validation(solver):
    with pytest.raises(ValueError):
        critical_path(solver.lu, CORI_HASWELL, device="tpu")
    with pytest.raises(ValueError):
        critical_path(solver.lu, PERLMUTTER_CPU, device="gpu")


# ---- roofline ---------------------------------------------------------------

def test_roofline_counts(solver):
    rf = roofline(solver.lu, nrhs=1)
    assert rf.flops == pytest.approx(solver.lu.solve_flops(1))
    assert rf.bytes > 0
    # SpTRSV is memory bound: intensity far below typical machine balance.
    assert rf.intensity < 1.0
    assert rf.bound(CORI_HASWELL) == "memory"


def test_roofline_floor_is_lower_bound(solver):
    """A single-rank solve cannot beat the single-rank roofline floor."""
    rf = roofline(solver.lu, nrhs=1)
    A = solver.A
    s1 = SpTRSVSolver(A, 1, 1, 1, max_supernode=8, machine=CORI_HASWELL)
    t = s1.solve(make_rhs(A.shape[0], 1)).report.total_time
    assert t >= rf.time_floor(CORI_HASWELL, ranks=1)


def test_roofline_parallel_floor_scales():
    A = poisson2d(12, seed=1)
    s = SpTRSVSolver(A, 1, 1, 1, max_supernode=8)
    rf = roofline(s.lu)
    assert rf.time_floor(CORI_HASWELL, ranks=4) == pytest.approx(
        rf.time_floor(CORI_HASWELL, ranks=1) / 4)


def test_roofline_nrhs_scaling(solver):
    r1 = roofline(solver.lu, nrhs=1)
    r8 = roofline(solver.lu, nrhs=8)
    assert r8.flops == pytest.approx(8 * r1.flops)
    assert r8.intensity > r1.intensity  # GEMM amortizes matrix traffic


# ---- tuner ------------------------------------------------------------------

def test_autotune_cpu_explores_all_shapes():
    A = poisson2d(16, stencil=9, seed=5)
    res = autotune_grid(A, P=8, machine=CORI_HASWELL, max_supernode=8,
                        symbolic_mode="fixed")
    shapes = {cfg for cfg, _ in res.table}
    # All (px, py, pz) with px*py*pz = 8 and pz in {1,2,4,8}.
    assert (8, 1, 1) in shapes and (1, 8, 1) in shapes
    assert (2, 2, 2) in shapes and (1, 1, 8) in shapes
    assert res.best in shapes
    assert res.best_time == min(t for _, t in res.table)
    assert "best" in res.format()


def test_autotune_gpu_respects_constraints():
    A = poisson2d(14, stencil=9, seed=6)
    res = autotune_grid(A, P=8, machine=PERLMUTTER_GPU, device="gpu",
                        max_supernode=8, symbolic_mode="fixed")
    for (px, py, pz), _ in res.table:
        assert py == 1
    from repro.comm import CRUSHER_GPU

    res_amd = autotune_grid(A, P=8, machine=CRUSHER_GPU, device="gpu",
                            max_supernode=8, symbolic_mode="fixed")
    for (px, py, pz), _ in res_amd.table:
        assert px == 1 and py == 1  # no one-sided sub-communicators


def test_autotune_max_pz_cap():
    A = poisson2d(12, seed=7)
    res = autotune_grid(A, P=8, max_pz=2, max_supernode=8,
                        symbolic_mode="fixed")
    assert all(pz <= 2 for (_, _, pz), _ in res.table)
    with pytest.raises(ValueError):
        autotune_grid(A, P=8, max_pz=3)
    with pytest.raises(ValueError):
        autotune_grid(A, P=0)


def test_autotune_prefers_3d_at_scale():
    """At P=16 on the latency-bound Poisson problem, some pz > 1 wins."""
    A = poisson2d(24, stencil=9, seed=8)
    res = autotune_grid(A, P=16, machine=CORI_HASWELL, max_supernode=8,
                        symbolic_mode="fixed")
    assert res.best[2] > 1


# ---- report formatting --------------------------------------------------------

def test_format_report(solver):
    out = solver.solve(make_rhs(solver.n, 1))
    text = format_report(out.report)
    assert "total (makespan)" in text
    assert "Z-comm" in text
    assert "2x2x2" in text


def test_compare_outcomes(solver):
    b = make_rhs(solver.n, 1)
    outcomes = {
        "new3d": solver.solve(b),
        "baseline3d": solver.solve(b, algorithm="baseline3d"),
    }
    text = compare_outcomes(outcomes)
    assert "<- best" in text
    assert "new3d" in text and "baseline3d" in text
    assert compare_outcomes({}) == "(no outcomes)"


# ---- model self-validation -----------------------------------------------------

def test_validate_simulation_all_algorithms(solver):
    from repro.perf import validate_simulation

    b = make_rhs(solver.n, 2)
    for alg in ("new3d", "baseline3d"):
        out = solver.solve(b, algorithm=alg)
        rep = validate_simulation(solver, out)
        assert rep.ok, rep.summary()
        assert rep.slack >= 1.0
        assert "consistent" in rep.summary()


def test_validate_simulation_gpu():
    from repro.perf import validate_simulation

    A = poisson2d(12, stencil=9, seed=9)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU)
    out = s.solve(make_rhs(A.shape[0], 1), device="gpu")
    rep = validate_simulation(s, out, device="gpu")
    assert rep.ok, rep.summary()


def test_validation_report_flags_violations():
    from repro.perf.validation import ValidationReport

    bad = ValidationReport(simulated=1.0, critical_path_bound=2.0,
                           roofline_bound=0.5)
    assert not bad.ok
    assert "VIOLATES" in bad.summary()
    assert bad.slack == pytest.approx(0.5)
