"""Unit tests for the matrix structural-analysis helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import (
    PAPER_MATRICES,
    check_solver_requirements,
    get_matrix,
    matrix_stats,
    poisson2d,
)


def test_stats_on_known_matrix():
    A = poisson2d(4, stencil=5)
    st = matrix_stats(A)
    assert st.n == 16
    assert st.nnz == A.nnz
    assert st.bandwidth == 4  # +/- nx coupling
    assert st.max_degree == 4
    assert st.pattern_symmetric
    assert st.diag_dominance > 0
    assert "n=16" in st.summary()


def test_stats_density_bounds():
    A = sp.identity(10, format="csr")
    st = matrix_stats(A)
    assert st.density == pytest.approx(0.1)
    assert st.avg_degree == 0.0
    assert st.bandwidth == 0


def test_stats_rejects_rectangular():
    with pytest.raises(ValueError):
        matrix_stats(sp.csr_matrix((3, 4)))


def test_requirements_pass_for_generators():
    for name in PAPER_MATRICES:
        A = get_matrix(name, "tiny")
        assert check_solver_requirements(A) == [], name


def test_requirements_flag_asymmetric_pattern():
    A = sp.csr_matrix(np.array([[4.0, 1.0], [0.0, 4.0]]))
    problems = check_solver_requirements(A)
    assert any("not symmetric" in p for p in problems)


def test_requirements_flag_weak_diagonal():
    A = sp.csr_matrix(np.array([[1.0, -2.0], [-2.0, 1.0]]))
    problems = check_solver_requirements(A)
    assert any("dominant" in p for p in problems)


def test_requirements_flag_zero_diagonal():
    A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
    problems = check_solver_requirements(A)
    assert any("zero diagonal" in p for p in problems)


def test_requirements_flag_rectangular():
    assert check_solver_requirements(sp.csr_matrix((2, 3))) == \
        ["matrix is not square"]
