"""Tests for ``repro.fleet`` — ring, fleet service, autoscaler, reports.

The headline properties pinned here:

- a 1-worker fleet is *bit-identical* to a bare ``SolveService`` on the
  same workload (same SLO JSON, same solutions);
- every fleet run — including crash/recovery and autoscaled runs — folds
  into a byte-identical ``FleetReport`` when replayed from the seed;
- the consistent-hash ring remaps at most the expected key fraction when
  workers join or leave, and replication spreads a hot fingerprint over
  distinct workers.
"""

import json

import numpy as np
import pytest

from repro.check import check_fleet
from repro.comm.faults import FaultPlan, FaultSchedule
from repro.fleet import (
    Autoscaler,
    AutoscalerPolicy,
    FleetConfig,
    FleetService,
    HashRing,
    crash_windows,
)
from repro.serve import (
    BatchPolicy,
    ServiceConfig,
    SolveService,
    WorkloadSpec,
    generate_bulk_workload,
    generate_workload,
    zipf_mix,
)
from repro.serve.cache import CacheKey

GRID = dict(px=1, py=1, pz=2)


def _workload(n=24, rate=1e6, seed=0, s=1.0,
              matrices=("s2D9pt2048", "nlpkkt80", "ldoor")):
    return generate_workload(WorkloadSpec(
        seed=seed, rate=rate, n_requests=n,
        mix=zipf_mix(matrices, "tiny", s=s), deadline=0.1))


def _fleet(workers=3, crash=None, autoscaler=None, **kw):
    return FleetService(
        FleetConfig(workers=workers, **kw),
        ServiceConfig(**GRID),
        BatchPolicy(max_batch=4, max_wait=1e-3, queue_bound=64),
        crash_schedule=crash, autoscaler=autoscaler, invariants=True)


# ---------------------------------------------------------------- ring


def test_ring_routes_to_known_workers():
    ring = HashRing(range(4))
    assert ring.workers == (0, 1, 2, 3)
    assert len(ring) == 4
    for key in ("a", "b", "c", "spTRSV"):
        assert ring.owner(key) in ring.workers


def test_ring_route_replication_distinct_workers():
    ring = HashRing(range(5))
    owners = ring.route("hot-matrix", n=3)
    assert len(owners) == 3
    assert len(set(owners)) == 3
    # n larger than the fleet degrades to every worker, once each.
    assert sorted(ring.route("k", n=99)) == [0, 1, 2, 3, 4]


def test_ring_add_remove_remap_bound():
    """Adding / removing one of W workers remaps ~1/W of the keys."""
    keys = [f"key-{i}" for i in range(2000)]
    ring = HashRing(range(8), vnodes=64)
    before = {k: ring.owner(k) for k in keys}

    ring.add(8)
    after = {k: ring.owner(k) for k in keys}
    moved = sum(1 for k in keys if before[k] != after[k])
    # Expected 1/9 of keys move; allow 2x headroom for hash variance.
    assert moved <= 2 * len(keys) / 9
    # Every key that moved, moved *to* the new worker — nothing else
    # reshuffles under consistent hashing.
    assert all(after[k] == 8 for k in keys if before[k] != after[k])

    ring.remove(8)
    assert {k: ring.owner(k) for k in keys} == before


def test_ring_stable_under_reseed():
    """Same seed => same placement; different seed => different ring."""
    keys = [f"m{i}" for i in range(500)]
    a = HashRing(range(4), seed=7)
    b = HashRing(range(4), seed=7)
    c = HashRing(range(4), seed=8)
    assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]
    assert [a.owner(k) for k in keys] != [c.owner(k) for k in keys]


def test_ring_edge_cases():
    ring = HashRing()
    assert ring.route("k") == ()
    ring.add(3)
    assert ring.owner("anything") == 3
    assert 3 in ring
    with pytest.raises(ValueError):
        ring.add(3)
    with pytest.raises(ValueError):
        ring.remove(5)
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


# ----------------------------------------------------- workload: zipf


def test_zipf_mix_weights():
    mix = zipf_mix(("a", "b", "c"), "tiny", s=1.0)
    assert [m[0] for m in mix] == ["a", "b", "c"]
    assert [m[2] for m in mix] == [1.0, 0.5, pytest.approx(1 / 3)]
    flat = zipf_mix(("a", "b"), "tiny", s=0.0)
    assert [m[2] for m in flat] == [1.0, 1.0]
    with pytest.raises(ValueError):
        zipf_mix((), "tiny")
    with pytest.raises(ValueError):
        zipf_mix(("a",), "tiny", s=-1.0)


def test_bulk_workload_seeded_determinism():
    spec = WorkloadSpec(seed=11, rate=5e4, n_requests=4000,
                        mix=zipf_mix(("a", "b", "c", "d"), "tiny", s=1.0),
                        deadline=0.05)
    w1, w2 = generate_bulk_workload(spec), generate_bulk_workload(spec)
    assert w1.to_json() == w2.to_json()
    assert len(w1) == 4000
    assert w1.meta["generator"] == "bulk"
    # Zipf skew shows: the rank-0 matrix dominates the draw.
    counts = {}
    for r in w1.requests:
        counts[r.matrix] = counts.get(r.matrix, 0) + 1
    assert counts["a"] > counts["b"] > counts["d"]
    # Arrivals are sorted and strictly positive.
    arr = [r.arrival for r in w1.requests]
    assert arr == sorted(arr) and arr[0] > 0


def test_bulk_workload_scales_to_millions():
    spec = WorkloadSpec(seed=3, rate=1e6, n_requests=1_000_000,
                        mix=zipf_mix(("a", "b"), "tiny"), deadline=0.05)
    wl = generate_bulk_workload(spec)
    assert len(wl) == 1_000_000
    assert wl.requests[-1].id == 999_999


def test_scalar_generator_unchanged_by_bulk_path():
    """generate_workload's draw order must not change (replay compat)."""
    spec = WorkloadSpec(seed=5, rate=2000.0, n_requests=8,
                        mix=(("a", "tiny", 1.0),), deadline=0.1)
    wl = generate_workload(spec)
    rng = np.random.default_rng(5)
    gaps = [rng.exponential(1 / 2000.0) for _ in range(8)]
    assert wl.requests[0].arrival == pytest.approx(gaps[0])


# -------------------------------------------------- fleet: 1-worker parity


def test_single_worker_fleet_matches_solveservice():
    wl = _workload(n=24)
    svc = SolveService(ServiceConfig(**GRID),
                       BatchPolicy(max_batch=4, max_wait=1e-3,
                                   queue_bound=64),
                       keep_solutions=True)
    ref = svc.run(wl)
    fs = FleetService(FleetConfig(workers=1), ServiceConfig(**GRID),
                      BatchPolicy(max_batch=4, max_wait=1e-3,
                                  queue_bound=64),
                      keep_solutions=True, invariants=True)
    res = fs.run(wl)
    assert res.workers[0].slo.to_json() == ref.slo.to_json()
    assert res.slo.to_json() == ref.slo.to_json()
    assert set(res.solutions) == set(ref.solutions)
    for rid, x in ref.solutions.items():
        assert np.array_equal(res.solutions[rid], x)


# ----------------------------------------------------- fleet: sharding


def test_fleet_shards_by_fingerprint():
    wl = _workload(n=30)
    fs = _fleet(workers=3)
    res = fs.run(wl)
    assert res.slo.n_completed + res.slo.n_shed == len(wl)
    # Same matrix always lands on the same worker (replication=1).
    where = {}
    for i, w in res.workers.items():
        for c in fs.workers[i].res.completions:
            where.setdefault(c.request.matrix, set()).add(i)
    assert all(len(s) == 1 for s in where.values())
    assert check_fleet(wl, res, service=fs) > 0


def test_fleet_replication_spreads_hot_matrix():
    wl = _workload(n=40, s=8.0)   # essentially one hot matrix
    fs = _fleet(workers=4, replication=2)
    res = fs.run(wl)
    hot = max(((r.matrix, r.scale) for r in wl.requests),
              key=[r.matrix for r in wl.requests].count)
    served = {i for i, w in fs.workers.items()
              for c in w.res.completions if c.request.matrix == hot[0]}
    assert len(served) == 2
    assert res.slo.n_completed + res.slo.n_shed == len(wl)


def test_fleet_report_replayable_from_seed():
    def run():
        return _fleet(workers=3).run(_workload(n=24, seed=9))
    assert run().report.to_json() == run().report.to_json()


# ------------------------------------------------ fleet: crash/recovery


def _crash(worker, tc, tr):
    return FaultSchedule(
        ((tc, tr, FaultPlan.uniform(seed=worker, crash={worker: tc})),))


def test_crash_windows_clamps_into_phase():
    sched = FaultSchedule((
        (1e-3, 2e-3, FaultPlan.uniform(seed=0, crash={0: 5e-4, 1: 1.5e-3})),
    ))
    wins = crash_windows(sched)
    assert wins == [(1e-3, 2e-3, 0), (1.5e-3, 2e-3, 1)]


def test_fleet_crash_rerouted_and_conserved():
    wl = _workload(n=40, rate=1e6)
    fs = _fleet(workers=3, crash=_crash(1, 5e-4, 4e-3))
    res = fs.run(wl)
    assert res.counters["n_crashes"] == 1
    assert res.counters["n_recoveries"] == 1
    assert res.counters["n_rerouted"] > 0
    assert res.slo.n_completed + res.slo.n_shed == len(wl)
    assert fs.workers[1].incarnations == 2
    # The recovered incarnation starts with a cold cache.
    kinds = [e["kind"] for e in res.events]
    assert kinds.count("crash") == 1 and kinds.count("recover") == 1
    assert check_fleet(wl, res, service=fs) > 0


def test_fleet_crash_run_byte_identical():
    def run():
        fs = _fleet(workers=3, crash=_crash(1, 5e-4, 4e-3))
        return fs.run(_workload(n=40, rate=1e6))
    assert run().report.to_json() == run().report.to_json()


def test_fleet_crash_latency_counts_detour():
    """Re-routed requests keep their original arrival: the detour shows
    up as latency, not as a fresh request."""
    wl = _workload(n=40, rate=1e6)
    plain = _fleet(workers=3).run(wl)
    crashed = _fleet(workers=3, crash=_crash(1, 5e-4, 4e-3)).run(wl)
    assert crashed.slo.latency_p95 >= plain.slo.latency_p95


def test_fleet_all_workers_down_sheds_typed():
    wl = _workload(n=12, rate=1e6, matrices=("s2D9pt2048",))
    fs = _fleet(workers=1, crash=_crash(0, 1e-5, 1.0))
    res = fs.run(wl)
    shed = [r for r in res.rejections if r.reason.value == "worker-crash"]
    assert shed, "expected worker-crash sheds with no live workers"
    assert res.slo.n_completed + res.slo.n_shed == len(wl)
    assert check_fleet(wl, res, service=fs) > 0


# --------------------------------------------------------- autoscaler


def test_autoscaler_policy_decisions():
    pol = AutoscalerPolicy(high_depth=8.0, low_depth=1.0,
                           min_workers=1, max_workers=4, cooldown_ticks=1)
    sc = Autoscaler(pol)
    up = sc.decide({0: 20.0, 1: 20.0}, 2, None)
    assert up.action == "up"
    # Cooldown holds the next tick even under pressure.
    assert sc.decide({0: 20.0, 1: 20.0}, 2, None).action == "hold"
    down = sc.decide({0: 0.0, 1: 0.0, 2: 0.0}, 3, None)
    assert down.action == "down"
    assert sc.decide({0: 0.0}, 1, None).action == "hold"   # at min_workers
    sc2 = Autoscaler(pol)
    assert sc2.decide({i: 20.0 for i in range(4)}, 4,
                      None).action == "hold"               # at max_workers


def test_autoscaler_latency_signal():
    pol = AutoscalerPolicy(high_depth=1e9, high_latency=1e-3,
                           max_workers=4, cooldown_ticks=0)
    sc = Autoscaler(pol)
    assert sc.decide({0: 0.0}, 1, 5e-3).action == "up"
    assert sc.decide({0: 0.0, 1: 0.0}, 2, 1e-4).action == "down"


def test_autoscaler_policy_validation():
    with pytest.raises(ValueError):
        AutoscalerPolicy(min_workers=0)
    with pytest.raises(ValueError):
        AutoscalerPolicy(min_workers=4, max_workers=2)
    with pytest.raises(ValueError):
        AutoscalerPolicy(period=0.0)


def test_drain_victim_prefers_replicated_caches():
    """Regression: the scale-down victim used to be the least-loaded
    routable worker even when it held the fleet's *only* warm copy of a
    hot factorization — draining it cratered the hit rate on the next
    burst, because every request for that matrix refactored cold.  The
    victim choice must spare workers with uniquely-warm fingerprints
    when a fully replicated one is available."""

    class _FakeSolver:
        def storage_nbytes(self):
            return 128

    def key(fp):
        return CacheKey(fingerprint=fp, px=1, py=1, pz=2,
                        machine="cori-haswell", max_supernode=64,
                        symbolic_mode="exact", ordering="nd")

    fs = _fleet(workers=3)
    fs.workers = {i: fs._spawn(i, t0=0.0) for i in range(3)}
    # "hot" is warm ONLY on worker 2; "shared" is replicated on 0 and 1.
    fs.workers[0].svc.cache.put(key("shared"), _FakeSolver())
    fs.workers[1].svc.cache.put(key("shared"), _FakeSolver())
    fs.workers[2].svc.cache.put(key("hot"), _FakeSolver())

    depths = {0: 2, 1: 3, 2: 1}   # worker 2 is also the least loaded
    victim = fs._drain_victim([0, 1, 2], depths)
    # The pre-fix (depth, -index) rule drained worker 2 — the sole warm
    # replica of "hot".  Locality-aware choice spares it and takes the
    # least-loaded of the fully-replicated workers instead.
    assert victim == 0
    # Everything warm on the victim survives elsewhere in the fleet...
    survivors = set().union(*(fs.workers[i].svc.cache.warm_fingerprints()
                              for i in (1, 2)))
    assert fs.workers[victim].svc.cache.warm_fingerprints() <= survivors
    # ...whereas draining worker 2 would have lost the only copy.
    assert "hot" not in set().union(
        *(fs.workers[i].svc.cache.warm_fingerprints() for i in (0, 1)))
    # With no replicated victim available the rule degrades to pure
    # load: all-solo caches fall back to (depth, -index).
    fs.workers[0].svc.cache._entries.clear()
    fs.workers[1].svc.cache._entries.clear()
    fs.workers[0].svc.cache.put(key("a"), _FakeSolver())
    fs.workers[1].svc.cache.put(key("b"), _FakeSolver())
    assert fs._drain_victim([0, 1, 2], depths) == 2


def test_fleet_autoscales_up_and_replays():
    def run():
        fs = _fleet(workers=1,
                    autoscaler=AutoscalerPolicy(period=5e-4, max_workers=4))
        return fs.run(_workload(n=48, rate=1e6))
    res = run()
    assert res.counters["n_scale_up"] > 0
    assert res.slo.n_completed + res.slo.n_shed == 48
    assert res.report.to_json() == run().report.to_json()


# ------------------------------------------------------ report surface


def test_fleet_report_shape():
    fs = _fleet(workers=2, crash=_crash(0, 5e-4, 2e-3))
    res = fs.run(_workload(n=20, rate=1e6))
    doc = json.loads(res.report.to_json())
    assert doc["version"] == 1
    assert doc["n_requests"] == 20
    assert doc["config"]["workers"] == 2
    assert doc["config"]["crash_windows"] == [[5e-4, 2e-3, 0]]
    assert set(doc["workers"]) == {"0", "1"}
    for w in doc["workers"].values():
        assert {"slo", "final_state", "incarnations",
                "n_routed", "n_rerouted_away"} <= set(w)
    assert any(e["kind"] == "crash" for e in doc["events"])
    # The aggregate fold matches the per-worker SLO sums.
    agg = doc["fleet"]
    assert agg["n_batches"] == sum(w["slo"]["n_batches"]
                                   for w in doc["workers"].values())


def test_fleet_admission_bound_sheds_typed():
    wl = _workload(n=40, rate=1e6)
    fs = _fleet(workers=2, admit_bound=4)
    res = fs.run(wl)
    front = [r for r in res.rejections
             if r.detail == "front-door admission bound"]
    assert front
    assert res.counters["front_shed"]["queue-full"] == len(front)
    assert res.slo.n_completed + res.slo.n_shed == len(wl)
    assert check_fleet(wl, res, service=fs) > 0
