"""Tests for the extended generator set and trace export."""

import json
import os

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator
from repro.comm.trace_export import to_chrome_trace, to_csv
from repro.core import SpTRSVSolver
from repro.matrices import (
    block_tridiagonal,
    check_solver_requirements,
    helmholtz_like,
    make_rhs,
    poisson2d_anisotropic,
)
from repro.numfact import solve_residual
from repro.perf import level_profile


@pytest.mark.parametrize("gen", [
    lambda: poisson2d_anisotropic(8, epsilon=0.01),
    lambda: helmholtz_like(8, shift=0.4, seed=1),
    lambda: block_tridiagonal(10, block=4, seed=2),
])
def test_new_generators_meet_requirements(gen):
    A = gen()
    assert check_solver_requirements(A) == []


@pytest.mark.parametrize("gen", [
    lambda: poisson2d_anisotropic(8),
    lambda: helmholtz_like(7, seed=3),
    lambda: block_tridiagonal(8, block=4, seed=4),
])
def test_new_generators_solve(gen):
    A = gen()
    solver = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    b = make_rhs(A.shape[0], 1)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-10


def test_anisotropy_changes_coupling():
    A = poisson2d_anisotropic(6, epsilon=0.01)
    M = abs(A).toarray()
    # Strong x-coupling (stride ny) vs weak y-coupling (stride 1).
    assert M[0, 6] > 10 * M[0, 1]


def test_helmholtz_shift_validation():
    with pytest.raises(ValueError):
        helmholtz_like(5, shift=1.5)


def test_block_tridiagonal_is_a_chain():
    """The block-tridiagonal DAG has depth ~ nsup (no level parallelism)."""
    from repro.numfact import lu_factorize
    from repro.symbolic import fixed_partition

    A = block_tridiagonal(12, block=4, seed=5)
    part = fixed_partition(48, 4)
    lu = lu_factorize(A, part)
    prof = level_profile(lu, "L")
    assert prof.depth == lu.nsup          # pure chain
    assert prof.max_width == 1


# ---- trace export ------------------------------------------------------------

def _traced_result():
    def fn(ctx):
        ctx.set_phase("l")
        if ctx.rank == 0:
            yield ctx.compute(1.0, category="fp")
            yield ctx.send(1, np.zeros(4), tag=0, category="xy")
        else:
            yield ctx.recv(src=0, tag=0, category="xy")

    return Simulator(2, CORI_HASWELL, trace=True).run(fn)


def test_chrome_trace_export(tmp_path):
    res = _traced_result()
    path = str(tmp_path / "trace.json")
    n = to_chrome_trace(res, path)
    assert n == len(res.trace)
    with open(path) as f:
        doc = json.load(f)
    evs = doc["traceEvents"]
    assert all(e["ph"] == "X" for e in evs)
    assert {e["tid"] for e in evs} == {0, 1}
    send = [e for e in evs if e["cat"] == "send"][0]
    assert send["args"]["peer"] == 1
    assert send["name"] == "l:xy"


def test_csv_trace_export(tmp_path):
    res = _traced_result()
    path = str(tmp_path / "trace.csv")
    n = to_csv(res, path)
    with open(path) as f:
        lines = f.read().strip().splitlines()
    assert lines[0].startswith("rank,")
    assert len(lines) == n + 1
