"""Property-based tests (hypothesis) on the core invariants.

These exercise the pipeline and data structures on adversarial random
inputs: arbitrary structurally symmetric diagonally dominant matrices,
arbitrary grid shapes, arbitrary tree member sets.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.comm import CORI_HASWELL, Simulator, allreduce, binary_tree, flat_tree
from repro.core import SpTRSVSolver
from repro.matrices import make_rhs
from repro.numfact import dense_lu_nopivot, lu_factorize, solve_residual
from repro.ordering import etree, nested_dissection, postorder
from repro.symbolic import fixed_partition, symbolic_factor
from repro.util import check_permutation, inverse_permutation

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=60, deadline=None)


# ---- random matrix strategy --------------------------------------------------

@st.composite
def dd_matrices(draw, max_n=60):
    """Random structurally symmetric, strictly diagonally dominant CSR."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    density = draw(st.floats(min_value=0.02, max_value=0.25))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    nnz = max(1, int(density * n * n / 2))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    keep = rows != cols
    A = sp.csr_matrix((-rng.uniform(0.1, 1.0, size=int(keep.sum())),
                       (rows[keep], cols[keep])), shape=(n, n))
    A = A + A.T
    A.setdiag(0)
    A.eliminate_zeros()
    rowsum = np.abs(A).sum(axis=1).A1
    A = sp.csr_matrix(A + sp.diags(rowsum + 1.0))
    A.sort_indices()
    return A


# ---- end-to-end pipeline ------------------------------------------------------

@SLOW
@given(A=dd_matrices(), pz_log=st.integers(0, 2),
       px=st.integers(1, 3), py=st.integers(1, 3),
       nrhs=st.integers(1, 3),
       alg=st.sampled_from(["new3d", "baseline3d"]))
def test_pipeline_solves_random_matrices(A, pz_log, px, py, nrhs, alg):
    pz = 1 << pz_log
    solver = SpTRSVSolver(A, px, py, pz, max_supernode=5)
    b = make_rhs(A.shape[0], nrhs, kind="random", seed=0)
    out = solver.solve(b, algorithm=alg)
    assert solve_residual(A, out.x, b) < 1e-8


@SLOW
@given(A=dd_matrices(max_n=40), pz_log=st.integers(0, 2),
       px=st.integers(1, 2))
def test_gpu_pipeline_random_matrices(A, pz_log, px):
    from repro.comm import PERLMUTTER_GPU

    pz = 1 << pz_log
    solver = SpTRSVSolver(A, px, 1, pz, max_supernode=5,
                          machine=PERLMUTTER_GPU)
    b = make_rhs(A.shape[0], 2, kind="random", seed=1)
    out = solver.solve(b, device="gpu")
    assert solve_residual(A, out.x, b) < 1e-8
    # GPU and CPU paths agree on the same factors.
    cpu = solver.solve(b, device="cpu")
    assert np.allclose(out.x, cpu.x, atol=1e-9)


# ---- ordering ------------------------------------------------------------------

@FAST
@given(A=dd_matrices(), min_depth=st.integers(0, 4))
def test_nd_permutation_and_separation(A, min_depth):
    n = A.shape[0]
    tree = nested_dissection(A, leaf_size=4, min_depth=min_depth)
    check_permutation(tree.perm, n)
    assert tree.min_leaf_depth() >= min_depth
    # Separator property on every internal node.
    perm = tree.perm
    Ap = sp.csr_matrix(A)[perm][:, perm].tocoo()
    for nd in tree.nodes:
        if not nd.children:
            continue
        l, r = (tree.nodes[c] for c in nd.children)
        in_left = (Ap.row >= l.subtree_first) & (Ap.row < l.last)
        in_right = (Ap.col >= r.subtree_first) & (Ap.col < r.last)
        assert not (in_left & in_right).any()


@FAST
@given(A=dd_matrices())
def test_etree_parents_above(A):
    parent = etree(A)
    n = A.shape[0]
    for j in range(n):
        assert parent[j] == -1 or parent[j] > j
    post = postorder(parent)
    check_permutation(post, n)


# ---- symbolic -------------------------------------------------------------------

@FAST
@given(A=dd_matrices(max_n=40), mx=st.integers(1, 8))
def test_symbolic_pattern_superset_of_A(A, mx):
    """The fill pattern always contains A's below-diagonal pattern."""
    sym = symbolic_factor(A, max_supernode=mx)
    part = sym.partition
    assert part.n == A.shape[0]
    assert max(np.diff(part.sn_start)) <= mx
    coo = sp.tril(A, k=-1).tocoo()
    col2sn = part.col2sn()
    below = {s: set(r.tolist()) for s, r in enumerate(sym.below_rows)}
    for i, j in zip(coo.row, coo.col):
        s = col2sn[j]
        if i >= part.last(s):
            assert int(i) in below[s]


@FAST
@given(n=st.integers(1, 200), mx=st.integers(1, 20),
       nb=st.integers(0, 5), seed=st.integers(0, 1000))
def test_fixed_partition_properties(n, mx, nb, seed):
    rng = np.random.default_rng(seed)
    cuts = np.unique(np.concatenate(
        [[0, n], rng.integers(0, n + 1, size=nb)]))
    part = fixed_partition(n, mx, cuts)
    assert part.n == n
    assert max(np.diff(part.sn_start)) <= mx
    starts = set(part.sn_start.tolist())
    assert set(cuts.tolist()) <= starts


# ---- numeric factorization -------------------------------------------------------

@FAST
@given(m=st.integers(1, 20), seed=st.integers(0, 1000))
def test_dense_lu_random_dd(m, seed):
    rng = np.random.default_rng(seed)
    D = rng.standard_normal((m, m))
    D += np.diag(np.abs(D).sum(axis=1) + 1.0)
    L, U = dense_lu_nopivot(D)
    assert np.allclose(L @ U, D, atol=1e-9 * max(1.0, abs(D).max()))


@SLOW
@given(A=dd_matrices(max_n=50), mx=st.integers(1, 8))
def test_lu_factorization_residual(A, mx):
    sym = symbolic_factor(A, max_supernode=mx)
    lu = lu_factorize(A, sym.partition)
    b = make_rhs(A.shape[0], 1, "random", seed=0)
    x = lu.solve(b)
    assert solve_residual(A, x, b) < 1e-9


# ---- trees and collectives ---------------------------------------------------------

@FAST
@given(members=st.lists(st.integers(0, 100), min_size=1, max_size=30,
                        unique=True),
       root_idx=st.integers(0, 29),
       builder=st.sampled_from([binary_tree, flat_tree]))
def test_tree_spanning_property(members, root_idx, builder):
    root = members[root_idx % len(members)]
    tree = builder(members, root)
    assert tree.root == root
    seen = {root}
    frontier = [root]
    while frontier:
        r = frontier.pop()
        for c in tree.children(r):
            assert c not in seen
            assert tree.parent(c) == r
            seen.add(c)
            frontier.append(c)
    assert seen == set(members)


@FAST
@given(n=st.integers(1, 10), sub=st.data())
def test_allreduce_equals_numpy_sum(n, sub):
    members = sub.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                max_size=n, unique=True))
    values = {m: np.array([float(m + 1), float(m) ** 2]) for m in members}

    def fn(ctx):
        if ctx.rank in members:
            out = yield from allreduce(ctx, members, values[ctx.rank])
            return out
        return None
        yield  # pragma: no cover - make non-members generators too

    res = Simulator(n, CORI_HASWELL).run(fn)
    expected = sum(values.values())
    for m in members:
        assert np.allclose(res.results[m], expected)


# ---- util ---------------------------------------------------------------------------

@FAST
@given(perm=st.permutations(list(range(12))))
def test_inverse_permutation_roundtrip(perm):
    p = np.array(perm)
    ip = inverse_permutation(p)
    assert (p[ip] == np.arange(12)).all()
    assert (ip[p] == np.arange(12)).all()


# ---- cross-implementation equivalences under random inputs --------------------

@SLOW
@given(A=dd_matrices(max_n=45), mx=st.integers(1, 6))
def test_left_and_right_looking_agree(A, mx):
    from repro.numfact import lu_factorize, lu_factorize_leftlooking

    part = symbolic_factor(A, max_supernode=mx).partition
    rl = lu_factorize(A, part)
    ll = lu_factorize_leftlooking(A, part)
    b = make_rhs(A.shape[0], 1, "random", seed=0)
    assert np.allclose(rl.solve(b), ll.solve(b), atol=1e-9)


@SLOW
@given(A=dd_matrices(max_n=40), pz_log=st.integers(1, 2))
def test_sparse_and_naive_allreduce_agree(A, pz_log):
    pz = 1 << pz_log
    solver = SpTRSVSolver(A, 1, 1, pz, max_supernode=5)
    b = make_rhs(A.shape[0], 1, "random", seed=1)
    xs = solver.solve(b, allreduce_impl="sparse").x
    xn = solver.solve(b, allreduce_impl="naive").x
    assert np.allclose(xs, xn, atol=1e-10)


@FAST
@given(m=st.integers(1, 12), n=st.integers(1, 12),
       seed=st.integers(0, 500), tol=st.sampled_from([0.0, 1e-12]))
def test_skyline_roundtrip_property(m, n, seed, tol):
    from repro.numfact import SkylineBlock

    rng = np.random.default_rng(seed)
    block = rng.standard_normal((m, n))
    block[rng.random((m, n)) < 0.4] = 0.0
    sk = SkylineBlock.from_dense(block, tol=tol)
    assert np.allclose(sk.to_dense(), block)
    x = rng.standard_normal((n, 2))
    assert np.allclose(sk.matvec(x), block @ x, atol=1e-12)
    assert sk.stored_entries <= sk.full_entries


@SLOW
@given(A=dd_matrices(max_n=40), mx=st.integers(1, 6))
def test_level_profile_invariants(A, mx):
    from repro.numfact import lu_factorize
    from repro.perf import level_profile

    part = symbolic_factor(A, max_supernode=mx).partition
    lu = lu_factorize(A, part)
    prof = level_profile(lu, "L")
    assert prof.widths.sum() == lu.nsup
    for J in range(lu.nsup):
        for I in lu.l_blockrows[J]:
            assert prof.levels[int(I)] > prof.levels[J]
