"""Tests for repro.analyze: schedule extraction + static verification.

Pathological hand-written schedules must be *rejected with exact
witnesses*; the real solver schedules must be *certified* — deadlock-free,
match-deterministic, and with the paper's sync counts recovered statically
(no cost model, no simulation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyze import (
    allreduce_schedule,
    expected_syncs,
    extract_schedule,
    gpu_schedules,
    solver_schedule,
    verify_schedule,
)
from repro.comm.simulator import ANY
from repro.core.solver import SpTRSVSolver
from repro.matrices import poisson2d


# ---------------------------------------------------------------------------
# Pathological schedules: exact witnesses.
# ---------------------------------------------------------------------------


def test_send_send_deadlock_under_rendezvous():
    """The classic head-to-head send: eager-safe, rendezvous-deadlocked."""

    def fn(ctx):
        peer = 1 - ctx.rank
        yield ctx.send(peer, np.zeros(4), tag="x")
        yield ctx.recv(src=peer, tag="x")

    eager = verify_schedule(extract_schedule(2, fn))
    assert eager.ok

    rep = verify_schedule(extract_schedule(2, fn, rendezvous=True))
    assert not rep.deadlock_free and not rep.ok
    assert rep.deadlock is not None
    assert rep.deadlock.cycle == [0, 1]
    assert all("rendezvous send" in e for e in rep.deadlock.edges)


def test_three_rank_wait_cycle():
    def fn(ctx):
        nxt = (ctx.rank + 1) % 3
        _ = yield ctx.recv(src=nxt, tag="t")
        yield ctx.send((ctx.rank - 1) % 3, np.zeros(1), tag="t")

    sched = extract_schedule(3, fn)
    assert not sched.complete
    rep = verify_schedule(sched)
    assert rep.deadlock is not None
    assert rep.deadlock.cycle == [0, 1, 2]
    assert len(rep.deadlock.edges) == 3


def test_witness_cycle_is_minimal():
    """Ranks 2 and 3 wait into a 2-cycle; the witness is only the 2-cycle."""

    def fn(ctx):
        wait_on = {0: 1, 1: 0, 2: 0, 3: 2}[ctx.rank]
        _ = yield ctx.recv(src=wait_on, tag="t")
        yield ctx.send(wait_on, np.zeros(1), tag="t")

    rep = verify_schedule(extract_schedule(4, fn))
    assert rep.deadlock is not None
    assert rep.deadlock.cycle == [0, 1]


def test_racy_any_source_pair():
    """One wildcard recv, two feasible senders: race with both named."""

    def fn(ctx):
        if ctx.rank == 0:
            _ = yield ctx.recv(src=ANY, tag="m")
        else:
            yield ctx.send(0, np.zeros(1), tag="m")

    sched = extract_schedule(3, fn)
    assert sched.complete          # eagerly it runs; the *structure* races
    rep = verify_schedule(sched)
    assert not rep.match_deterministic and not rep.ok
    [race] = rep.races
    assert race.rank == 0 and race.wildcard
    assert race.positions == [0]
    assert sorted({s for s, _, _ in race.feasible}) == [1, 2]
    # The losing send is also flagged as never received.
    assert [i.kind for i in rep.endpoint_issues] == ["unmatched-send"]


def test_clean_tree_broadcast_certified():
    """Exact-source tree broadcast: no wildcards, everything matched."""

    children = {0: [1, 2], 1: [3], 2: [], 3: []}
    parent = {1: 0, 2: 0, 3: 1}

    def fn(ctx):
        if ctx.rank != 0:
            _ = yield ctx.recv(src=parent[ctx.rank], tag="b")
        for c in children[ctx.rank]:
            yield ctx.send(c, np.zeros(8), tag="b")

    for rendezvous in (False, True):
        rep = verify_schedule(extract_schedule(4, fn, rendezvous=rendezvous))
        assert rep.ok
        assert rep.wildcard_groups == [] and rep.races == []
    # Tree broadcasts are rendezvous-safe; that is part of the certificate.


def test_unsatisfiable_recv_is_endpoint_not_deadlock():
    def fn(ctx):
        if ctx.rank == 0:
            _ = yield ctx.recv(src=1, tag="never")
        else:
            yield ctx.send(0, np.zeros(1), tag="other")

    rep = verify_schedule(extract_schedule(2, fn))
    assert rep.deadlock is None            # acyclic stall, not a cycle
    kinds = sorted(i.kind for i in rep.endpoint_issues)
    assert kinds == ["unmatched-recv", "unmatched-send"]


# ---------------------------------------------------------------------------
# Set-determinism: the wildcard-group race rule.
# ---------------------------------------------------------------------------


def test_wildcard_group_set_deterministic():
    """k wildcard recvs fed by exactly k sends: certified, no race."""

    def fn(ctx):
        if ctx.rank == 0:
            for _ in range(2):
                _ = yield ctx.recv(src=ANY, tag="m")
        else:
            yield ctx.send(0, np.zeros(1), tag="m")

    rep = verify_schedule(extract_schedule(3, fn))
    assert rep.ok
    [grp] = rep.wildcard_groups
    assert grp.rank == 0 and grp.nfeasible == 2 and grp.positions == [0, 1]


def test_wildcard_group_overfed_is_race():
    """Same loop, three senders: one more feasible send than recvs."""

    def fn(ctx):
        if ctx.rank == 0:
            for _ in range(2):
                _ = yield ctx.recv(src=ANY, tag="m")
        else:
            yield ctx.send(0, np.zeros(1), tag="m")

    rep = verify_schedule(extract_schedule(4, fn))
    assert not rep.ok
    [race] = rep.races
    assert len(race.feasible) == 3 and len(race.positions) == 2


def test_causal_reordering_filters_dependent_sends():
    """A send that happens-after the group's last recv is not feasible."""

    def is_a(tag):
        return isinstance(tag, tuple) and tag[0] == "a"

    def fn(ctx):
        if ctx.rank == 0:
            _ = yield ctx.recv(src=ANY, tag=is_a)     # the wildcard group
            yield ctx.send(2, np.zeros(1), tag="go")
            _ = yield ctx.recv(src=2, tag=is_a)       # exact-src: own group
        elif ctx.rank == 1:
            yield ctx.send(0, np.zeros(1), tag=("a", 1))
        else:
            _ = yield ctx.recv(src=0, tag="go")
            yield ctx.send(0, np.zeros(1), tag=("a", 2))

    rep = verify_schedule(extract_schedule(3, fn))
    # Rank 2's ("a", 2) send is caused by the wildcard recv completing, so
    # no causal order could have delivered it there: group stays size 1.
    assert rep.ok
    [grp] = rep.wildcard_groups
    assert grp.nfeasible == 1


# ---------------------------------------------------------------------------
# Real solver schedules: certification + static sync counts.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def matrix():
    return poisson2d(12, stencil=9, seed=11)


@pytest.fixture(scope="module")
def solver224(matrix):
    return SpTRSVSolver(matrix, 2, 2, 4)


@pytest.mark.parametrize("algorithm", ["new3d", "baseline3d"])
def test_solver_schedules_certified(solver224, algorithm):
    sched = solver_schedule(solver224, algorithm=algorithm)
    rep = verify_schedule(sched)
    assert rep.ok, rep.summary()
    # The ANY-source kernels are certified *because* their recv loops are
    # proven set-deterministic, not because there are no wildcards.
    assert len(rep.wildcard_groups) > 0
    assert all(g.nfeasible == len(g.positions) for g in rep.wildcard_groups)


def test_static_sync_counts(solver224, matrix):
    """The paper's 1 vs ceil(log2 Pz) pinned with no cost model."""
    new = verify_schedule(solver_schedule(solver224, algorithm="new3d"))
    assert new.sync_labels == ["allreduce"]
    assert new.nsyncs == expected_syncs("new3d", 4) == 1

    base = verify_schedule(solver_schedule(solver224,
                                           algorithm="baseline3d"))
    assert base.sync_labels == ["level-0", "level-1"]
    assert base.nsyncs == expected_syncs("baseline3d", 4) == 2

    flat = SpTRSVSolver(matrix, 2, 2, 1)
    for alg in ("new3d", "2d"):
        rep = verify_schedule(solver_schedule(flat, algorithm=alg))
        assert rep.ok
        assert rep.nsyncs == expected_syncs(alg, 1) == 0


def test_allreduce_schedules(solver224):
    sparse = verify_schedule(allreduce_schedule(solver224, impl="sparse"))
    assert sparse.ok and sparse.sync_labels == ["allreduce"]
    naive = verify_schedule(allreduce_schedule(solver224, impl="naive"))
    assert naive.ok
    # The straw-man pays one sync per shared tree node — strictly more.
    assert naive.nsyncs > sparse.nsyncs
    assert all(s.startswith("node-") for s in naive.sync_labels)


def test_gpu_schedules_certified(matrix):
    solver = SpTRSVSolver(matrix, 2, 1, 2)
    scheds = gpu_schedules(solver)
    assert set(scheds) == {"gpu-l-grid0", "gpu-l-grid1", "gpu-allreduce",
                           "gpu-u-grid0", "gpu-u-grid1"}
    for name, sched in scheds.items():
        rep = verify_schedule(sched)
        assert rep.ok, f"{name}: {rep.summary()}"
        if name != "gpu-allreduce":
            # One-sided puts carry statically-known sources: no wildcards.
            assert rep.wildcard_groups == []
    assert verify_schedule(scheds["gpu-allreduce"]).nsyncs == 1


def test_expected_syncs_table():
    assert expected_syncs("new3d", 1) == 0
    assert expected_syncs("new3d", 8) == 1
    assert expected_syncs("baseline3d", 8) == 3
    assert expected_syncs("2d", 1) == 0
    with pytest.raises(ValueError):
        expected_syncs("nope", 4)


def test_schedule_summary_roundtrip(solver224):
    sched = solver_schedule(solver224, algorithm="new3d")
    s = verify_schedule(sched).summary()
    assert "certified" in s and "new3d" in s and "1 sync point(s)" in s
