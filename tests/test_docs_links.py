"""Documentation stays navigable: no broken intra-repo markdown links."""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "tools", "check_md_links.py"),
         REPO],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
