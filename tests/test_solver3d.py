"""Integration tests: full pipeline, all algorithms, many grid shapes."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, PERLMUTTER_CPU
from repro.core import SpTRSVSolver
from repro.matrices import (
    chemistry_like,
    fusion_block,
    kkt3d,
    make_rhs,
    poisson2d,
    poisson3d,
    random_spd_like,
)
from repro.numfact import solve_residual

GRID_SHAPES = [(1, 1, 1), (2, 2, 1), (1, 1, 2), (1, 1, 8),
               (2, 1, 4), (2, 3, 2), (3, 2, 4)]


@pytest.fixture(scope="module")
def A_poisson():
    return poisson2d(14, stencil=9, seed=4)


@pytest.mark.parametrize("shape", GRID_SHAPES)
@pytest.mark.parametrize("algorithm", ["new3d", "baseline3d"])
def test_solution_exact_on_grids(A_poisson, shape, algorithm):
    px, py, pz = shape
    solver = SpTRSVSolver(A_poisson, px, py, pz, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 2)
    out = solver.solve(b, algorithm=algorithm)
    assert solve_residual(A_poisson, out.x, b) < 1e-10


@pytest.mark.parametrize("gen", [
    lambda: poisson3d(5, stencil=7, seed=1),
    lambda: kkt3d(3, seed=2),
    lambda: chemistry_like(90, seed=3),
    lambda: fusion_block(12, block=4, seed=4),
    lambda: random_spd_like(150, avg_degree=5, seed=5),
])
def test_all_matrix_classes_all_algorithms(gen):
    A = gen()
    solver = SpTRSVSolver(A, 2, 2, 4, max_supernode=8)
    b = make_rhs(A.shape[0], 1, "random", seed=1)
    ref = solver.reference_solve(b)
    for algorithm in ("new3d", "baseline3d"):
        out = solver.solve(b, algorithm=algorithm)
        assert np.allclose(out.x, ref, atol=1e-9)
        assert solve_residual(A, out.x, b) < 1e-9


def test_2d_algorithm_requires_pz1(A_poisson):
    s1 = SpTRSVSolver(A_poisson, 2, 2, 1, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 1)
    out = s1.solve(b, algorithm="2d")
    assert solve_residual(A_poisson, out.x, b) < 1e-10
    s2 = SpTRSVSolver(A_poisson, 1, 1, 2, max_supernode=8)
    with pytest.raises(ValueError):
        s2.solve(b, algorithm="2d")


def test_unknown_algorithm_raises(A_poisson):
    solver = SpTRSVSolver(A_poisson, 1, 1, 1)
    with pytest.raises(ValueError):
        solver.solve(np.ones(A_poisson.shape[0]), algorithm="quantum")


def test_rhs_shape_checks(A_poisson):
    solver = SpTRSVSolver(A_poisson, 1, 1, 1)
    with pytest.raises(ValueError):
        solver.solve(np.ones(7))
    # 1-D RHS round-trips to 1-D solution.
    out = solver.solve(np.ones(A_poisson.shape[0]))
    assert out.x.ndim == 1


def test_multirhs_solutions_match_columnwise(A_poisson):
    solver = SpTRSVSolver(A_poisson, 2, 1, 2, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 3, "random", seed=7)
    out = solver.solve(b)
    for k in range(3):
        single = solver.solve(b[:, k])
        assert np.allclose(out.x[:, k], single.x, atol=1e-11)


def test_algorithms_agree_bitwise_tolerance(A_poisson):
    solver = SpTRSVSolver(A_poisson, 2, 2, 4, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 1)
    x_new = solver.solve(b, algorithm="new3d").x
    x_base = solver.solve(b, algorithm="baseline3d").x
    assert np.allclose(x_new, x_base, atol=1e-10)


def test_tree_kind_does_not_change_solution(A_poisson):
    solver = SpTRSVSolver(A_poisson, 3, 2, 2, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 1)
    xb = solver.solve(b, algorithm="new3d", tree_kind="binary").x
    xf = solver.solve(b, algorithm="new3d", tree_kind="flat").x
    assert np.allclose(xb, xf, atol=1e-12)


def test_replicated_ancestors_agree_across_grids(A_poisson):
    """After the U-solve every grid holds identical ancestor solutions."""
    from repro.core.sptrsv3d_new import build_new3d_setup, new3d_rank_fn
    from repro.comm import Simulator
    from repro.grids import BlockCyclicMap

    solver = SpTRSVSolver(A_poisson, 1, 1, 4, max_supernode=8)
    setup = solver._new3d_setup("binary")
    b = make_rhs(A_poisson.shape[0], 1)[solver.perm]
    res = Simulator(solver.grid.nranks, CORI_HASWELL).run(
        new3d_rank_fn(setup, b, 1))
    cmap = BlockCyclicMap(solver.grid)
    part = solver.lu.partition
    for node in solver.layout.nodes:
        lo, hi = part.sn_range(node.first, node.last)
        for K in range(lo, hi):
            vals = [res.results[cmap.diag_owner_rank(K, z)][K]
                    for z in range(node.grid_lo, node.grid_hi)]
            for v in vals[1:]:
                assert np.allclose(v, vals[0], atol=1e-11)


# ---- performance-model sanity (shape, not absolute) -------------------------

def test_report_breakdown_keys(A_poisson):
    solver = SpTRSVSolver(A_poisson, 2, 2, 2, max_supernode=8)
    out = solver.solve(make_rhs(A_poisson.shape[0], 1))
    bd = out.report.breakdown()
    assert set(bd) == {"fp", "xy_comm", "z_comm"}
    assert all(v >= 0 for v in bd.values())
    assert out.report.total_time > 0
    assert out.report.message_count() > 0


def test_new3d_fewer_z_syncs_than_baseline():
    """The proposed algorithm's z-message count is O(log Pz) per rank while
    the baseline pays per-level exchanges; with Pz=8 new3d must send fewer
    or equal z-messages and strictly fewer z-message *rounds*."""
    A = poisson2d(16, stencil=9, seed=6)
    solver = SpTRSVSolver(A, 1, 1, 8, max_supernode=8)
    b = make_rhs(A.shape[0], 1)
    new = solver.solve(b, algorithm="new3d").report
    base = solver.solve(b, algorithm="baseline3d").report
    # Both exchange inter-grid data; baseline L+U phases pay at least as
    # many messages as the one-shot sparse allreduce.
    assert new.message_count("z") <= base.message_count("z")


def test_machine_override(A_poisson):
    """Per-solve machine override changes timing but never the solution."""
    solver = SpTRSVSolver(A_poisson, 1, 1, 2, max_supernode=8,
                          machine=CORI_HASWELL)
    b = make_rhs(A_poisson.shape[0], 1)
    out_cori = solver.solve(b)
    out_perl = solver.solve(b, machine=PERLMUTTER_CPU)
    assert out_cori.report.total_time != out_perl.report.total_time
    assert np.allclose(out_cori.x, out_perl.x, atol=1e-13)


def test_reference_solve_matches_scipy(A_poisson):
    import scipy.sparse.linalg as spla
    import scipy.sparse as sp

    solver = SpTRSVSolver(A_poisson, 1, 1, 1)
    b = make_rhs(A_poisson.shape[0], 1, "random", seed=8)
    x = solver.reference_solve(b)
    x_ref = spla.spsolve(sp.csc_matrix(A_poisson), b)
    assert np.allclose(x.ravel(), x_ref, atol=1e-8)


def test_solve_blocked_matches_unblocked(A_poisson):
    solver = SpTRSVSolver(A_poisson, 2, 1, 2, max_supernode=8)
    b = make_rhs(A_poisson.shape[0], 20, "random", seed=21)
    full = solver.solve(b)
    blocked = solver.solve_blocked(b, rhs_block=6)
    assert np.allclose(full.x, blocked.x, atol=1e-12)
    # Aggregated time covers all four panels.
    assert blocked.report.total_time > full.report.total_time * 0.5
    with pytest.raises(ValueError):
        solver.solve_blocked(b, rhs_block=0)
    # Narrow RHS short-circuits to a single solve.
    narrow = solver.solve_blocked(b[:, :3], rhs_block=8)
    assert np.allclose(narrow.x, full.x[:, :3], atol=1e-12)
