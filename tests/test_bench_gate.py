"""The BENCH_*.json regression gate (tools/check_bench_regression.py)."""

import copy
import importlib.util
import json
import os

import pytest

_TOOL = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools", "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _TOOL)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


BASE = {
    "benchmark": "planner-accuracy",
    "schema_version": 1,
    "config": {"scale": "tiny"},
    "sweep": {
        "m/2x2x1": {"measured_best_s": 1.0e-3},
        "m/2x1x2": {"measured_best_s": 2.0e-3},
    },
    "headline": {
        "points": 2,
        "planner_hit_rate": 1.0,
        "acceptance_floor": 0.9,
    },
}


@pytest.fixture
def artifacts(tmp_path):
    def write(name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)
    return write


def test_identical_artifacts_pass(artifacts, capsys):
    p = artifacts("base.json", BASE)
    assert gate.main([_TOOL, p, p]) == 0
    assert "ok" in capsys.readouterr().out


def test_virtual_time_drift_fails(artifacts, capsys):
    cand = copy.deepcopy(BASE)
    cand["sweep"]["m/2x2x1"]["measured_best_s"] = 1.1e-3   # > 1%
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    assert rc == 1
    assert "functional change" in capsys.readouterr().out


def test_missing_candidate_point_fails(artifacts, capsys):
    cand = copy.deepcopy(BASE)
    del cand["sweep"]["m/2x1x2"]
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    assert rc == 1
    assert "missing from candidate sweep" in capsys.readouterr().out


def test_candidate_axis_drift_fails(artifacts, capsys):
    # A sweep point the baseline has never seen (new or renamed axis
    # value) must be rejected, not silently skipped: otherwise renaming
    # a point dodges the virtual-determinism comparison entirely.
    cand = copy.deepcopy(BASE)
    cand["sweep"]["m/4x4x1"] = {"measured_best_s": 5.0e-3}
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    assert rc == 1
    assert "sweep axis drifted" in capsys.readouterr().out


def test_renamed_point_is_double_reported(artifacts, capsys):
    cand = copy.deepcopy(BASE)
    cand["sweep"]["m/8x1x1"] = cand["sweep"].pop("m/2x1x2")
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "sweep axis drifted" in out
    assert "missing from candidate sweep" in out


def test_scale_mismatch_skips_axis_checks(artifacts, capsys):
    cand = copy.deepcopy(BASE)
    cand["config"]["scale"] = "small"
    cand["sweep"]["m/4x4x1"] = {"measured_best_s": 5.0e-3}
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "skipping" in out


def test_headline_floor_fails(artifacts, capsys):
    cand = copy.deepcopy(BASE)
    cand["headline"]["planner_hit_rate"] = 0.5
    rc = gate.main([_TOOL, artifacts("cand.json", cand),
                    artifacts("base.json", BASE)])
    assert rc == 1
    assert "acceptance floor" in capsys.readouterr().out


def test_checked_in_planner_artifact_passes_against_itself():
    bench = os.path.join(os.path.dirname(_TOOL), os.pardir,
                         "BENCH_planner.json")
    assert gate.main([_TOOL, bench, bench]) == 0
