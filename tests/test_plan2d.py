"""Unit tests for the 2D solve plan builder."""

import numpy as np
import pytest

from repro.core.plan2d import build_2d_plans, u_blockrows
from repro.core.sptrsv3d_new import grid_supernodes
from repro.grids import BlockCyclicMap, Grid3D


def full_sets(problem):
    lu = problem["lu"]
    return list(range(lu.nsup))


def test_u_blockrows_is_transpose(poisson_problem):
    lu = poisson_problem["lu"]
    rows = u_blockrows(lu)
    pairs_from_rows = {(int(K), int(J))
                       for J in range(lu.nsup) for K in rows[J]}
    pairs_from_cols = {(K, int(J))
                       for K in range(lu.nsup) for J in lu.u_blockcols[K]}
    assert pairs_from_rows == pairs_from_cols


@pytest.mark.parametrize("px,py", [(1, 1), (2, 2), (3, 2), (1, 4)])
def test_plan_covers_all_blocks_once(poisson_problem, px, py):
    lu = poisson_problem["lu"]
    grid = Grid3D(px, py, 1)
    plan = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem))
    seen = {}
    for r, p in plan.ranks.items():
        for J, blks in p.consumer_blocks.items():
            for I, blk in blks:
                assert (I, J) not in seen
                seen[(I, J)] = r
    assert set(seen) == set(lu.Lblocks)
    # Each block is planned at its block-cyclic owner.
    cmap = BlockCyclicMap(grid)
    for (I, J), r in seen.items():
        assert r == cmap.owner_rank(I, J, 0)


def test_plan_solve_cols_partition_solve_set(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(2, 3, 1)
    plan = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem))
    all_cols = []
    for p in plan.ranks.values():
        all_cols.extend(p.solve_cols)
    assert sorted(all_cols) == list(range(lu.nsup))


def test_plan_message_counts_balance(poisson_problem):
    """Total receives expected == total sends planned (tree edge count)."""
    lu = poisson_problem["lu"]
    for px, py in [(2, 2), (4, 1), (1, 4)]:
        grid = Grid3D(px, py, 1)
        plan = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem))
        nrecv = sum(p.nrecv for p in plan.ranks.values())
        nsend = sum(p.total_messages_sent() for p in plan.ranks.values())
        assert nrecv == nsend


def test_plan_fmod_counts_blocks(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(2, 2, 1)
    plan = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem))
    for p in plan.ranks.values():
        counted = {}
        for J, blks in p.consumer_blocks.items():
            for I, _ in blks:
                counted[I] = counted.get(I, 0) + 1
        assert counted == p.fmod0


def test_plan_single_rank_has_no_messages(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(1, 1, 1)
    plan = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem))
    p = plan.plan_of(0)
    assert p.nrecv == 0
    assert not p.bcast_trees and not p.red_trees
    assert p.solve_cols == list(range(lu.nsup))


def test_plan_binary_vs_flat_tree_shapes(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(6, 1, 1)
    pb = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem),
                        tree_kind="binary")
    pf = build_2d_plans(lu, grid, 0, "L", full_sets(poisson_problem),
                        tree_kind="flat")
    max_fan_b = max((t.max_fanout() for p in pb.ranks.values()
                     for t in p.bcast_trees.values()), default=0)
    max_fan_f = max((t.max_fanout() for p in pf.ranks.values()
                     for t in p.bcast_trees.values()), default=0)
    assert max_fan_b <= 2
    assert max_fan_f >= max_fan_b


def test_plan_restricted_solve_with_update_region(poisson_problem):
    """Baseline-style plan: solve a leaf node, update ancestor rows."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    part = lu.partition
    grid = Grid3D(2, 2, 1)
    leaf = layout.leaf(0)
    lo, hi = part.sn_range(leaf.first, leaf.last)
    S = list(range(lo, hi))
    anc = []
    for a in layout.ancestors(leaf):
        alo, ahi = part.sn_range(a.first, a.last)
        anc.extend(range(alo, ahi))
    plan = build_2d_plans(lu, grid, 0, "L", S, update_set=S + anc)
    out_rows = [I for p in plan.ranks.values() for I in p.out_rows]
    assert set(out_rows) <= set(anc)
    assert len(out_rows) > 0  # a leaf touching separators must export rows
    # No plan may reference blocks outside the allowed column set.
    for p in plan.ranks.values():
        assert set(p.consumer_blocks) <= set(S)


def test_plan_ext_set(poisson_problem):
    """U-phase baseline plan: external ancestor producers."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    part = lu.partition
    grid = Grid3D(2, 2, 1)
    leaf = layout.leaf(0)
    lo, hi = part.sn_range(leaf.first, leaf.last)
    S = list(range(lo, hi))
    anc = []
    for a in layout.ancestors(leaf):
        alo, ahi = part.sn_range(a.first, a.last)
        anc.extend(range(alo, ahi))
    plan = build_2d_plans(lu, grid, 0, "U", S, ext_set=anc)
    ext_cols = [J for p in plan.ranks.values() for J in p.ext_cols]
    assert sorted(ext_cols) == sorted(anc)
    for p in plan.ranks.values():
        for J, blks in p.consumer_blocks.items():
            for I, _ in blks:
                assert I in set(S)  # update region defaults to solve set


def test_plan_validation(poisson_problem):
    lu = poisson_problem["lu"]
    grid = Grid3D(2, 2, 1)
    with pytest.raises(ValueError):
        build_2d_plans(lu, grid, 0, "X", [0])
    with pytest.raises(ValueError):
        build_2d_plans(lu, grid, 0, "L", [0], tree_kind="ternary")
    with pytest.raises(ValueError):
        build_2d_plans(lu, grid, 0, "L", [0, 1], update_set=[0])
    with pytest.raises(ValueError):
        build_2d_plans(lu, grid, 0, "L", [0, 1], ext_set=[1])


def test_grid_supernodes_cover_matrix(poisson_problem):
    """Union over grids of leaf supernodes + shared ancestors covers all."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    all_sns = set()
    for z in range(layout.pz):
        all_sns.update(grid_supernodes(layout, lu.partition, z))
    assert all_sns == set(range(lu.nsup))


def test_grid_supernodes_block_closure(poisson_problem):
    """Every block row of a grid's column set lies inside the grid's set —
    the ancestor-closure invariant of the ND ordering (DESIGN.md)."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    for z in range(layout.pz):
        sns = set(grid_supernodes(layout, lu.partition, z))
        for K in sns:
            for I in lu.l_blockrows[K]:
                assert int(I) in sns
            for J in lu.u_blockcols[K]:
                assert int(J) in sns


def test_remark_baseline_reduces_rows_repeatedly(poisson_problem):
    """§3.3 Remark: with the proposed layout, each row's partial sums are
    reduced once; the baseline reduces an ancestor row at *every* level that
    contributes to it (one reduce round per colored block of Fig. 1(b)),
    which inflates message rounds."""
    from repro.core.sptrsv3d_baseline import build_baseline3d_setup
    from repro.core.sptrsv3d_new import build_new3d_setup

    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    grid = Grid3D(2, 2, 8)

    def rows_reduced(plans):
        """Rows whose partial sums this solve accumulates (fmod counters)."""
        rows = set()
        for p in plans.ranks.values():
            rows.update(p.fmod0)
        return rows

    new_setup = build_new3d_setup(lu, layout, grid, "auto")
    base_setup = build_baseline3d_setup(lu, layout, grid, "flat")
    # Grid 0 is active at every baseline level (the Fig. 1(b) situation).
    new_rounds = len(rows_reduced(new_setup.plans_L[0]))
    base_rounds = 0
    multiplicity = {}
    for _, _, plan_l, _ in base_setup.steps[0]:
        rows = rows_reduced(plan_l)
        base_rounds += len(rows)
        for I in rows:
            multiplicity[I] = multiplicity.get(I, 0) + 1
    assert base_rounds > new_rounds
    # Ancestor rows really are reduced at multiple levels.
    assert max(multiplicity.values()) > 1
