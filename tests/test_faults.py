"""Unit tests for fault injection, detection, and reliable transport."""

import numpy as np
import pytest

from repro.comm import (
    ANY,
    CORI_HASWELL,
    ChecksumError,
    DeadlockError,
    FaultPlan,
    FaultRule,
    RecvTimeout,
    ReliableTransport,
    Simulator,
    StallError,
)
from repro.comm.faults import corrupt_payload, payload_checksum

MACHINE = CORI_HASWELL


def pingpong(nmsgs=5):
    """Rank 0 sends nmsgs arrays to rank 1, which sums them."""
    def fn(ctx):
        if ctx.rank == 0:
            for k in range(nmsgs):
                yield ctx.send(1, np.full(4, float(k)), tag=k)
            return None
        total = 0.0
        for _ in range(nmsgs):
            _, _, v = yield ctx.recv(src=0)
            total += float(v.sum())
        return total
    return fn


# -- fault plan determinism --------------------------------------------------


def test_same_seed_same_schedule_and_clocks():
    plan = FaultPlan.uniform(seed=42, drop=0.3, delay=0.3, corrupt=0.2)
    kw = dict(faults=plan, reliable=True, checksums=True)
    r1 = Simulator(2, MACHINE, **kw).run(pingpong())
    r2 = Simulator(2, MACHINE, **kw).run(pingpong())
    assert np.array_equal(r1.clocks, r2.clocks)
    assert [(e.kind, e.time, e.src, e.dst) for e in r1.fault_events] == \
           [(e.kind, e.time, e.src, e.dst) for e in r2.fault_events]
    assert r1.fault_counts()  # the plan actually did something


def test_fork_changes_stream_not_rules():
    plan = FaultPlan.uniform(seed=7, drop=0.5)
    child = plan.fork(1)
    assert child.rules == plan.rules
    assert child.seed != plan.seed
    # Generous retry budget: the test is about RNG streams, not loss.
    t = ReliableTransport(max_retries=16)
    r1 = Simulator(2, MACHINE, faults=plan, reliable=t).run(pingpong(20))
    r2 = Simulator(2, MACHINE, faults=child, reliable=t).run(pingpong(20))
    sched1 = [(e.kind, e.time) for e in r1.fault_events]
    sched2 = [(e.kind, e.time) for e in r2.fault_events]
    assert sched1 != sched2


def test_lossless_plan_injects_nothing():
    plan = FaultPlan.uniform(seed=3)  # all rates zero -> no rules
    base = Simulator(2, MACHINE).run(pingpong())
    res = Simulator(2, MACHINE, faults=plan).run(pingpong())
    assert np.array_equal(base.clocks, res.clocks)
    assert res.fault_events == []
    assert res.fault_counts() == {}


# -- recv timeout ------------------------------------------------------------


def test_recv_timeout_raises_typed_error():
    def fn(ctx):
        yield ctx.recv(src=0, tag="never", timeout=0.5)

    with pytest.raises(RecvTimeout, match="timed out"):
        Simulator(1, MACHINE).run(fn)


def test_recv_timeout_is_catchable_and_charges_wait():
    def fn(ctx):
        try:
            yield ctx.recv(src=0, tag="never", timeout=0.25, category="w")
        except RecvTimeout as e:
            return ("timed-out", e.waited)

    res = Simulator(1, MACHINE).run(fn)
    assert res.results[0] == ("timed-out", 0.25)
    assert res.clocks[0] == pytest.approx(0.25)
    assert res.time_by(category="w")[0] == pytest.approx(0.25)


def test_recv_timeout_loses_to_earlier_message():
    """A message that can arrive before the deadline is delivered instead."""
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.compute(0.1)
            yield ctx.send(1, np.ones(2), tag="t")
        else:
            _, _, v = yield ctx.recv(src=0, tag="t", timeout=10.0)
            return float(v.sum())

    res = Simulator(2, MACHINE).run(fn)
    assert res.results[1] == 2.0


def test_recv_rejects_nonpositive_timeout():
    def fn(ctx):
        yield ctx.recv(src=0, timeout=0.0)

    with pytest.raises(ValueError, match="timeout"):
        Simulator(1, MACHINE).run(fn)


# -- satellite (a): recv src validation --------------------------------------


def test_recv_invalid_src_rejected():
    def fn(ctx):
        yield ctx.recv(src=99)

    with pytest.raises(ValueError, match="invalid rank 99"):
        Simulator(2, MACHINE).run(fn)

    def fn2(ctx):
        yield ctx.recv(src="zero")

    with pytest.raises(ValueError, match="rank index or ANY"):
        Simulator(2, MACHINE).run(fn2)


def test_recv_accepts_numpy_integer_src():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.ones(1), tag=0)
        else:
            _, _, v = yield ctx.recv(src=np.int64(0), tag=0)
            return float(v[0])

    res = Simulator(2, MACHINE).run(fn)
    assert res.results[1] == 1.0


# -- checksums ---------------------------------------------------------------


def test_checksum_detects_corruption():
    plan = FaultPlan.uniform(seed=1, corrupt=1.0)

    with pytest.raises(ChecksumError, match="corrupted payload"):
        Simulator(2, MACHINE, faults=plan, checksums=True).run(pingpong(1))


def test_checksum_error_catchable_in_rank():
    plan = FaultPlan.uniform(seed=1, corrupt=1.0)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.arange(8.0), tag=0)
        else:
            try:
                yield ctx.recv(src=0, tag=0)
            except ChecksumError as e:
                return ("detected", e.src)

    res = Simulator(2, MACHINE, faults=plan, checksums=True).run(fn)
    assert res.results[1] == ("detected", 0)


def test_corruption_silent_without_checksums():
    plan = FaultPlan.uniform(seed=1, corrupt=1.0)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.full(4, np.pi), tag=0)
        else:
            _, _, v = yield ctx.recv(src=0, tag=0)
            return v

    res = Simulator(2, MACHINE, faults=plan).run(fn)
    # Delivered, wrong data, no error: exactly why checksums exist.  A
    # single bit flip in a nonzero float always changes its bit pattern.
    got = res.results[1]
    assert got.view(np.uint8).tolist() != np.full(4, np.pi).view(
        np.uint8).tolist()
    assert res.fault_counts().get("corrupt", 0) == 1


def test_payload_checksum_discriminates():
    a = np.arange(16.0)
    c0 = payload_checksum(a)
    assert c0 == payload_checksum(a.copy())
    b = a.copy()
    b[3] += 1e-12
    assert payload_checksum(b) != c0
    assert payload_checksum([a]) != payload_checksum((a,))
    assert payload_checksum({"k": a}) != payload_checksum({"j": a})


def test_corrupt_payload_flips_one_bit():
    rng = np.random.default_rng(0)
    a = np.zeros(32)
    assert corrupt_payload({"x": a}, rng)
    assert np.count_nonzero(a.view(np.uint8)) == 1
    assert not corrupt_payload("no arrays here", rng)


# -- reliable transport ------------------------------------------------------


def test_reliable_delivers_under_drop():
    plan = FaultPlan.uniform(seed=5, drop=0.4)
    res = Simulator(2, MACHINE, faults=plan, reliable=True).run(pingpong(10))
    assert res.results[1] == pytest.approx(4.0 * sum(range(10)))
    counts = res.fault_counts()
    assert counts["drop"] >= 1
    assert counts["retransmit"] == counts["drop"]
    # Every delivery acked; retransmitted copies counted as traffic.
    assert res.msgs_by(category="ack") == 10
    assert res.msgs_by(category="comm") == 10 + counts["retransmit"]


def test_reliable_retransmits_corrupted_when_checksummed():
    plan = FaultPlan.uniform(seed=5, corrupt=0.3)
    res = Simulator(2, MACHINE, faults=plan,
                    reliable=ReliableTransport(max_retries=16),
                    checksums=True).run(pingpong(10))
    # Corrupted copies were retransmitted until clean: correct data arrived.
    assert res.results[1] == pytest.approx(4.0 * sum(range(10)))
    assert res.fault_counts()["retransmit"] >= 1


def test_reliable_costs_time():
    plan = FaultPlan.uniform(seed=5, drop=0.4)
    clean = Simulator(2, MACHINE).run(pingpong(10))
    res = Simulator(2, MACHINE, faults=plan, reliable=True).run(pingpong(10))
    assert res.clocks[1] > clean.clocks[1]


def test_reliable_gives_up_after_max_retries():
    plan = FaultPlan.uniform(seed=0, drop=1.0)
    transport = ReliableTransport(max_retries=3)
    with pytest.raises(DeadlockError):
        Simulator(2, MACHINE, faults=plan,
                  reliable=transport).run(pingpong(1))
    # The lost message is in the schedule attached to the error.
    try:
        Simulator(2, MACHINE, faults=plan,
                  reliable=transport).run(pingpong(1))
    except DeadlockError as e:
        kinds = [ev.kind for ev in e.fault_events]
        assert kinds.count("retransmit") == 3
        assert "lost" in kinds


def test_reliable_suppresses_duplicates():
    plan = FaultPlan.uniform(seed=2, duplicate=1.0)
    bare = Simulator(2, MACHINE, faults=plan).run(pingpong(1))
    # Without the envelope the duplicate copy lingers undelivered.
    assert bare.fault_counts()["duplicate"] == 1
    res = Simulator(2, MACHINE, faults=plan, reliable=True).run(pingpong(1))
    assert res.fault_counts() == {"dup-suppressed": 1}
    assert res.results[1] == 0.0


# -- duplicates, reorder, delay (unreliable fabric) --------------------------


def test_duplicate_delivers_two_copies():
    plan = FaultPlan.uniform(seed=2, duplicate=1.0)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.ones(2), tag="t")
        else:
            got = []
            for _ in range(2):
                _, _, v = yield ctx.recv(src=0, tag="t")
                got.append(float(v.sum()))
            return got

    res = Simulator(2, MACHINE, faults=plan).run(fn)
    assert res.results[1] == [2.0, 2.0]


def test_reorder_swaps_arrivals():
    plan = FaultPlan(seed=0, rules=(
        FaultRule(reorder=1.0, src=0, dst=1),))

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.array([1.0]), tag="a")
            yield ctx.send(1, np.array([2.0]), tag="b")
        else:
            yield ctx.compute(1.0)  # let both arrive first
            first = yield ctx.recv(src=0, tag=ANY)
            second = yield ctx.recv(src=0, tag=ANY)
            return (first[1], second[1])

    res = Simulator(2, MACHINE, faults=plan).run(fn)
    assert res.results[1] == ("b", "a")


def test_delay_spike_slows_arrival():
    slow = FaultPlan.uniform(seed=0, delay=1.0, delay_seconds=0.5)
    clean = Simulator(2, MACHINE).run(pingpong(1))
    res = Simulator(2, MACHINE, faults=slow).run(pingpong(1))
    assert res.results[1] == clean.results[1]
    assert res.clocks[1] >= clean.clocks[1] + 0.25  # >= 0.5 * 0.5 jitter


# -- crash and slowdown ------------------------------------------------------


def test_crash_stops_rank_and_is_reported():
    plan = FaultPlan(seed=0, crash={0: 0.0})
    with pytest.raises(DeadlockError, match="crashed"):
        Simulator(2, MACHINE, faults=plan).run(pingpong(1))
    try:
        Simulator(2, MACHINE, faults=plan).run(pingpong(1))
    except DeadlockError as e:
        assert any(ev.kind == "crash" and ev.src == 0
                   for ev in e.fault_events)


def test_crash_after_work_keeps_partial_results():
    plan = FaultPlan(seed=0, crash={1: 5.0})

    def fn(ctx):
        yield ctx.compute(1.0)
        if ctx.rank == 1:
            yield ctx.compute(10.0)  # crosses the crash time
            return "survived"
        return "done"

    res = Simulator(2, MACHINE, faults=plan).run(fn)
    assert res.results[0] == "done"
    assert res.results[1] is None
    assert res.crashed == [1]


def test_slowdown_scales_compute():
    plan = FaultPlan(seed=0, slowdown={0: (0.0, 3.0)})

    def fn(ctx):
        yield ctx.compute(2.0)

    res = Simulator(1, MACHINE, faults=plan).run(fn)
    assert res.clocks[0] == pytest.approx(6.0)
    assert res.fault_counts()["slowdown"] == 1


# -- watchdog: stall vs deadlock ---------------------------------------------


def test_watchdog_catches_zero_cost_spin():
    def fn(ctx):
        while True:
            yield ctx.compute(0.0)

    with pytest.raises(StallError, match="livelock"):
        Simulator(1, MACHINE, watchdog_events=1000).run(fn)


def test_watchdog_reports_per_rank_state():
    def fn(ctx):
        ctx.set_phase("spin")
        while True:
            yield ctx.compute(0.0)

    with pytest.raises(StallError, match="spin"):
        Simulator(2, MACHINE, watchdog_events=1000).run(fn)


def test_watchdog_does_not_misfire_on_progress():
    def fn(ctx):
        for _ in range(5000):
            yield ctx.compute(1e-9)

    res = Simulator(1, MACHINE, watchdog_events=1000).run(fn)
    assert res.clocks[0] == pytest.approx(5e-6)


def test_true_deadlock_still_deadlock_with_watchdog():
    def fn(ctx):
        yield ctx.recv(src=ANY, tag="never")

    with pytest.raises(DeadlockError):
        Simulator(2, MACHINE, watchdog_events=1000).run(fn)


# -- satellite (c): enriched deadlock diagnostics ----------------------------


def test_deadlock_reports_mailbox_state():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.ones(1), tag="present")
            yield ctx.send(1, np.ones(1), tag="present")
        else:
            ctx.set_phase("usolve")
            yield ctx.recv(src=0, tag="absent")

    with pytest.raises(DeadlockError) as ei:
        Simulator(2, MACHINE).run(fn)
    msg = str(ei.value)
    assert "phase='usolve'" in msg
    assert "2 pending" in msg
    assert "'present'" in msg
    assert "earliest arrival" in msg


def test_deadlock_reports_empty_mailbox():
    def fn(ctx):
        yield ctx.recv(src=0, tag="never")

    with pytest.raises(DeadlockError, match="mailbox empty"):
        Simulator(1, MACHINE).run(fn)


# -- satellite (b): payload sizing -------------------------------------------


def test_payload_nbytes_dict_and_scalar():
    from repro.comm.simulator import _payload_nbytes

    assert _payload_nbytes(np.zeros(10)) == 80
    assert _payload_nbytes(np.float64(1.0)) == 8
    assert _payload_nbytes(np.int32(1)) == 4
    assert _payload_nbytes({"x": np.zeros(4), "n": np.int64(2)}) == \
        _payload_nbytes("x") + 32 + _payload_nbytes("n") + 8 + 16
    assert _payload_nbytes([np.zeros(2), np.zeros(2)]) == 16 + 16 + 16
    assert _payload_nbytes("opaque") == 32


def test_send_charges_dict_payload_bytes():
    payload = {"rows": np.zeros(8), "count": np.int64(3)}

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, payload, tag=0, category="xy")
        else:
            _, _, got = yield ctx.recv(src=0, tag=0)
            assert set(got) == {"rows", "count"}
            assert got["rows"] is not payload["rows"]  # deep-copied

    res = Simulator(2, MACHINE).run(fn)
    from repro.comm.simulator import _payload_nbytes
    assert res.bytes_by(category="xy") == _payload_nbytes(payload)


# -- default path unchanged --------------------------------------------------


def test_resilience_off_is_bit_identical():
    base = Simulator(2, MACHINE).run(pingpong(8))
    off = Simulator(2, MACHINE, faults=None, reliable=False,
                    checksums=False, watchdog_events=None).run(pingpong(8))
    assert np.array_equal(base.clocks, off.clocks)
    assert base.results == off.results
    assert off.fault_events is None
