"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.perf.ascii_plot import ascii_bar_chart, ascii_line_chart


def test_line_chart_renders_markers():
    s = {"new": [(64, 1.0e-3), (256, 0.5e-3)],
         "base": [(64, 1.2e-3), (256, 0.9e-3)]}
    out = ascii_line_chart(s, title="Fig 4", xlabel="P", ylabel="time")
    assert "Fig 4" in out
    assert "o=base" in out and "x=new" in out
    assert "64" in out and "256" in out
    # The faster series' marker appears below/beyond the slower one.
    assert out.count("x") >= 2


def test_line_chart_empty():
    assert "(no data)" in ascii_line_chart({})
    assert "(no positive data)" in ascii_line_chart({"a": [(1, 0.0)]})


def test_line_chart_single_point_and_linear():
    out = ascii_line_chart({"a": [(1, 2.0)]}, logy=False)
    assert "|" in out


def test_line_chart_flat_series():
    out = ascii_line_chart({"a": [(1, 1.0), (2, 1.0)]})
    assert "o" in out


def test_bar_chart():
    out = ascii_bar_chart({"fp": 10.0, "xy": 40.0, "z": 5.0},
                          title="breakdown", unit="us")
    assert "breakdown" in out
    assert out.count("#") > 0
    # Largest bar is the widest.
    lines = {l.split()[0]: l.count("#") for l in out.splitlines()[1:]}
    assert lines["xy"] == max(lines.values())
    assert ascii_bar_chart({}) == "\n(no data)"


def test_bar_chart_zero_values():
    out = ascii_bar_chart({"a": 0.0, "b": 0.0})
    assert "0" in out
