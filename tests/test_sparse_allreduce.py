"""Unit tests for the sparse inter-grid allreduce (Algorithm 2)."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator
from repro.core.sparse_allreduce import ancestor_supernodes, sparse_allreduce
from repro.core.sptrsv3d_new import grid_supernodes
from repro.grids import BlockCyclicMap, Grid3D
from repro.ordering import build_layout_tree, nested_dissection
from repro.matrices import poisson2d
from repro.symbolic import symbolic_factor
from repro.util import ilog2


def make_layout(pz, n_grid=16):
    A = poisson2d(n_grid, stencil=9, seed=2)
    tree = nested_dissection(A, leaf_size=8, min_depth=ilog2(pz))
    Ap = A[tree.perm][:, tree.perm]
    sym = symbolic_factor(Ap, max_supernode=4, boundaries=tree.boundaries())
    return build_layout_tree(tree, pz), sym.partition


@pytest.mark.parametrize("pz", [2, 4, 8])
def test_ancestor_supernodes_shared_between_partners(pz):
    layout, part = make_layout(pz)
    for l in range(layout.depth):
        stride = 1 << l
        for z in range(0, pz, 2 * stride):
            a = ancestor_supernodes(layout, part, z)[l]
            b = ancestor_supernodes(layout, part, z + stride)[l]
            assert a == b


@pytest.mark.parametrize("pz", [2, 4, 8])
@pytest.mark.parametrize("px,py", [(1, 1), (2, 2)])
def test_allreduce_sums_replicated_supernodes(pz, px, py):
    """Every grid ends with the sum over all grids sharing each supernode."""
    layout, part = make_layout(pz)
    grid = Grid3D(px, py, pz)
    cmap = BlockCyclicMap(grid)
    nrhs = 2
    rng = np.random.default_rng(3)
    # Independent per-grid partial values for every supernode of the grid.
    partials = {}
    for z in range(pz):
        for K in grid_supernodes(layout, part, z):
            partials[(z, K)] = rng.standard_normal((part.size(K), nrhs))

    def rank_fn(ctx):
        i, j, z = grid.coords_of(ctx.rank)
        vals = {K: np.array(partials[(z, K)])
                for K in grid_supernodes(layout, part, z)
                if K % px == i and K % py == j}
        yield from sparse_allreduce(ctx, grid, layout, part, vals)
        return vals

    res = Simulator(grid.nranks, CORI_HASWELL).run(rank_fn)

    # Reference sums per supernode.
    sharing = {}
    for z in range(pz):
        for K in grid_supernodes(layout, part, z):
            sharing.setdefault(K, []).append(z)
    for K, zs in sharing.items():
        expected = sum(partials[(z, K)] for z in zs)
        for z in zs:
            r = cmap.diag_owner_rank(K, z)
            got = res.results[r][K]
            assert np.allclose(got, expected, atol=1e-12), (K, z)


def test_allreduce_noop_for_pz1():
    layout, part = make_layout(1)
    grid = Grid3D(2, 2, 1)

    def rank_fn(ctx):
        vals = {0: np.ones((part.size(0), 1))} if ctx.rank == 0 else {}
        yield from sparse_allreduce(ctx, grid, layout, part, vals)
        return vals

    res = Simulator(4, CORI_HASWELL).run(rank_fn)
    assert res.msgs_by() == 0
    assert np.all(res.results[0][0] == 1.0)


@pytest.mark.parametrize("pz", [2, 4, 8])
def test_allreduce_message_count_is_logarithmic(pz):
    """Each rank sends/receives at most log2(Pz) messages each way."""
    layout, part = make_layout(pz)
    grid = Grid3D(1, 1, pz)

    def rank_fn(ctx):
        _, _, z = grid.coords_of(ctx.rank)
        vals = {K: np.zeros((part.size(K), 1))
                for K in grid_supernodes(layout, part, z)}
        yield from sparse_allreduce(ctx, grid, layout, part, vals)

    res = Simulator(pz, CORI_HASWELL).run(rank_fn)
    total = res.msgs_by(category="z")
    # Reduce + broadcast: 2 * (pz - 1) pairwise messages in total.
    assert total == 2 * (pz - 1)


def test_allreduce_leaf_values_untouched():
    layout, part = make_layout(4)
    grid = Grid3D(1, 1, 4)

    def rank_fn(ctx):
        _, _, z = grid.coords_of(ctx.rank)
        leaf = layout.leaf(z)
        lo, hi = part.sn_range(leaf.first, leaf.last)
        vals = {K: np.full((part.size(K), 1), float(z + 1))
                for K in grid_supernodes(layout, part, z)}
        yield from sparse_allreduce(ctx, grid, layout, part, vals)
        return {K: vals[K] for K in range(lo, hi)}

    res = Simulator(4, CORI_HASWELL).run(rank_fn)
    for z in range(4):
        for K, v in res.results[z].items():
            assert np.all(v == z + 1)
