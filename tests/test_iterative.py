"""Tests for the SpTRSV-preconditioned iterative solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.solvers import pcg, richardson


@pytest.fixture(scope="module")
def setup():
    A = poisson2d(14, stencil=5, seed=1)
    rng = np.random.default_rng(2)
    E = sp.diags(0.02 * rng.standard_normal(A.shape[0]) * A.diagonal())
    A_pert = sp.csr_matrix(A + E)
    # Keep it symmetric for PCG.
    A_pert = sp.csr_matrix((A_pert + A_pert.T) * 0.5)
    precond = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    return A, A_pert, precond


def test_richardson_exact_preconditioner_one_step(setup):
    """M = A: Richardson converges in a single application."""
    A, _, precond = setup
    b = make_rhs(A.shape[0], 1, "random", seed=3)[:, 0]
    res = richardson(A, b, precond, tol=1e-12)
    assert res.converged
    assert res.applications <= 2
    assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-10


def test_richardson_perturbed_system(setup):
    A, A_pert, precond = setup
    b = make_rhs(A.shape[0], 2, "random", seed=4)
    res = richardson(A_pert, b, precond, tol=1e-10, maxiter=100)
    assert res.converged
    assert res.iterations > 1
    assert res.sptrsv_time > 0
    assert np.linalg.norm(A_pert @ res.x - b) / np.linalg.norm(b) < 1e-9
    # Residual history decreases monotonically for this mild perturbation.
    h = res.residual_history
    assert all(h[i + 1] <= h[i] * 1.01 for i in range(len(h) - 1))


def test_richardson_nonconvergent_reports_failure(setup):
    """A wildly different operator defeats the preconditioner."""
    A, _, precond = setup
    n = A.shape[0]
    bad = sp.identity(n, format="csr") * 1e6
    b = np.ones(n)
    res = richardson(bad, b, precond, tol=1e-12, maxiter=5)
    assert not res.converged
    assert res.final_residual > 1e-12


def test_pcg_converges_fast_with_exact_preconditioner(setup):
    A, _, precond = setup
    b = make_rhs(A.shape[0], 1, "random", seed=5)[:, 0]
    res = pcg(A, b, precond, tol=1e-11)
    assert res.converged
    assert res.iterations <= 3
    assert np.linalg.norm(A @ res.x - b) / np.linalg.norm(b) < 1e-9


def test_pcg_perturbed_system(setup):
    A, A_pert, precond = setup
    b = make_rhs(A.shape[0], 1, "random", seed=6)[:, 0]
    res = pcg(A_pert, b, precond, tol=1e-10, maxiter=50)
    assert res.converged
    assert np.linalg.norm(A_pert @ res.x - b) / np.linalg.norm(b) < 1e-9
    # PCG should beat Richardson on iteration count for the same system.
    res_rich = richardson(A_pert, b, precond, tol=1e-10, maxiter=50)
    assert res.applications <= res_rich.applications


def test_pcg_rejects_multiple_rhs(setup):
    A, _, precond = setup
    with pytest.raises(ValueError):
        pcg(A, np.ones((A.shape[0], 2)), precond)


def test_pcg_zero_rhs(setup):
    A, _, precond = setup
    res = pcg(A, np.zeros(A.shape[0]), precond)
    assert res.converged and res.iterations == 0
    assert np.allclose(res.x, 0.0)


def test_solve_kwargs_forwarded(setup):
    """Algorithm/device kwargs reach the underlying SpTRSV."""
    A, A_pert, precond = setup
    b = make_rhs(A.shape[0], 1, "random", seed=7)[:, 0]
    res = richardson(A_pert, b, precond, tol=1e-9,
                     algorithm="baseline3d")
    assert res.converged
