"""Tests for repro.check: invariants, the fuzzer plumbing, the reducer."""

import json

import numpy as np
import pytest

from repro.check import (
    FuzzCase,
    InvariantViolation,
    check_cache,
    check_serve,
    check_sim,
    draw_case,
    run_case,
    shrink,
    write_repro,
)
from repro.comm import CORI_HASWELL, Simulator
from repro.serve import (
    BatchPolicy,
    FactorizationCache,
    ServiceConfig,
    SolveService,
    WorkloadSpec,
    generate_workload,
)


# -- invariant layer: accepts clean state, rejects corrupted state -----------

def _sim_result():
    def fn(ctx):
        other = 1 - ctx.rank
        ctx.set_phase("l")
        yield ctx.compute(1.0, category="fp")
        yield ctx.send(other, np.zeros(2), tag=0, category="xy")
        yield ctx.recv(src=other, tag=0, category="xy")

    return Simulator(2, CORI_HASWELL).run(fn)


def test_check_sim_accepts_clean_run():
    assert check_sim(_sim_result()) > 0


def test_check_sim_rejects_negative_clock():
    res = _sim_result()
    res.clocks[0] = -1.0
    with pytest.raises(InvariantViolation, match="clock-sane"):
        check_sim(res)


def test_check_sim_rejects_uncharged_time():
    res = _sim_result()
    res.times[0][("ghost", "fp")] = 5.0   # label time with no clock advance
    with pytest.raises(InvariantViolation, match="time-conservation"):
        check_sim(res)
    # ... unless conservation is gated off (merged GPU summaries).
    check_sim(res, conservation=False)


def test_check_sim_rejects_mailbox_leak_only_when_fault_free():
    from repro.comm.simulator import UnconsumedMessage

    res = _sim_result()
    res.unconsumed_msgs.append(
        UnconsumedMessage(dst=1, src=0, tag="x", arrival=0.5, nbytes=16))
    with pytest.raises(InvariantViolation, match="message-conservation"):
        check_sim(res)
    check_sim(res, faulted=True)          # faulted runs may leak legitimately


def test_check_cache_rejects_drifted_bytes():
    c = FactorizationCache()

    class S:
        def storage_nbytes(self):
            return 64

        def factor_time_estimate(self, machine=None):
            return 1.0

    from repro.serve.cache import CacheKey

    k = CacheKey(fingerprint="f", px=1, py=1, pz=1, machine="m",
                 max_supernode=16, symbolic_mode="detect", ordering="nd")
    c.put(k, S())
    assert check_cache(c) > 0
    c.stats.resident_bytes += 1
    with pytest.raises(InvariantViolation, match="byte-conservation"):
        check_cache(c)


CFG = ServiceConfig(px=1, py=1, pz=1)
POLICY = BatchPolicy(max_batch=4, max_wait=1e-3)


def _serve_result():
    wl = generate_workload(WorkloadSpec(seed=3, rate=2000.0, n_requests=4,
                                        deadline=10.0))
    svc = SolveService(CFG, POLICY)
    return wl, svc, svc.run(wl)


def test_check_serve_accepts_clean_run():
    wl, svc, res = _serve_result()
    assert check_serve(wl, res, service=svc) > 0


def test_check_serve_rejects_lost_request():
    wl, svc, res = _serve_result()
    lost = res.completions.pop()
    del res.solutions[lost.request.id]
    res.slo.n_completed -= 1
    with pytest.raises(InvariantViolation, match="request-conservation"):
        check_serve(wl, res, service=svc)


def test_check_serve_rejects_double_completion():
    wl, svc, res = _serve_result()
    res.completions.append(res.completions[0])
    with pytest.raises(InvariantViolation, match="single-completion"):
        check_serve(wl, res, service=svc)


def test_check_serve_rejects_early_deadline_shed():
    from repro.serve.scheduler import Rejection, RejectReason

    wl, svc, res = _serve_result()
    victim = res.completions.pop()
    del res.solutions[victim.request.id]
    res.slo.n_completed -= 1
    res.slo.n_shed += 1
    res.slo.shed_by_reason["deadline-passed"] = 1
    # Shed stamped AT the deadline violates the strict deadline < t rule.
    res.rejections.append(Rejection(victim.request,
                                    RejectReason.DEADLINE_PASSED,
                                    victim.request.deadline))
    with pytest.raises(InvariantViolation, match="deadline-boundary"):
        check_serve(wl, res)


# -- fuzz cases: drawing, round-tripping, running ----------------------------

def _draws(seed, n=10):
    rng = np.random.default_rng([seed, 0xF022])
    return [draw_case(rng, i) for i in range(n)]


def test_draw_stream_deterministic():
    assert _draws(5) == _draws(5)
    assert _draws(5) != _draws(6)


def test_draw_respects_constraints():
    for case in _draws(1, 60):
        if case.kind != "solve":
            continue
        if case.ordering == "mmd":
            assert case.pz == 1
        if case.device == "gpu":
            assert case.py == 1
            assert case.machine == "perlmutter-gpu"
            assert not case.faulted


def test_case_json_round_trip():
    for case in _draws(2, 4):
        again = FuzzCase.from_json(case.to_json())
        assert again == case
        assert again.digest() == case.digest()


def test_case_json_version_check():
    with pytest.raises(ValueError, match="version"):
        FuzzCase.from_json('{"version": 999}')


def test_run_case_reports_unknown_kind_as_failure():
    result = run_case(FuzzCase(index=0, seed=1, kind="bogus"))
    assert not result.ok
    assert "unknown" in result.mismatches[0]


def test_old_corpus_json_without_strict_match_field_loads():
    """PR 5 added strict_match; pre-existing corpus files must still parse."""
    case = FuzzCase(index=0, seed=1, kind="solve")
    doc = json.loads(case.to_json())
    del doc["strict_match"]
    again = FuzzCase.from_json(json.dumps(doc))
    assert again.strict_match is False


def test_strict_match_case_runs_clean():
    """The strict-match draw cross-checks the dynamic detector against the
    static analyzer: on the real kernels it must complete bit-identically."""
    case = FuzzCase(index=0, seed=7, kind="solve", generator="poisson2d",
                    size=10, px=2, py=2, pz=2, strict_match=True)
    assert "strict" in case.describe()
    result = run_case(case)
    assert result.ok, result.summary()


# -- the reducer -------------------------------------------------------------

def test_shrink_minimizes_while_preserving_failure():
    case = FuzzCase(index=0, seed=1, kind="solve", generator="poisson2d",
                    size=16, px=2, py=2, pz=4, nrhs=4, drop=0.05,
                    ordering="nd", symbolic_mode="fixed")

    def failing(c):
        return c.pz >= 2            # synthetic predicate: pz is the culprit

    small = shrink(case, failing)
    assert failing(small)
    assert small.pz == 2            # halved as far as the failure allows
    assert small.px == 1 and small.py == 1 and small.nrhs == 1
    assert not small.faulted
    assert small.symbolic_mode == "detect"
    assert small.size == min(s for s in (8, 10, 12, 16))


def test_shrink_returns_original_when_nothing_simpler_fails():
    case = FuzzCase(index=0, seed=1, kind="solve", generator="poisson2d",
                    size=8, px=1, py=1, pz=1, nrhs=1)
    assert shrink(case, lambda c: c == case) == case


def test_write_repro_round_trip(tmp_path):
    case = FuzzCase(index=0, seed=42, kind="solve", generator="blocktri",
                    size=4, pz=2)
    path = write_repro(case, corpus_dir=str(tmp_path))
    assert case.digest() in path
    with open(path) as f:
        assert FuzzCase.from_json(f.read()) == case
