"""Replay every corpus case as an ordinary test.

``tests/corpus/`` holds seeded :class:`~repro.check.fuzz.FuzzCase` JSON
files: a few standing differential cases plus any failure the fuzzer ever
shrank and wrote (``repro fuzz`` does that automatically).  Replaying them
here turns every past finding into a permanent regression test.
"""

import glob
import os

import pytest

from repro.check import FuzzCase, run_case

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
CASES = sorted(glob.glob(os.path.join(CORPUS, "case-*.json")))


def test_corpus_is_seeded():
    assert CASES, "tests/corpus/ must hold at least the seed cases"


@pytest.mark.parametrize("path", CASES,
                         ids=[os.path.basename(p) for p in CASES])
def test_corpus_case_replays_clean(path):
    with open(path) as f:
        case = FuzzCase.from_json(f.read())
    result = run_case(case)
    assert result.ok, result.summary()
