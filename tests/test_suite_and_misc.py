"""Coverage for the matrix suite metadata and remaining misc surfaces."""

import numpy as np
import pytest

from repro.comm import PERLMUTTER_GPU, Simulator, CORI_HASWELL
from repro.core import SpTRSVSolver
from repro.matrices import PAPER_MATRICES, get_matrix, make_rhs
from repro.numfact import solve_residual


def test_suite_pde_classes():
    """The class labels drive the expected replication behavior."""
    classes = {name: spec.pde_class for name, spec in PAPER_MATRICES.items()}
    assert classes["s2D9pt2048"] == "2D"
    assert classes["nlpkkt80"] == "3D"
    assert classes["Ga19As19H42"] == "dense-ish"
    assert set(classes.values()) <= {"2D", "3D", "dense-ish"}


def test_suite_spec_build_matches_get_matrix():
    spec = PAPER_MATRICES["ldoor"]
    A1 = spec.build("tiny")
    A2 = get_matrix("ldoor", "tiny")
    assert (A1 != A2).nnz == 0


def test_suite_paper_metadata_consistency():
    for spec in PAPER_MATRICES.values():
        # The recorded paper density must match n and nnz(LU).
        derived = spec.paper_nnz_lu / spec.paper_n ** 2
        assert derived == pytest.approx(spec.paper_density, rel=0.5), spec.name


def test_gpu3d_z_phase_times_recorded():
    """The GPU path's synthesized report carries all three phases with
    consistent totals (fp + xy + z <= makespan per rank is NOT required —
    waits overlap — but each phase must be present and non-negative)."""
    A = get_matrix("s2D9pt2048", "tiny")
    s = SpTRSVSolver(A, 2, 1, 4, max_supernode=8, machine=PERLMUTTER_GPU,
                     symbolic_mode="fixed")
    b = make_rhs(A.shape[0], 2)
    out = s.solve(b, device="gpu")
    rep = out.report
    for phase in ("l", "z", "u"):
        t = rep.per_rank(phase=phase)
        assert (t >= 0).all()
    assert rep.per_rank(phase="z").max() > 0  # pz=4: allreduce ran
    # NVSHMEM message stats were attributed.
    assert rep.message_count("xy") > 0
    assert solve_residual(A, out.x, b) < 1e-9


def test_gpu3d_start_offsets_respected():
    """U-phase clocks start after each GPU's allreduce completion."""
    from repro.core.sptrsv3d_new import build_new3d_setup
    from repro.gpu import solve_new3d_gpu

    A = get_matrix("s2D9pt2048", "tiny")
    s = SpTRSVSolver(A, 1, 1, 2, max_supernode=8, machine=PERLMUTTER_GPU,
                     symbolic_mode="fixed")
    setup = s._new3d_setup("binary")
    b = make_rhs(A.shape[0], 1)[s.perm]
    res = solve_new3d_gpu(setup, PERLMUTTER_GPU, b, 1)
    for r in range(2):
        z_end = res.sim.marks[r].get("z_end", 0.0)
        assert res.sim.clocks[r] >= z_end
        assert res.sim.marks[r]["u_end"] == pytest.approx(res.sim.clocks[r])


def test_cli_tune_gpu(capsys):
    from repro.cli import main

    rc = main(["tune", "--matrix", "s2D9pt2048", "--scale", "tiny",
               "--ranks", "4", "--device", "gpu",
               "--machine", "perlmutter-gpu", "--symbolic", "fixed",
               "--max-supernode", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "best: --grid" in out
    # GPU constraint: every listed config has Py = 1.
    for line in out.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0].isdigit():
            assert parts[1] == "1"


def test_simulator_single_rank_no_machine_effects():
    """A rank with no ops finishes at clock zero."""
    def fn(ctx):
        return "done"
        yield  # pragma: no cover

    res = Simulator(3, CORI_HASWELL).run(fn)
    assert (res.clocks == 0).all()
    assert res.results == ["done"] * 3


def test_solver_report_message_bytes_positive():
    A = get_matrix("nlpkkt80", "tiny")
    s = SpTRSVSolver(A, 2, 2, 2, max_supernode=8, symbolic_mode="fixed")
    out = s.solve(make_rhs(A.shape[0], 1))
    assert out.report.message_bytes("xy") > 0
    assert out.report.message_bytes("z") > 0
    assert out.report.message_bytes() >= (out.report.message_bytes("xy")
                                          + out.report.message_bytes("z"))
