"""Tests for the MPI-like sub-communicator abstraction."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator
from repro.comm.subcomm import Subcomm, grid_subcomms
from repro.grids import Grid3D


def test_rank_translation():
    c = Subcomm((3, 1, 7), name="g")
    assert c.members == (1, 3, 7)
    assert c.size == 3
    assert c.rank_of(3) == 1
    assert c.global_of(0) == 1
    assert c.contains(7) and not c.contains(2)
    with pytest.raises(KeyError):
        c.rank_of(5)


def test_validation():
    with pytest.raises(ValueError):
        Subcomm(())
    with pytest.raises(ValueError):
        Subcomm((1, 1))


def test_split():
    c = Subcomm(tuple(range(8)))
    parts = c.split(lambda r: r % 2)
    assert set(parts) == {0, 1}
    assert parts[0].members == (0, 2, 4, 6)
    assert parts[1].members == (1, 3, 5, 7)


def test_collectives_through_subcomm():
    even = Subcomm((0, 2, 4), name="even")

    def fn(ctx):
        if even.contains(ctx.rank):
            total = yield from even.allreduce(ctx, np.array([1.0]))
            got = yield from even.bcast(ctx, float(total[0]) * ctx.rank
                                        if ctx.rank == 0 else None, root=0)
            yield from even.barrier(ctx)
            return got
        yield ctx.compute(0.1)
        return None

    res = Simulator(5, CORI_HASWELL).run(fn)
    assert res.results[0] == res.results[2] == res.results[4] == 0.0
    assert res.results[1] is None


def test_reduce_to_group_root():
    c = Subcomm((1, 2, 3))

    def fn(ctx):
        if not c.contains(ctx.rank):
            return None
        acc = yield from c.reduce(ctx, np.array([float(ctx.rank)]), root=2)
        return float(acc[0]) if c.rank_of(ctx.rank) == 2 else None

    res = Simulator(4, CORI_HASWELL).run(fn)
    assert res.results[3] == 6.0  # group rank 2 == global rank 3


def test_two_subcomms_do_not_cross_talk():
    """Identical payload/tag collectives on disjoint groups stay separate."""
    a = Subcomm((0, 1), name="a")
    b = Subcomm((2, 3), name="b")

    def fn(ctx):
        grp = a if ctx.rank < 2 else b
        out = yield from grp.allreduce(ctx, np.array([float(ctx.rank)]))
        return float(out[0])

    res = Simulator(4, CORI_HASWELL).run(fn)
    assert res.results == [1.0, 1.0, 5.0, 5.0]


def test_grid_subcomms_families():
    g = Grid3D(2, 3, 4)
    xy, zs = grid_subcomms(g)
    assert len(xy) == 4 and len(zs) == 6
    for z, c in enumerate(xy):
        assert c.members == tuple(g.grid_ranks(z))
    # Every rank appears in exactly one xy comm and one z comm.
    from collections import Counter

    cnt_xy = Counter(r for c in xy for r in c.members)
    cnt_z = Counter(r for c in zs for r in c.members)
    assert set(cnt_xy.values()) == {1}
    assert set(cnt_z.values()) == {1}
    assert sum(c.size for c in xy) == g.nranks
