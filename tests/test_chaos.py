"""Chaos tests: the resilience invariant under seeded fault sweeps.

The invariant (see ``docs/FAULTS.md``): every resilient solve under an
arbitrary fault plan either returns a correct solution (residual at or
below the tolerance) or raises a diagnosable typed error — never a silent
wrong answer.  The ``smoke`` tests run a reduced sweep quickly (used by the
CI chaos-smoke job); the full sweep covers every fault kind on all three
algorithms.
"""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, FaultPlan
from repro.comm.chaos import TYPED_ERRORS, ChaosRun, chaos_sweep
from repro.core import Resilience, SpTRSVSolver
from repro.matrices import make_rhs, poisson2d
from repro.numfact import solve_residual

SMOKE_SEED = 2023  # fixed: CI must test the same schedules as local runs


@pytest.fixture(scope="module")
def solver3d():
    A = poisson2d(12, stencil=9, seed=4)
    return SpTRSVSolver(A, 2, 1, 2, max_supernode=8)


@pytest.fixture(scope="module")
def solver2d():
    A = poisson2d(12, stencil=9, seed=4)
    return SpTRSVSolver(A, 2, 2, 1, max_supernode=8)


def test_chaos_smoke_invariant(solver3d, solver2d):
    """Reduced sweep for CI: every cell correct or typed-error."""
    report = chaos_sweep(
        {"new3d": solver3d, "2d": solver2d},
        kinds=("drop", "corrupt", "crash"),
        rates=(0.0, 0.05),
        seeds=(SMOKE_SEED,))
    report.verify()
    counts = report.counts()
    assert sum(counts.values()) == 2 * 3 * 2
    assert counts.get("exact", 0) >= 6  # all rate-0 cells at least
    assert not report.breaches()
    assert "chaos sweep" in report.summary()


def test_chaos_full_sweep_all_kinds(solver3d, solver2d):
    """Every fault kind, all three algorithms, two rates, one seed."""
    report = chaos_sweep(
        {"new3d": solver3d, "baseline3d": solver3d, "2d": solver2d},
        rates=(0.0, 0.05),
        seeds=(SMOKE_SEED,))
    report.verify()
    # Benign kinds (duplicate/delay/reorder) must not force degradation
    # below the requested algorithm: recovery yes, silent corruption never.
    for r in report.runs:
        if r.kind in ("duplicate", "delay") and r.status not in (
                "typed-error",):
            assert r.residual is not None and r.residual <= 1e-10


def test_chaos_identical_seeds_identical_runs(solver3d):
    """Same seed -> same fault schedule, clocks, statuses (determinism)."""
    kw = dict(kinds=("drop", "corrupt"), rates=(0.05,), seeds=(7,))
    r1 = chaos_sweep({"new3d": solver3d}, **kw)
    r2 = chaos_sweep({"new3d": solver3d}, **kw)
    assert len(r1.runs) == len(r2.runs)
    for a, b in zip(r1.runs, r2.runs):
        assert (a.status, a.tier, a.error) == (b.status, b.tier, b.error)
        assert a.virtual_time == b.virtual_time
        assert a.fault_events == b.fault_events
        assert a.residual == b.residual


def test_chaos_reliable_completes_in_tier(solver3d, solver2d):
    """reliable=True + nonzero drop: 2D and new-3D finish without fallback."""
    res = Resilience(reliable=True, checksums=False, residual_tol=1e-10)
    b3 = make_rhs(solver3d.n, 1)
    b2 = make_rhs(solver2d.n, 1)
    for alg, solver, rhs in (("new3d", solver3d, b3), ("2d", solver2d, b2)):
        plan = FaultPlan.uniform(seed=SMOKE_SEED, drop=0.05)
        out = solver.solve(rhs, algorithm=alg, faults=plan, resilience=res)
        rr = out.resilience
        assert rr.tier == alg, f"{alg} degraded to {rr.tier}"
        assert len(rr.attempts) == 1
        assert solve_residual(solver.A, out.x, rhs) <= 1e-10
        counts = out.report.sim.fault_counts()
        assert counts.get("drop", 0) >= 1
        assert counts.get("retransmit", 0) == counts.get("drop", 0)


def test_chaos_unreliable_drop_degrades_but_solves(solver3d):
    """Without the envelope, heavy drop falls back — still a correct x."""
    b = make_rhs(solver3d.n, 1)
    plan = FaultPlan.uniform(seed=SMOKE_SEED, drop=0.3)
    res = Resilience(residual_tol=1e-10, retries_per_tier=0)
    out = solver3d.solve(b, algorithm="new3d", faults=plan, resilience=res)
    rr = out.resilience
    assert solve_residual(solver3d.A, out.x, b) <= 1e-10
    assert rr.degraded
    assert rr.tier == "reference"
    # The failed attempts are all typed and diagnosable.
    for a in rr.attempts:
        if a.status != "ok":
            assert a.status in ("error", "bad-residual")
    assert any(a.error for a in rr.attempts)


def test_chaos_run_classification():
    ok = ChaosRun("new3d", "drop", 0.05, 0, "recovered")
    assert ok.ok
    bad = ChaosRun("new3d", "corrupt", 0.05, 0, "silent-wrong")
    assert not bad.ok
    assert all(issubclass(t, Exception) for t in TYPED_ERRORS)
