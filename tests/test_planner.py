"""Tests for the multi-backend zoo and the cost-model planner.

Covers the two new backends (communication-avoiding block TRSM and the
structurally-filtered inter-grid allreduce), the planner's static pricing
against measured virtual times, decision caching, ``algorithm="auto"``
bit-identity, the measured-feedback correction path at a deliberately
cliff-adjacent machine point, and the serving-tier integration.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.comm.costmodel import CORI_HASWELL
from repro.core import SpTRSVSolver
from repro.matrices import get_matrix, make_rhs
from repro.planner import (
    DEFAULT_PLANNER,
    Planner,
    candidates,
    predict_time,
    schedule_time,
)

GRIDS = [(1, 1, 1), (2, 1, 2), (2, 2, 2), (1, 2, 4)]


@pytest.fixture(scope="module")
def A():
    return get_matrix("s2D9pt2048", scale="tiny")


def make_solver(A, grid, machine=None):
    px, py, pz = grid
    return SpTRSVSolver(A, px, py, pz, machine=machine or CORI_HASWELL,
                        max_supernode=8)


# -- backend correctness -----------------------------------------------------

@pytest.mark.parametrize("grid", GRIDS)
def test_ca_trsm_exact(A, grid):
    solver = make_solver(A, grid)
    b = make_rhs(A.shape[0], nrhs=3, seed=5)
    out = solver.solve(b, algorithm="ca_trsm")
    ref = solver.solve(b, algorithm="new3d")
    assert np.allclose(out.x, ref.x, rtol=0, atol=1e-12)
    assert np.max(np.abs(A @ out.x - b)) < 1e-10


@pytest.mark.parametrize("grid", [(2, 1, 2), (2, 2, 2), (1, 2, 4)])
def test_sparse_allreduce_v2_bit_identical_to_new3d(A, grid):
    """The structural filter drops only messages that carry exact zeros,
    so v2 must reproduce new3d's solution bit for bit."""
    solver = make_solver(A, grid)
    b = make_rhs(A.shape[0], nrhs=2, seed=6)
    x_v2 = solver.solve(b, algorithm="sparse_allreduce_v2").x
    x_ref = solver.solve(b, algorithm="new3d").x
    assert np.array_equal(x_v2, x_ref)


@pytest.mark.parametrize("algorithm,syncs", [
    ("ca_trsm", 0),
    ("sparse_allreduce_v2", 1),
])
def test_new_backend_schedules_certify(A, algorithm, syncs):
    from repro.analyze import expected_syncs, solver_schedule, verify_schedule

    solver = make_solver(A, (2, 1, 2))
    sched = solver_schedule(solver, algorithm=algorithm, nrhs=1)
    rep = verify_schedule(sched)
    assert rep.ok
    assert rep.nsyncs == syncs == expected_syncs(algorithm, 2)


# -- static pricing ----------------------------------------------------------

@pytest.mark.parametrize("grid", [(2, 1, 2), (2, 2, 2)])
def test_predictions_match_measured_virtual_times(A, grid):
    """On the stock machines every SpTRSV kernel is memory-bound, so the
    planner's segment aggregation is lossless and its predicted makespan
    must equal the simulator's measured one."""
    solver = make_solver(A, grid)
    b = make_rhs(A.shape[0], nrhs=1, seed=7)
    for alg in candidates(solver):
        predicted = predict_time(solver, alg, nrhs=1)
        measured = solver.solve(b, algorithm=alg).report.total_time
        assert predicted == pytest.approx(measured, rel=1e-9), alg


def test_schedule_time_rejects_incomplete(A):
    from repro.analyze.extract import solver_schedule

    solver = make_solver(A, (2, 1, 2))
    sched = solver_schedule(solver, algorithm="new3d", nrhs=1)
    incomplete = dataclasses.replace(sched, complete=False)
    with pytest.raises(ValueError, match="incomplete"):
        schedule_time(incomplete, CORI_HASWELL)


# -- planning, caching, and auto ---------------------------------------------

def test_planner_pick_matches_measured_ranking(A):
    solver = make_solver(A, (2, 1, 2))
    b = make_rhs(A.shape[0], nrhs=1, seed=8)
    planner = Planner()
    d = planner.choose(solver)
    measured = {alg: solver.solve(b, algorithm=alg).report.total_time
                for alg in candidates(solver)}
    best = min(measured, key=lambda a: (measured[a],
                                        candidates(solver).index(a)))
    assert d.algorithm == best
    assert set(d.predicted) == set(candidates(solver))


def test_decision_cache_hits(A):
    solver = make_solver(A, (2, 1, 2))
    planner = Planner()
    d1 = planner.choose(solver, nrhs=2)
    d2 = planner.choose(solver, nrhs=2)
    assert d1 is d2
    assert planner.decisions() == [d1]
    # A different batch width is a different problem.
    d3 = planner.choose(solver, nrhs=3)
    assert d3 is not d1


@pytest.mark.parametrize("grid", [(2, 2, 1), (2, 1, 2), (1, 2, 4)])
def test_auto_bit_identical_to_direct(A, grid):
    solver = make_solver(A, grid)
    b = make_rhs(A.shape[0], nrhs=2, seed=9)
    auto = solver.solve(b, algorithm="auto")
    direct = solver.solve(b, algorithm=auto.report.algorithm)
    assert np.array_equal(auto.x, direct.x)
    assert auto.report.total_time == direct.report.total_time


def test_auto_requires_cpu(A):
    solver = make_solver(A, (2, 1, 2))
    b = make_rhs(A.shape[0], nrhs=1, seed=10)
    with pytest.raises(ValueError, match="auto"):
        solver.solve(b, algorithm="auto", device="gpu")


# -- measured-feedback correction (the mispredict cliff) ---------------------

def _cliff_machine():
    """A bandwidth/latency point adjacent to the new3d/baseline3d cost
    cliff: fat messages (beta x256) but cheap startup (alpha x0.25).

    Here the planner's lower-bound compute aggregation prices the
    z-phase algorithms close enough that the model picks onesided_put
    while the simulator measures new3d ~2% faster — a genuine,
    deterministic misprediction the feedback path must absorb.
    """
    m = CORI_HASWELL
    net = dataclasses.replace(
        m.net,
        beta_intra=m.net.beta_intra * 256.0,
        beta_inter=m.net.beta_inter * 256.0,
        alpha_intra=m.net.alpha_intra * 0.25,
        alpha_inter=m.net.alpha_inter * 0.25)
    return m.with_(net=net, name="cori-haswell-cliff")


def test_mispredict_is_corrected_by_measured_feedback(A):
    machine = _cliff_machine()
    solver = make_solver(A, (2, 1, 2))
    b = make_rhs(A.shape[0], nrhs=4, seed=11)
    planner = Planner()

    d = planner.choose(solver, nrhs=4, machine=machine)
    measured = {alg: solver.solve(b, algorithm=alg,
                                  machine=machine).report.total_time
                for alg in candidates(solver)}
    best = min(measured, key=measured.get)

    # The cliff is real: the model picks one backend, the measurement
    # ranks another strictly better.
    assert d.algorithm == "onesided_put"
    assert best == "new3d"
    assert measured[best] < measured[d.algorithm]

    corrected = planner.observe(solver, measured, nrhs=4, machine=machine)
    assert corrected is d
    assert d.corrected
    assert d.algorithm == best
    assert len(planner.corrections) == 1
    corr = planner.corrections[0]
    assert corr.predicted_pick == "onesided_put"
    assert corr.measured_pick == "new3d"
    # The cache now serves the corrected pick.
    assert planner.choose(solver, nrhs=4, machine=machine).algorithm == best
    # Re-observing the same measurements is idempotent.
    planner.observe(solver, measured, nrhs=4, machine=machine)
    assert len(planner.corrections) == 1


def test_observe_without_better_measurement_keeps_pick(A):
    solver = make_solver(A, (2, 1, 2))
    planner = Planner()
    d = planner.choose(solver)
    planner.observe(solver, {d.algorithm: 1.0})
    assert not d.corrected
    assert not planner.corrections


# -- serving-tier integration ------------------------------------------------

def test_service_planner_routes_and_verifies():
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        WorkloadSpec,
        generate_workload,
    )

    spec = WorkloadSpec(seed=3, rate=2000.0, n_requests=8,
                        mix=(("s2D9pt2048", "tiny", 1.0),),
                        deadline=0.1)
    wl = generate_workload(spec)
    kw = dict(px=1, py=1, pz=2, machine="cori-haswell", max_supernode=8)
    pol = BatchPolicy(max_batch=4, max_wait=1e-3)
    svc = SolveService(ServiceConfig(planner=True, **kw), pol,
                       verify_fraction=1.0)
    planned = svc.run(wl)
    assert planned.slo.n_completed == len(wl)
    # The planner-routed service answers with some cached CPU pick and the
    # verifier (which re-solves on the same resolved backend) stays quiet:
    # the bit-identity contract is planner-transparent.
    assert planned.n_verified > 0
    assert planned.integrity_failures == []


def test_service_planner_requires_cpu():
    from repro.serve import ServiceConfig

    with pytest.raises(ValueError, match="planner"):
        ServiceConfig(px=1, py=1, pz=2, device="gpu", planner=True)


def test_service_skips_replay_for_nonreplayable_backends(A):
    # The replay compiler only covers the original backends; a serve run
    # pinned to a zoo backend must fall back to the simulator on cache-hit
    # batches instead of crashing in the schedule compiler.
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        WorkloadSpec,
        generate_workload,
    )

    spec = WorkloadSpec(seed=5, rate=2000.0, n_requests=8,
                        mix=(("s2D9pt2048", "tiny", 1.0),),
                        deadline=0.1)
    wl = generate_workload(spec)
    pol = BatchPolicy(max_batch=4, max_wait=1e-3)
    for alg in ("sparse_allreduce_v2", "ca_trsm"):
        svc = SolveService(ServiceConfig(px=1, py=1, pz=2,
                                         machine="cori-haswell",
                                         max_supernode=8, algorithm=alg),
                           pol)
        res = svc.run(wl)
        assert res.slo.n_completed == len(wl)
        assert res.n_replayed == 0
        assert res.slo.cache_hits > 0  # the skip mattered: hits did occur


def test_replay_rejects_nonreplayable_backend(A):
    from repro.replay import REPLAYABLE, ReplayError

    assert "sparse_allreduce_v2" not in REPLAYABLE
    assert "ca_trsm" not in REPLAYABLE
    solver = make_solver(A, (2, 1, 2))
    b = make_rhs(A.shape[0], 1, seed=0)
    with pytest.raises(ReplayError, match="replay does not support"):
        solver.solve(b, algorithm="sparse_allreduce_v2", replay=True)


def test_cli_planner_log_is_deterministic(tmp_path, capsys):
    from repro.cli import main

    argv = ["planner", "--matrix", "s2D9pt2048", "--scale", "tiny",
            "--max-supernode", "8", "--grids", "2x2x1,2x1x2"]
    out1 = tmp_path / "a.log"
    out2 = tmp_path / "b.log"
    assert main(argv + ["--out", str(out1)]) == 0
    assert main(argv + ["--out", str(out2)]) == 0
    capsys.readouterr()
    assert out1.read_text() == out2.read_text()
    assert "pick " in out1.read_text()
