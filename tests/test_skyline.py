"""Unit tests for the skyline U storage (the paper's §2.1 simplification)."""

import numpy as np
import pytest

from repro.matrices import make_rhs, poisson2d, random_spd_like
from repro.numfact import (
    SkylineBlock,
    lu_factorize,
    skyline_compress,
    skyline_stats,
)
from repro.symbolic import symbolic_factor


def test_skyline_block_roundtrip():
    rng = np.random.default_rng(0)
    block = np.triu(rng.standard_normal((6, 6)))  # natural skyline shape
    sk = SkylineBlock.from_dense(block)
    assert np.allclose(sk.to_dense(), block)
    assert sk.stored_entries < sk.full_entries


def test_skyline_block_matvec_matches_dense():
    rng = np.random.default_rng(1)
    block = rng.standard_normal((8, 5))
    block[5:, 2] = 0.0  # one short column
    block[:, 4] = 0.0   # one empty column
    sk = SkylineBlock.from_dense(block)
    for nrhs in (1, 3):
        x = rng.standard_normal((5, nrhs))
        assert np.allclose(sk.matvec(x), block @ x, atol=1e-13)


def test_skyline_block_empty_and_dense():
    sk = SkylineBlock.from_dense(np.zeros((4, 3)))
    assert sk.stored_entries == 0
    assert np.allclose(sk.to_dense(), 0.0)
    full = np.ones((4, 3))
    sk2 = SkylineBlock.from_dense(full)
    assert sk2.stored_entries == 12


def test_skyline_tolerance():
    block = np.array([[1.0, 1e-12], [0.0, 1e-12]])
    assert SkylineBlock.from_dense(block, tol=0.0).stored_entries == 3
    assert SkylineBlock.from_dense(block, tol=1e-9).stored_entries == 1


@pytest.mark.parametrize("gen", [
    lambda: poisson2d(10, stencil=9, seed=2),
    lambda: random_spd_like(80, avg_degree=4, seed=3),
])
def test_skyline_compress_lossless_on_factors(gen):
    A = gen()
    sym = symbolic_factor(A, max_supernode=8)
    lu = lu_factorize(A, sym.partition)
    blocks = skyline_compress(lu)
    assert set(blocks) == set(lu.Ublocks)
    for key, sk in blocks.items():
        assert np.allclose(sk.to_dense(), lu.Ublocks[key], atol=1e-15)


def test_skyline_stats_quantify_simplification():
    """The full-column assumption over-stores; skyline recovers it."""
    A = poisson2d(12, stencil=9, seed=4)
    sym = symbolic_factor(A, max_supernode=8)
    lu = lu_factorize(A, sym.partition)
    st = skyline_stats(lu)
    assert st.nblocks == len(lu.Ublocks)
    assert 0 < st.compression <= 1.0
    assert st.wasted_bytes == 8.0 * (st.full_entries - st.skyline_entries)
    # Solve through skyline matvecs matches the reference U-solve.
    blocks = skyline_compress(lu)
    y = make_rhs(lu.n, 1, "random", seed=5)
    part = lu.partition
    x = np.array(y)
    for K in range(lu.nsup - 1, -1, -1):
        c0, c1 = part.first(K), part.last(K)
        acc = np.array(x[c0:c1])
        for J in lu.u_blockcols[K]:
            j0, j1 = part.first(J), part.last(J)
            acc -= blocks[(K, int(J))].matvec(x[j0:j1])
        x[c0:c1] = lu.diagUinv[K] @ acc
    assert np.allclose(x, lu.solve_U(y), atol=1e-11)
