"""Unit tests for the simulator's optional event tracing."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator, TraceEvent


def fn(ctx):
    ctx.set_phase("l")
    if ctx.rank == 0:
        yield ctx.compute(1.0, category="fp")
        yield ctx.send(1, np.zeros(8), tag="t", category="xy")
    else:
        yield ctx.recv(src=0, tag="t", category="xy")
        yield ctx.compute(0.5, category="fp")


def test_trace_disabled_by_default():
    res = Simulator(2, CORI_HASWELL).run(fn)
    assert res.trace is None
    with pytest.raises(ValueError):
        res.trace_timeline()


def test_trace_records_all_kinds():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    kinds = {e.kind for e in res.trace}
    assert kinds == {"compute", "send", "wait"}
    sends = [e for e in res.trace if e.kind == "send"]
    assert sends[0].rank == 0 and sends[0].detail == 1
    waits = [e for e in res.trace if e.kind == "wait"]
    assert waits[0].rank == 1 and waits[0].detail == 0


def test_trace_timeline_sorted_and_filtered():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    tl = res.trace_timeline()
    assert all(tl[i].t0 <= tl[i + 1].t0 for i in range(len(tl) - 1))
    tl0 = res.trace_timeline(rank=0)
    assert {e.rank for e in tl0} == {0}


def test_trace_intervals_consistent_with_times():
    """Per-rank summed trace durations equal the accounted times."""
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    for r in range(2):
        total_trace = sum(e.t1 - e.t0 for e in res.trace_timeline(rank=r))
        total_times = res.time_by()[r]
        assert total_trace == pytest.approx(total_times, rel=1e-12)
        # Intervals are non-overlapping and end at the final clock.
        tl = res.trace_timeline(rank=r)
        for a, b in zip(tl, tl[1:]):
            assert a.t1 <= b.t0 + 1e-15
        assert tl[-1].t1 == pytest.approx(res.clocks[r])


def test_trace_phase_labels():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    assert all(e.phase == "l" for e in res.trace)


def test_solver_trace_integration():
    """A full solve can be traced end to end."""
    from repro.core.sptrsv3d_new import build_new3d_setup, new3d_rank_fn
    from repro.core import SpTRSVSolver
    from repro.matrices import make_rhs, poisson2d

    A = poisson2d(10, stencil=9, seed=2)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    setup = s._new3d_setup("auto")
    b = make_rhs(A.shape[0], 1)[s.perm]
    res = Simulator(s.grid.nranks, CORI_HASWELL, trace=True).run(
        new3d_rank_fn(setup, b, 1))
    tl = res.trace_timeline()
    assert len(tl) > 10
    phases = {e.phase for e in tl}
    assert {"l", "u"} <= phases


# -- fault events in traces and exports --------------------------------------


def faulty_fn(ctx):
    ctx.set_phase("l")
    if ctx.rank == 0:
        for k in range(12):
            yield ctx.send(1, np.zeros(8), tag=k, category="xy")
    else:
        for _ in range(12):
            yield ctx.recv(src=0, category="xy")


def faulty_run():
    from repro.comm import FaultPlan, ReliableTransport

    plan = FaultPlan.uniform(seed=9, drop=0.6, delay=0.6)
    return Simulator(2, CORI_HASWELL, trace=True, faults=plan,
                     reliable=ReliableTransport(max_retries=16)).run(faulty_fn)


def test_trace_records_fault_events():
    res = faulty_run()
    faults = [e for e in res.trace if e.kind == "fault"]
    assert len(faults) == len(res.fault_events)
    assert {e.category for e in faults} >= {"drop", "retransmit"}
    for e in faults:
        assert e.t0 == e.t1  # zero-duration instants
        assert e.detail["dst"] == 1


def test_trace_timeline_interleaves_faults_in_order():
    res = faulty_run()
    tl = res.trace_timeline()
    assert all(tl[i].t0 <= tl[i + 1].t0 for i in range(len(tl) - 1))
    assert any(e.kind == "fault" for e in tl)


def test_chrome_export_round_trips_fault_events(tmp_path):
    import json

    from repro.comm.trace_export import to_chrome_trace

    res = faulty_run()
    path = tmp_path / "trace.json"
    n = to_chrome_trace(res, str(path))
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert n == len(events) == len(res.trace)
    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == len(res.fault_events)
    names = {e["name"] for e in instants}
    assert "fault:drop" in names and "fault:retransmit" in names
    by_time = sorted((e.time, e.kind) for e in res.fault_events)
    got = sorted((e["ts"] / 1e6, e["name"].split(":", 1)[1])
                 for e in instants)
    for (t_ref, k_ref), (t_got, k_got) in zip(by_time, got):
        assert t_got == pytest.approx(t_ref)
        assert k_got == k_ref
    # args survive as plain JSON values
    assert all(e["args"]["dst"] == 1 for e in instants)
    assert all(e["cat"] == "fault" for e in instants)


def test_csv_export_includes_fault_rows(tmp_path):
    import csv

    from repro.comm.trace_export import to_csv

    res = faulty_run()
    path = tmp_path / "trace.csv"
    rows = to_csv(res, str(path))
    with open(path) as f:
        recs = list(csv.DictReader(f))
    assert rows == len(recs) == len(res.trace)
    fault_rows = [r for r in recs if r["kind"] == "fault"]
    assert len(fault_rows) == len(res.fault_events)
    for r in fault_rows:
        assert r["t0"] == r["t1"]
        assert "dst=1" in r["peer"]
