"""Unit tests for the simulator's optional event tracing."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator, TraceEvent


def fn(ctx):
    ctx.set_phase("l")
    if ctx.rank == 0:
        yield ctx.compute(1.0, category="fp")
        yield ctx.send(1, np.zeros(8), tag="t", category="xy")
    else:
        yield ctx.recv(src=0, tag="t", category="xy")
        yield ctx.compute(0.5, category="fp")


def test_trace_disabled_by_default():
    res = Simulator(2, CORI_HASWELL).run(fn)
    assert res.trace is None
    with pytest.raises(ValueError):
        res.trace_timeline()


def test_trace_records_all_kinds():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    kinds = {e.kind for e in res.trace}
    assert kinds == {"compute", "send", "wait"}
    sends = [e for e in res.trace if e.kind == "send"]
    assert sends[0].rank == 0 and sends[0].detail == 1
    waits = [e for e in res.trace if e.kind == "wait"]
    assert waits[0].rank == 1 and waits[0].detail == 0


def test_trace_timeline_sorted_and_filtered():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    tl = res.trace_timeline()
    assert all(tl[i].t0 <= tl[i + 1].t0 for i in range(len(tl) - 1))
    tl0 = res.trace_timeline(rank=0)
    assert {e.rank for e in tl0} == {0}


def test_trace_intervals_consistent_with_times():
    """Per-rank summed trace durations equal the accounted times."""
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    for r in range(2):
        total_trace = sum(e.t1 - e.t0 for e in res.trace_timeline(rank=r))
        total_times = res.time_by()[r]
        assert total_trace == pytest.approx(total_times, rel=1e-12)
        # Intervals are non-overlapping and end at the final clock.
        tl = res.trace_timeline(rank=r)
        for a, b in zip(tl, tl[1:]):
            assert a.t1 <= b.t0 + 1e-15
        assert tl[-1].t1 == pytest.approx(res.clocks[r])


def test_trace_phase_labels():
    res = Simulator(2, CORI_HASWELL, trace=True).run(fn)
    assert all(e.phase == "l" for e in res.trace)


def test_solver_trace_integration():
    """A full solve can be traced end to end."""
    from repro.core.sptrsv3d_new import build_new3d_setup, new3d_rank_fn
    from repro.core import SpTRSVSolver
    from repro.matrices import make_rhs, poisson2d

    A = poisson2d(10, stencil=9, seed=2)
    s = SpTRSVSolver(A, 2, 1, 2, max_supernode=8)
    setup = s._new3d_setup("auto")
    b = make_rhs(A.shape[0], 1)[s.perm]
    res = Simulator(s.grid.nranks, CORI_HASWELL, trace=True).run(
        new3d_rank_fn(setup, b, 1))
    tl = res.trace_timeline()
    assert len(tl) > 10
    phases = {e.phase for e in tl}
    assert {"l", "u"} <= phases
