"""Unit tests for the message-driven 2D SpTRSV kernel."""

import numpy as np
import pytest

from repro.comm import CORI_HASWELL, Simulator
from repro.core.plan2d import build_2d_plans, u_blockrows
from repro.core.sptrsv2d import sptrsv_2d
from repro.grids import BlockCyclicMap, Grid3D
from repro.matrices import make_rhs


def run_2d_solve(lu, grid, phase, b_perm, nrhs, tree_kind="binary",
                 machine=CORI_HASWELL):
    """Drive a full-matrix 2D solve and assemble the result."""
    part = lu.partition
    uadj = u_blockrows(lu) if phase == "U" else None
    plan = build_2d_plans(lu, grid, 0, phase, list(range(lu.nsup)),
                          tree_kind=tree_kind, u_adj=uadj)

    def rank_fn(ctx):
        rhs = {}
        for K in plan.plan_of(ctx.rank).solve_cols:
            rhs[K] = np.array(b_perm[part.first(K):part.last(K)])
        vals, _ = yield from sptrsv_2d(ctx, plan, rhs, nrhs, tag_salt="t")
        return vals

    res = Simulator(grid.nranks, machine).run(rank_fn)
    cmap = BlockCyclicMap(grid)
    x = np.empty((part.n, nrhs))
    for K in range(lu.nsup):
        r = cmap.diag_owner_rank(K, 0)
        x[part.first(K):part.last(K)] = res.results[r][K]
    return x, res


GRIDS = [(1, 1), (2, 1), (1, 3), (2, 2), (3, 2), (4, 4)]


@pytest.mark.parametrize("px,py", GRIDS)
def test_lsolve_matches_reference(poisson_problem, px, py):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 2, "manufactured")
    x, _ = run_2d_solve(lu, Grid3D(px, py, 1), "L", b, 2)
    assert np.allclose(x, lu.solve_L(b), atol=1e-10)


@pytest.mark.parametrize("px,py", GRIDS)
def test_usolve_matches_reference(poisson_problem, px, py):
    lu = poisson_problem["lu"]
    y = make_rhs(lu.n, 2, "random", seed=5)
    x, _ = run_2d_solve(lu, Grid3D(px, py, 1), "U", y, 2)
    assert np.allclose(x, lu.solve_U(y), atol=1e-10)


def test_lsolve_unstructured(random_problem):
    lu = random_problem["lu"]
    b = make_rhs(lu.n, 1, "random", seed=1)
    x, _ = run_2d_solve(lu, Grid3D(3, 2, 1), "L", b, 1)
    assert np.allclose(x, lu.solve_L(b), atol=1e-10)


def test_flat_and_binary_trees_agree(poisson_problem):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    xb, rb = run_2d_solve(lu, Grid3D(3, 2, 1), "L", b, 1, tree_kind="binary")
    xf, rf = run_2d_solve(lu, Grid3D(3, 2, 1), "L", b, 1, tree_kind="flat")
    assert np.allclose(xb, xf, atol=1e-12)


def test_message_counts_match_plan(poisson_problem):
    """Messages actually sent equal the plan's predicted tree edges."""
    lu = poisson_problem["lu"]
    grid = Grid3D(2, 3, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    predicted = sum(p.nrecv for p in plan.ranks.values())
    b = make_rhs(lu.n, 1)
    _, res = run_2d_solve(lu, grid, "L", b, 1)
    assert res.msgs_by(category="xy") == predicted


def test_multirhs_consistent_with_single(poisson_problem):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 4, "random", seed=2)
    x4, _ = run_2d_solve(lu, Grid3D(2, 2, 1), "L", b, 4)
    for k in range(4):
        x1, _ = run_2d_solve(lu, Grid3D(2, 2, 1), "L", b[:, k:k + 1], 1)
        assert np.allclose(x4[:, k:k + 1], x1, atol=1e-12)


def test_restricted_solve_exports_partial_sums(poisson_problem):
    """Leaf-node-only solve must export exactly L(anc, leaf) @ y(leaf)."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    part = lu.partition
    grid = Grid3D(2, 2, 1)
    leaf = layout.leaf(0)
    lo, hi = part.sn_range(leaf.first, leaf.last)
    S = list(range(lo, hi))
    anc = []
    for a in layout.ancestors(leaf):
        alo, ahi = part.sn_range(a.first, a.last)
        anc.extend(range(alo, ahi))
    plan = build_2d_plans(lu, grid, 0, "L", S, update_set=S + anc)
    b = make_rhs(lu.n, 1)

    def rank_fn(ctx):
        rhs = {K: np.array(b[part.first(K):part.last(K)])
               for K in plan.plan_of(ctx.rank).solve_cols}
        return (yield from sptrsv_2d(ctx, plan, rhs, 1, tag_salt="r"))

    res = Simulator(grid.nranks, CORI_HASWELL).run(rank_fn)
    # Reference: solve the leaf columns sequentially, accumulate into anc.
    y_ref = lu.solve_L(b)  # full solve; leaf part is unaffected by others
    lsum_ref = {}
    for K in S:
        yK = y_ref[part.first(K):part.last(K)]
        for I in lu.l_blockrows[K]:
            I = int(I)
            if I in set(anc):
                lsum_ref.setdefault(I, np.zeros((part.size(I), 1)))
                lsum_ref[I] += lu.Lblocks[(I, K)] @ yK
    got = {}
    for r in range(grid.nranks):
        _, out = res.results[r]
        for I, v in out.items():
            got[I] = v
    assert set(got) == set(lsum_ref)
    for I in got:
        assert np.allclose(got[I], lsum_ref[I], atol=1e-10)


def test_initial_lsum_carry(poisson_problem):
    """Initial partial sums shift the solution exactly like extra RHS."""
    lu = poisson_problem["lu"]
    part = lu.partition
    grid = Grid3D(1, 1, 1)
    plan = build_2d_plans(lu, grid, 0, "L", list(range(lu.nsup)))
    b = make_rhs(lu.n, 1)
    carry_vec = make_rhs(lu.n, 1, "random", seed=9)
    carry = {K: carry_vec[part.first(K):part.last(K)]
             for K in range(lu.nsup)}

    def rank_fn(ctx):
        rhs = {K: np.array(b[part.first(K):part.last(K)])
               for K in range(lu.nsup)}
        vals, _ = yield from sptrsv_2d(ctx, plan, rhs, 1,
                                       initial_lsum=carry, tag_salt="c")
        return vals

    res = Simulator(1, CORI_HASWELL).run(rank_fn)
    x = np.concatenate([res.results[0][K] for K in range(lu.nsup)])
    # L y = b - carry_effect: carry enters as pre-accumulated lsum, so the
    # result equals solve_L(b) minus the carry propagated through L^-1.
    ref = lu.solve_L(b)
    # Build reference by running the sequential solve with modified rhs:
    # y(K) = Linv (b(K) - carry(K) - sum L(K,I) y(I)) — i.e. solve_L(b - c')
    # where c' applies carry at each supernode before its diagonal solve.
    # Equivalent: solve_L(b) with b replaced by b - carry_vec only if carry
    # is applied at the diagonal step, which it is.
    ref = lu.solve_L(b - carry_vec)
    assert np.allclose(x.ravel(), ref.ravel(), atol=1e-10)


def test_ext_values_drive_usolve(poisson_problem):
    """Solving only the leaf in the U phase with known ancestor x values."""
    lu = poisson_problem["lu"]
    layout = poisson_problem["layout"]
    part = lu.partition
    grid = Grid3D(2, 2, 1)
    leaf = layout.leaf(0)
    lo, hi = part.sn_range(leaf.first, leaf.last)
    S = list(range(lo, hi))
    anc = []
    for a in layout.ancestors(leaf):
        alo, ahi = part.sn_range(a.first, a.last)
        anc.extend(range(alo, ahi))
    uadj = u_blockrows(lu)
    plan = build_2d_plans(lu, grid, 0, "U", S, ext_set=anc, u_adj=uadj)
    y = make_rhs(lu.n, 1, "random", seed=3)
    x_full = lu.solve_U(y)

    def rank_fn(ctx):
        p = plan.plan_of(ctx.rank)
        rhs = {K: np.array(y[part.first(K):part.last(K)])
               for K in p.solve_cols}
        ext = {J: np.array(x_full[part.first(J):part.last(J)])
               for J in p.ext_cols}
        vals, _ = yield from sptrsv_2d(ctx, plan, rhs, 1, ext_values=ext,
                                       tag_salt="e")
        return vals

    res = Simulator(grid.nranks, CORI_HASWELL).run(rank_fn)
    cmap = BlockCyclicMap(grid)
    for K in S:
        got = res.results[cmap.diag_owner_rank(K, 0)][K]
        assert np.allclose(got, x_full[part.first(K):part.last(K)],
                           atol=1e-10)


def test_more_ranks_changes_comm_not_solution(poisson_problem):
    lu = poisson_problem["lu"]
    b = make_rhs(lu.n, 1)
    x1, r1 = run_2d_solve(lu, Grid3D(1, 1, 1), "L", b, 1)
    x2, r2 = run_2d_solve(lu, Grid3D(4, 4, 1), "L", b, 1)
    assert np.allclose(x1, x2, atol=1e-12)
    assert r1.msgs_by() == 0
    assert r2.msgs_by() > 0
