"""Observability layer: metrics registry, sync points, critical path.

These tests pin the three contracts of ``repro.obs``:

1. the recorded counters equal hand-counted (or independently counted)
   message/byte/time totals,
2. metrics collection never perturbs virtual clocks (bit-identical runs),
3. the sync-point counter mechanically verifies the paper's headline
   claim: 1 inter-grid synchronization for the proposed algorithm,
   ``ceil(log2(Pz))`` for the baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.costmodel import CORI_HASWELL, PERLMUTTER_GPU
from repro.comm.simulator import Simulator
from repro.comm.trees import binary_tree, flat_tree
from repro.core.solver import SpTRSVSolver
from repro.core.sparse_allreduce import ancestor_supernodes
from repro.matrices import make_rhs, poisson2d
from repro.obs import (MetricsRegistry, analyze_critical_path,
                       format_profile, phase_table, sync_table,
                       utilization_summary)
from repro.util import ilog2

MACHINE = CORI_HASWELL


def tree_bcast_fn(tree, payload_words: int):
    """Broadcast a payload from the tree root along its edges."""

    def rank_fn(ctx):
        ctx.set_phase("l")
        if ctx.rank == tree.root:
            value = np.ones(payload_words)
        else:
            _, _, value = yield ctx.recv(src=tree.parent(ctx.rank),
                                         tag="bc", category="xy")
        for c in tree.children(ctx.rank):
            yield ctx.send(c, value, tag="bc", category="xy")
        return value

    return rank_fn


@pytest.mark.parametrize("make_tree", [binary_tree, flat_tree])
def test_tree_broadcast_hand_count(make_tree):
    """msgs == edge count, bytes == edges * payload size, exactly."""
    members = list(range(7))
    tree = make_tree(members, root=0)
    words = 13
    reg = MetricsRegistry()
    res = Simulator(len(members), MACHINE, metrics=reg).run(
        tree_bcast_fn(tree, words))
    edges = tree.edges()
    assert len(edges) == len(members) - 1
    st = reg.stats(phase="l", category="xy")
    assert st.msgs == len(edges)
    assert st.bytes == len(edges) * words * 8
    # Every recorded message is a tree edge, delivered once.
    assert sorted((m.src, m.dst) for m in reg.messages.values()) \
        == sorted(edges)
    assert all(m.delivered for m in reg.messages.values())
    # Counters agree with the simulator's own accounting.
    assert st.msgs == res.msgs_by(category="xy")
    assert st.bytes == res.bytes_by(category="xy")


def test_sparse_allreduce_two_grid_hand_count():
    """pz=2, 1 rank per grid: the allreduce is one reduce + one broadcast
    message, each carrying exactly the replicated (ancestor) rows."""
    A = poisson2d(12, stencil=5, seed=3)
    b = make_rhs(A.shape[0], 1)
    s = SpTRSVSolver(A, px=1, py=1, pz=2)
    out = s.solve(b, profile=True)
    reg = out.report.metrics
    sync = reg.sync_points()
    assert list(sync) == ["allreduce"]

    # Hand count: with one rank per grid and depth 1 there is exactly one
    # pairwise exchange each way, carrying all ancestor rows once.
    anc = ancestor_supernodes(s.layout, s.lu.partition, z=0)
    rows = sum(s.lu.partition.size(K) for K in anc[0])
    assert rows > 0
    assert sync["allreduce"].msgs == 2
    assert sync["allreduce"].bytes == 2 * rows * 8
    assert sync["allreduce"].ranks == {0, 1}
    zst = reg.stats(category="z")
    assert zst.msgs == 2
    assert zst.bytes == 2 * rows * 8


def chain_fn(ctx):
    """0 computes then sends to 1; 1 computes then sends to 2."""
    ctx.set_phase("l")
    r = ctx.rank
    if r == 0:
        yield ctx.compute(5e-6, flops=10)
        yield ctx.send(1, np.zeros(4), tag="c", category="xy")
    elif r == 1:
        yield ctx.recv(0, "c", category="xy")
        yield ctx.compute(3e-6, flops=10)
        yield ctx.send(2, np.zeros(4), tag="c", category="xy")
    else:
        yield ctx.recv(1, "c", category="xy")


def test_critical_path_three_rank_chain():
    reg = MetricsRegistry()
    res = Simulator(3, MACHINE, metrics=reg).run(chain_fn)
    cp = analyze_critical_path(reg)
    assert cp.makespan == res.makespan
    # The chain is contiguous and complete: durations sum to the makespan.
    assert cp.coverage() == pytest.approx(1.0, abs=1e-15)
    for a, b in zip(cp.steps, cp.steps[1:]):
        assert b.t0 == pytest.approx(a.t1, abs=1e-15)
    assert cp.cross_rank_hops == 2
    assert cp.ranks_touched == [0, 1, 2]
    # Both compute blocks are on the path.
    assert cp.kind_time["compute"] == pytest.approx(8e-6)
    # Rank 2's entire runtime is the chain, so nothing has zero slack
    # except through its own wait; ranks 0/1 finish early.
    assert cp.slack.shape == (3,)


def test_critical_path_rejects_incomplete_registry():
    reg = MetricsRegistry()
    reg.start_run(2, MACHINE)
    reg.add_external(0, "u", "fp", compute_time=1.0)
    with pytest.raises(ValueError, match="timeline"):
        analyze_critical_path(reg)


@pytest.fixture(scope="module")
def pz4_solver():
    A = poisson2d(16, stencil=9, seed=5)
    return SpTRSVSolver(A, px=2, py=1, pz=4)


def test_sync_count_new3d_is_one(pz4_solver):
    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, algorithm="new3d", profile=True)
    reg = out.report.metrics
    assert reg.nsyncs == 1
    assert list(reg.sync_points()) == ["allreduce"]


def test_sync_count_baseline_is_log_pz(pz4_solver):
    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, algorithm="baseline3d", profile=True)
    reg = out.report.metrics
    depth = ilog2(pz4_solver.grid.pz)
    assert reg.nsyncs == depth
    assert list(reg.sync_points()) == [f"level-{k}" for k in range(depth)]


def test_sync_count_naive_allreduce_per_node(pz4_solver):
    """The straw-man pays one rendezvous per shared tree node (> 1)."""
    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, algorithm="new3d", allreduce_impl="naive",
                           profile=True)
    assert out.report.metrics.nsyncs > 1


@pytest.mark.parametrize("algorithm", ["new3d", "baseline3d"])
def test_profile_clocks_bit_identical(pz4_solver, algorithm):
    """Metrics collection must not perturb the virtual clocks at all."""
    b = make_rhs(pz4_solver.n, 1)
    on = pz4_solver.solve(b, algorithm=algorithm, profile=True)
    off = pz4_solver.solve(b, algorithm=algorithm)
    assert np.array_equal(on.report.sim.clocks, off.report.sim.clocks)
    assert np.array_equal(on.x, off.x)


def test_registry_totals_match_sim_result(pz4_solver):
    """Per-(phase, category) times/messages equal SimResult's accounting."""
    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, profile=True)
    reg = out.report.metrics
    sim = out.report.sim
    for phase in ("l", "z", "u"):
        for cat in ("fp", "xy", "z"):
            st = reg.stats(phase=phase, category=cat)
            t = st.compute_time + st.overhead_time + st.wait_time
            # Same intervals, different summation order: equality is exact
            # up to float re-association.
            assert t == pytest.approx(
                float(sim.time_by(phase=phase, category=cat).sum()),
                rel=1e-12)
    total = reg.stats()
    assert total.msgs == sim.msgs_by()
    assert total.bytes == sim.bytes_by()
    assert reg.makespan == sim.makespan
    assert np.array_equal(reg.finish_times() <= sim.makespan + 1e-18,
                          np.ones(reg.nranks, dtype=bool))


def test_metrics_under_faults_and_transport(pz4_solver):
    """Retransmits and acks are counted; clocks stay identical to the same
    faulty run without metrics."""
    from repro.comm.faults import FaultPlan

    b = make_rhs(pz4_solver.n, 1)
    plan = FaultPlan.uniform(seed=7, drop=0.02)
    from repro.core.solver import Resilience

    resil = Resilience(reliable=True, checksums=False,
                       retries_per_tier=2)
    on = pz4_solver.solve(b, faults=plan, resilience=resil, profile=True)
    off = pz4_solver.solve(b, faults=plan, resilience=resil)
    assert np.array_equal(on.report.sim.clocks, off.report.sim.clocks)
    reg = on.report.metrics
    counts = on.report.sim.fault_counts()
    assert reg.stats().retransmits == counts.get("retransmit", 0)
    # Reliable transport acks every delivery.
    assert reg.stats().acks > 0


def test_gpu_profile_counters_without_timeline():
    A = poisson2d(10, stencil=5, seed=9)
    b = make_rhs(A.shape[0], 1)
    s = SpTRSVSolver(A, px=1, py=1, pz=2, machine=PERLMUTTER_GPU)
    out = s.solve(b, device="gpu", profile=True)
    reg = out.report.metrics
    assert reg.complete_timeline is False
    assert reg.nsyncs == 1
    assert reg.stats(phase="u", category="fp").compute_time > 0
    with pytest.raises(ValueError):
        analyze_critical_path(reg)
    text = format_profile(reg)
    assert "critical path: unavailable" in text


def test_render_sections(pz4_solver):
    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, profile=True)
    reg = out.report.metrics
    assert "inter-grid synchronization points: 1" in sync_table(reg)
    tbl = phase_table(reg)
    assert "L-solve" in tbl and "U-solve" in tbl and "inter-grid" in tbl
    assert "rank utilization" in utilization_summary(reg)
    full = format_profile(reg)
    assert "critical path:" in full


def test_trace_flow_annotations(tmp_path, pz4_solver):
    """metrics= adds one s/f flow pair per delivered message."""
    import json

    from repro.comm.trace_export import to_chrome_trace

    b = make_rhs(pz4_solver.n, 1)
    out = pz4_solver.solve(b, profile=True, trace=True)
    path = tmp_path / "trace.json"
    to_chrome_trace(out.report.sim, str(path), metrics=out.report.metrics)
    data = json.loads(path.read_text())
    flows = [e for e in data["traceEvents"] if e["ph"] in ("s", "f")]
    delivered = sum(1 for m in out.report.metrics.messages.values()
                    if m.delivered)
    assert len(flows) == 2 * delivered
    names = [e for e in data["traceEvents"] if e["ph"] == "M"]
    assert len(names) == pz4_solver.grid.nranks
