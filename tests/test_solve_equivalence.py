"""Batched (multi-RHS) solves are bit-identical, column for column, to
single-RHS solves — the correctness contract repro.serve's batching
rests on, across every solve path (proposed, baseline, GPU, blocked,
reference)."""

import numpy as np
import pytest

from repro.comm.costmodel import MACHINES
from repro.core import SpTRSVSolver
from repro.matrices import get_matrix, make_rhs
from repro.util import matmul_columns


@pytest.fixture(scope="module")
def solver():
    A = get_matrix("s2D9pt2048", "tiny")
    return SpTRSVSolver(A, 1, 1, 2, max_supernode=8)


@pytest.fixture(scope="module")
def B(solver):
    return make_rhs(solver.n, 5, kind="random", seed=123)


def _assert_columns_bit_identical(solver, B, **solve_kw):
    X = solver.solve(B, **solve_kw).x
    for j in range(B.shape[1]):
        xj = solver.solve(B[:, j], **solve_kw).x
        assert np.array_equal(X[:, j], xj), (
            f"column {j} of the batched solve differs from its "
            f"single-RHS solve under {solve_kw}")


def test_new3d_batched_columns_bit_identical(solver, B):
    _assert_columns_bit_identical(solver, B, algorithm="new3d")


def test_baseline3d_batched_columns_bit_identical(solver, B):
    _assert_columns_bit_identical(solver, B, algorithm="baseline3d")


def test_gpu_batched_columns_bit_identical(B):
    A = get_matrix("s2D9pt2048", "tiny")
    s = SpTRSVSolver(A, 1, 1, 2, machine=MACHINES["perlmutter-gpu"],
                     max_supernode=8)
    _assert_columns_bit_identical(s, B, device="gpu")


def test_reference_batched_columns_bit_identical(solver, B):
    X = solver.reference_solve(B)
    for j in range(B.shape[1]):
        assert np.array_equal(X[:, j], solver.reference_solve(B[:, j]))


def test_solve_blocked_bit_identical_to_unblocked(solver, B):
    full = solver.solve(B).x
    panelled = solver.solve_blocked(B, rhs_block=2).x
    assert np.array_equal(full, panelled)


def test_batch_width_does_not_perturb_columns(solver):
    """A column's bits don't depend on *which* batch it rode in."""
    B = make_rhs(solver.n, 4, kind="random", seed=7)
    X4 = solver.solve(B).x
    X2 = solver.solve(B[:, :2]).x
    assert np.array_equal(X4[:, :2], X2)


def test_matmul_columns_matches_per_column_gemv():
    rng = np.random.default_rng(0)
    M = rng.standard_normal((12, 9))
    Y = rng.standard_normal((9, 4))
    Z = matmul_columns(M, Y)
    for j in range(4):
        assert np.array_equal(
            Z[:, j:j + 1], M @ np.ascontiguousarray(Y[:, j:j + 1]))
    # Degenerate shapes fall through to plain matmul.
    assert np.array_equal(matmul_columns(M, Y[:, :1]), M @ Y[:, :1])
