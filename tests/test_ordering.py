"""Unit tests for nested dissection, separator trees and the layout tree."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import poisson2d, poisson3d, random_spd_like
from repro.ordering import (
    build_layout_tree,
    etree,
    etree_levels,
    nested_dissection,
    postorder,
)
from repro.util import check_permutation, ilog2


def _check_tree_invariants(tree, n):
    check_permutation(tree.perm, n)
    covered = np.zeros(n, dtype=int)
    for nd in tree.nodes:
        assert 0 <= nd.first <= nd.last <= n
        assert nd.subtree_first <= nd.first
        covered[nd.first:nd.last] += 1
        if nd.children:
            assert len(nd.children) == 2
            l, r = (tree.nodes[c] for c in nd.children)
            # left subtree, right subtree, then separator: contiguous.
            assert l.subtree_first == nd.subtree_first
            assert r.subtree_first == l.last
            assert nd.first == r.last
            assert l.parent == nd.id and r.parent == nd.id
            assert l.level == r.level == nd.level + 1
    assert (covered == 1).all()


@pytest.mark.parametrize("A,n", [
    (poisson2d(12, stencil=5), 144),
    (poisson2d(10, stencil=9), 100),
    (poisson3d(5, stencil=7), 125),
    (random_spd_like(200, avg_degree=6, seed=2), 200),
])
def test_nd_tree_invariants(A, n):
    tree = nested_dissection(A, leaf_size=16)
    _check_tree_invariants(tree, n)


def test_nd_min_depth_enforced():
    A = poisson2d(8, stencil=5)
    for depth in (1, 2, 3, 4):
        tree = nested_dissection(A, leaf_size=1000, min_depth=depth)
        assert tree.min_leaf_depth() >= depth


def test_nd_tiny_matrices():
    # Matrices smaller than the forced depth still produce binary trees
    # (possibly with empty nodes).
    A = sp.csr_matrix(np.diag([2.0, 2.0, 2.0]))
    tree = nested_dissection(A, leaf_size=1, min_depth=2)
    _check_tree_invariants(tree, 3)
    assert tree.min_leaf_depth() >= 2


def test_nd_separator_really_separates():
    """No A edge may connect the two child subtrees of any internal node."""
    A = poisson2d(12, stencil=9)
    tree = nested_dissection(A, leaf_size=10)
    perm = tree.perm
    Ap = sp.csr_matrix(A)[perm][:, perm].tocoo()
    for nd in tree.nodes:
        if not nd.children:
            continue
        l, r = (tree.nodes[c] for c in nd.children)
        in_left = (Ap.row >= l.subtree_first) & (Ap.row < l.last)
        in_right = (Ap.col >= r.subtree_first) & (Ap.col < r.last)
        assert not (in_left & in_right).any()


def test_nd_reduces_fill_versus_natural():
    """ND should beat natural ordering on fill for a 2D grid."""
    from repro.symbolic import symbolic_factor

    A = poisson2d(14, stencil=5)
    natural = symbolic_factor(A, max_supernode=8).nnz_LU
    tree = nested_dissection(A, leaf_size=16)
    Ap = sp.csr_matrix(A)[tree.perm][:, tree.perm]
    nd = symbolic_factor(Ap, max_supernode=8).nnz_LU
    assert nd < natural


def test_boundaries_contain_all_node_starts():
    A = poisson2d(10)
    tree = nested_dissection(A, leaf_size=12)
    b = tree.boundaries()
    assert b[0] == 0 and b[-1] == 100
    for nd in tree.nodes:
        if nd.ncols:
            assert nd.first in set(b.tolist())


def test_node_of_col_partition():
    A = poisson2d(9)
    tree = nested_dissection(A, leaf_size=10)
    owner = tree.node_of_col()
    assert (owner >= 0).all()
    for nd in tree.nodes:
        assert (owner[nd.first:nd.last] == nd.id).all()


# ---- layout tree ----------------------------------------------------------

@pytest.mark.parametrize("pz", [1, 2, 4, 8])
def test_layout_tree_shapes(pz):
    A = poisson2d(12, stencil=9)
    tree = nested_dissection(A, leaf_size=8, min_depth=ilog2(pz))
    lt = build_layout_tree(tree, pz)
    assert len(lt.nodes) == 2 * pz - 1
    assert lt.depth == ilog2(pz)
    # Root replicated everywhere, leaves exclusive.
    assert lt.nodes[0].grid_lo == 0 and lt.nodes[0].grid_hi == pz
    for z in range(pz):
        leaf = lt.leaf(z)
        assert leaf.grid_lo == z and leaf.grid_hi == z + 1
        assert leaf.owner_grid == z
        assert leaf.is_leaf


def test_layout_tree_covers_columns_once():
    A = poisson2d(12)
    tree = nested_dissection(A, leaf_size=8, min_depth=2)
    lt = build_layout_tree(tree, 4)
    owner = lt.node_of_col()
    covered = np.zeros(lt.n, dtype=int)
    for nd in lt.nodes:
        covered[nd.first:nd.last] += 1
        assert (owner[nd.first:nd.last] == nd.heap_id).all()
    assert (covered == 1).all()


def test_layout_path_and_grid_membership():
    A = poisson2d(12)
    tree = nested_dissection(A, leaf_size=8, min_depth=3)
    lt = build_layout_tree(tree, 8)
    for z in range(8):
        path = lt.path(z)
        assert len(path) == 4  # leaf + 2 separators + root
        for nd in path:
            assert nd.grid_lo <= z < nd.grid_hi
        # Levels decrease from leaf to root.
        assert [nd.level for nd in path] == [3, 2, 1, 0]


def test_layout_ancestors_ordering():
    A = poisson2d(10)
    tree = nested_dissection(A, leaf_size=8, min_depth=2)
    lt = build_layout_tree(tree, 4)
    anc = lt.ancestors(lt.leaf(3))
    assert [a.level for a in anc] == [1, 0]
    # Ancestor columns come after descendant columns in an ND ordering.
    assert anc[0].first >= lt.leaf(3).last


def test_layout_requires_depth():
    A = poisson2d(10)
    tree = nested_dissection(A, leaf_size=1000, min_depth=1)
    with pytest.raises(ValueError):
        build_layout_tree(tree, 8)


def test_layout_pz1_single_node():
    A = poisson2d(8)
    tree = nested_dissection(A, leaf_size=16)
    lt = build_layout_tree(tree, 1)
    assert len(lt.nodes) == 1
    assert lt.nodes[0].first == 0 and lt.nodes[0].last == 64


# ---- elimination tree ------------------------------------------------------

def test_etree_against_dense_definition():
    """parent[j] == min{i > j : L[i, j] != 0} on a small dense-checked case."""
    A = poisson2d(5, stencil=5)
    parent = etree(A)
    # Dense Cholesky-pattern reference.
    M = (A.toarray() != 0).astype(float)
    n = M.shape[0]
    for k in range(n):
        nz = M[k + 1:, k].nonzero()[0] + k + 1
        for i in nz:
            M[i, nz] = 1  # fill row pattern union (symmetric)
            M[nz, i] = 1
    for j in range(n):
        below = np.nonzero(M[j + 1:, j])[0]
        expected = j + 1 + below[0] if len(below) else -1
        assert parent[j] == expected


def test_etree_of_diagonal_matrix_is_forest():
    A = sp.identity(5, format="csr") * 2
    assert (etree(A) == -1).all()


def test_postorder_children_before_parents():
    A = poisson2d(8)
    parent = etree(A)
    post = postorder(parent)
    pos = np.empty_like(post)
    pos[post] = np.arange(len(post))
    for v, p in enumerate(parent):
        if p >= 0:
            assert pos[v] < pos[p]


def test_postorder_is_permutation():
    A = random_spd_like(60, seed=5)
    post = postorder(etree(A))
    check_permutation(post, 60)


def test_etree_levels_consistent():
    A = poisson2d(7)
    parent = etree(A)
    level = etree_levels(parent)
    for v, p in enumerate(parent):
        if p >= 0:
            assert level[v] == level[p] + 1
        else:
            assert level[v] == 0


def test_nd_disconnected_components_no_cross_edges():
    """A disconnected matrix must be split by whole components — splitting a
    component arithmetically would cut edges without a separator
    (regression: silent wrong answers at deep forced dissection depths)."""
    blocks = [poisson2d(4, stencil=5), poisson2d(3, stencil=5),
              sp.identity(5, format="csr") * 3.0]
    A = sp.block_diag(blocks, format="csr")
    tree = nested_dissection(A, leaf_size=4, min_depth=3)
    _check_tree_invariants(tree, A.shape[0])
    perm = tree.perm
    Ap = sp.csr_matrix(A)[perm][:, perm].tocoo()
    for nd in tree.nodes:
        if not nd.children:
            continue
        l, r = (tree.nodes[c] for c in nd.children)
        in_left = (Ap.row >= l.subtree_first) & (Ap.row < l.last)
        in_right = (Ap.col >= r.subtree_first) & (Ap.col < r.last)
        assert not (in_left & in_right).any()


def test_nd_deep_forced_depth_preserves_separation():
    """Forced min_depth far beyond the natural recursion must still never
    cut an edge without a separator (the pz=64 regression)."""
    from repro.matrices import kkt3d

    A = kkt3d(5, seed=2)
    tree = nested_dissection(A, leaf_size=8, min_depth=6)
    assert tree.min_leaf_depth() >= 6
    perm = tree.perm
    Ap = sp.csr_matrix(A)[perm][:, perm].tocoo()
    for nd in tree.nodes:
        if not nd.children:
            continue
        l, r = (tree.nodes[c] for c in nd.children)
        in_left = (Ap.row >= l.subtree_first) & (Ap.row < l.last)
        in_right = (Ap.col >= r.subtree_first) & (Ap.col < r.last)
        assert not (in_left & in_right).any()


# ---- minimum degree ---------------------------------------------------------

def test_minimum_degree_is_permutation():
    from repro.ordering import minimum_degree

    A = poisson2d(9, stencil=9)
    perm = minimum_degree(A)
    check_permutation(perm, 81)


def test_minimum_degree_reduces_fill():
    from repro.ordering import minimum_degree
    from repro.symbolic import symbolic_factor

    A = poisson2d(14, stencil=5)
    natural = symbolic_factor(A, max_supernode=8).nnz_LU
    perm = minimum_degree(A)
    Ap = sp.csr_matrix(A)[perm][:, perm]
    mmd = symbolic_factor(Ap, max_supernode=8).nnz_LU
    assert mmd < natural


def test_minimum_degree_picks_low_degree_first():
    from repro.ordering import minimum_degree

    # A star graph: the leaves (degree 1) must all come before the hub.
    n = 8
    rows = [0] * (n - 1) + list(range(1, n))
    cols = list(range(1, n)) + [0] * (n - 1)
    A = sp.csr_matrix((np.full(2 * (n - 1), -1.0), (rows, cols)),
                      shape=(n, n)) + sp.diags(np.full(n, n * 1.0))
    perm = minimum_degree(A)
    # The hub stays high-degree until almost every leaf is gone (it ties
    # with the final leaf at degree 1), so it lands in the last two slots.
    assert list(perm).index(0) >= n - 2


def test_minimum_degree_rejects_rectangular():
    from repro.ordering import minimum_degree

    with pytest.raises(ValueError):
        minimum_degree(sp.csr_matrix((3, 4)))


def test_min_degree_tree_pipeline():
    from repro.core import SpTRSVSolver
    from repro.matrices import make_rhs
    from repro.numfact import solve_residual

    A = poisson2d(10, stencil=9, seed=13)
    solver = SpTRSVSolver(A, 2, 2, 1, max_supernode=8, ordering="mmd")
    b = make_rhs(100, 2)
    out = solver.solve(b)
    assert solve_residual(A, out.x, b) < 1e-10
    with pytest.raises(ValueError):
        SpTRSVSolver(A, 1, 1, 2, ordering="mmd")
    with pytest.raises(ValueError):
        SpTRSVSolver(A, 1, 1, 1, ordering="rcm")
