"""Smoke tests: every shipped example must run end to end."""

import glob
import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py")))


def test_examples_exist():
    names = {os.path.basename(p) for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p) for p in EXAMPLES])
def test_example_runs(path, capsys):
    """Each example executes its __main__ path without errors.

    The examples carry their own internal assertions (residual checks,
    amortization/scaling claims), so a clean run is a meaningful check.
    """
    argv = sys.argv
    try:
        sys.argv = [path]
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = argv
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"
