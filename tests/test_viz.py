"""Tests for the layout visualization helpers."""

import pytest

from repro.core import SpTRSVSolver
from repro.matrices import poisson2d
from repro.ordering.viz import (
    render_block_structure,
    render_layout,
    render_septree,
)


@pytest.fixture(scope="module")
def solver():
    A = poisson2d(12, stencil=9, seed=1)
    return SpTRSVSolver(A, 2, 2, 4, max_supernode=8)


def test_render_septree(solver):
    text = render_septree(solver.tree, max_depth=2)
    assert text.startswith("sep ") or text.startswith("leaf")
    assert "#0" in text
    # Depth-limited: no more than 7 nodes at depth <= 2.
    assert len(text.splitlines()) <= 7
    full = render_septree(solver.tree)
    assert len(full.splitlines()) == len(solver.tree.nodes)


def test_render_layout(solver):
    text = render_layout(solver.layout)
    assert "Pz = 4" in text
    assert "node 0 (level 0)" in text
    assert "grids 0..3" in text
    for z in range(4):
        assert f"on grid {z}," in text
    assert len(text.splitlines()) == 1 + 7  # header + 2*4-1 nodes


def test_render_block_structure(solver):
    text = render_block_structure(solver.layout, solver.lu, z=3,
                                  max_cells=20)
    lines = text.splitlines()
    assert "L^3" in lines[0]
    body = lines[1:]
    assert len(body) <= 20
    # Lower-triangular at block level: no digit above the diagonal.
    for i, row in enumerate(body):
        for j, ch in enumerate(row):
            if j > i:
                assert ch == "."
    # The diagonal is fully populated.
    for i, row in enumerate(body):
        assert row[i] != "."
