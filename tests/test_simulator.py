"""Unit tests for the discrete-event message-passing simulator."""

import numpy as np
import pytest

from repro.comm import ANY, CORI_HASWELL, DeadlockError, Simulator


MACHINE = CORI_HASWELL


def run(nranks, fn):
    return Simulator(nranks, MACHINE).run(fn)


def test_single_rank_compute():
    def fn(ctx):
        yield ctx.compute(1.5, category="fp")
        return ctx.rank

    res = run(1, fn)
    assert res.clocks[0] == pytest.approx(1.5)
    assert res.results == [0]
    assert res.time_by(category="fp")[0] == pytest.approx(1.5)


def test_ping_pong_payload_and_clock():
    data = np.arange(8, dtype=float)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, data, tag="ping")
            src, tag, back = yield ctx.recv(src=1, tag="pong")
            return back
        else:
            src, tag, got = yield ctx.recv(src=0, tag="ping")
            yield ctx.send(0, got * 2, tag="pong")
            return None

    res = run(2, fn)
    assert np.array_equal(res.results[0], data * 2)
    # One network round trip: both clocks at least 2 * alpha_intra.
    assert res.clocks[0] >= 2 * MACHINE.net.alpha_intra


def test_send_copies_payload():
    """Sender-side mutation after an eager send must not reach the receiver."""
    def fn(ctx):
        if ctx.rank == 0:
            buf = np.ones(4)
            yield ctx.send(1, buf, tag=0)
            buf[:] = -1
            yield ctx.compute(1.0)
        else:
            yield ctx.compute(0.5)  # receive strictly after the mutation
            _, _, got = yield ctx.recv(src=0, tag=0)
            assert (got == 1).all()

    run(2, fn)


def test_any_source_picks_earliest_arrival():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.compute(1.0)
            yield ctx.send(2, np.array([0.0]), tag="t")
        elif ctx.rank == 1:
            yield ctx.send(2, np.array([1.0]), tag="t")
        else:
            a = yield ctx.recv(src=ANY, tag="t")
            b = yield ctx.recv(src=ANY, tag="t")
            return (a[0], b[0])

    res = run(3, fn)
    # Rank 1's message was sent at t=0, rank 0's at t=1.0.
    assert res.results[2] == (1, 0)


def test_tag_filtering():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, "late", tag="b")
            yield ctx.send(1, "first", tag="a")
        else:
            _, _, v1 = yield ctx.recv(src=0, tag="a")
            _, _, v2 = yield ctx.recv(src=0, tag="b")
            return (v1, v2)

    res = run(2, fn)
    assert res.results[1] == ("first", "late")


def test_recv_wait_time_attributed():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.compute(2.0)
            yield ctx.send(1, np.zeros(1), tag=0)
        else:
            yield ctx.recv(src=0, tag=0, category="xy")

    res = run(2, fn)
    assert res.time_by(category="xy")[1] >= 2.0


def test_deadlock_detection():
    def fn(ctx):
        yield ctx.recv(src=ANY, tag="never")

    with pytest.raises(DeadlockError, match="blocked"):
        run(2, fn)


def test_deadlock_message_names_phase():
    def fn(ctx):
        ctx.set_phase("lsolve")
        yield ctx.recv(src=0, tag="x")

    with pytest.raises(DeadlockError, match="lsolve"):
        run(1, fn)


def test_phase_and_category_accounting():
    def fn(ctx):
        ctx.set_phase("l")
        yield ctx.compute(1.0, category="fp")
        ctx.set_phase("u")
        yield ctx.compute(2.0, category="fp")
        yield ctx.compute(0.5, category="xy")

    res = run(1, fn)
    assert res.time_by(phase="l", category="fp")[0] == pytest.approx(1.0)
    assert res.time_by(phase="u", category="fp")[0] == pytest.approx(2.0)
    assert res.time_by(phase="u")[0] == pytest.approx(2.5)
    assert res.time_by()[0] == pytest.approx(3.5)
    assert ("l", "fp") in res.categories()


def test_message_stats():
    def fn(ctx):
        if ctx.rank == 0:
            for k in range(5):
                yield ctx.send(1, np.zeros(10), tag=k, category="xy")
        else:
            for _ in range(5):
                yield ctx.recv(src=0, category="xy")

    res = run(2, fn)
    assert res.msgs_by(category="xy") == 5
    assert res.bytes_by(category="xy") == pytest.approx(5 * 80)


def test_inter_node_slower_than_intra():
    big = np.zeros(1_000_000)

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, big, tag=0)       # same node (ranks/node = 32)
            yield ctx.send(32, big, tag=0)      # different node
        elif ctx.rank in (1, 32):
            yield ctx.recv(src=0, tag=0)

    res = Simulator(33, MACHINE).run(fn)
    assert res.clocks[32] > res.clocks[1]


def test_marks_record_clock():
    def fn(ctx):
        ctx.mark("start")
        yield ctx.compute(3.0)
        ctx.mark("end")

    res = run(1, fn)
    assert res.marks[0]["start"] == 0.0
    assert res.marks[0]["end"] == pytest.approx(3.0)


def test_nonblocking_sends_allow_exchange():
    """Both ranks send first then receive: must not deadlock (eager sends)."""
    def fn(ctx):
        other = 1 - ctx.rank
        yield ctx.send(other, np.full(3, ctx.rank), tag=0)
        _, _, got = yield ctx.recv(src=other, tag=0)
        return float(got[0])

    res = run(2, fn)
    assert res.results == [1.0, 0.0]


def test_invalid_ops_rejected():
    def bad_dst(ctx):
        yield ctx.send(99, np.zeros(1))

    with pytest.raises(ValueError):
        run(2, bad_dst)

    def bad_compute(ctx):
        yield ctx.compute(-1.0)

    with pytest.raises(ValueError):
        run(1, bad_compute)

    def bad_yield(ctx):
        yield "not an op"

    with pytest.raises(TypeError):
        run(1, bad_yield)


def test_determinism():
    def fn(ctx):
        if ctx.rank == 0:
            out = []
            for _ in range(6):
                src, tag, v = yield ctx.recv(src=ANY, tag=ANY)
                out.append((src, tag))
            return tuple(out)
        for k in range(2):
            yield ctx.compute(0.1 * ctx.rank)
            yield ctx.send(0, np.zeros(2), tag=k)

    r1 = Simulator(4, MACHINE).run(fn)
    r2 = Simulator(4, MACHINE).run(fn)
    assert r1.results[0] == r2.results[0]
    assert np.array_equal(r1.clocks, r2.clocks)


def test_gemm_op_positive_time():
    def fn(ctx):
        yield ctx.gemm(32, 1, 32, category="fp")

    res = run(1, fn)
    assert res.time_by(category="fp")[0] > 0


def test_unconsumed_messages_surfaced():
    """Regression: a message nobody receives must not vanish silently.

    A rank that exits without draining its mailbox used to leave the
    delivered-but-unconsumed message invisible in the result; it now shows
    up on ``SimResult.unconsumed_msgs`` so the invariant layer (and tests)
    can flag the protocol leak."""
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.zeros(4), tag="orphan")
        else:
            yield ctx.compute(1.0)   # exits cleanly, never recvs

    res = run(2, fn)
    assert len(res.unconsumed_msgs) == 1
    m = res.unconsumed_msgs[0]
    assert (m.dst, m.src, m.tag) == (1, 0, "orphan")
    assert m.nbytes == 32


def test_clean_run_has_no_unconsumed_messages():
    def fn(ctx):
        other = 1 - ctx.rank
        yield ctx.send(other, np.zeros(2), tag=0)
        yield ctx.recv(src=other, tag=0)

    res = run(2, fn)
    assert res.unconsumed_msgs == []


def test_simulator_invariants_flag_mailbox_leak():
    from repro.check import InvariantViolation

    def leaky(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.zeros(4), tag="orphan")
        else:
            yield ctx.compute(1.0)

    with pytest.raises(InvariantViolation, match="unconsumed"):
        Simulator(2, MACHINE, invariants=True).run(leaky)

    def clean(ctx):
        yield ctx.compute(1.0, category="fp")

    res = Simulator(1, MACHINE, invariants=True).run(clean)
    assert res.clocks[0] == pytest.approx(1.0)


# -- strict wildcard matching (AmbiguousRecvError) ---------------------------


def test_strict_match_flags_ambiguous_wildcard_recv():
    from repro.comm import AmbiguousRecvError

    def racy(ctx):
        if ctx.rank == 0:
            yield ctx.compute(1.0)      # let both sends land first
            _ = yield ctx.recv(src=ANY, tag="m")
            _ = yield ctx.recv(src=ANY, tag="m")
        else:
            yield ctx.send(0, np.zeros(1), tag="m")

    # Non-strict: the scheduler picks one order and completes.
    run(3, racy)
    with pytest.raises(AmbiguousRecvError) as ei:
        Simulator(3, MACHINE, strict_match=True).run(racy)
    assert ei.value.rank == 0
    assert ei.value.srcs == [1, 2]


def test_strict_match_respects_tag_filters():
    """Distinct tags disambiguate: strict mode must not raise."""

    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.compute(1.0)
            for t in ("a", "b"):
                src, tag, _ = yield ctx.recv(src=ANY, tag=t)
                assert tag == t
        else:
            yield ctx.send(0, np.zeros(1), tag="a" if ctx.rank == 1 else "b")

    res = Simulator(3, MACHINE, strict_match=True).run(fn)
    assert res.clocks[0] > 0


def test_strict_match_exact_src_never_raises():
    def fn(ctx):
        if ctx.rank == 0:
            yield ctx.compute(1.0)
            for s in (1, 2):
                _ = yield ctx.recv(src=s, tag="m")
        else:
            yield ctx.send(0, np.zeros(1), tag="m")

    Simulator(3, MACHINE, strict_match=True).run(fn)


def test_strict_match_completion_is_bit_identical():
    """When strict mode completes, it observed the same execution."""

    def fn(ctx):
        if ctx.rank == 0:
            total = np.zeros(1)
            for t in ("m1", "m2"):
                _, _, v = yield ctx.recv(src=ANY, tag=t)
                total += v
            return float(total[0])
        yield ctx.compute(0.1 * ctx.rank)
        yield ctx.send(0, np.full(1, float(ctx.rank)), tag=f"m{ctx.rank}")
        return None

    plain = run(3, fn)
    strict = Simulator(3, MACHINE, strict_match=True).run(fn)
    assert np.array_equal(plain.clocks, strict.clocks)
    assert plain.results == strict.results


def test_solver_strict_match_kwarg():
    from repro.core.solver import SpTRSVSolver
    from repro.matrices import poisson2d

    A = poisson2d(10, stencil=9, seed=3)
    solver = SpTRSVSolver(A, 2, 2, 2)
    b = np.arange(A.shape[0], dtype=float)
    out = solver.solve(b, strict_match=True)
    ref = solver.solve(b)
    assert np.array_equal(out.x, ref.x)
    assert np.array_equal(out.report.sim.clocks, ref.report.sim.clocks)
    with pytest.raises(ValueError, match="strict_match"):
        solver.solve(b, device="gpu", strict_match=True)
