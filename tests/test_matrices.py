"""Unit tests for the matrix generator substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import (
    PAPER_MATRICES,
    chemistry_like,
    elasticity3d,
    fusion_block,
    get_matrix,
    kkt3d,
    load_matrix_market,
    make_rhs,
    maxwell_like,
    poisson2d,
    poisson3d,
    random_spd_like,
    save_matrix_market,
)

ALL_GENERATORS = [
    lambda: poisson2d(8, stencil=5),
    lambda: poisson2d(8, stencil=9, seed=3),
    lambda: poisson3d(4, stencil=7),
    lambda: poisson3d(3, stencil=27, seed=1),
    lambda: kkt3d(3),
    lambda: elasticity3d(3),
    lambda: maxwell_like(3),
    lambda: chemistry_like(60),
    lambda: fusion_block(10, block=4),
    lambda: random_spd_like(50),
]


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_generator_shape_and_pattern(gen):
    A = gen()
    assert A.shape[0] == A.shape[1]
    # Structurally symmetric pattern.
    P = (A != 0).astype(int)
    assert (P != P.T).nnz == 0
    # Strictly diagonally dominant rows.
    d = A.diagonal()
    off = np.abs(A).sum(axis=1).A1 - np.abs(d)
    assert (d > off).all()


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_generator_factorizable_without_pivoting(gen):
    """Diagonal dominance must survive scipy's LU with no pivot threshold."""
    A = gen()
    lu = sp.linalg.splu(sp.csc_matrix(A), permc_spec="NATURAL",
                        diag_pivot_thresh=0.0)
    x = lu.solve(np.ones(A.shape[0]))
    assert np.allclose(A @ x, 1.0, atol=1e-8)


def test_poisson2d_size():
    assert poisson2d(7, 5).shape == (35, 35)
    assert poisson2d(6).shape == (36, 36)


def test_poisson2d_stencil_width():
    A5 = poisson2d(10, stencil=5)
    A9 = poisson2d(10, stencil=9)
    assert A9.nnz > A5.nnz
    # Interior rows: 5 and 9 entries respectively.
    deg5 = np.diff(A5.indptr)
    deg9 = np.diff(A9.indptr)
    assert deg5.max() == 5
    assert deg9.max() == 9


def test_poisson3d_stencils():
    assert poisson3d(4, stencil=7).nnz < poisson3d(4, stencil=27).nnz
    assert np.diff(poisson3d(5, stencil=27).indptr).max() == 27


def test_invalid_stencils_raise():
    with pytest.raises(ValueError):
        poisson2d(4, stencil=7)
    with pytest.raises(ValueError):
        poisson3d(4, stencil=9)


def test_kkt3d_is_saddle_point_shaped():
    A = kkt3d(3)
    assert A.shape[0] == 2 * 27


def test_elasticity_block_multiplicity():
    A = elasticity3d(3, dof=3)
    assert A.shape[0] == 27 * 3


def test_maxwell_two_components():
    A = maxwell_like(3)
    assert A.shape[0] == 27 * 2


def test_chemistry_density_grows_with_extra():
    lo = chemistry_like(100, extra_density=0.0)
    hi = chemistry_like(100, extra_density=0.05)
    assert hi.nnz > lo.nnz


def test_fusion_block_structure():
    A = fusion_block(6, block=5)
    assert A.shape == (30, 30)
    # Diagonal blocks are dense.
    assert np.count_nonzero(A[:5, :5].toarray()) == 25


def test_generators_deterministic_by_seed():
    A1 = random_spd_like(40, seed=9)
    A2 = random_spd_like(40, seed=9)
    assert (A1 != A2).nnz == 0
    A3 = random_spd_like(40, seed=10)
    assert (A1 != A3).nnz != 0


def test_suite_catalogue_complete():
    # Exactly the six Table 1 matrices.
    assert set(PAPER_MATRICES) == {
        "nlpkkt80", "Ga19As19H42", "s1_mat_0_253872",
        "s2D9pt2048", "ldoor", "dielFilterV3real",
    }
    for spec in PAPER_MATRICES.values():
        assert spec.paper_n > 0 and spec.paper_nnz_lu > 0


@pytest.mark.parametrize("name", sorted(PAPER_MATRICES))
def test_suite_builds_tiny(name):
    A = get_matrix(name, scale="tiny")
    assert A.shape[0] >= 16
    P = (A != 0).astype(int)
    assert (P != P.T).nnz == 0


def test_suite_scales_increase():
    for name in PAPER_MATRICES:
        tiny = get_matrix(name, "tiny").shape[0]
        small = get_matrix(name, "small").shape[0]
        assert small > tiny


def test_suite_unknown_raises():
    with pytest.raises(KeyError):
        get_matrix("nonexistent")
    with pytest.raises(ValueError):
        get_matrix("ldoor", scale="galactic")


def test_rhs_kinds():
    for kind in ("ones", "random", "manufactured", "e1"):
        b = make_rhs(10, 3, kind=kind)
        assert b.shape == (10, 3)
    assert (make_rhs(5, 2, "ones") == 1).all()
    assert make_rhs(5, 2, "e1")[0, 0] == 1.0
    with pytest.raises(ValueError):
        make_rhs(5, 0)
    with pytest.raises(ValueError):
        make_rhs(5, 1, kind="nope")


def test_matrix_market_roundtrip(tmp_path):
    A = random_spd_like(30, seed=3)
    path = str(tmp_path / "m.mtx")
    save_matrix_market(path, A, comment="test matrix")
    B = load_matrix_market(path)
    assert (abs(A - B) > 1e-14).nnz == 0


def test_matrix_market_symmetric(tmp_path):
    path = str(tmp_path / "s.mtx")
    with open(path, "w") as f:
        f.write("%%MatrixMarket matrix coordinate real symmetric\n")
        f.write("3 3 4\n1 1 2.0\n2 2 2.0\n3 3 2.0\n2 1 -1.0\n")
    A = load_matrix_market(path).toarray()
    assert A[0, 1] == A[1, 0] == -1.0


def test_matrix_market_rejects_garbage(tmp_path):
    path = str(tmp_path / "bad.mtx")
    with open(path, "w") as f:
        f.write("not a matrix\n")
    with pytest.raises(ValueError):
        load_matrix_market(path)


# -- hardened ingestion: typed validation (repro.matrices.validate) ----------

def test_validate_matrix_typed_errors():
    from repro.matrices import InvalidMatrixError, validate_matrix

    def reason(A):
        with pytest.raises(InvalidMatrixError) as ei:
            validate_matrix(A)
        assert isinstance(ei.value, ValueError)   # old callers keep working
        return ei.value.reason

    assert reason("nope") == "not-a-matrix"
    assert reason(sp.random(4, 5, density=0.5, format="csr")) == "non-square"
    assert reason(sp.csr_matrix((0, 0))) == "empty"
    bad = sp.eye(4, format="csr") * 1.0
    bad.data[0] = np.nan
    assert reason(bad) == "non-finite"
    inf = sp.eye(4, format="csr") * 1.0
    inf.data[1] = np.inf
    assert reason(inf) == "non-finite"
    singular = sp.csr_matrix(np.triu(np.ones((4, 4))) - np.eye(4))
    assert reason(singular) == "singular-diagonal"
    # A healthy matrix validates silently.
    validate_matrix(poisson2d(6, stencil=5))


def test_validate_rhs_typed_errors():
    from repro.matrices import InvalidRhsError, validate_rhs

    def reason(n, b):
        with pytest.raises(InvalidRhsError) as ei:
            validate_rhs(n, b)
        assert isinstance(ei.value, ValueError)
        return ei.value.reason

    assert reason(4, np.ones((2, 2, 2))) == "bad-ndim"
    assert reason(4, np.ones(3)) == "shape-mismatch"
    nb = np.ones(4)
    nb[2] = np.nan
    assert reason(4, nb) == "non-finite"
    validate_rhs(4, np.ones(4))
    validate_rhs(4, np.ones((4, 2)))


def test_poison_registry_and_provider():
    from repro.matrices import (
        POISON_MATRICES,
        POISON_RHS_KINDS,
        InvalidMatrixError,
        make_poison_rhs,
        resolve_matrix,
    )

    assert len(POISON_MATRICES) >= 5
    # The provider resolves suite names transparently...
    A = resolve_matrix("s2D9pt2048", "tiny")
    assert sp.issparse(A)
    # ...and poison names yield matrices that validate_matrix rejects.
    # Two are caught later: poison-huge by the service's size bound,
    # poison-illcond by the stability gate at factorization time (see
    # test_serve.test_service_sheds_poison_matrix_typed for both).
    from repro.matrices import validate_matrix
    for name in POISON_MATRICES:
        if name in ("poison-huge", "poison-illcond"):
            continue
        with pytest.raises(InvalidMatrixError):
            validate_matrix(resolve_matrix(name, "tiny"))
    # Poison RHS kinds are deterministic in seed and genuinely malformed.
    from repro.matrices import InvalidRhsError, validate_rhs
    for kind in POISON_RHS_KINDS:
        b1, b2 = make_poison_rhs(8, kind, 3), make_poison_rhs(8, kind, 3)
        assert np.array_equal(b1, b2, equal_nan=True)
        with pytest.raises(InvalidRhsError):
            validate_rhs(8, b1)


def test_solver_rejects_invalid_inputs():
    from repro.core.solver import SpTRSVSolver
    from repro.matrices import InvalidMatrixError, InvalidRhsError

    with pytest.raises(InvalidMatrixError):
        SpTRSVSolver(sp.random(4, 5, density=0.5, format="csr"),
                     px=1, py=1, pz=1)
    s = SpTRSVSolver(poisson2d(6, stencil=5), px=1, py=1, pz=2)
    with pytest.raises(InvalidRhsError):
        s.solve(np.ones(s.n - 1))
