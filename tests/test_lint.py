"""Tests for the custom AST lint (repro lint, rules RPR001-RPR006)."""

from __future__ import annotations

import textwrap

from repro.analyze import run_lint
from repro.analyze.lint import RULES, lint_source


def _rules(source: str, path: str = "x.py") -> list[str]:
    return [f.rule for f in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# Per-rule fixtures: each fires on the bad form, stays quiet on the good one.
# ---------------------------------------------------------------------------


def test_rpr001_untagged_wildcard_recv():
    assert _rules("yield ctx.recv()") == ["RPR001"]
    assert _rules("yield ctx.recv(src=ANY)") == ["RPR001"]
    assert _rules("yield ctx.recv(src=ANY, tag=ANY)") == ["RPR001"]
    assert _rules("yield ctx.recv(src=ANY, tag='t')") == []
    assert _rules("yield ctx.recv(src=ANY, tag=my_pred)") == []
    assert _rules("yield ctx.recv(src=3)") == []


def test_rpr002_unlabeled_collective():
    assert _rules("yield from barrier(ctx, members, tag=0)") == ["RPR002"]
    assert _rules("yield from bcast(ctx, members, 0, v)") == ["RPR002"]
    assert _rules(
        "yield from allreduce(ctx, members, v, sync='allreduce')") == []
    # Same-named non-collectives are not flagged.
    assert _rules("functools.reduce(add, xs)") == []
    assert _rules("np.add.reduce(xs)") == []


def test_rpr003_noncanonical_matmul_scoped_to_kernels():
    kernel = "src/repro/core/sptrsv2d.py"
    assert _rules("y = A @ x", path=kernel) == ["RPR003"]
    assert _rules("y = A.dot(x)", path=kernel) == ["RPR003"]
    assert _rules("y = matmul_columns(A, x)", path=kernel) == []
    # Outside the kernel modules raw matmul is fine.
    assert _rules("y = A @ x", path="src/repro/perf/roofline.py") == []


def test_rpr004_wallclock_and_rng():
    assert _rules("t = time.time()") == ["RPR004"]
    assert _rules("t = time.perf_counter()") == ["RPR004"]
    assert _rules("x = random.random()") == ["RPR004"]
    assert _rules("x = np.random.rand(3)") == ["RPR004"]
    assert _rules("rng = np.random.default_rng()") == ["RPR004"]
    assert _rules("rng = np.random.default_rng(42)") == []
    assert _rules("now = datetime.now()") == ["RPR004"]
    assert _rules("t = ctx.clock") == []


def test_rpr005_mutable_default():
    assert _rules("def f(x=[]):\n    pass") == ["RPR005"]
    assert _rules("def f(x={}):\n    pass") == ["RPR005"]
    assert _rules("def f(*, x=list()):\n    pass") == ["RPR005"]
    assert _rules("def f(x=None):\n    pass") == []
    assert _rules("def f(x=()):\n    pass") == []


def test_rpr006_literal_seed_scoped_to_scenario_modules():
    sc = "src/repro/scenarios/custom.py"
    assert _rules("rng = np.random.default_rng(1234)", path=sc) == ["RPR006"]
    assert _rules("w = generate_workload(spec, seed=7)", path=sc) == ["RPR006"]
    assert _rules("f = FaultPlan(drop=0.1, seed=-3)", path=sc) == ["RPR006"]
    assert _rules("b = make_rhs(n, 1, seed=99)", path=sc) == ["RPR006"]
    # Spawn-key form with all-literal elements is still a literal seed.
    assert _rules("rng = np.random.default_rng([1, 2])", path=sc) == ["RPR006"]
    # Seeds derived from the scenario's declared seed are the contract.
    assert _rules("rng = np.random.default_rng([seed, i])", path=sc) == []
    assert _rules("w = generate_workload(spec, seed=sc.seed)", path=sc) == []
    # The Scenario spec itself is where the literal belongs.
    assert _rules("s = Scenario(name='x', seed=101)", path=sc) == []
    # Outside scenarios/ the same code is not RPR006's business.
    assert _rules("rng = np.random.default_rng(1234)",
                  path="src/repro/serve/workload.py") == []


def test_rpr006_suppression():
    sc = "src/repro/scenarios/custom.py"
    src = "w = generate_workload(spec, seed=7)  # repro: allow[RPR006]"
    assert _rules(src, path=sc) == []


# ---------------------------------------------------------------------------
# Suppression.
# ---------------------------------------------------------------------------


def test_suppression_same_line_and_line_above():
    assert _rules("t = time.time()  # repro: allow[RPR004]") == []
    assert _rules("# repro: allow[RPR004]\nt = time.time()") == []
    # The wrong rule id does not suppress.
    assert _rules("t = time.time()  # repro: allow[RPR001]") == ["RPR004"]


def test_suppression_lists_and_star():
    src = "def f(x=[]):  # repro: allow[RPR005, RPR004]\n    pass"
    assert _rules(src) == []
    assert _rules("t = time.time()  # repro: allow[*]") == []


def test_findings_carry_hints_and_slugs():
    [f] = lint_source("t = time.time()", "m.py")
    assert f.rule == "RPR004"
    assert f.slug == RULES["RPR004"][0]
    text = f.describe()
    assert "m.py:1:" in text and "fix:" in text


# ---------------------------------------------------------------------------
# The gate the CI job enforces: the runtime itself lints clean.
# ---------------------------------------------------------------------------


def test_src_tree_has_zero_unsuppressed_findings():
    findings = run_lint(["src"])
    assert findings == [], "\n".join(f.describe() for f in findings)
