"""Backend choice, decision caching, and measured-feedback correction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.costmodel import Machine
from repro.planner.cost import predict_time


def candidates(solver) -> list[str]:
    """CPU backends eligible for ``solver``'s grid shape, in the fixed
    order ties break toward (paper-preferred first)."""
    if solver.grid.pz == 1:
        return ["2d", "ca_trsm"]
    return ["new3d", "baseline3d", "sparse_allreduce_v2", "onesided_put",
            "ca_trsm"]


@dataclass
class Decision:
    """One cached planning decision (mutated in place by corrections)."""

    key: tuple
    algorithm: str
    predicted: dict[str, float]          # candidate -> predicted seconds
    corrected: bool = False
    measured: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        ranked = sorted(self.predicted, key=lambda a: self.predicted[a])
        parts = ", ".join(f"{a}={self.predicted[a]:.3e}" for a in ranked)
        tag = " [corrected]" if self.corrected else ""
        return f"pick {self.algorithm}{tag} ({parts})"


@dataclass
class Correction:
    """Audit record of one measured-feedback override."""

    key: tuple
    predicted_pick: str
    measured_pick: str
    predicted: dict[str, float]
    measured: dict[str, float]


class Planner:
    """Cost-model backend planner with a per-problem decision cache.

    ``choose`` prices every eligible backend's extracted schedule and
    caches the argmin under (matrix fingerprint, grid shape, machine,
    nrhs) — the solve inputs the prediction actually depends on.
    ``observe`` feeds measured virtual times back: when they rank a
    different backend best than the cached pick, the decision is flipped
    in place, marked ``corrected``, and logged in ``corrections`` — the
    model stays wrong, the cache stops being.
    """

    def __init__(self):
        self._decisions: dict[tuple, Decision] = {}
        self.corrections: list[Correction] = []

    def key_of(self, solver, nrhs: int = 1,
               machine: Machine | None = None) -> tuple:
        from repro.matrices import matrix_fingerprint

        machine = machine or solver.machine
        g = solver.grid
        return (matrix_fingerprint(solver.A).hexdigest,
                g.px, g.py, g.pz, machine.name, nrhs)

    def choose(self, solver, nrhs: int = 1,
               machine: Machine | None = None) -> Decision:
        machine = machine or solver.machine
        key = self.key_of(solver, nrhs, machine)
        hit = self._decisions.get(key)
        if hit is not None:
            return hit
        preds = {alg: predict_time(solver, alg, nrhs, machine)
                 for alg in candidates(solver)}
        best = min(preds, key=lambda a: (preds[a], candidates(solver).index(a)))
        d = Decision(key=key, algorithm=best, predicted=preds)
        self._decisions[key] = d
        return d

    def observe(self, solver, measured: dict[str, float], nrhs: int = 1,
                machine: Machine | None = None) -> Decision:
        """Fold measured virtual times into the cached decision.

        ``measured`` maps backend name to measured virtual solve time (at
        least the cached pick must be present for the comparison to mean
        anything; unknown backends are ignored).  Returns the (possibly
        corrected) decision.
        """
        machine = machine or solver.machine
        d = self.choose(solver, nrhs, machine)
        known = {a: t for a, t in measured.items() if a in d.predicted}
        d.measured.update(known)
        if not d.measured or d.algorithm not in d.measured:
            return d
        order = candidates(solver)
        best = min(d.measured,
                   key=lambda a: (d.measured[a], order.index(a)))
        if best != d.algorithm and d.measured[best] < d.measured[d.algorithm]:
            self.corrections.append(Correction(
                key=d.key, predicted_pick=d.algorithm, measured_pick=best,
                predicted=dict(d.predicted), measured=dict(d.measured)))
            d.algorithm = best
            d.corrected = True
        return d

    def decisions(self) -> list[Decision]:
        """All cached decisions, in insertion order (deterministic)."""
        return list(self._decisions.values())

    def clear(self) -> None:
        self._decisions.clear()
        self.corrections.clear()


#: Shared planner behind ``solve(algorithm="auto")`` and
#: ``ServiceConfig(planner=True)``.  Process-wide by design: a serving
#: tier plans each distinct problem once, corrections included.
DEFAULT_PLANNER = Planner()
