"""Cost-model backend planner: pick a solver algorithm before running it.

The solver zoo (``2d``/``new3d``/``baseline3d``/``sparse_allreduce_v2``/
``ca_trsm``) has no single winner — which backend is fastest depends on
the matrix structure, the grid shape and the machine's α-β constants.
This package predicts each candidate's virtual solve time *statically*:
the communication skeleton is extracted symbolically
(:func:`repro.analyze.extract.solver_schedule`, no cost model, no
numerics) and then priced by a causal replay over the α-β machine model
(:func:`repro.planner.cost.schedule_time`).  Decisions are cached per
(matrix fingerprint, grid, machine, nrhs) and can be *corrected* by
measured feedback when a real solve later contradicts the model
(:meth:`repro.planner.choose.Planner.observe`).

Entry points: ``SpTRSVSolver.solve(algorithm="auto")`` and
``ServiceConfig(planner=True)`` both route through the module-level
:data:`DEFAULT_PLANNER`.  See ``docs/PLANNER.md``.
"""

from repro.planner.choose import (
    DEFAULT_PLANNER,
    Decision,
    Planner,
    candidates,
)
from repro.planner.cost import predict_time, schedule_time

__all__ = [
    "Planner",
    "Decision",
    "DEFAULT_PLANNER",
    "candidates",
    "predict_time",
    "schedule_time",
]
