"""Static α-β pricing of an extracted communication schedule.

:func:`schedule_time` replays a :class:`~repro.analyze.schedule.Schedule`
causally — per-rank clocks, receives gated on their matched send's
arrival — and prices every element with the same machine model the
simulator charges:

- a send costs ``net.send_overhead`` locally and lands at the receiver
  ``net.latency(nbytes, same_node)`` later (eager buffering, exactly the
  simulator's ``MPI_Isend`` model);
- a receive costs ``net.recv_overhead`` after the later of its local
  clock and the matched arrival;
- one-sided operations are priced exactly like the runtime charges them:
  a put costs ``send_overhead`` with its write landing ``latency`` later,
  a flush waits for the origin's matching in-flight writes, a fence is a
  collective barrier at the max of every entry clock and every in-flight
  arrival plus one ``send_overhead + recv_overhead``, and a window read
  is free;
- the compute segment preceding each event (the ``pre_flops`` /
  ``pre_bytes`` / ``pre_ops`` annotations the extractor accumulates from
  ``ctx.gemm``/``ctx.compute``) is priced as one roofline pass over the
  aggregate plus the per-op dispatch overheads.

The aggregation makes this a *model* of the simulated time, not a replay
of it: the simulator maxes flops against bytes per op, the planner per
segment, so predictions are a lower bound on compute-bound stretches.
That error is shared by every candidate backend, which is what a planner
needs — the benchmark gate (``BENCH_planner.json``) holds the *choices*
to the measured ranking, not the absolute times.
"""

from __future__ import annotations

from repro.analyze.schedule import Schedule
from repro.comm.costmodel import Machine


def _segment_time(cpu, flops: float, nbytes: float, nops: int) -> float:
    """Roofline time of an aggregated compute segment."""
    if nops == 0:
        return 0.0
    return (max(flops / cpu.flop_rate, nbytes / cpu.mem_bw)
            + nops * cpu.op_overhead)


def schedule_time(sched: Schedule, machine: Machine) -> float:
    """Predicted makespan (virtual seconds) of ``sched`` on ``machine``.

    Requires a complete schedule (every receive matched); an incomplete
    one describes a deadlocked program whose makespan is meaningless.
    """
    if not sched.complete:
        raise ValueError(
            f"cannot price an incomplete schedule ({sched.summary()})")
    net, cpu = machine.net, machine.cpu
    n = sched.nranks
    pos = [0] * n
    clock = [0.0] * n
    arrival: dict[tuple[int, int], float] = {}
    # Outstanding one-sided writes per origin as (dst, arrival) pairs, and
    # the entry clock of a rank parked at a fence (None when running).
    rma_pending: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    fence_parked: list[float | None] = [None] * n
    # Round-robin causal sweep: a rank parks when its next receive's
    # matched send has not been priced yet (or at a fence, until every
    # rank reaches the epoch boundary); completeness of the schedule
    # guarantees the sweep drains (the match relation is an executed
    # order, hence acyclic, and the runtime's fence quorum held).
    progressed = True
    while progressed:
        progressed = False
        for r in range(n):
            if fence_parked[r] is not None:
                continue
            evs = sched.events[r]
            while pos[r] < len(evs):
                ev = evs[pos[r]]
                seg = _segment_time(cpu, ev.pre_flops, ev.pre_bytes,
                                    ev.pre_ops)
                if ev.kind == "send":
                    clock[r] += seg + net.send_overhead
                    arrival[(r, ev.pos)] = clock[r] + net.latency(
                        ev.nbytes, machine.same_node(r, ev.dst))
                elif ev.kind == "put":
                    clock[r] += seg + net.send_overhead
                    rma_pending[r].append((ev.dst, clock[r] + net.latency(
                        ev.nbytes, machine.same_node(r, ev.dst))))
                elif ev.kind == "flush":
                    t = clock[r] + seg
                    keep = []
                    for dst, arr in rma_pending[r]:
                        if ev.dst is None or dst == ev.dst:
                            t = max(t, arr)
                        else:
                            keep.append((dst, arr))
                    rma_pending[r] = keep
                    clock[r] = t
                elif ev.kind == "fence":
                    fence_parked[r] = clock[r] + seg
                    pos[r] += 1
                    progressed = True
                    break
                elif ev.kind == "read":
                    clock[r] += seg
                else:
                    if ev.match is not None and ev.match not in arrival:
                        break       # park until the sender is priced
                    t_in = arrival.get(ev.match, 0.0)
                    clock[r] = max(clock[r] + seg, t_in) + net.recv_overhead
                pos[r] += 1
                progressed = True
        parked = [r for r in range(n) if fence_parked[r] is not None]
        if parked and all(fence_parked[r] is not None
                          or pos[r] >= len(sched.events[r])
                          for r in range(n)):
            # Epoch boundary: exactly the runtime's fence — everything
            # in flight (from every origin) lands before anyone leaves.
            t_f = max(max(fence_parked[r] for r in parked),
                      max((arr for pend in rma_pending for _, arr in pend),
                          default=0.0))
            for r in range(n):
                rma_pending[r] = []
            for r in parked:
                clock[r] = t_f + net.send_overhead + net.recv_overhead
                fence_parked[r] = None
            progressed = True
    if any(pos[r] < len(sched.events[r]) for r in range(n)):
        raise AssertionError(
            f"causal pricing sweep stalled on {sched.summary()}")
    for r, (flops, nbytes, nops) in enumerate(sched.compute_tails or ()):
        clock[r] += _segment_time(cpu, flops, nbytes, nops)
    return max(clock, default=0.0)


def predict_time(solver, algorithm: str, nrhs: int = 1,
                 machine: Machine | None = None) -> float:
    """Predicted virtual solve time of ``algorithm`` on ``solver``.

    Extraction is symbolic (zero RHS, zero-cost machine) and reuses the
    solver's setup caches, so repeated predictions over the same solver
    pay the kernel sweep once per (algorithm, nrhs).
    """
    from repro.analyze.extract import solver_schedule

    machine = machine or solver.machine
    sched = solver_schedule(solver, algorithm=algorithm, nrhs=nrhs)
    return schedule_time(sched, machine)
