"""The 3D process grid and the 2D block-cyclic distribution.

Ranks are numbered so each 2D grid (fixed ``z``) occupies a contiguous rank
range: ``rank = z * Px * Py + i * Py + j``.  With ``ranks_per_node`` from
the machine model this places whole 2D grids on as few nodes as possible —
the property the paper's GPU experiments exploit (NVSHMEM traffic confined
within a node when ``Px * Py`` ≤ GPUs per node).

Blocks are distributed block-cyclically by *global* supernode index:
``L(I, K)`` lives at 2D coordinates ``(I mod Px, K mod Py)``.  Using the
global index (as SuperLU_DIST does) makes the owner of a replicated
ancestor supernode identical across all 2D grids, which is what lets the
inter-grid sparse allreduce exchange rank-to-rank without redistribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import is_power_of_two


@dataclass(frozen=True)
class Grid3D:
    """A ``Px x Py x Pz`` process grid."""

    px: int
    py: int
    pz: int

    def __post_init__(self):
        if self.px < 1 or self.py < 1 or self.pz < 1:
            raise ValueError("grid dimensions must be >= 1")
        if not is_power_of_two(self.pz):
            raise ValueError(f"Pz must be a power of two, got {self.pz}")

    @property
    def nranks(self) -> int:
        return self.px * self.py * self.pz

    @property
    def grid_size(self) -> int:
        """Ranks per 2D grid."""
        return self.px * self.py

    def rank_of(self, i: int, j: int, z: int) -> int:
        """Global rank of 2D coordinates ``(i, j)`` in grid ``z``."""
        if not (0 <= i < self.px and 0 <= j < self.py and 0 <= z < self.pz):
            raise ValueError(f"coords ({i},{j},{z}) outside {self}")
        return z * self.grid_size + i * self.py + j

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Inverse of :meth:`rank_of`: ``(i, j, z)`` of a global rank."""
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} outside {self}")
        z, r = divmod(rank, self.grid_size)
        i, j = divmod(r, self.py)
        return i, j, z

    def grid_ranks(self, z: int) -> list[int]:
        """All global ranks of 2D grid ``z`` (the intra-grid communicator)."""
        base = z * self.grid_size
        return list(range(base, base + self.grid_size))

    def zpeer(self, rank: int, z2: int) -> int:
        """Rank with the same 2D coordinates in grid ``z2`` (z-communicator)."""
        i, j, _ = self.coords_of(rank)
        return self.rank_of(i, j, z2)


@dataclass(frozen=True)
class BlockCyclicMap:
    """Owner lookup for supernode blocks on one 2D grid."""

    grid: Grid3D

    def owner_coords(self, I: int, K: int) -> tuple[int, int]:
        """2D coordinates owning block ``(I, K)`` (global supernode ids)."""
        return I % self.grid.px, K % self.grid.py

    def owner_rank(self, I: int, K: int, z: int) -> int:
        i, j = self.owner_coords(I, K)
        return self.grid.rank_of(i, j, z)

    def diag_owner_rank(self, K: int, z: int) -> int:
        """Rank holding the diagonal block (and the subvector) of ``K``."""
        return self.owner_rank(K, K, z)
