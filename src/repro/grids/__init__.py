"""Process grids: the paper's ``Px x Py x Pz`` layout and block-cyclic maps."""

from repro.grids.grid3d import BlockCyclicMap, Grid3D

__all__ = ["Grid3D", "BlockCyclicMap"]
