"""Preconditioned iterative methods driven by the distributed SpTRSV.

Both methods take a :class:`~repro.core.solver.SpTRSVSolver` built on a
*preconditioning* matrix M (often a previously factorized nearby operator)
and solve ``A x = b`` for a possibly different ``A``:

- :func:`richardson` — preconditioned Richardson (defect correction),
- :func:`pcg` — preconditioned conjugate gradients (A symmetric positive
  definite).

Every iteration runs one full distributed L+U solve; the result accumulates
the simulated SpTRSV time, making these the end-to-end "repeated
application" workloads from the paper's introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.solver import SpTRSVSolver
from repro.util import as_2d_rhs


@dataclass
class IterativeResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float]
    sptrsv_time: float      # summed simulated SpTRSV time
    applications: int       # number of M^-1 applications

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf


def _apply_precond(solver: SpTRSVSolver, r: np.ndarray, **solve_kw):
    out = solver.solve(r, **solve_kw)
    return out.x, out.report.total_time


def richardson(A: sp.spmatrix, b: np.ndarray, precond: SpTRSVSolver,
               tol: float = 1e-10, maxiter: int = 100,
               **solve_kw) -> IterativeResult:
    """Preconditioned Richardson iteration ``x += M^-1 (b - A x)``.

    Converges whenever ``||I - M^-1 A|| < 1`` (M a good preconditioner for
    A).  ``solve_kw`` is forwarded to ``precond.solve`` (algorithm, device,
    machine, ...).
    """
    A = sp.csr_matrix(A)
    b2, was1d = as_2d_rhs(b)
    x = np.zeros_like(b2)
    bnorm = max(float(np.linalg.norm(b2)), np.finfo(float).tiny)
    history = []
    t_total = 0.0
    napp = 0
    converged = False
    for _ in range(maxiter):
        r = b2 - A @ x
        rel = float(np.linalg.norm(r)) / bnorm
        history.append(rel)
        if rel < tol:
            converged = True
            break
        z, t = _apply_precond(precond, r, **solve_kw)
        z2, _ = as_2d_rhs(z)
        x = x + z2
        t_total += t
        napp += 1
    else:
        r = b2 - A @ x
        history.append(float(np.linalg.norm(r)) / bnorm)
        converged = history[-1] < tol
    return IterativeResult(x=x[:, 0] if was1d else x, iterations=napp,
                           converged=converged, residual_history=history,
                           sptrsv_time=t_total, applications=napp)


def pcg(A: sp.spmatrix, b: np.ndarray, precond: SpTRSVSolver,
        tol: float = 1e-10, maxiter: int = 200,
        **solve_kw) -> IterativeResult:
    """Preconditioned conjugate gradients (A must be SPD).

    One SpTRSV-preconditioner application per iteration.
    """
    A = sp.csr_matrix(A)
    b1 = np.asarray(b, dtype=np.float64)
    if b1.ndim != 1:
        raise ValueError("pcg supports a single right-hand side")
    n = len(b1)
    x = np.zeros(n)
    r = b1.copy()
    bnorm = max(float(np.linalg.norm(b1)), np.finfo(float).tiny)
    history = [float(np.linalg.norm(r)) / bnorm]
    t_total = 0.0
    napp = 0
    if history[-1] < tol:
        return IterativeResult(x=x, iterations=0, converged=True,
                               residual_history=history, sptrsv_time=0.0,
                               applications=0)
    z, t = _apply_precond(precond, r, **solve_kw)
    t_total += t
    napp += 1
    p = np.array(z)
    rz = float(r @ z)
    converged = False
    for _ in range(maxiter):
        Ap = A @ p
        alpha = rz / float(p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rel = float(np.linalg.norm(r)) / bnorm
        history.append(rel)
        if rel < tol:
            converged = True
            break
        z, t = _apply_precond(precond, r, **solve_kw)
        t_total += t
        napp += 1
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return IterativeResult(x=x, iterations=napp, converged=converged,
                           residual_history=history, sptrsv_time=t_total,
                           applications=napp)
