"""Iterative solvers preconditioned by the distributed SpTRSV.

The paper motivates SpTRSV with "preconditioned iterative solvers requiring
repeated application of SpTRSV"; this package provides those consumers as
library code: each iteration applies ``M^-1 = U^-1 L^-1`` through any of
the distributed solve algorithms and accumulates the simulated SpTRSV cost.
"""

from repro.solvers.iterative import (
    IterativeResult,
    pcg,
    richardson,
)

__all__ = ["richardson", "pcg", "IterativeResult"]
