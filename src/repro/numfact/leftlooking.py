"""Left-looking supernodal LU — the alternative factorization schedule.

SuperLU's distributed factorization is right-looking; its sequential
ancestors (and the original SuperLU) are left-looking.  Both produce the
same factors on the same pattern, so this implementation serves as an
independent cross-check of :func:`repro.numfact.lu.lu_factorize` (the test
suite compares them block by block) and as the natural base for
factorization variants that update panels lazily.

For each supernode ``K`` (ascending), the block column ``K`` is gathered
from ``A`` and updated by every earlier supernode ``J`` with ``U(J,K)``
nonzero, in ascending ``J`` order; fill blocks are discovered on the fly
and enqueued as new dependencies.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.numfact.lu import BlockSparseLU, _scatter_blocks, dense_lu_nopivot
from repro.symbolic.supernodes import SupernodePartition


def lu_factorize_leftlooking(A: sp.spmatrix,
                             partition: SupernodePartition) -> BlockSparseLU:
    """Left-looking supernodal LU of ``A`` over ``partition``.

    Produces factors identical (to rounding) to the right-looking
    :func:`~repro.numfact.lu.lu_factorize`.
    """
    A = sp.csc_matrix(A)
    if A.shape[0] != A.shape[1] or A.shape[0] != partition.n:
        raise ValueError("matrix/partition size mismatch")
    nsup = partition.nsup
    scattered = _scatter_blocks(A, partition)

    # Column-wise views of A's blocks: col_blocks[K] = {I: block}.
    a_cols: list[dict[int, np.ndarray]] = [{} for _ in range(nsup)]
    for (I, K), blk in scattered.items():
        a_cols[K][I] = blk

    diagL: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagU: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagLinv: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagUinv: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    Lblocks: dict[tuple[int, int], np.ndarray] = {}
    Ublocks: dict[tuple[int, int], np.ndarray] = {}
    l_blockrows: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    u_blockcols: list[list[int]] = [[] for _ in range(nsup)]

    for K in range(nsup):
        col = {I: np.array(blk, copy=True) for I, blk in a_cols[K].items()}
        # Pending producer supernodes J < K, processed in ascending order;
        # updates may create fill in rows (J', K) with J < J' < K, which
        # are pushed lazily.
        pending = [J for J in col if J < K]
        heapq.heapify(pending)
        seen = set(pending)
        while pending:
            J = heapq.heappop(pending)
            UJK = diagLinv[J] @ col.pop(J)
            Ublocks[(J, K)] = UJK
            u_blockcols[J].append(K)
            for I in l_blockrows[J]:
                I = int(I)
                upd = Lblocks[(I, J)] @ UJK
                tgt = col.get(I)
                if tgt is None:
                    col[I] = -upd
                    if I < K and I not in seen:
                        heapq.heappush(pending, I)
                        seen.add(I)
                else:
                    tgt -= upd
        D = col.pop(K, None)
        if D is None:
            raise np.linalg.LinAlgError(f"structurally zero diagonal block {K}")
        Lkk, Ukk = dense_lu_nopivot(D)
        diagL[K], diagU[K] = Lkk, Ukk
        eye = np.eye(Lkk.shape[0])
        diagLinv[K] = scipy.linalg.solve_triangular(Lkk, eye, lower=True,
                                                    unit_diagonal=True)
        diagUinv[K] = scipy.linalg.solve_triangular(Ukk, eye, lower=False)
        rows = sorted(col)
        for I in rows:
            Lblocks[(I, K)] = col[I] @ diagUinv[K]
        l_blockrows[K] = np.array(rows, dtype=np.int64)

    return BlockSparseLU(
        partition=partition, diagL=diagL, diagU=diagU,
        diagLinv=diagLinv, diagUinv=diagUinv,
        Lblocks=Lblocks, Ublocks=Ublocks,
        l_blockrows=l_blockrows,
        u_blockcols=[np.array(sorted(c), dtype=np.int64)
                     for c in u_blockcols],
    )
