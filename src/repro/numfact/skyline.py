"""Skyline storage for U blocks — the format the paper simplifies away.

§2.1: "U(I, K) typically follows the 'skyline' format assuming each nonzero
column has a different length, but in this work we assume all nonzero
columns in each U(I, K) have the same length."  This module implements the
real skyline format so the cost of that simplification is measurable:

- :class:`SkylineBlock` stores each column of a U block only down to its
  last structural nonzero;
- :func:`skyline_compress` converts a factorization's U blocks;
- :func:`skyline_stats` reports how many stored entries (and model bytes)
  the full-column assumption wastes.

The solvers keep using the full-block representation (as the paper does);
skyline matvecs are verified equal to the dense ones in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numfact.lu import BlockSparseLU


@dataclass
class SkylineBlock:
    """One U block stored column-by-column down to its skyline.

    ``lengths[j]`` is the number of leading rows stored for column ``j``
    (0 for a structurally empty column); ``data`` packs the columns
    contiguously.
    """

    shape: tuple[int, int]
    lengths: np.ndarray
    data: np.ndarray
    starts: np.ndarray  # prefix offsets into data, len = ncols + 1

    @classmethod
    def from_dense(cls, block: np.ndarray, tol: float = 0.0) -> "SkylineBlock":
        """Compress a dense block; entries below ``tol`` count as zero."""
        m, n = block.shape
        lengths = np.zeros(n, dtype=np.int64)
        for j in range(n):
            nz = np.flatnonzero(np.abs(block[:, j]) > tol)
            lengths[j] = int(nz[-1]) + 1 if len(nz) else 0
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=starts[1:])
        data = np.empty(int(starts[-1]))
        for j in range(n):
            data[starts[j]:starts[j + 1]] = block[:lengths[j], j]
        return cls(shape=(m, n), lengths=lengths, data=data, starts=starts)

    @property
    def stored_entries(self) -> int:
        return int(self.starts[-1])

    @property
    def full_entries(self) -> int:
        return self.shape[0] * self.shape[1]

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for j in range(self.shape[1]):
            out[:self.lengths[j], j] = self.data[self.starts[j]:self.starts[j + 1]]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``block @ x`` computed column-wise over the skyline only."""
        x = np.atleast_2d(x.T).T  # (n, nrhs)
        out = np.zeros((self.shape[0], x.shape[1]))
        for j in range(self.shape[1]):
            lj = self.lengths[j]
            if lj:
                col = self.data[self.starts[j]:self.starts[j + 1]]
                out[:lj] += np.outer(col, x[j])
        return out


@dataclass(frozen=True)
class SkylineStats:
    """Aggregate storage comparison: skyline vs full supernodal blocks."""

    full_entries: int
    skyline_entries: int
    nblocks: int

    @property
    def compression(self) -> float:
        """Fraction of full-block entries the skyline actually needs."""
        if self.full_entries == 0:
            return 1.0
        return self.skyline_entries / self.full_entries

    @property
    def wasted_bytes(self) -> float:
        """Model bytes the paper's same-length assumption over-stores."""
        return 8.0 * (self.full_entries - self.skyline_entries)


def skyline_compress(lu: BlockSparseLU, tol: float = 0.0
                     ) -> dict[tuple[int, int], SkylineBlock]:
    """Compress every off-diagonal U block to skyline form."""
    return {key: SkylineBlock.from_dense(blk, tol=tol)
            for key, blk in lu.Ublocks.items()}


def skyline_stats(lu: BlockSparseLU, tol: float = 0.0) -> SkylineStats:
    """Measure what the full-column simplification costs for ``lu``."""
    blocks = skyline_compress(lu, tol=tol)
    full = sum(b.full_entries for b in blocks.values())
    sky = sum(b.stored_entries for b in blocks.values())
    return SkylineStats(full_entries=full, skyline_entries=sky,
                        nblocks=len(blocks))
