"""Serialization of factorizations: save once, solve in later sessions.

A :class:`BlockSparseLU` serializes to a single ``.npz`` with the partition,
the block index arrays and the packed block data.  Factorization is the
expensive preprocessing step of the paper's workflow ("most of the time is
spent in symbolic and numeric LU factorization before calling SpTRSV"), so
persisting it is the natural library feature.
"""

from __future__ import annotations

import numpy as np

from repro.numfact.lu import BlockSparseLU
from repro.symbolic.supernodes import SupernodePartition


def _pack(blocks: dict[tuple[int, int], np.ndarray]):
    keys = sorted(blocks)
    idx = np.array(keys, dtype=np.int64).reshape(len(keys), 2)
    data = np.concatenate([blocks[k].ravel() for k in keys]) \
        if keys else np.empty(0)
    return idx, data


def _unpack(idx: np.ndarray, data: np.ndarray, part: SupernodePartition,
            transpose_dims: bool = False):
    blocks: dict[tuple[int, int], np.ndarray] = {}
    ofs = 0
    for I, K in idx:
        I, K = int(I), int(K)
        m, n = part.size(I), part.size(K)
        blocks[(I, K)] = data[ofs:ofs + m * n].reshape(m, n)
        ofs += m * n
    return blocks


def save_factors(path: str, lu: BlockSparseLU) -> None:
    """Write a factorization to ``path`` (.npz)."""
    lidx, ldata = _pack(lu.Lblocks)
    uidx, udata = _pack(lu.Ublocks)
    np.savez_compressed(
        path,
        sn_start=lu.partition.sn_start,
        l_idx=lidx, l_data=ldata,
        u_idx=uidx, u_data=udata,
        diagL=np.concatenate([d.ravel() for d in lu.diagL]),
        diagU=np.concatenate([d.ravel() for d in lu.diagU]),
    )


def load_factors(path: str) -> BlockSparseLU:
    """Read a factorization written by :func:`save_factors`.

    Diagonal inverses are recomputed on load (they are derived data).
    """
    import scipy.linalg

    with np.load(path) as z:
        part = SupernodePartition(z["sn_start"])
        Lblocks = _unpack(z["l_idx"], z["l_data"], part)
        Ublocks = _unpack(z["u_idx"], z["u_data"], part)
        diagL, diagU, diagLinv, diagUinv = [], [], [], []
        ofs = 0
        dl, du = z["diagL"], z["diagU"]
        for s in range(part.nsup):
            w = part.size(s)
            diagL.append(dl[ofs:ofs + w * w].reshape(w, w))
            diagU.append(du[ofs:ofs + w * w].reshape(w, w))
            eye = np.eye(w)
            diagLinv.append(scipy.linalg.solve_triangular(
                diagL[-1], eye, lower=True, unit_diagonal=True))
            diagUinv.append(scipy.linalg.solve_triangular(
                diagU[-1], eye, lower=False))
            ofs += w * w

    nsup = part.nsup
    l_rows: list[list[int]] = [[] for _ in range(nsup)]
    u_cols: list[list[int]] = [[] for _ in range(nsup)]
    for (I, K) in Lblocks:
        l_rows[K].append(I)
    for (K, J) in Ublocks:
        u_cols[K].append(J)
    return BlockSparseLU(
        partition=part, diagL=diagL, diagU=diagU,
        diagLinv=diagLinv, diagUinv=diagUinv,
        Lblocks=Lblocks, Ublocks=Ublocks,
        l_blockrows=[np.array(sorted(r), dtype=np.int64) for r in l_rows],
        u_blockcols=[np.array(sorted(c), dtype=np.int64) for c in u_cols],
    )
