"""Verification helpers: factorization and solve residuals."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.numfact.lu import BlockSparseLU
from repro.util import as_2d_rhs


def factorization_residual(A: sp.spmatrix, lu: BlockSparseLU) -> float:
    """Relative factorization residual ``||A - L U||_F / ||A||_F``."""
    L, U = lu.to_csr()
    R = sp.csr_matrix(A) - L @ U
    denom = sp.linalg.norm(A) if sp.issparse(A) else np.linalg.norm(A)
    return float(sp.linalg.norm(R) / denom)


def solve_residual(A: sp.spmatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Relative solve residual ``max_j ||A x_j - b_j|| / ||b_j||``."""
    x2, _ = as_2d_rhs(x)
    b2, _ = as_2d_rhs(b)
    r = A @ x2 - b2
    norms = np.linalg.norm(b2, axis=0)
    norms[norms == 0] = 1.0
    return float(np.max(np.linalg.norm(r, axis=0) / norms))
