"""Numeric factorization substrate.

A from-scratch supernodal block-sparse LU (right-looking, no pivoting —
generators guarantee diagonal dominance, which Gaussian elimination
preserves).  The resulting :class:`BlockSparseLU` is the exact object the
paper's solvers consume: dense supernode-block columns of L, block rows of
U, and precomputed inverses of the triangular diagonal blocks.
"""

from repro.numfact.io import load_factors, save_factors
from repro.numfact.leftlooking import lu_factorize_leftlooking
from repro.numfact.lu import BlockSparseLU, dense_lu_nopivot, lu_factorize
from repro.numfact.skyline import (
    SkylineBlock,
    SkylineStats,
    skyline_compress,
    skyline_stats,
)
from repro.numfact.stability import StabilityReport, stability_report
from repro.numfact.verify import factorization_residual, solve_residual

__all__ = [
    "lu_factorize",
    "lu_factorize_leftlooking",
    "save_factors",
    "load_factors",
    "stability_report",
    "StabilityReport",
    "BlockSparseLU",
    "dense_lu_nopivot",
    "factorization_residual",
    "solve_residual",
    "SkylineBlock",
    "SkylineStats",
    "skyline_compress",
    "skyline_stats",
]
