"""Numerical stability monitoring for the no-pivoting factorization.

The pipeline factors without pivoting, which is only safe for matrices the
generators produce (diagonally dominant).  For arbitrary user matrices this
module quantifies how safe a computed factorization actually was: the
element growth factor (the classic stability measure of Gaussian
elimination) and the smallest pivot relative to the matrix scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.numfact.lu import BlockSparseLU


@dataclass(frozen=True)
class StabilityReport:
    """Stability diagnostics of a no-pivoting factorization."""

    growth_factor: float     # max|U| / max|A|
    min_pivot: float         # smallest |u_kk|
    max_pivot: float
    pivot_ratio: float       # min/max pivot magnitude

    def is_stable(self, growth_tol: float = 1e4,
                  pivot_tol: float = 1e-10) -> bool:
        """Heuristic verdict: modest growth and no vanishing pivot."""
        return (self.growth_factor <= growth_tol
                and self.pivot_ratio >= pivot_tol)

    def warnings(self, growth_tol: float = 1e4,
                 pivot_tol: float = 1e-10) -> list[str]:
        out = []
        if self.growth_factor > growth_tol:
            out.append(f"element growth {self.growth_factor:.3g} exceeds "
                       f"{growth_tol:.0e}: factorization without pivoting "
                       f"was likely unstable")
        if self.pivot_ratio < pivot_tol:
            out.append(f"pivot ratio {self.pivot_ratio:.3g} below "
                       f"{pivot_tol:.0e}: near-singular pivot encountered")
        return out


def stability_report(A: sp.spmatrix, lu: BlockSparseLU) -> StabilityReport:
    """Compute growth/pivot diagnostics of ``lu`` relative to ``A``."""
    a_max = float(np.abs(A.tocoo().data).max()) if A.nnz else 0.0
    u_max = 0.0
    pivots = []
    for s in range(lu.nsup):
        d = lu.diagU[s]
        u_max = max(u_max, float(np.abs(d).max()) if d.size else 0.0)
        pivots.append(np.abs(np.diag(d)))
    for blk in lu.Ublocks.values():
        if blk.size:
            u_max = max(u_max, float(np.abs(blk).max()))
    piv = np.concatenate(pivots) if pivots else np.array([0.0])
    min_p = float(piv.min())
    max_p = float(piv.max())
    return StabilityReport(
        growth_factor=u_max / a_max if a_max else np.inf,
        min_pivot=min_p,
        max_pivot=max_p,
        pivot_ratio=min_p / max_p if max_p else 0.0,
    )
