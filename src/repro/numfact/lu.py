"""Supernodal block-sparse LU factorization (right-looking, no pivoting).

Blocks are dense ``size(I) x size(K)`` panels at supernode granularity;
fill blocks are created lazily during the Schur updates, which produces a
block pattern that is a superset of the scalar fill pattern (the standard
supernodal storage trade-off).  The ancestor-ordering invariant the 3D
layout needs — every block row of column K lies in a separator-tree node on
the path from K's node to the root — is preserved by elimination (see
DESIGN.md) and asserted by the distribution code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.symbolic.supernodes import SupernodePartition
from repro.util import as_2d_rhs, matmul_columns


def dense_lu_nopivot(D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dense LU without pivoting: returns (unit-lower L, upper U).

    Raises ``ZeroDivisionError``-style ``np.linalg.LinAlgError`` if a zero
    pivot is hit (the generators' diagonal dominance rules this out).
    """
    m = D.shape[0]
    LU = np.array(D, dtype=np.float64, copy=True)
    for k in range(m - 1):
        piv = LU[k, k]
        if piv == 0.0:
            raise np.linalg.LinAlgError(f"zero pivot at position {k}")
        LU[k + 1:, k] /= piv
        LU[k + 1:, k + 1:] -= np.outer(LU[k + 1:, k], LU[k, k + 1:])
    if m and LU[m - 1, m - 1] == 0.0:
        raise np.linalg.LinAlgError(f"zero pivot at position {m - 1}")
    L = np.tril(LU, -1) + np.eye(m)
    U = np.triu(LU)
    return L, U


@dataclass
class BlockSparseLU:
    """LU factors stored as dense supernode blocks.

    - ``diagL[s]`` / ``diagU[s]``: unit-lower / upper triangular diagonal
      blocks of supernode ``s``; ``diagLinv`` / ``diagUinv`` their inverses
      (the paper assumes these are precomputed).
    - ``Lblocks[(I, K)]``: dense L block, ``I > K``.
    - ``Ublocks[(K, J)]``: dense U block, ``J > K``.
    - ``l_blockrows[K]`` / ``u_blockcols[K]``: sorted adjacency.
    """

    partition: SupernodePartition
    diagL: list[np.ndarray]
    diagU: list[np.ndarray]
    diagLinv: list[np.ndarray]
    diagUinv: list[np.ndarray]
    Lblocks: dict[tuple[int, int], np.ndarray]
    Ublocks: dict[tuple[int, int], np.ndarray]
    l_blockrows: list[np.ndarray] = field(default_factory=list)
    u_blockcols: list[np.ndarray] = field(default_factory=list)

    @property
    def nsup(self) -> int:
        return self.partition.nsup

    @property
    def n(self) -> int:
        return self.partition.n

    def nnz_stored(self) -> int:
        """Scalar entries stored in all dense blocks (incl. both triangles)."""
        total = 0
        for s in range(self.nsup):
            w = self.partition.size(s)
            total += w * w  # diagonal L and U share the footprint of one block
        total += sum(b.size for b in self.Lblocks.values())
        total += sum(b.size for b in self.Ublocks.values())
        return total

    def solve_flops(self, nrhs: int = 1) -> int:
        """FLOPs of one sequential L+U solve (2mn per GEMM, m^2 per TRSV)."""
        f = 0
        for s in range(self.nsup):
            w = self.partition.size(s)
            f += 2 * w * w * nrhs * 2  # L and U diagonal applications
        for (_, K), blk in self.Lblocks.items():
            f += 2 * blk.size * nrhs
        for (K, _), blk in self.Ublocks.items():
            f += 2 * blk.size * nrhs
        return f

    # ---- sequential reference solves -------------------------------------

    def solve_L(self, b: np.ndarray) -> np.ndarray:
        """Sequential reference forward solve ``L y = b`` (unit diagonal L)."""
        y, was1d = as_2d_rhs(b)
        y = y.copy()
        part = self.partition
        for K in range(self.nsup):
            c0, c1 = part.first(K), part.last(K)
            yK = matmul_columns(self.diagLinv[K], y[c0:c1])
            y[c0:c1] = yK
            for I in self.l_blockrows[K]:
                r0, r1 = part.first(I), part.last(I)
                y[r0:r1] -= matmul_columns(self.Lblocks[(I, K)], yK)
        return y[:, 0] if was1d else y

    def solve_U(self, y: np.ndarray) -> np.ndarray:
        """Sequential reference backward solve ``U x = y``."""
        x, was1d = as_2d_rhs(y)
        x = x.copy()
        part = self.partition
        for K in range(self.nsup - 1, -1, -1):
            c0, c1 = part.first(K), part.last(K)
            acc = x[c0:c1].copy()
            for J in self.u_blockcols[K]:
                j0, j1 = part.first(J), part.last(J)
                acc -= matmul_columns(self.Ublocks[(K, J)], x[j0:j1])
            x[c0:c1] = matmul_columns(self.diagUinv[K], acc)
        return x[:, 0] if was1d else x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Sequential reference solve ``A x = b`` via L then U."""
        return self.solve_U(self.solve_L(b))

    # ---- reconstruction (for verification) --------------------------------

    def to_csr(self) -> tuple[sp.csr_matrix, sp.csr_matrix]:
        """Reassemble (L, U) as scipy sparse matrices."""
        part = self.partition
        n = self.n

        def emit(blocks, diag, lower: bool):
            rows, cols, vals = [], [], []
            for s in range(self.nsup):
                c0 = part.first(s)
                d = diag[s]
                r, c = np.nonzero(d)
                rows.append(r + c0)
                cols.append(c + c0)
                vals.append(d[r, c])
            for (I, K), blk in blocks.items():
                r0 = part.first(I)
                c0 = part.first(K)
                r, c = np.nonzero(blk)
                rows.append(r + r0)
                cols.append(c + c0)
                vals.append(blk[r, c])
            return sp.csr_matrix(
                (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
                shape=(n, n))

        return emit(self.Lblocks, self.diagL, True), emit(self.Ublocks, self.diagU, False)


def _scatter_blocks(A: sp.csc_matrix, part: SupernodePartition
                    ) -> dict[tuple[int, int], np.ndarray]:
    """Scatter scalar entries of A into dense supernode blocks."""
    coo = sp.coo_matrix(A)
    col2sn = part.col2sn()
    bi = col2sn[coo.row]
    bj = col2sn[coo.col]
    order = np.lexsort((coo.col, coo.row, bj, bi))
    bi, bj = bi[order], bj[order]
    rows, cols, vals = coo.row[order], coo.col[order], coo.data[order]
    # Group runs of equal (bi, bj).
    key = bi * part.nsup + bj
    starts = np.flatnonzero(np.r_[True, np.diff(key) != 0])
    ends = np.r_[starts[1:], len(key)]
    work: dict[tuple[int, int], np.ndarray] = {}
    for s, e in zip(starts, ends):
        I, J = int(bi[s]), int(bj[s])
        blk = np.zeros((part.size(I), part.size(J)))
        blk[rows[s:e] - part.first(I), cols[s:e] - part.first(J)] = vals[s:e]
        work[(I, J)] = blk
    return work


def lu_factorize(A: sp.spmatrix, partition: SupernodePartition) -> BlockSparseLU:
    """Right-looking supernodal LU of ``A`` over the given partition."""
    A = sp.csc_matrix(A)
    if A.shape[0] != A.shape[1] or A.shape[0] != partition.n:
        raise ValueError("matrix/partition size mismatch")
    nsup = partition.nsup
    work = _scatter_blocks(A, partition)

    # Adjacency: for each K, current block rows below / block cols right.
    rows_of: list[set[int]] = [set() for _ in range(nsup)]
    cols_of: list[set[int]] = [set() for _ in range(nsup)]
    for (I, J) in work:
        if I > J:
            rows_of[J].add(I)
        elif J > I:
            cols_of[I].add(J)
        # diagonal blocks handled separately

    diagL: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagU: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagLinv: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    diagUinv: list[np.ndarray] = [None] * nsup  # type: ignore[list-item]
    Lblocks: dict[tuple[int, int], np.ndarray] = {}
    Ublocks: dict[tuple[int, int], np.ndarray] = {}

    for K in range(nsup):
        D = work.pop((K, K), None)
        if D is None:
            raise np.linalg.LinAlgError(f"structurally zero diagonal block {K}")
        Lkk, Ukk = dense_lu_nopivot(D)
        diagL[K], diagU[K] = Lkk, Ukk
        eye = np.eye(Lkk.shape[0])
        diagLinv[K] = scipy.linalg.solve_triangular(Lkk, eye, lower=True,
                                                    unit_diagonal=True)
        diagUinv[K] = scipy.linalg.solve_triangular(Ukk, eye, lower=False)

        lrows = sorted(rows_of[K])
        ucols = sorted(cols_of[K])
        # Panel factorization: L(I,K) = A(I,K) U(K,K)^-1, U(K,J) = L(K,K)^-1 A(K,J).
        # Factorization-time block products: fixed square operands, no RHS
        # panel, so the per-column reproducibility contract does not apply.
        for I in lrows:
            Lblocks[(I, K)] = work.pop((I, K)) @ diagUinv[K]  # repro: allow[RPR003]
        for J in ucols:
            Ublocks[(K, J)] = diagLinv[K] @ work.pop((K, J))  # repro: allow[RPR003]
        # Schur complement updates (lazy fill creation).
        for I in lrows:
            LIK = Lblocks[(I, K)]
            for J in ucols:
                upd = LIK @ Ublocks[(K, J)]  # repro: allow[RPR003]
                tgt = work.get((I, J))
                if tgt is None:
                    work[(I, J)] = -upd
                    if I > J:
                        rows_of[J].add(I)
                    elif J > I:
                        cols_of[I].add(J)
                else:
                    tgt -= upd

    lu = BlockSparseLU(
        partition=partition, diagL=diagL, diagU=diagU,
        diagLinv=diagLinv, diagUinv=diagUinv,
        Lblocks=Lblocks, Ublocks=Ublocks,
        l_blockrows=[np.array(sorted(rows_of[K]), dtype=np.int64)
                     for K in range(nsup)],
        u_blockcols=[np.array(sorted(cols_of[K]), dtype=np.int64)
                     for K in range(nsup)],
    )
    return lu
