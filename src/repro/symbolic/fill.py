r"""Symmetric-pattern symbolic factorization and supernode detection.

Computes the exact scalar fill pattern of L (= pattern of U^T under the
structurally symmetric assumption the paper makes) by merging child column
patterns along the elimination tree:

    struct(L(:, j)) = struct(A(j:, j))  ∪  ⋃_{c: parent(c)=j} struct(L(:, c)) \ {c}

From the per-column patterns it detects supernodes (columns with nested
patterns), subject to a maximum size and to separator-tree boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ordering.elimination_tree import etree
from repro.symbolic.supernodes import SupernodePartition, fixed_partition


@dataclass
class SymbolicFactor:
    """Result of the symbolic phase.

    ``partition`` is the supernode partition; ``below_rows[s]`` holds the
    sorted row indices of L strictly below supernode ``s``'s diagonal block
    (shared by all of the supernode's columns); ``nnz_L`` / ``nnz_U`` count
    scalar nonzeros including the (full) triangular diagonal blocks.
    """

    partition: SupernodePartition
    below_rows: list[np.ndarray]
    nnz_L: int
    nnz_U: int
    parent: np.ndarray  # elimination tree

    @property
    def nnz_LU(self) -> int:
        """Scalar nonzeros of L + U counting the diagonal once."""
        return self.nnz_L + self.nnz_U - self.partition.n

    def density(self) -> float:
        """nnz(LU) / n^2, the Table 1 'Density' column."""
        n = self.partition.n
        return self.nnz_LU / float(n) / float(n)


def _column_patterns(A: sp.csc_matrix, parent: np.ndarray) -> list[np.ndarray]:
    """Per-column sorted patterns of L (rows >= j), via column merging."""
    n = A.shape[0]
    indptr, indices = A.indptr, A.indices
    children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = parent[j]
        if p >= 0:
            children[p].append(j)
    patterns: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        col = indices[indptr[j]:indptr[j + 1]]
        pieces = [col[col >= j]]
        if not len(pieces[0]) or pieces[0][0] != j:
            pieces.insert(0, np.array([j], dtype=col.dtype))
        for c in children[j]:
            pc = patterns[c]
            pieces.append(pc[1:])  # drop the child's diagonal entry c... see below
        if len(pieces) == 1:
            patterns[j] = pieces[0]
        else:
            patterns[j] = np.unique(np.concatenate(pieces))
    return patterns


def symbolic_factor(A: sp.spmatrix,
                    max_supernode: int = 32,
                    boundaries: np.ndarray | None = None,
                    mode: str = "detect") -> SymbolicFactor:
    """Symbolic factorization of a structurally symmetric matrix.

    ``mode='detect'`` computes the exact fill and detects supernodes;
    ``mode='fixed'`` skips pattern detection and chops fixed-size chunks
    (below-row patterns are then derived from the union of A-column patterns
    of the chunk closed over the elimination tree — still a superset-correct
    pattern because it reuses the same merge).

    ``boundaries`` (sorted, containing 0 and n) forces supernode breaks,
    e.g. at separator-tree node edges.
    """
    A = sp.csc_matrix(A)
    A.sort_indices()
    n = A.shape[0]
    parent = etree(A)
    patterns = _column_patterns(A, parent)

    bset = set()
    if boundaries is not None:
        bset = {int(b) for b in boundaries}

    if mode == "fixed":
        partition = fixed_partition(
            n, max_supernode,
            np.asarray(sorted(bset | {0, n}), dtype=np.int64)
            if boundaries is not None else None)
    elif mode == "detect":
        starts = [0]
        size = 1
        for j in range(1, n):
            pj, pprev = patterns[j], patterns[j - 1]
            mergeable = (size < max_supernode
                         and j not in bset
                         and len(pj) == len(pprev) - 1
                         and np.array_equal(pprev[1:], pj))
            if mergeable:
                size += 1
            else:
                starts.append(j)
                size = 1
        starts.append(n)
        partition = SupernodePartition(np.asarray(starts, dtype=np.int64))
    else:
        raise ValueError(f"unknown mode {mode!r}")

    # Below-diagonal row pattern per supernode: the first column's pattern
    # clipped below the supernode (patterns are nested within a supernode,
    # and for 'fixed' chunks the union is what the merge already produced
    # for the last column... use the union over the chunk to stay a superset).
    below_rows: list[np.ndarray] = []
    nnz_L = 0
    for s in range(partition.nsup):
        c0, c1 = partition.first(s), partition.last(s)
        if mode == "detect":
            rows = patterns[c0]
            rows = rows[rows >= c1]
        else:
            rows = np.unique(np.concatenate([patterns[c] for c in range(c0, c1)]))
            rows = rows[rows >= c1]
        below_rows.append(rows)
        w = c1 - c0
        # Full dense diagonal block (supernodal storage) + below rows per col.
        nnz_L += w * (w + 1) // 2
        if mode == "detect":
            for c in range(c0, c1):
                pc = patterns[c]
                nnz_L += int((pc >= c1).sum())
        else:
            nnz_L += w * len(rows)

    return SymbolicFactor(partition=partition, below_rows=below_rows,
                          nnz_L=nnz_L, nnz_U=nnz_L, parent=parent)
