"""Supernode partitions of the column space.

A supernode is a set of *contiguous* columns whose L patterns below the
block diagonal coincide; the whole pipeline (factorization, distribution,
communication trees, GPU kernels) works at supernode-block granularity, as
in the paper.  Partitions always respect the separator-tree node boundaries
so that any ``Pz`` layout can be carved out of one partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SupernodePartition:
    """Partition of columns ``0..n-1`` into contiguous supernodes.

    ``sn_start`` has length ``nsup + 1`` with ``sn_start[0] == 0`` and
    ``sn_start[-1] == n``; supernode ``s`` owns columns
    ``sn_start[s]:sn_start[s+1]``.
    """

    sn_start: np.ndarray

    def __post_init__(self):
        s = np.asarray(self.sn_start, dtype=np.int64)
        if len(s) < 2 or s[0] != 0 or (np.diff(s) <= 0).any():
            raise ValueError("sn_start must be increasing and start at 0")
        object.__setattr__(self, "sn_start", s)

    @property
    def n(self) -> int:
        return int(self.sn_start[-1])

    @property
    def nsup(self) -> int:
        return len(self.sn_start) - 1

    def size(self, s: int) -> int:
        return int(self.sn_start[s + 1] - self.sn_start[s])

    def cols(self, s: int) -> np.ndarray:
        return np.arange(self.sn_start[s], self.sn_start[s + 1])

    def first(self, s: int) -> int:
        return int(self.sn_start[s])

    def last(self, s: int) -> int:
        return int(self.sn_start[s + 1])

    def col2sn(self) -> np.ndarray:
        """Array mapping column index -> supernode index."""
        out = np.empty(self.n, dtype=np.int64)
        for s in range(self.nsup):
            out[self.sn_start[s]:self.sn_start[s + 1]] = s
        return out

    def sn_range(self, first_col: int, last_col: int) -> tuple[int, int]:
        """Half-open supernode index range covering columns [first, last).

        The column range must be supernode-aligned (it is for any
        separator-tree node range by construction).
        """
        lo = int(np.searchsorted(self.sn_start, first_col))
        hi = int(np.searchsorted(self.sn_start, last_col))
        if self.sn_start[lo] != first_col or self.sn_start[hi] != last_col:
            raise ValueError(
                f"column range [{first_col}, {last_col}) is not aligned with "
                f"supernode boundaries")
        return lo, hi


def fixed_partition(n: int, max_size: int,
                    boundaries: np.ndarray | None = None) -> SupernodePartition:
    """Chop columns into fixed-size chunks respecting ``boundaries``.

    This is the "relaxed supernode" fallback used when full symbolic
    detection is skipped for speed; every boundary in ``boundaries`` (sorted,
    including 0 and n) starts a new supernode.
    """
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    if boundaries is None:
        boundaries = np.array([0, n], dtype=np.int64)
    starts = [0]
    for k in range(len(boundaries) - 1):
        lo, hi = int(boundaries[k]), int(boundaries[k + 1])
        for c in range(lo, hi, max_size):
            if c != starts[-1]:
                starts.append(c)
    if starts[-1] != n:
        starts.append(n)
    return SupernodePartition(np.asarray(starts, dtype=np.int64))
