"""Symbolic factorization substrate.

Computes the fill pattern of L (symmetric-pattern symbolic factorization via
column merging along the elimination tree), detects supernodes, and produces
the :class:`SupernodePartition` every later stage (numeric LU, distribution,
solves, cost models) is expressed in.
"""

from repro.symbolic.fill import SymbolicFactor, symbolic_factor
from repro.symbolic.supernodes import SupernodePartition, fixed_partition

__all__ = [
    "symbolic_factor",
    "SymbolicFactor",
    "SupernodePartition",
    "fixed_partition",
]
