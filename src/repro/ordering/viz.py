"""ASCII visualization of the 3D data layout (the paper's Fig. 1).

Renders the separator tree, the layout tree with its grid assignments, and
the block structure of a matrix under the 3D layout — which supernode block
belongs to which elimination-tree node and which grids replicate it.  Used
by the layout walkthrough example and handy when debugging orderings.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.layout import LayoutTree
from repro.ordering.nested_dissection import SeparatorTree


def render_septree(tree: SeparatorTree, max_depth: int | None = None) -> str:
    """Indented rendering of the separator tree with column ranges."""
    lines: list[str] = []

    def rec(node_id: int, prefix: str, depth: int):
        nd = tree.nodes[node_id]
        if max_depth is not None and depth > max_depth:
            return
        kind = "leaf" if nd.is_leaf else "sep "
        lines.append(f"{prefix}{kind} #{nd.id}: cols [{nd.first}, {nd.last})"
                     f" ({nd.ncols})")
        for c in nd.children:
            rec(c, prefix + "  ", depth + 1)

    rec(tree.root, "", 0)
    return "\n".join(lines)


def render_layout(layout: LayoutTree) -> str:
    """Heap-ordered rendering of the layout tree, Fig. 1(a)-style.

    Shows each node's column range, the grids replicating it, and the
    owner grid that receives the RHS entries.
    """
    lines = [f"layout tree for Pz = {layout.pz} (heap-numbered nodes):"]
    for nd in layout.nodes:
        indent = "  " * nd.level
        grids = (f"grid {nd.grid_lo}" if nd.is_leaf
                 else f"grids {nd.grid_lo}..{nd.grid_hi - 1}")
        lines.append(
            f"{indent}node {nd.heap_id} (level {nd.level}): cols "
            f"[{nd.first}, {nd.last}) ({nd.ncols}) on {grids}, "
            f"owner grid {nd.owner_grid}")
    return "\n".join(lines)


def render_block_structure(layout: LayoutTree, lu, z: int,
                           max_cells: int = 40) -> str:
    """Character-matrix view of grid ``z``'s L^z, Fig. 1(c)-style.

    Each cell is one supernode block; the character is the heap id (mod 10)
    of the layout node owning the block's *column*, ``.`` for a structural
    zero.  Large matrices are truncated to ``max_cells`` supernodes.
    """
    from repro.core.sptrsv3d_new import grid_supernodes

    part = lu.partition
    sns = grid_supernodes(layout, part, z)[:max_cells]
    index = {K: i for i, K in enumerate(sns)}
    node_of = np.full(part.nsup, -1, dtype=np.int64)
    for nd in layout.nodes:
        lo, hi = part.sn_range(nd.first, nd.last)
        node_of[lo:hi] = nd.heap_id

    m = len(sns)
    cells = [["." for _ in range(m)] for _ in range(m)]
    for j, K in enumerate(sns):
        cells[j][j] = str(node_of[K] % 10)
        for I in lu.l_blockrows[K]:
            I = int(I)
            if I in index:
                cells[index[I]][j] = str(node_of[K] % 10)
    header = (f"L^{z} block structure (first {m} supernodes; digit = "
              f"owning layout node mod 10):")
    return "\n".join([header] + ["".join(row) for row in cells])
