"""Ordering substrate: nested dissection and elimination-tree utilities.

The paper relies on a METIS nested-dissection (ND) ordering whose top
``log2(Pz)`` levels form a binary tree; this package provides a from-scratch
ND implementation (BFS level-set vertex separators with recursive bisection)
plus the separator/elimination tree structures the 3D layout consumes.
"""

from repro.ordering.elimination_tree import etree, etree_levels, postorder
from repro.ordering.layout import LayoutNode, LayoutTree, build_layout_tree
from repro.ordering.min_degree import min_degree_tree, minimum_degree
from repro.ordering.nested_dissection import (
    SeparatorTree,
    SepTreeNode,
    nested_dissection,
)

__all__ = [
    "nested_dissection",
    "minimum_degree",
    "min_degree_tree",
    "SeparatorTree",
    "SepTreeNode",
    "build_layout_tree",
    "LayoutTree",
    "LayoutNode",
    "etree",
    "postorder",
    "etree_levels",
]
