"""Minimum-degree ordering — the paper's alternative to nested dissection.

§2.2: "an ordering of the matrix has been applied to reduce the number of
fill-ins in L and U, such as minimum degree ordering or nested-dissection
(ND) ordering."  The 3D layout requires ND's binary separator tree, but 2D
solves (``Pz = 1``) accept any fill-reducing permutation; this module
implements the classic (non-approximate) minimum-degree heuristic on the
elimination graph.

The implementation is the textbook quotient-free variant: eliminate the
minimum-degree vertex, turn its neighborhood into a clique, repeat.  It is
O(sum of eliminated-clique sizes) — fine at this repository's scales.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

from repro.ordering.nested_dissection import SeparatorTree, SepTreeNode
from repro.util import check_permutation


def minimum_degree(A: sp.spmatrix) -> np.ndarray:
    """Minimum-degree elimination order of a structurally symmetric matrix.

    Returns ``perm`` mapping permuted index -> original index (the i-th
    eliminated vertex), the same convention as nested dissection.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("matrix must be square")
    P = sp.csr_matrix((np.ones(A.nnz), A.nonzero()), shape=A.shape)
    P = P + P.T
    P.setdiag(0)
    P.eliminate_zeros()

    adj: list[set[int]] = [set(P.indices[P.indptr[i]:P.indptr[i + 1]].tolist())
                           for i in range(n)]
    heap = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    stamp = np.full(n, -1, dtype=np.int64)  # lazy heap invalidation
    for v in range(n):
        stamp[v] = len(adj[v])
    perm = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != stamp[v]:
            continue  # stale entry
        perm[k] = v
        k += 1
        eliminated[v] = True
        nbrs = [u for u in adj[v] if not eliminated[u]]
        # Clique the neighborhood (the fill of eliminating v).
        nbrset = set(nbrs)
        for u in nbrs:
            au = adj[u]
            au.discard(v)
            au |= nbrset - {u}
            newdeg = sum(1 for w in au if not eliminated[w])
            if newdeg != stamp[u]:
                stamp[u] = newdeg
                heapq.heappush(heap, (newdeg, u))
        adj[v] = set()
    if k != n:  # pragma: no cover - heap always drains
        raise AssertionError("minimum degree failed to order all vertices")
    check_permutation(perm, n)
    return perm


def min_degree_tree(A: sp.spmatrix) -> SeparatorTree:
    """Wrap a minimum-degree ordering as a single-leaf separator tree.

    The result plugs into the same pipeline as nested dissection but is
    only binary-complete to depth 0, so it supports ``Pz = 1`` layouts
    (the 3D layout genuinely needs ND separators).
    """
    perm = minimum_degree(A)
    n = len(perm)
    root = SepTreeNode(id=0, parent=-1, level=0, first=0, last=n,
                       subtree_first=0)
    return SeparatorTree(nodes=[root], root=0, perm=perm)
