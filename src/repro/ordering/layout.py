"""The 3D layout tree: top ``log2(Pz)`` levels of the separator tree.

Following the paper (Fig. 1), the 3D process layout maps the top of the
elimination/separator tree onto ``Pz`` 2D grids: leaf-level node ``k`` lives
on grid ``k`` and every ancestor separator is replicated across the grids of
the leaves below it, owned (RHS-wise) by the smallest such grid id.
Nodes are numbered heap-style like the paper's figure: root 0, children
``2h+1``/``2h+2``, leaves ``Pz-1 .. 2*Pz-2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ordering.nested_dissection import SeparatorTree
from repro.util import ilog2


@dataclass(frozen=True)
class LayoutNode:
    """One node of the layout tree.

    ``first:last`` is the node's own permuted column range (for leaves, the
    whole undissected subtree; for internal nodes, the separator columns).
    ``grid_lo:grid_hi`` is the half-open range of grid ids replicating the
    node; ``owner_grid`` (= ``grid_lo``) receives the RHS entries.
    """

    heap_id: int
    level: int          # root = 0, leaves = log2(Pz)
    first: int
    last: int
    grid_lo: int
    grid_hi: int

    @property
    def ncols(self) -> int:
        return self.last - self.first

    @property
    def owner_grid(self) -> int:
        return self.grid_lo

    @property
    def is_leaf(self) -> bool:
        return self.grid_hi - self.grid_lo == 1


@dataclass(frozen=True)
class LayoutTree:
    """Complete binary layout tree with ``2*Pz - 1`` heap-indexed nodes."""

    pz: int
    nodes: tuple[LayoutNode, ...]  # indexed by heap id
    n: int

    @property
    def depth(self) -> int:
        """Leaf level = log2(Pz)."""
        return ilog2(self.pz)

    def leaf(self, z: int) -> LayoutNode:
        """The leaf node handled (exclusively) by grid ``z``."""
        return self.nodes[self.pz - 1 + z]

    def path(self, z: int) -> list[LayoutNode]:
        """Nodes on the path from grid ``z``'s leaf up to the root."""
        h = self.pz - 1 + z
        out = []
        while h >= 0:
            out.append(self.nodes[h])
            h = (h - 1) // 2 if h > 0 else -1
        return out

    def nodes_of_grid(self, z: int) -> list[LayoutNode]:
        """Alias for :meth:`path`: all nodes grid ``z`` participates in."""
        return self.path(z)

    def ancestors(self, node: LayoutNode) -> list[LayoutNode]:
        """Strict ancestors of ``node``, nearest first."""
        h = node.heap_id
        out = []
        while h > 0:
            h = (h - 1) // 2
            out.append(self.nodes[h])
        return out

    def node_of_col(self) -> np.ndarray:
        """Map permuted column index -> layout heap id."""
        out = np.full(self.n, -1, dtype=np.int64)
        for nd in self.nodes:
            out[nd.first:nd.last] = nd.heap_id
        if (out < 0).any():
            raise AssertionError("layout tree does not cover all columns")
        return out


def build_layout_tree(tree: SeparatorTree, pz: int) -> LayoutTree:
    """Truncate a separator tree to the ``2*Pz - 1``-node layout tree.

    Internal layout nodes keep the separator's own columns; layout leaves
    absorb the *entire* remaining subtree of the separator tree.  Requires
    the separator tree to be binary-complete to depth ``log2(Pz)``
    (``nested_dissection(..., min_depth=log2(pz))`` guarantees it).
    """
    depth = ilog2(pz)
    if tree.min_leaf_depth() < depth:
        raise ValueError(
            f"separator tree is binary-complete only to depth "
            f"{tree.min_leaf_depth()}, need {depth}; rerun nested_dissection "
            f"with min_depth={depth}")

    layout: list[LayoutNode | None] = [None] * (2 * pz - 1)

    def rec(sep_id: int, heap_id: int, level: int, grid_lo: int, grid_hi: int):
        nd = tree.nodes[sep_id]
        if level == depth:
            # Layout leaf: whole remaining subtree of the separator tree.
            layout[heap_id] = LayoutNode(heap_id, level, nd.subtree_first,
                                         nd.last, grid_lo, grid_hi)
            return
        layout[heap_id] = LayoutNode(heap_id, level, nd.first, nd.last,
                                     grid_lo, grid_hi)
        mid = (grid_lo + grid_hi) // 2
        left, right = nd.children
        rec(left, 2 * heap_id + 1, level + 1, grid_lo, mid)
        rec(right, 2 * heap_id + 2, level + 1, mid, grid_hi)

    rec(tree.root, 0, 0, 0, pz)
    return LayoutTree(pz=pz, nodes=tuple(layout), n=tree.n)
