"""Nested dissection ordering via BFS level-set vertex separators.

This is the from-scratch substitute for METIS used throughout the
reproduction.  The recursion produces a *binary* separator tree: each
internal node owns its separator columns and has exactly two children; each
leaf owns the columns of an undissected subdomain.  The permutation orders
``left subtree, right subtree, separator`` recursively, so every tree node's
own columns and whole-subtree columns are contiguous ranges in the permuted
matrix — the property the 3D layout and the supernode partition rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.util import check_permutation


@dataclass
class SepTreeNode:
    """One node of the separator tree.

    ``first:last`` is the node's *own* column range (separator columns for
    internal nodes, subdomain columns for leaves) in the permuted numbering;
    ``subtree_first:last`` covers the node's entire subtree.  Ranges may be
    empty for degenerate splits of very small graphs.
    """

    id: int
    parent: int
    level: int
    first: int
    last: int
    subtree_first: int
    children: tuple[int, ...] = field(default_factory=tuple)

    @property
    def ncols(self) -> int:
        return self.last - self.first

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class SeparatorTree:
    """Binary separator tree plus the nested-dissection permutation.

    ``perm`` maps permuted index -> original index, i.e. the reordered
    matrix is ``A[perm][:, perm]``.
    """

    nodes: list[SepTreeNode]
    root: int
    perm: np.ndarray

    @property
    def n(self) -> int:
        return len(self.perm)

    def depth(self) -> int:
        """Maximum node level (root is level 0)."""
        return max(nd.level for nd in self.nodes)

    def min_leaf_depth(self) -> int:
        """Smallest level at which a leaf occurs (binary-completeness bound)."""
        return min(nd.level for nd in self.nodes if nd.is_leaf)

    def node_of_col(self) -> np.ndarray:
        """Array mapping permuted column -> owning tree node id."""
        out = np.full(self.n, -1, dtype=np.int64)
        for nd in self.nodes:
            out[nd.first:nd.last] = nd.id
        return out

    def boundaries(self) -> np.ndarray:
        """Sorted unique own-range starts; supernodes must not cross these."""
        starts = sorted({nd.first for nd in self.nodes} | {self.n})
        return np.asarray(starts, dtype=np.int64)


def _symmetric_adjacency(A: sp.spmatrix) -> sp.csr_matrix:
    """Pattern-symmetric adjacency (no diagonal) of a square sparse matrix."""
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("matrix must be square")
    P = sp.csr_matrix((np.ones(A.nnz), A.nonzero()), shape=A.shape)
    P = P + P.T
    P.setdiag(0)
    P.eliminate_zeros()
    P.sort_indices()
    return sp.csr_matrix(P)


def _bfs_levels(indptr, indices, seeds, mask, level, token):
    """BFS over the masked subgraph from ``seeds``.

    ``mask`` holds ``token`` for vertices in the subgraph; visited vertices
    get their distance written into ``level``.  Returns the visit order.
    """
    order = list(seeds)
    for s in seeds:
        level[s] = 0
    head = 0
    while head < len(order):
        u = order[head]
        head += 1
        du = level[u]
        for v in indices[indptr[u]:indptr[u + 1]]:
            if mask[v] == token and level[v] < 0:
                level[v] = du + 1
                order.append(v)
    return order


def _pseudo_peripheral(indptr, indices, verts, mask, level, token):
    """Double-BFS pseudo-peripheral vertex heuristic; returns (start, order)."""
    start = verts[0]
    for _ in range(2):
        level[verts] = -1
        order = _bfs_levels(indptr, indices, [start], mask, level, token)
        start = order[-1]
    level[verts] = -1
    order = _bfs_levels(indptr, indices, [start], mask, level, token)
    return start, order


def _split(indptr, indices, verts, mask, level, token):
    """Split ``verts`` into (left, right, separator) via BFS level sets.

    A connected subgraph is cut at the BFS level whose removal best
    balances the two sides.  A disconnected subgraph needs no separator:
    whole components are binned greedily into the two sides (splitting a
    component arithmetically would cut edges without a separator and break
    the ancestor-closure property the 3D layout relies on).  Any part may
    come back empty for tiny graphs.
    """
    empty = np.empty(0, dtype=verts.dtype)
    nv = len(verts)
    if nv <= 1:
        return verts, empty, empty
    _, order = _pseudo_peripheral(indptr, indices, verts, mask, level, token)
    reached = np.asarray(order, dtype=verts.dtype)

    if len(reached) < nv:
        # Disconnected: gather every component, then balance whole
        # components across the two sides with an empty separator.
        comps = [reached]
        remaining = verts[level[verts] < 0]
        while len(remaining):
            comp = _bfs_levels(indptr, indices, [remaining[0]], mask, level,
                               token)
            comps.append(np.asarray(comp, dtype=verts.dtype))
            remaining = remaining[level[remaining] < 0]
        comps.sort(key=len, reverse=True)
        left_parts, right_parts = [], []
        ls = rs = 0
        for c in comps:
            if ls <= rs:
                left_parts.append(c)
                ls += len(c)
            else:
                right_parts.append(c)
                rs += len(c)
        left = np.concatenate(left_parts) if left_parts else empty
        right = np.concatenate(right_parts) if right_parts else empty
        return left, right, empty

    lv = level[reached]
    nlev = int(lv.max()) + 1
    if nlev <= 1:  # pragma: no cover - connected with >1 vertex has >1 level
        half = nv // 2
        return verts[:half], verts[half:], empty

    counts = np.bincount(lv, minlength=nlev)
    below = np.cumsum(counts) - counts  # strictly below each level
    above = len(reached) - below - counts
    # Cost: imbalance plus separator size, favoring small middle levels.
    cost = np.maximum(below, above) + 2 * counts
    cost[0] = cost[-1] = np.iinfo(np.int64).max  # keep both sides nonempty
    cut = int(np.argmin(cost)) if nlev > 2 else 1

    left = reached[lv < cut]
    sep = reached[lv == cut]
    right = reached[lv > cut]
    unreached = verts[level[verts] < 0]
    if len(unreached):
        if len(left) < len(right):
            left = np.concatenate([left, unreached])
        else:
            right = np.concatenate([right, unreached])
    return left, right, sep


def nested_dissection(A: sp.spmatrix, leaf_size: int = 64,
                      min_depth: int = 0) -> SeparatorTree:
    """Compute a nested-dissection ordering and its binary separator tree.

    ``leaf_size`` stops the recursion once a subdomain is that small;
    ``min_depth`` forces the tree to be binary-complete to at least that
    depth regardless (needed so that ``Pz`` 2D grids can be mapped onto the
    top ``log2(Pz)`` levels even for small matrices).
    """
    P = _symmetric_adjacency(A)
    n = P.shape[0]
    indptr, indices = P.indptr, P.indices
    mask = np.zeros(n, dtype=np.int64)  # subgraph token per vertex
    level = np.full(n, -1, dtype=np.int64)

    nodes: list[SepTreeNode] = []
    perm = np.empty(n, dtype=np.int64)
    next_token = [1]
    cursor = [0]

    def rec(verts: np.ndarray, depth: int, parent: int) -> int:
        node_id = len(nodes)
        nodes.append(None)  # placeholder, filled below
        subtree_first = cursor[0]
        if depth >= min_depth and len(verts) <= leaf_size:
            first = cursor[0]
            perm[first:first + len(verts)] = verts
            cursor[0] += len(verts)
            nodes[node_id] = SepTreeNode(node_id, parent, depth, first,
                                         cursor[0], subtree_first)
            return node_id
        token = next_token[0]
        next_token[0] += 1
        mask[verts] = token
        left, right, sep = _split(indptr, indices, verts, mask, level, token)
        lid = rec(left, depth + 1, node_id)
        rid = rec(right, depth + 1, node_id)
        first = cursor[0]
        perm[first:first + len(sep)] = sep
        cursor[0] += len(sep)
        nodes[node_id] = SepTreeNode(node_id, parent, depth, first, cursor[0],
                                     subtree_first, children=(lid, rid))
        return node_id

    root = rec(np.arange(n, dtype=np.int64), 0, -1)
    assert cursor[0] == n
    check_permutation(perm, n)
    return SeparatorTree(nodes=nodes, root=root, perm=perm)
