"""Elimination-tree utilities for symmetric-pattern sparse matrices.

The elimination tree (etree) encodes the column dependencies of the
factorization: ``parent[j]`` is the smallest row index ``i > j`` in the
pattern of ``L(:, j)``.  The symbolic factorization and the DAG-level
analyses (GPU level-set concurrency, critical path) are built on it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def etree(A: sp.spmatrix) -> np.ndarray:
    """Elimination tree of a structurally symmetric matrix.

    Classic Liu algorithm with path compression (virtual ancestors).
    Returns ``parent`` with ``parent[root] = -1``; forests are possible for
    reducible matrices.
    """
    A = sp.csc_matrix(A)
    n = A.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            # Walk from i up to the root of its current virtual tree.
            while i != -1 and i < j:
                inext = ancestor[i]
                ancestor[i] = j
                if inext == -1:
                    parent[i] = j
                i = inext
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder traversal of an elimination forest.

    Returns ``post`` such that ``post[k]`` is the k-th node visited; children
    are visited before parents.
    """
    n = len(parent)
    # Build child lists (reversed so iterative DFS visits low children first).
    first_child = np.full(n, -1, dtype=np.int64)
    next_sib = np.full(n, -1, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        p = parent[v]
        if p >= 0:
            next_sib[v] = first_child[p]
            first_child[p] = v
    post = np.empty(n, dtype=np.int64)
    k = 0
    for root in range(n):
        if parent[root] != -1:
            continue
        # Iterative DFS with explicit stack.
        stack = [root]
        expanded = [False]
        while stack:
            v = stack[-1]
            if not expanded[-1]:
                expanded[-1] = True
                c = first_child[v]
                while c != -1:
                    stack.append(c)
                    expanded.append(False)
                    c = next_sib[c]
            else:
                post[k] = v
                k += 1
                stack.pop()
                expanded.pop()
    if k != n:
        raise ValueError("parent array is not a forest")
    return post


def etree_levels(parent: np.ndarray) -> np.ndarray:
    """Distance of each node from its root (root level 0).

    Used to derive DAG level sets: nodes whose subtrees are disjoint can be
    eliminated concurrently.
    """
    n = len(parent)
    level = np.full(n, -1, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        if level[v] >= 0:
            continue
        path = []
        u = v
        while u != -1 and level[u] < 0:
            path.append(u)
            u = parent[u]
        base = level[u] if u != -1 else -1
        for d, w in enumerate(reversed(path)):
            level[w] = base + 1 + d
    return level
