"""Epoch-based certification of one-sided (RMA) schedules.

:func:`verify_rma` takes an extracted
:class:`~repro.analyze.schedule.Schedule` and statically certifies its
one-sided traffic — no simulation, no cost model:

- **Happens-before**: program order, matched send→recv pairs, and *epoch
  joins*.  The ``e``-th fence of every participating rank feeds a single
  join node ``J_e``; ``J_e`` feeds each participant's first post-fence
  event.  This is exactly the runtime's quorum semantics
  (:meth:`repro.comm.simulator.RankCtx.fence`): the fence completes only
  once every live rank reaches it, so everything before any rank's
  ``e``-th fence happens before everything after any rank's ``e``-th
  fence.  A put becomes *visible* at its origin's next matching flush, or
  at the join of its origin's next fence; a put whose origin never
  flushes or fences again is never applied.
- **Conflicting accesses**: window accesses are grouped per
  ``(target rank, key)``.  Two accesses — at least one of them a put —
  conflict when neither is ordered before the other: a put is "before"
  another access when its *apply point* happens-before that access's
  issue.  Each conflict is reported as a :class:`RMARace` carrying a
  minimal two-operation witness (the two accesses, in global extraction
  order — deterministic and stable across re-extractions).  Same-rank
  pairs are exempt: the runtime applies one origin's puts in issue order,
  so program order already determines the outcome.
- **Structural issues**: puts that are never applied
  (``unapplied-put`` — the static twin of the runtime's
  ``sim.rma-conservation`` invariant) and ranks that perform one-sided
  operations but fence fewer times than their peers
  (``fence-mismatch`` — such a rank stalls every other rank's fence at
  runtime).
- **Resource bounds**: a sweep over the schedule's recorded interleaving
  charges every put to its target's window buffer from issue until its
  apply point, yielding per-target *peak live window bytes*, total put
  bytes, and the applied/unapplied split.  On fence-delimited schedules
  (no flushes) the peak is interleaving-independent — every epoch's puts
  are simultaneously live just before the join — so the certified peak
  equals the runtime's measured ``SimResult.rma_peak_bytes`` *exactly*,
  and total bytes obey conservation (``applied + unapplied == put``),
  the same α·β byte volume the planner prices.

:func:`delete_op` is the mutation helper behind the fence-deletion
self-test: it removes one operation from a schedule (renumbering
positions and re-pointing matches) so the test suite can prove the
certifier catches the injected race.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.analyze.schedule import FenceEvent, PutEvent, Schedule


@dataclass
class RMAAccess:
    """One window access: a put into ``target``'s window, or a local read."""

    kind: str            # "put" | "read"
    rank: int            # origin (put) or reader (read)
    pos: int
    gidx: int
    target: int          # window owner (== rank for reads)
    key: Hashable
    nbytes: int = 0      # 0 for reads
    applied_at: int | None = None   # HB node where a put becomes visible

    def describe(self) -> str:
        if self.kind == "put":
            where = ("never applied" if self.applied_at is None
                     else "applied")
            return (f"rank {self.rank}[{self.pos}]: put(dst={self.target}, "
                    f"key={self.key!r}, {self.nbytes}B, {where})")
        return f"rank {self.rank}[{self.pos}]: read(key={self.key!r})"


@dataclass
class RMARace:
    """Two unordered conflicting accesses to one window key."""

    target: int
    key: Hashable
    first: RMAAccess     # the two-op witness, in global extraction order
    second: RMAAccess

    def describe(self) -> str:
        return (f"rma race: window {self.target} key {self.key!r}: "
                f"{self.first.describe()} and {self.second.describe()} "
                f"are unordered (no flush/fence edge between them)")


@dataclass
class RMAIssue:
    """A structural defect: an unapplied put or a fence-count mismatch."""

    kind: str            # "unapplied-put" | "fence-mismatch"
    rank: int
    pos: int
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class RMAResources:
    """Certified window-buffer bounds for a schedule's one-sided traffic."""

    total_put_bytes: int = 0
    applied_bytes: int = 0
    unapplied_bytes: int = 0
    peak_bytes: list[int] = field(default_factory=list)  # per target rank
    nepochs: int = 0

    @property
    def conserved(self) -> bool:
        """Byte conservation: every put byte is applied or still pending."""
        return self.applied_bytes + self.unapplied_bytes \
            == self.total_put_bytes

    def describe(self) -> str:
        peak = max(self.peak_bytes, default=0)
        return (f"{self.total_put_bytes}B put "
                f"({self.applied_bytes}B applied, "
                f"{self.unapplied_bytes}B unapplied), "
                f"{self.nepochs} epoch(s), "
                f"peak live window {peak}B "
                f"(per-rank {self.peak_bytes})")


@dataclass
class RMAReport:
    """Everything :func:`verify_rma` established about a schedule."""

    schedule: Schedule
    races: list[RMARace] = field(default_factory=list)
    issues: list[RMAIssue] = field(default_factory=list)
    resources: RMAResources = field(default_factory=RMAResources)

    @property
    def race_free(self) -> bool:
        return not self.races

    @property
    def ok(self) -> bool:
        return (self.race_free and not self.issues
                and self.resources.conserved)

    def findings(self) -> list[str]:
        out = [r.describe() for r in self.races]
        out += [i.describe() for i in self.issues]
        if not self.resources.conserved:
            out.append(f"rma byte conservation violated: "
                       f"{self.resources.describe()}")
        return out

    def summary(self) -> str:
        name = f"{self.schedule.name}: " if self.schedule.name else ""
        if not self.schedule.puts():
            return f"{name}no one-sided operations"
        if self.ok:
            return (f"{name}certified race-free one-sided epochs; "
                    f"{self.resources.describe()}")
        lines = [f"{name}one-sided certification FAILED"]
        lines += [f"  {f}" for f in self.findings()]
        return "\n".join(lines)


def _epoch_structure(sched: Schedule) -> tuple[list[list[FenceEvent]], int]:
    """Per-rank fence lists (program order) and the max fence count."""
    fences: list[list[FenceEvent]] = [[] for _ in range(sched.nranks)]
    for evs in sched.events:
        for e in evs:
            if e.kind == "fence":
                fences[e.rank].append(e)
    max_f = max((len(f) for f in fences), default=0)
    return fences, max_f


def verify_rma(sched: Schedule) -> RMAReport:
    """Certify ``sched``'s one-sided traffic; see the module docstring."""
    report = RMAReport(schedule=sched)
    puts = sched.puts()
    if not puts and not sched.reads():
        return report

    fences, max_f = _epoch_structure(sched)
    # Join node ids live above every event gidx.
    G = 1 + max((e.gidx for evs in sched.events for e in evs), default=0)

    # Structural issue: a rank doing one-sided work but fencing fewer
    # times than its peers stalls everyone else's fence at runtime.
    for r in range(sched.nranks):
        if len(fences[r]) < max_f:
            rma_evs = [e for e in sched.events[r]
                       if e.kind in ("put", "flush", "read")]
            if rma_evs:
                report.issues.append(RMAIssue(
                    "fence-mismatch", r, rma_evs[0].pos,
                    f"rank {r} performs one-sided operations but fences "
                    f"{len(fences[r])} time(s) while its peers fence "
                    f"{max_f} time(s); every peer fence stalls on it"))

    # -- apply point of every put -----------------------------------------
    # First matching later flush by the origin, else the join of the
    # origin's next fence, else never.
    by_rank_pos: dict[int, list] = {r: sched.events[r]
                                    for r in range(sched.nranks)}
    accesses: dict[tuple[int, Hashable], list[RMAAccess]] = {}
    apply_of: dict[int, int | None] = {}     # put gidx -> HB apply node
    for p in puts:
        applied: int | None = None
        nfences = 0
        for e in by_rank_pos[p.rank]:
            if e.pos <= p.pos:
                if e.kind == "fence":
                    nfences += 1
                continue
            if e.kind == "flush" and (e.dst is None or e.dst == p.dst):
                applied = e.gidx
                break
            if e.kind == "fence":
                applied = G + nfences
                break
        apply_of[p.gidx] = applied
        if applied is None:
            report.issues.append(RMAIssue(
                "unapplied-put", p.rank, p.pos,
                f"{p.describe()} is never applied: no later flush or "
                f"fence on rank {p.rank} completes it"))
        acc = RMAAccess("put", p.rank, p.pos, p.gidx, p.dst, p.key,
                        p.nbytes, applied)
        accesses.setdefault((p.dst, p.key), []).append(acc)
    for rd in sched.reads():
        acc = RMAAccess("read", rd.rank, rd.pos, rd.gidx, rd.rank, rd.key)
        accesses.setdefault((rd.rank, rd.key), []).append(acc)

    # -- happens-before DAG (with epoch join nodes) ------------------------
    adj: dict[int, list[int]] = {}
    for evs in sched.events:
        for i, e in enumerate(evs):
            if i + 1 < len(evs):
                adj.setdefault(e.gidx, []).append(evs[i + 1].gidx)
    for e in sched.recvs():
        if e.match is not None:
            sev = sched.event_at(*e.match)
            adj.setdefault(sev.gidx, []).append(e.gidx)
    for epoch in range(max_f):
        join = G + epoch
        for r in range(sched.nranks):
            if len(fences[r]) <= epoch:
                continue
            f = fences[r][epoch]
            adj.setdefault(f.gidx, []).append(join)
            if f.pos + 1 < len(sched.events[r]):
                adj.setdefault(join, []).append(
                    sched.events[r][f.pos + 1].gidx)

    reach_memo: dict[int, set[int]] = {}

    def reaches(a: int, b: int) -> bool:
        """Does node ``a`` happen-before (or equal) node ``b``?"""
        if a not in reach_memo:
            seen = {a}
            q = deque([a])
            while q:
                u = q.popleft()
                for v in adj.get(u, ()):
                    if v not in seen:
                        seen.add(v)
                        q.append(v)
            reach_memo[a] = seen
        return b in reach_memo[a]

    def ordered(x: RMAAccess, y: RMAAccess) -> bool:
        """Is ``x`` visible-before ``y`` issues?  A put counts from its
        apply point; a read from its own issue."""
        end = x.applied_at if x.kind == "put" else x.gidx
        return end is not None and reaches(end, y.gidx)

    # -- conflicting-access scan ------------------------------------------
    for (target, key), accs in sorted(accesses.items(),
                                      key=lambda kv: kv[1][0].gidx):
        accs.sort(key=lambda a: a.gidx)
        for i, x in enumerate(accs):
            for y in accs[i + 1:]:
                if x.kind == "read" and y.kind == "read":
                    continue
                if x.rank == y.rank:
                    continue   # program order decides; runtime is in-order
                if not ordered(x, y) and not ordered(y, x):
                    report.races.append(RMARace(target, key, x, y))

    # -- resource sweep ----------------------------------------------------
    # Walk the recorded interleaving; a put occupies its target's window
    # buffer from issue until its apply point.  Join J_e lands at the
    # last participating fence of epoch e (gidx order), mirroring the
    # runtime where every live rank is parked at the fence when the
    # epoch's writes apply.
    completion: dict[int, int] = {}   # join node -> completion gidx
    for epoch in range(max_f):
        members = [fences[r][epoch].gidx for r in range(sched.nranks)
                   if len(fences[r]) > epoch]
        if members:
            completion[G + epoch] = max(members)
    applies_at: dict[int, list[PutEvent]] = {}
    for p in puts:
        node = apply_of[p.gidx]
        if node is None:
            continue
        applies_at.setdefault(completion.get(node, node), []).append(p)

    live = [0] * sched.nranks
    peak = [0] * sched.nranks
    res = report.resources
    res.nepochs = max_f
    res.peak_bytes = peak
    for e in sorted((e for evs in sched.events for e in evs),
                    key=lambda e: e.gidx):
        if e.kind == "put":
            live[e.dst] += e.nbytes
            peak[e.dst] = max(peak[e.dst], live[e.dst])
            res.total_put_bytes += e.nbytes
        for p in applies_at.pop(e.gidx, ()):
            live[p.dst] -= p.nbytes
            res.applied_bytes += p.nbytes
    res.unapplied_bytes = res.total_put_bytes - res.applied_bytes
    return report


def delete_op(sched: Schedule, rank: int, kind: str,
              occurrence: int = 0) -> Schedule:
    """Return a copy of ``sched`` with the ``occurrence``-th event of
    ``kind`` removed from ``rank``'s program.

    Positions on the mutated rank are renumbered and recv matches into it
    re-pointed (a match on the deleted event itself becomes unmatched), so
    the result is a well-formed schedule — exactly what a buggy program
    that forgot that one operation would have extracted.  Built for the
    fence-deletion self-test: delete a fence, re-run :func:`verify_rma`,
    and the certifier must report precisely the injected race.
    """
    hits = [i for i, e in enumerate(sched.events[rank]) if e.kind == kind]
    if occurrence >= len(hits):
        raise ValueError(f"rank {rank} has only {len(hits)} {kind!r} "
                         f"event(s); cannot delete #{occurrence}")
    cut = hits[occurrence]

    events: list[list] = []
    for r, evs in enumerate(sched.events):
        if r != rank:
            events.append([dataclasses.replace(e) for e in evs])
            continue
        kept = [dataclasses.replace(e) for i, e in enumerate(evs)
                if i != cut]
        for i, e in enumerate(kept):
            e.pos = i
        events.append(kept)
    for evs in events:
        for e in evs:
            if e.kind == "recv" and e.match is not None:
                src, pos = e.match
                if src == rank:
                    if pos == cut:
                        e.match = None
                        e.matched_tag = None
                    elif pos > cut:
                        e.match = (src, pos - 1)

    def remap(pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        out = []
        for r, p in pairs:
            if r == rank:
                if p == cut:
                    continue
                if p > cut:
                    p -= 1
            out.append((r, p))
        return out

    name = sched.name + f" -{kind}@rank{rank}" if sched.name else \
        f"-{kind}@rank{rank}"
    return Schedule(nranks=sched.nranks, events=events,
                    complete=sched.complete,
                    blocked_recvs=remap(sched.blocked_recvs),
                    blocked_sends=remap(sched.blocked_sends),
                    blocked_fences=remap(sched.blocked_fences),
                    rendezvous=sched.rendezvous, name=name,
                    compute_tails=list(sched.compute_tails))


__all__ = ["RMAAccess", "RMARace", "RMAIssue", "RMAResources", "RMAReport",
           "verify_rma", "delete_op"]
