"""Zero-cost symbolic schedule extraction.

Runs real rank programs — the same generator-coroutine protocol the
simulator drives (:mod:`repro.comm.simulator`) — under an *untimed* causal
executor and records every send/recv as a
:class:`~repro.analyze.schedule.Schedule` event.  No cost model is
consulted: compute ops are discarded, the stub machine prices every
operation at zero seconds, and delivery follows causal send order instead
of arrival times.  Payloads are real (zero-filled) arrays so the kernels'
shape logic runs unchanged, but only ``(tag, nbytes)`` summaries are kept.

The point: anything proved about the extracted schedule (deadlock
freedom, match determinism, sync counts — see
:mod:`repro.analyze.verify`) holds for the *communication structure*, not
for one timed execution.  The extractor resolves wildcard receives in one
particular causal order; the verifier's race detector is what certifies
that every other causal order matches the same send sets.

Two send semantics are supported:

- eager (default): sends buffer immediately, matching the runtime's
  ``MPI_Isend`` model — a send can never block.
- ``rendezvous=True``: sends block until a matching receive is posted
  (synchronous ``MPI_Ssend``).  A schedule that is deadlock-free under
  rendezvous is safe for *any* MPI eager threshold; this is how the
  classic send/send deadlock is surfaced statically.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.comm.simulator import (
    ANY,
    RankCtx,
    RMAError,
    _ComputeOp,
    _FenceOp,
    _FlushOp,
    _PutOp,
    _ReadOp,
    _RecvOp,
    _SendOp,
)
from repro.analyze.schedule import (
    FenceEvent,
    FlushEvent,
    PutEvent,
    ReadEvent,
    RecvEvent,
    Schedule,
    SendEvent,
)


class ExtractionLimit(RuntimeError):
    """Extraction exceeded ``max_events`` (runaway program, not deadlock)."""


class _ZeroCPU:
    def op_time(self, flops: float, nbytes: float) -> float:
        return 0.0


class _ZeroNet:
    send_overhead = 0.0
    recv_overhead = 0.0
    alpha_intra = 0.0
    alpha_inter = 0.0

    def latency(self, nbytes: float, same_node: bool) -> float:
        return 0.0


class _SymbolicMachine:
    """Machine stub pricing every operation at zero virtual seconds."""

    name = "symbolic"
    cpu = _ZeroCPU()
    net = _ZeroNet()
    gpu = None

    def same_node(self, a: int, b: int) -> bool:
        return True


SYMBOLIC_MACHINE = _SymbolicMachine()

_READY, _RECV, _SENDB, _DONE, _FENCEX = 0, 1, 2, 3, 4


def _op_matches(op: _RecvOp, sev: SendEvent) -> bool:
    """The recv op's spec against a recorded send (simulator semantics)."""
    if op.src is not ANY and int(op.src) != sev.rank:
        return False
    if op.tag is ANY:
        return True
    if callable(op.tag):
        return bool(op.tag(sev.tag))
    return sev.tag == op.tag


def extract_schedule(nranks: int, rank_fn: Callable[[RankCtx], Iterable],
                     rendezvous: bool = False,
                     max_events: int = 5_000_000,
                     name: str = "") -> Schedule:
    """Extract the communication schedule of ``rank_fn`` over ``nranks``.

    ``rank_fn`` is exactly what ``Simulator.run`` accepts.  The executor
    drives every runnable rank round-robin; when all ranks are blocked it
    delivers the earliest-sent matching message (eager mode) or completes
    the earliest-blocked matching rendezvous pair.  A state where no rank
    can move does NOT raise — it is recorded on the returned schedule
    (``complete=False`` plus the blocked positions), so the verifier can
    produce a deadlock witness instead of a stack trace.
    """
    n = nranks
    ctxs = [RankCtx(r, n, SYMBOLIC_MACHINE) for r in range(n)]
    gens: list = []
    for r in range(n):
        g = rank_fn(ctxs[r])
        gens.append(g if hasattr(g, "send") else iter(()))

    events: list[list[SendEvent | RecvEvent]] = [[] for _ in range(n)]
    # Undelivered eager messages per destination, in global send order.
    mail: list[list[tuple[SendEvent, object]]] = [[] for _ in range(n)]
    state = [_READY] * n
    pend: list = [None] * n   # (_RecvOp, RecvEvent) or (_SendOp, SendEvent, payload)
    started = [False] * n
    # Per-rank compute segment since the last comm event: [flops, bytes,
    # nops].  Flushed onto the next Send/RecvEvent's pre_* fields, so the
    # schedule carries enough compute structure for static pricing
    # (repro.planner) without timing anything here.
    seg: list[list] = [[0.0, 0.0, 0] for _ in range(n)]
    gstep = 0
    nops = 0
    # One-sided state: per-rank windows and the global issued-but-unapplied
    # write list (gidx, origin, dst, key, payload) — applied at the origin's
    # flush or at the collective fence, mirroring the simulator.
    windows: list[dict] = [{} for _ in range(n)]
    rma_pending: list[tuple] = []

    def apply_rma(writes: list[tuple]) -> None:
        for _gidx, _origin, dst, key, payload in sorted(writes):
            windows[dst][key] = payload

    def run_rank(r: int, value) -> None:
        """Advance rank r until it blocks or finishes (mirrors the
        simulator's ``advance``, minus clocks and faults)."""
        nonlocal gstep, nops
        ctx = ctxs[r]
        gen = gens[r]
        while True:
            nops += 1
            if nops > max_events:
                raise ExtractionLimit(
                    f"schedule extraction exceeded {max_events} operations")
            try:
                if not started[r]:
                    started[r] = True
                    op = next(gen)
                else:
                    op = gen.send(value)
            except StopIteration:
                state[r] = _DONE
                pend[r] = None
                return
            value = None
            if isinstance(op, _SendOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = SendEvent(r, len(events[r]), gstep, op.dst, op.tag,
                               op.nbytes, ctx.phase, ctx.sync, op.category,
                               pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                if rendezvous:
                    state[r] = _SENDB
                    pend[r] = (op, ev, op.payload)
                    return
                mail[op.dst].append((ev, op.payload))
            elif isinstance(op, _RecvOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = RecvEvent(r, len(events[r]), gstep, op.src, op.tag,
                               ctx.phase, ctx.sync, op.category,
                               pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                state[r] = _RECV
                pend[r] = (op, ev)
                return
            elif isinstance(op, _ComputeOp):
                # Zero-cost: compute never appears in the schedule, but
                # its flop/byte annotations accumulate into the segment.
                seg[r][0] += op.flops
                seg[r][1] += op.nbytes
                seg[r][2] += 1
            elif isinstance(op, _PutOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = PutEvent(r, len(events[r]), gstep, op.dst, op.key,
                              op.nbytes, ctx.phase, ctx.sync, op.category,
                              pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                rma_pending.append((ev.gidx, r, op.dst, op.key, op.payload))
            elif isinstance(op, _FlushOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = FlushEvent(r, len(events[r]), gstep, op.dst,
                                ctx.phase, ctx.sync, op.category,
                                pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                mine = [w for w in rma_pending
                        if w[1] == r and (op.dst is None or w[2] == op.dst)]
                for w in mine:
                    rma_pending.remove(w)
                apply_rma(mine)
            elif isinstance(op, _FenceOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = FenceEvent(r, len(events[r]), gstep, op.tag,
                                ctx.phase, ctx.sync, op.category,
                                pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                state[r] = _FENCEX
                pend[r] = (op, ev)
                return
            elif isinstance(op, _ReadOp):
                fl, nb, no = seg[r]
                seg[r] = [0.0, 0.0, 0]
                ev = ReadEvent(r, len(events[r]), gstep, op.key,
                               ctx.phase, ctx.sync, op.category,
                               pre_flops=fl, pre_bytes=nb, pre_ops=no)
                gstep += 1
                events[r].append(ev)
                if op.key not in windows[r]:
                    raise RMAError(
                        f"extraction: rank {r} read window key {op.key!r} "
                        f"before any put to it was applied (missing "
                        f"flush/fence?)")
                value = windows[r][op.key]
            else:
                raise TypeError(
                    f"rank {r} yielded {op!r}; yield "
                    f"ctx.send/recv/compute/put/flush/fence/read")

    while True:
        progressed = False
        for r in range(n):
            if state[r] == _READY:
                run_rank(r, None)
                progressed = True
        if progressed:
            continue
        # Everyone is blocked or done: deliver messages / complete pairs.
        delivered = False
        for r in range(n):
            if state[r] != _RECV:
                continue
            op, ev = pend[r]
            best = None
            for i, (sev, _payload) in enumerate(mail[r]):
                if _op_matches(op, sev):
                    best = i   # FIFO == earliest global send order
                    break
            if best is not None:
                sev, payload = mail[r].pop(best)
                ev.match = (sev.rank, sev.pos)
                ev.matched_tag = sev.tag
                state[r] = _READY
                run_rank(r, (sev.rank, sev.tag, payload))
                delivered = True
                continue
            if rendezvous:
                cands = [(pend[s][1].gidx, s) for s in range(n)
                         if state[s] == _SENDB and pend[s][0].dst == r
                         and _op_matches(op, pend[s][1])]
                if cands:
                    _, s = min(cands)
                    sop, sev, payload = pend[s]
                    ev.match = (sev.rank, sev.pos)
                    ev.matched_tag = sev.tag
                    state[s] = _READY
                    pend[s] = None
                    state[r] = _READY
                    run_rank(r, (sev.rank, sev.tag, payload))
                    run_rank(s, None)
                    delivered = True
        if delivered:
            continue
        # Fence quorum (mirrors the simulator): the collective epoch
        # boundary completes only when every live rank is parked at its
        # fence — then all pending writes are applied and everyone resumes.
        fencing = [r for r in range(n) if state[r] == _FENCEX]
        if fencing and all(state[r] in (_FENCEX, _DONE) for r in range(n)):
            writes = list(rma_pending)
            rma_pending.clear()
            apply_rma(writes)
            for r in fencing:
                state[r] = _READY
                pend[r] = None
            continue
        break

    blocked_recvs = [(r, pend[r][1].pos) for r in range(n)
                     if state[r] == _RECV]
    blocked_sends = [(r, pend[r][1].pos) for r in range(n)
                     if state[r] == _SENDB]
    blocked_fences = [(r, pend[r][1].pos) for r in range(n)
                      if state[r] == _FENCEX]
    return Schedule(nranks=n, events=events,
                    complete=all(s == _DONE for s in state),
                    blocked_recvs=blocked_recvs,
                    blocked_sends=blocked_sends,
                    blocked_fences=blocked_fences,
                    rendezvous=rendezvous, name=name,
                    compute_tails=[(s[0], s[1], s[2]) for s in seg])


# -- solver targets ----------------------------------------------------------


def solver_schedule(solver, algorithm: str = "new3d", nrhs: int = 1,
                    tree_kind: str | None = None,
                    allreduce_impl: str = "sparse",
                    baseline_level_sync: bool = True,
                    rendezvous: bool = False) -> Schedule:
    """Extract the CPU solve schedule of a factored
    :class:`~repro.core.solver.SpTRSVSolver` — same algorithm selection as
    ``SpTRSVSolver.solve``, zero right-hand side, no cost model."""
    from repro.core.ca_trsm import ca_trsm_rank_fn
    from repro.core.sptrsv3d_baseline import baseline3d_rank_fn
    from repro.core.sptrsv3d_new import new3d_rank_fn

    b_perm = np.zeros((solver.n, nrhs))
    if algorithm == "2d":
        if solver.grid.pz != 1:
            raise ValueError("algorithm='2d' requires pz == 1")
        impl = "new3d"
    elif algorithm == "sparse_allreduce_v2":
        impl = "new3d"
        allreduce_impl = "sparse_v2"
    elif algorithm == "onesided_put":
        impl = "new3d"
        allreduce_impl = "onesided"
    elif algorithm in ("new3d", "baseline3d", "ca_trsm"):
        impl = algorithm
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    if impl == "ca_trsm":
        rank_fn = ca_trsm_rank_fn(solver._ca_trsm_setup(), b_perm, nrhs)
    elif impl == "new3d":
        setup = solver._new3d_setup(tree_kind or "auto")
        rank_fn = new3d_rank_fn(setup, b_perm, nrhs,
                                allreduce_impl=allreduce_impl)
    else:
        setup = solver._baseline_setup(tree_kind or "flat")
        rank_fn = baseline3d_rank_fn(setup, b_perm, nrhs,
                                     level_sync=baseline_level_sync)
    grid = solver.grid
    label = (f"{algorithm}[{allreduce_impl}]" if impl == "new3d"
             else algorithm)
    return extract_schedule(
        grid.nranks, rank_fn, rendezvous=rendezvous,
        name=f"{label} px={grid.px} py={grid.py} pz={grid.pz} nrhs={nrhs}")


def allreduce_schedule(solver, nrhs: int = 1, impl: str = "sparse",
                       rendezvous: bool = False) -> Schedule:
    """Extract the standalone inter-grid allreduce schedule (Algorithm 2):
    every rank contributes zero-filled subvectors for its diagonally-owned
    supernodes, exactly as the solve's Z phase does."""
    from repro.core.sparse_allreduce import (
        naive_allreduce,
        onesided_allreduce,
        sparse_allreduce,
        sparse_allreduce_v2,
        structural_nonzeros,
    )

    setup = solver._new3d_setup("auto")
    grid, part = solver.grid, setup.part
    fn = {"sparse": sparse_allreduce, "naive": naive_allreduce,
          "sparse_v2": sparse_allreduce_v2,
          "onesided": onesided_allreduce}[impl]
    nz_sets = (structural_nonzeros(setup.lu, setup.grid_sns,
                                   setup.sn_owner_grid)
               if impl == "sparse_v2" else None)

    def rank_fn(ctx: RankCtx):
        _, _, z = grid.coords_of(ctx.rank)
        cols = setup.plans_L[z].plan_of(ctx.rank).solve_cols
        values = {K: np.zeros((part.size(K), nrhs)) for K in cols}
        ctx.set_phase("z")
        if impl == "sparse_v2":
            yield from fn(ctx, grid, setup.layout, part, values, nz_sets,
                          category="z")
        else:
            yield from fn(ctx, grid, setup.layout, part, values,
                          category="z")

    return extract_schedule(
        grid.nranks, rank_fn, rendezvous=rendezvous,
        name=f"{impl}_allreduce px={grid.px} py={grid.py} pz={grid.pz}")


def _plan_bcast_schedule(plan2d, nrhs: int, u_solve: bool,
                         name: str) -> Schedule:
    """Derive the one-sided GPU dataflow schedule of one 2D solve statically.

    The GPU engine (:mod:`repro.gpu.dataflow`) is event-driven, not a
    generator program, but its communication is fully determined by the
    plan: each solved column's value flows down its broadcast tree, parent
    to children, and nothing else crosses GPUs (``Py == 1``).  Columns are
    linearized in topological order (ascending for L, descending for U —
    the same order the single-kernel admission uses) and each tree is
    walked root-down, so every recorded order is consistent with the true
    dataflow dependencies.  Receives carry their statically-known source
    (the tree parent) — one-sided puts have no wildcard to race on.
    """
    grid = plan2d.grid
    if grid.py != 1:
        raise ValueError("GPU 2D solves require Py == 1 (see repro.gpu)")
    ranks = grid.grid_ranks(plan2d.z)
    size = plan2d.sn_size
    trees: dict[int, object] = {}
    for r in ranks:
        for J, t in plan2d.plan_of(r).bcast_trees.items():
            trees.setdefault(J, t)

    nranks = grid.nranks
    events: list[list[SendEvent | RecvEvent]] = [[] for _ in range(nranks)]
    gstep = 0
    for J in sorted(trees, reverse=u_solve):
        tree = trees[J]
        nbytes = int(size(J)) * nrhs * 8
        frontier = [tree.root]
        while frontier:
            m = frontier.pop(0)
            if m != tree.root:
                parent = tree.parent(m)
                # The parent's send to m was recorded when m's parent was
                # visited; it is the last send to m in the parent's list.
                spos = next(e.pos for e in reversed(events[parent])
                            if e.kind == "send" and e.dst == m
                            and e.tag == ("gbc", J))
                ev = RecvEvent(m, len(events[m]), gstep, parent, ("gbc", J),
                               phase="u" if u_solve else "l", category="xy",
                               match=(parent, spos),
                               matched_tag=("gbc", J))
                gstep += 1
                events[m].append(ev)
            for c in tree.children(m):
                sev = SendEvent(m, len(events[m]), gstep, c, ("gbc", J),
                                nbytes, phase="u" if u_solve else "l",
                                category="xy")
                gstep += 1
                events[m].append(sev)
                frontier.append(c)
    return Schedule(nranks=nranks, events=events, complete=True, name=name)


def gpu_schedules(solver, nrhs: int = 1) -> dict[str, Schedule]:
    """Schedules of the three GPU solve phases (Algorithms 4-5 + 2).

    Phases 1 and 3 (per-grid one-sided broadcasts) are derived statically
    from the binary-tree plans; phase 2 (the CPU-side sparse allreduce) is
    extracted by running it under the symbolic harness — the same split
    :func:`repro.gpu.solver3d.solve_new3d_gpu` executes.
    """
    from repro.core.sparse_allreduce import sparse_allreduce

    setup = solver._new3d_setup("binary")
    grid, part = solver.grid, setup.part
    if grid.grid_size > 1 and grid.py != 1:
        raise ValueError("multi-GPU grids require Py == 1 (see repro.gpu)")
    out: dict[str, Schedule] = {}
    for z in range(grid.pz):
        out[f"gpu-l-grid{z}"] = _plan_bcast_schedule(
            setup.plans_L[z], nrhs, u_solve=False,
            name=f"gpu-l grid {z} of px={grid.px} pz={grid.pz}")

    def rank_fn(ctx: RankCtx):
        _, _, z = grid.coords_of(ctx.rank)
        cols = setup.plans_L[z].plan_of(ctx.rank).solve_cols
        values = {K: np.zeros((part.size(K), nrhs)) for K in cols}
        ctx.set_phase("z")
        yield from sparse_allreduce(ctx, grid, setup.layout, part, values,
                                    category="z")

    out["gpu-allreduce"] = extract_schedule(
        grid.nranks, rank_fn,
        name=f"gpu-allreduce px={grid.px} py={grid.py} pz={grid.pz}")
    for z in range(grid.pz):
        out[f"gpu-u-grid{z}"] = _plan_bcast_schedule(
            setup.plans_U[z], nrhs, u_solve=True,
            name=f"gpu-u grid {z} of px={grid.px} pz={grid.pz}")
    return out
