"""Static analysis of communication schedules and runtime code.

Four layers (see ``docs/ANALYSIS.md``):

- :mod:`repro.analyze.extract` — run rank programs under a zero-cost
  symbolic harness and record per-rank ordered event lists
  (:class:`~repro.analyze.schedule.Schedule`), one-sided operations
  included.
- :mod:`repro.analyze.verify` — check an extracted schedule statically:
  wait-for-cycle deadlock detection with a minimal cycle witness,
  unmatched/over-matched endpoints, a message-race detector over
  wildcard receives, and sync-point counting without the cost model.
- :mod:`repro.analyze.rma` — epoch-based certification of one-sided
  traffic: conflicting-access races with minimal two-op witnesses,
  unapplied-put/fence-mismatch issues, and static window-buffer
  resource bounds that match the runtime's measured peaks exactly.
- :mod:`repro.analyze.lint` — AST lint over the runtime source
  (rules ``RPR001``–``RPR008``, suppressible with
  ``# repro: allow[RULE]``).

Where :mod:`repro.check` tests executions *dynamically* (one seeded run
at a time), this package certifies the communication *schedule itself*:
a verified schedule is deadlock-free and match-deterministic under any
causal reordering of message arrivals, not just the one the simulator
happened to produce.
"""

from repro.analyze.extract import (
    ExtractionLimit,
    allreduce_schedule,
    extract_schedule,
    gpu_schedules,
    solver_schedule,
)
from repro.analyze.lint import Finding, run_lint
from repro.analyze.rma import (
    RMAIssue,
    RMARace,
    RMAReport,
    RMAResources,
    delete_op,
    verify_rma,
)
from repro.analyze.schedule import (
    FenceEvent,
    FlushEvent,
    PutEvent,
    ReadEvent,
    RecvEvent,
    Schedule,
    SendEvent,
)
from repro.analyze.verify import (
    DeadlockWitness,
    EndpointIssue,
    RaceWitness,
    VerifyReport,
    expected_syncs,
    verify_schedule,
)

__all__ = [
    "DeadlockWitness",
    "EndpointIssue",
    "ExtractionLimit",
    "FenceEvent",
    "Finding",
    "FlushEvent",
    "PutEvent",
    "RMAIssue",
    "RMARace",
    "RMAReport",
    "RMAResources",
    "RaceWitness",
    "ReadEvent",
    "RecvEvent",
    "Schedule",
    "SendEvent",
    "VerifyReport",
    "allreduce_schedule",
    "delete_op",
    "expected_syncs",
    "extract_schedule",
    "gpu_schedules",
    "run_lint",
    "solver_schedule",
    "verify_rma",
    "verify_schedule",
]
