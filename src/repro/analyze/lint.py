"""Custom AST lint over the runtime source (``repro lint``).

Eight rules, each catching a pattern that has already bitten this codebase
(see ``docs/ANALYSIS.md`` for the catalog with examples):

- **RPR001** ``untagged-wildcard-recv`` — ``recv(src=ANY)`` with no tag
  filter.  A bare double wildcard matches *anything*, so overlapping
  protocol phases silently steal each other's messages; the kernels scope
  every ANY-source receive with a ``tag_salt`` predicate for exactly this
  reason.
- **RPR002** ``unlabeled-collective`` — ``bcast``/``reduce``/
  ``allreduce``/``barrier`` called without ``sync=``.  Unlabeled
  collectives are invisible to the sync-point accounting that pins the
  paper's 1 vs ``ceil(log2 Pz)`` claim.
- **RPR003** ``noncanonical-accumulation`` — raw ``@`` / ``.dot`` in the
  RHS-panel kernel modules, bypassing ``util.matmul_columns``.  Wide
  GEMMs tile their summation differently than column GEMMs, which breaks
  the per-column bit-reproducibility contract the serving tier batches
  under.
- **RPR004** ``wallclock-or-unseeded-rng`` — ``time.time``-family calls,
  ``random``/unseeded ``numpy.random`` draws.  Everything in the runtime
  must be deterministic and virtual-clocked; wall clocks and ambient RNGs
  make replays diverge.
- **RPR005** ``mutable-default-arg`` — list/dict/set literals (or
  constructor calls) as parameter defaults; the shared-instance trap.
- **RPR006** ``hardcoded-scenario-seed`` — a literal constant seed fed to
  workload / fault / RNG construction inside a ``scenarios/`` module.
  The scenario subsystem's replay contract is that the *only* randomness
  root is ``Scenario.seed``; a literal anywhere downstream silently forks
  the replay coordinate, so two runs that claim the same scenario+seed
  can diverge.  (``Scenario(seed=...)`` itself — the declared spec — is
  exactly where the literal belongs and is not flagged.)
- **RPR007** ``direct-backend-construction`` — building a solver backend
  by hand (``*_rank_fn`` / ``build_*_setup`` calls) outside the runtime
  packages that own them.  Application code that constructs backends
  directly bypasses ``SpTRSVSolver``'s setup caches, the planner's
  algorithm resolution, and the resilience tiering — three layers of
  behavior the solve contract depends on.
- **RPR008** ``unfenced-put`` — a ``ctx.put(...)`` with no later
  ``ctx.flush``/``ctx.fence`` lexically in the same function.  A put is
  only applied to the target window at its origin's next flush or fence;
  a rank program that ends an epochless put leaks an in-flight write the
  runtime never delivers (``sim.rma-conservation``) and the static
  certifier rejects (``unapplied-put``).

Suppression: a ``# repro: allow[RPR003]`` comment on the flagged line or
the line directly above silences that rule there (comma-separate several
rules; ``allow[*]`` silences all).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

#: rule id -> (slug, fix hint)
RULES: dict[str, tuple[str, str]] = {
    "RPR001": (
        "untagged-wildcard-recv",
        "pass an explicit tag or a tag predicate (e.g. the kernel's "
        "tag_salt closure) so overlapping protocol phases cannot steal "
        "each other's messages",
    ),
    "RPR002": (
        "unlabeled-collective",
        "pass sync=<label> so profiled runs attribute the collective to a "
        "named synchronization point (the paper's sync-count accounting)",
    ),
    "RPR003": (
        "noncanonical-accumulation",
        "use repro.util.matmul_columns (or buffer contributions and sum "
        "them in canonical order) so multi-RHS columns stay bit-identical "
        "to single-RHS solves",
    ),
    "RPR004": (
        "wallclock-or-unseeded-rng",
        "deterministic paths must not read wall clocks or ambient RNGs; "
        "use the simulator's virtual clock and thread a seeded "
        "numpy.random.Generator instead",
    ),
    "RPR005": (
        "mutable-default-arg",
        "default to None and initialize inside the function body; a "
        "mutable default is one shared instance across all calls",
    ),
    "RPR006": (
        "hardcoded-scenario-seed",
        "derive every seed in a scenario module from the Scenario's "
        "declared seed (e.g. np.random.default_rng([scenario.seed, "
        "phase_index])); a literal here forks the replay coordinate so "
        "scenario+seed no longer pins the run",
    ),
    "RPR007": (
        "direct-backend-construction",
        "go through SpTRSVSolver.solve(algorithm=...) (or the planner's "
        "'auto') instead of constructing backend rank programs by hand; "
        "direct construction skips the setup caches, the planner, and "
        "the resilience tiers",
    ),
    "RPR008": (
        "unfenced-put",
        "issue ctx.flush(dst) or ctx.fence() after the last ctx.put in "
        "the same function; an unfenced put is never applied to the "
        "target window (the static certifier reports it as "
        "unapplied-put and the runtime leaks it as an in-flight write)",
    ),
}

#: Modules under the RPR003 contract: RHS panels flow through these, so any
#: matmul here must preserve per-column bit-reproducibility.
KERNEL_MODULE_SUFFIXES = (
    "core/sptrsv2d.py",
    "core/sparse_allreduce.py",
    "core/ca_trsm.py",
    "core/sptrsv3d_new.py",
    "core/sptrsv3d_baseline.py",
    "gpu/dataflow.py",
    "gpu/solver3d.py",
    "numfact/lu.py",
)

#: Call targets under the RPR006 contract: inside ``scenarios/`` modules,
#: these constructors/draws must receive seeds derived from
#: ``Scenario.seed``, never literal constants.  ``Scenario(...)`` itself is
#: deliberately absent — the declared spec is where the literal lives.
SEEDED_SCENARIO_CALLS = {
    "WorkloadSpec",
    "generate_workload",
    "FaultPlan",
    "uniform",
    "make_rhs",
    "default_rng",
}

#: Backend constructors under the RPR007 contract...
BACKEND_CONSTRUCTORS = {
    "new3d_rank_fn",
    "baseline3d_rank_fn",
    "ca_trsm_rank_fn",
    "build_new3d_setup",
    "build_baseline3d_setup",
    "build_ca_trsm_setup",
}

#: ...and the path fragments allowed to call them: the runtime packages
#: that own backend construction (solver facade, kernels, static
#: analysis, replay compiler, GPU engine, planner) plus the test suites
#: and benchmarks that exercise them directly.
BACKEND_OWNER_FRAGMENTS = (
    "repro/core/",
    "repro/analyze/",
    "repro/replay/",
    "repro/gpu/",
    "repro/planner/",
    "tests/",
    "benchmarks/",
)

_COLLECTIVES = {"bcast", "reduce", "allreduce", "barrier"}
#: Attribute bases whose methods merely share a collective's name
#: (functools.reduce, numpy ufunc .reduce, ...).
_NON_COLLECTIVE_BASES = {"np", "numpy", "functools", "operator"}

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint hit: location, rule, what, and how to fix it."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def slug(self) -> str:
        return RULES[self.rule][0]

    @property
    def hint(self) -> str:
        return RULES[self.rule][1]

    def describe(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.slug}] {self.message}\n    fix: {self.hint}")


def _allowed_rules(line_text: str) -> set[str]:
    out: set[str] = set()
    for m in _ALLOW_RE.finditer(line_text):
        out.update(p.strip() for p in m.group(1).split(","))
    return out


def _is_suppressed(finding: Finding, lines: list[str]) -> bool:
    for ln in (finding.line, finding.line - 1):
        if 1 <= ln <= len(lines):
            allowed = _allowed_rules(lines[ln - 1])
            if "*" in allowed or finding.rule in allowed:
                return True
    return False


def _name_of(node: ast.AST) -> str | None:
    """Trailing identifier of a Name/Attribute chain (``a.b.c`` -> "c")."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_name(node: ast.AST) -> str | None:
    """Leading identifier of a Name/Attribute chain (``a.b.c`` -> "a")."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_any(node: ast.AST | None) -> bool:
    return node is not None and _name_of(node) == "ANY"


def _literal_seed(node: ast.AST | None) -> bool:
    """True when ``node`` is a compile-time numeric seed (incl. -N and
    list/tuple of such, the ``default_rng([a, b])`` spawn-key form)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _literal_seed(node.operand)
    if isinstance(node, (ast.List, ast.Tuple)):
        return bool(node.elts) and all(_literal_seed(e) for e in node.elts)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, kernel_module: bool,
                 scenario_module: bool = False,
                 backend_owner: bool = True):
        self.path = path
        self.kernel_module = kernel_module
        self.scenario_module = scenario_module
        self.backend_owner = backend_owner
        self.findings: list[Finding] = []

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno, node.col_offset,
                                     rule, message))

    # -- RPR001 / RPR002 / RPR004: call-site rules -------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _name_of(node.func)
        kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}

        if name == "recv":
            src = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "src"), None)
            tag = (node.args[1] if len(node.args) > 1 else next(
                (kw.value for kw in node.keywords if kw.arg == "tag"), None))
            src_wild = src is None or _is_any(src)
            tag_wild = tag is None or _is_any(tag)
            if src_wild and tag_wild:
                self._add(node, "RPR001",
                          "wildcard recv without a tag filter: matches any "
                          "message from any rank")

        if (name in _COLLECTIVES and "sync" not in kwargs
                and not (isinstance(node.func, ast.Attribute)
                         and _base_name(node.func) in _NON_COLLECTIVE_BASES)):
            self._add(node, "RPR002",
                      f"collective {name}() called without a sync= label")

        self._check_rng(node, name)
        if self.scenario_module and name in SEEDED_SCENARIO_CALLS:
            seed = next((kw.value for kw in node.keywords
                         if kw.arg == "seed"), None)
            if seed is None and name == "default_rng" and node.args:
                seed = node.args[0]
            if _literal_seed(seed):
                self._add(seed, "RPR006",
                          f"literal seed passed to {name}() in a scenario "
                          "module; only Scenario.seed may root randomness")
        if self.kernel_module and name == "dot":
            self._add(node, "RPR003",
                      ".dot() in a kernel module bypasses the canonical "
                      "per-column accumulation")
        if not self.backend_owner and name in BACKEND_CONSTRUCTORS:
            self._add(node, "RPR007",
                      f"direct backend construction {name}() outside the "
                      "runtime packages that own it")
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: str | None) -> None:
        func = node.func
        base = _base_name(func) if isinstance(func, ast.Attribute) else None
        if base == "time" and name in {"time", "time_ns", "perf_counter",
                                       "perf_counter_ns", "monotonic",
                                       "monotonic_ns"}:
            self._add(node, "RPR004", f"wall-clock read time.{name}()")
        elif base == "random":
            self._add(node, "RPR004",
                      f"ambient RNG draw random.{name}()")
        elif name in {"now", "utcnow"} and base in {"datetime", "dt"}:
            self._add(node, "RPR004", f"wall-clock read {base}.{name}()")
        elif (base in {"np", "numpy"} and isinstance(func, ast.Attribute)
              and isinstance(func.value, ast.Attribute)
              and func.value.attr == "random"):
            if name == "default_rng":
                if not node.args and not node.keywords:
                    self._add(node, "RPR004",
                              "unseeded numpy default_rng() draws from "
                              "OS entropy")
            else:
                self._add(node, "RPR004",
                          f"ambient numpy RNG draw np.random.{name}()")

    # -- RPR003: raw matmul in kernel modules ------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.kernel_module and isinstance(node.op, ast.MatMult):
            self._add(node, "RPR003",
                      "raw @ matmul in a kernel module bypasses the "
                      "canonical per-column accumulation")
        self.generic_visit(node)

    # -- RPR005: mutable defaults ------------------------------------------

    # -- RPR008: puts with no later flush/fence in the same function -------

    @staticmethod
    def _walk_local(node) -> list[ast.AST]:
        """All descendants of ``node``, not descending into nested defs."""
        out: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            out.append(child)
            stack.extend(ast.iter_child_nodes(child))
        return out

    def _check_unfenced_puts(self, node) -> None:
        puts: list[ast.Call] = []
        closers: list[tuple[int, int]] = []
        for child in self._walk_local(node):
            if not isinstance(child, ast.Call):
                continue
            if _base_name(child.func) != "ctx":
                continue
            name = _name_of(child.func)
            if name == "put":
                puts.append(child)
            elif name in ("flush", "fence"):
                closers.append((child.lineno, child.col_offset))
        for p in puts:
            if not any(c > (p.lineno, p.col_offset) for c in closers):
                self._add(p, "RPR008",
                          f"ctx.put() in {node.name}() with no later "
                          f"ctx.flush/ctx.fence in the same function")

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for d in defaults:
            mutable = isinstance(d, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                     ast.DictComp, ast.SetComp))
            if (isinstance(d, ast.Call)
                    and _name_of(d.func) in {"list", "dict", "set"}):
                mutable = True
            if mutable:
                self._add(d, "RPR005",
                          f"mutable default argument in {node.name}()")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_unfenced_puts(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_unfenced_puts(node)
        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    norm = path.replace(os.sep, "/")
    kernel = any(norm.endswith(sfx) for sfx in KERNEL_MODULE_SUFFIXES)
    scenario = "scenarios/" in norm or norm.endswith("scenarios.py")
    owner = any(frag in norm for frag in BACKEND_OWNER_FRAGMENTS)
    tree = ast.parse(source, filename=path)
    v = _Visitor(path, kernel, scenario, backend_owner=owner)
    v.visit(tree)
    lines = source.splitlines()
    return sorted((f for f in v.findings if not _is_suppressed(f, lines)),
                  key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def run_lint(paths: list[str]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs.sort()
                files += [os.path.join(root, n) for n in sorted(names)
                          if n.endswith(".py")]
        elif p.endswith(".py"):
            files.append(p)
        else:
            raise ValueError(f"not a Python file or directory: {p!r}")
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    return findings
