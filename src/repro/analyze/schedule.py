"""Static model of a communication schedule.

A :class:`Schedule` is the per-rank ordered list of communication events a
program performed (or would perform): each rank's list is its program
order, and matched receives point back at the send that satisfied them.
Payloads are never stored — only ``(tag, nbytes)`` summaries — so a
schedule is a pure communication skeleton the verifier can reason about
without the cost model or the numerics.

Receive *specs* keep the runtime's matching semantics
(:meth:`repro.comm.simulator.RankCtx.recv`): ``src`` is a rank or ``ANY``,
``tag`` is ``ANY``, an exact value, or a predicate callable.  Specs with a
predicate tag are grouped by callable identity — each kernel instance's
``tag_salt`` closure is its own group, which is exactly the scoping the
salt exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.comm.simulator import ANY


@dataclass
class SendEvent:
    """One send: rank ``rank`` sent ``nbytes`` to ``dst`` under ``tag``."""

    rank: int
    pos: int           # index in the rank's event list (program order)
    gidx: int          # global extraction-order index (a valid interleaving)
    dst: int
    tag: Hashable
    nbytes: int
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    # Compute segment preceding this event in the rank's program order:
    # summed flops / memory traffic / op count of every compute op issued
    # since the previous comm event (see repro.analyze.extract).  The
    # planner's static cost model prices these without a simulation.
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "send"

    def describe(self) -> str:
        return (f"rank {self.rank}[{self.pos}]: send(dst={self.dst}, "
                f"tag={self.tag!r})")


@dataclass
class RecvEvent:
    """One receive: the posted spec plus (when matched) its matching send."""

    rank: int
    pos: int
    gidx: int
    src_spec: Any      # a rank index or ANY
    tag_spec: Any      # ANY, an exact value, or a predicate callable
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    match: tuple[int, int] | None = None   # (src rank, send pos) once matched
    matched_tag: Hashable | None = None
    # Compute segment preceding this event (see SendEvent.pre_flops).
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "recv"

    @property
    def wildcard(self) -> bool:
        """True when the source is not statically known."""
        return self.src_spec is ANY

    def describe(self) -> str:
        return f"rank {self.rank}[{self.pos}]: recv({describe_spec(self)})"


@dataclass
class PutEvent:
    """One one-sided write: rank ``rank`` put ``nbytes`` into window
    ``dst`` under ``key``.  Applied by the origin's next flush/fence."""

    rank: int
    pos: int
    gidx: int
    dst: int
    key: Hashable
    nbytes: int
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "put"

    def describe(self) -> str:
        return (f"rank {self.rank}[{self.pos}]: put(dst={self.dst}, "
                f"key={self.key!r})")


@dataclass
class FlushEvent:
    """Origin-side completion of outstanding puts to ``dst`` (all targets
    when ``None``)."""

    rank: int
    pos: int
    gidx: int
    dst: int | None
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "flush"

    def describe(self) -> str:
        target = "all" if self.dst is None else str(self.dst)
        return f"rank {self.rank}[{self.pos}]: flush(dst={target})"


@dataclass
class FenceEvent:
    """Collective epoch boundary: completes every rank's outstanding puts."""

    rank: int
    pos: int
    gidx: int
    tag: Hashable = None
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "fence"

    def describe(self) -> str:
        return f"rank {self.rank}[{self.pos}]: fence(tag={self.tag!r})"


@dataclass
class ReadEvent:
    """Local zero-cost read of the rank's own window under ``key``."""

    rank: int
    pos: int
    gidx: int
    key: Hashable
    phase: str = ""
    sync: str = ""
    category: str = "comm"
    pre_flops: float = 0.0
    pre_bytes: float = 0.0
    pre_ops: int = 0

    kind = "read"

    def describe(self) -> str:
        return f"rank {self.rank}[{self.pos}]: read(key={self.key!r})"


#: Any event an extracted schedule may carry.
Event = (SendEvent | RecvEvent | PutEvent | FlushEvent | FenceEvent
         | ReadEvent)


def tag_spec_key(tag_spec: Any) -> tuple:
    """Hashable grouping key for a recv tag spec (predicates by identity)."""
    if tag_spec is ANY:
        return ("any",)
    if callable(tag_spec):
        return ("pred", id(tag_spec))
    return ("val", tag_spec)


def spec_key(ev: RecvEvent) -> tuple:
    """Grouping key for a recv spec: same key == same (src, tag) filter."""
    src = ("any",) if ev.src_spec is ANY else ("src", int(ev.src_spec))
    return (src, tag_spec_key(ev.tag_spec))


def describe_spec(ev: RecvEvent) -> str:
    src = "ANY" if ev.src_spec is ANY else str(ev.src_spec)
    if ev.tag_spec is ANY:
        tag = "ANY"
    elif callable(ev.tag_spec):
        tag = f"<predicate {getattr(ev.tag_spec, '__name__', 'tag')}>"
    else:
        tag = repr(ev.tag_spec)
    return f"src={src}, tag={tag}"


def spec_matches(recv: RecvEvent, send: SendEvent) -> bool:
    """Would ``send`` satisfy ``recv``'s spec?  Mirrors the simulator's
    matching rule exactly (source, then ANY/predicate/exact tag)."""
    if recv.src_spec is not ANY and int(recv.src_spec) != send.rank:
        return False
    t = recv.tag_spec
    if t is ANY:
        return True
    if callable(t):
        return bool(t(send.tag))
    return send.tag == t


@dataclass
class Schedule:
    """Per-rank ordered event lists plus extraction outcome flags.

    ``complete`` is ``False`` when extraction stalled (some rank blocked
    forever); the positions of the stuck operations are then listed in
    ``blocked_recvs`` / ``blocked_sends`` as ``(rank, pos)`` pairs (the
    events themselves are still present in ``events``, unmatched).
    ``rendezvous`` records whether sends were modeled as synchronous
    (blocking until a matching receive is posted) rather than the
    runtime's eager buffered default.
    """

    nranks: int
    events: list[list[Event]]
    complete: bool = True
    blocked_recvs: list[tuple[int, int]] = field(default_factory=list)
    blocked_sends: list[tuple[int, int]] = field(default_factory=list)
    # Fences parked when extraction stalled (some live rank never reached
    # the epoch boundary), as (rank, pos) pairs like the other blocked ops.
    blocked_fences: list[tuple[int, int]] = field(default_factory=list)
    rendezvous: bool = False
    name: str = ""
    # Per-rank (flops, bytes, nops) of the compute tail after the last
    # comm event (empty when the extractor did not record segments).
    compute_tails: list[tuple[float, float, int]] = field(
        default_factory=list)

    def sends(self) -> list[SendEvent]:
        return [e for evs in self.events for e in evs if e.kind == "send"]

    def recvs(self) -> list[RecvEvent]:
        return [e for evs in self.events for e in evs if e.kind == "recv"]

    def puts(self) -> list[PutEvent]:
        return [e for evs in self.events for e in evs if e.kind == "put"]

    def flushes(self) -> list[FlushEvent]:
        return [e for evs in self.events for e in evs if e.kind == "flush"]

    def fences(self) -> list[FenceEvent]:
        return [e for evs in self.events for e in evs if e.kind == "fence"]

    def reads(self) -> list[ReadEvent]:
        return [e for evs in self.events for e in evs if e.kind == "read"]

    @property
    def nevents(self) -> int:
        return sum(len(evs) for evs in self.events)

    def event_at(self, rank: int, pos: int) -> Event:
        return self.events[rank][pos]

    def sync_labels(self) -> list[str]:
        """Distinct non-empty sync labels that carried traffic, in first-use
        order.  Mirrors ``MetricsRegistry.nsyncs`` (a sync point only counts
        when at least one message — two-sided or one-sided — was sent under
        its label) — but computed from the schedule alone, with no
        simulation."""
        seen: dict[str, None] = {}
        for e in sorted(self.sends() + self.puts(), key=lambda s: s.gidx):
            if e.sync:
                seen.setdefault(e.sync, None)
        return list(seen)

    @property
    def nsyncs(self) -> int:
        return len(self.sync_labels())

    def summary(self) -> str:
        status = "complete" if self.complete else (
            f"STALLED ({len(self.blocked_recvs)} blocked recv(s), "
            f"{len(self.blocked_sends)} blocked send(s), "
            f"{len(self.blocked_fences)} blocked fence(s))")
        name = f"{self.name}: " if self.name else ""
        puts = self.puts()
        rma = (f"{len(puts)} puts, {len(self.fences())} fences, "
               if puts else "")
        return (f"{name}{self.nranks} ranks, {len(self.sends())} sends, "
                f"{len(self.recvs())} recvs, {rma}{self.nsyncs} sync "
                f"point(s) {self.sync_labels()!r}, {status}")
