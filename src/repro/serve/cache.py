"""LRU factorization cache: repeat matrices skip the whole pipeline.

The expensive part of serving SpTRSV traffic is not the solve — it is the
preprocessing pipeline (nested dissection → symbolic → numeric LU → 3D
layout) that :class:`~repro.core.solver.SpTRSVSolver` runs in its
constructor.  Production triangular-solve traffic is dominated by repeat
matrices (the same preconditioner applied to stream after stream of right
hand sides), so the serving tier keeps finished solvers in an LRU cache
keyed by *content*: the matrix's structural + numeric
:class:`~repro.matrices.fingerprint.MatrixFingerprint` combined with every
configuration knob that changes the factorization or its distribution
(grid shape, machine, supernode cap, symbolic mode, ordering).

Capacity is accounted in bytes (:meth:`SpTRSVSolver.storage_nbytes`), the
unit an operator actually provisions; hit/miss/eviction counters feed the
SLO report's cache section.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.solver import SpTRSVSolver


@dataclass(frozen=True)
class CacheKey:
    """Everything that must match for a cached factorization to be reused."""

    fingerprint: str      # MatrixFingerprint.hexdigest
    px: int
    py: int
    pz: int
    machine: str
    max_supernode: int
    symbolic_mode: str
    ordering: str


@dataclass
class CacheStats:
    """Counters over a cache's lifetime (reported in the SLO report)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    resident_bytes: int = 0
    resident_entries: int = 0
    peak_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    solver: SpTRSVSolver
    nbytes: int
    hits: int = 0
    setup_time: float = 0.0   # virtual seconds the miss was charged


@dataclass
class FactorizationCache:
    """Byte-bounded LRU over finished :class:`SpTRSVSolver` pipelines.

    ``max_bytes``/``max_entries`` of ``None`` mean unbounded.  A single
    entry larger than ``max_bytes`` is still admitted (the alternative —
    refusing to cache the only matrix in play — just refactors it per
    batch); everything else is evicted to make room, oldest use first.
    """

    max_bytes: int | None = None
    max_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def __len__(self) -> int:
        return len(self._entries)

    def warm_fingerprints(self) -> set:
        """Fingerprints with a resident factorization.

        The fleet's scale-down path consults this to avoid draining the
        only warm replica of a hot matrix (cache-locality-aware victim
        choice); reads do not touch hit/miss counters or LRU age.
        """
        return {k.fingerprint for k in self._entries}

    def get(self, key: CacheKey) -> SpTRSVSolver | None:
        """Look up ``key``, counting a hit or miss and refreshing LRU age."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        entry.hits += 1
        self._entries.move_to_end(key)
        return entry.solver

    def put(self, key: CacheKey, solver: SpTRSVSolver,
            setup_time: float = 0.0) -> list[CacheKey]:
        """Insert a freshly built solver; returns the keys evicted for room."""
        nbytes = solver.storage_nbytes()
        if key in self._entries:  # refresh (rebuilt under racing misses)
            self.stats.resident_bytes -= self._entries.pop(key).nbytes
        self._entries[key] = CacheEntry(solver=solver, nbytes=nbytes,
                                        setup_time=setup_time)
        self.stats.resident_bytes += nbytes
        self.stats.peak_bytes = max(self.stats.peak_bytes,
                                    self.stats.resident_bytes)
        evicted = self._evict()
        self.stats.resident_entries = len(self._entries)
        return evicted

    def _evict(self) -> list[CacheKey]:
        evicted: list[CacheKey] = []
        while len(self._entries) > 1 and (
                (self.max_entries is not None
                 and len(self._entries) > self.max_entries)
                or (self.max_bytes is not None
                    and self.stats.resident_bytes > self.max_bytes)):
            key, entry = self._entries.popitem(last=False)
            self.stats.resident_bytes -= entry.nbytes
            self.stats.evictions += 1
            evicted.append(key)
        return evicted

    def get_or_build(self, key: CacheKey,
                     build: Callable[[], SpTRSVSolver],
                     ) -> tuple[SpTRSVSolver, float, bool]:
        """Return ``(solver, setup_time, was_hit)``.

        On a hit the setup time is 0.0 — that is the whole point of the
        cache; on a miss ``build()`` runs and the solver's
        :meth:`~SpTRSVSolver.factor_time_estimate` is charged as the
        batch's setup cost.
        """
        solver = self.get(key)
        if solver is not None:
            return solver, 0.0, True
        solver = build()
        setup = solver.factor_time_estimate()
        self.put(key, solver, setup_time=setup)
        return solver, setup, False
