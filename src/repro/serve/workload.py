"""Seeded solve workloads: Poisson arrivals over a matrix mix.

A :class:`Workload` is a list of :class:`Request` records — each one
single-RHS solve against a suite matrix, with a virtual arrival time, an
absolute completion deadline, and a priority.  Workloads come from two
places and are interchangeable between them:

- :func:`generate_workload` draws one deterministically from a
  :class:`WorkloadSpec` (Poisson arrivals at ``rate`` req/s, weighted
  matrix mix, per-request deadline jitter) — same seed, same workload,
  bit for bit;
- :meth:`Workload.load` replays one from a JSON trace previously written
  by :meth:`Workload.save` (the ``repro serve --save-trace`` /
  ``--replay`` round trip the serve-smoke CI job diffs).

Request RHS vectors are not stored; they are regenerated on demand from
``rhs_seed`` via :func:`repro.matrices.make_rhs`, which keeps traces tiny
and replays exact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

TRACE_VERSION = 1


@dataclass(frozen=True)
class Request:
    """One queued solve: a single right-hand side against a suite matrix."""

    id: int
    arrival: float        # virtual seconds since workload start
    matrix: str           # suite matrix name (repro.matrices.PAPER_MATRICES)
    scale: str            # suite scale: tiny / small / medium
    rhs_seed: int         # seed for make_rhs(n, 1, "random", seed=rhs_seed)
    deadline: float       # ABSOLUTE virtual completion deadline
    priority: int = 0     # higher serves first within a batch queue
    rhs_kind: str = "random"  # "random", or a poison-* kind (adversarial)

    def rhs(self, n: int) -> np.ndarray:
        """Materialize this request's ``(n, 1)`` right-hand side.

        ``poison-*`` kinds (see :data:`repro.matrices.POISON_RHS_KINDS`)
        produce deliberately malformed vectors for adversarial scenarios;
        the serving tier validates and sheds them at dispatch.
        """
        if self.rhs_kind.startswith("poison-"):
            from repro.matrices import make_poison_rhs

            return make_poison_rhs(n, self.rhs_kind, seed=self.rhs_seed)
        from repro.matrices import make_rhs

        return make_rhs(n, 1, kind=self.rhs_kind, seed=self.rhs_seed)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a generated workload.

    ``mix`` weights matrices: ``((name, scale, weight), ...)``.
    ``deadline`` is the *relative* completion budget; each request's
    absolute deadline is ``arrival + deadline * U[0.75, 1.25)``.
    ``priorities`` weights the priority classes handed out.
    """

    seed: int = 0
    rate: float = 1000.0          # mean arrivals per virtual second
    n_requests: int = 32
    mix: tuple = (("s2D9pt2048", "tiny", 1.0),)
    deadline: float = 0.1         # relative completion budget, seconds
    priorities: tuple = ((0, 1.0),)


@dataclass
class Workload:
    """An ordered (by arrival) list of requests plus provenance metadata."""

    requests: list[Request]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def matrices(self) -> list[tuple[str, str]]:
        """Distinct (matrix, scale) pairs, in first-appearance order."""
        seen: dict[tuple[str, str], None] = {}
        for r in self.requests:
            seen.setdefault((r.matrix, r.scale))
        return list(seen)

    # -- JSON trace round trip ----------------------------------------------

    def to_json(self) -> str:
        doc = {"version": TRACE_VERSION, "meta": self.meta,
               "requests": [asdict(r) for r in self.requests]}
        return json.dumps(doc, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        doc = json.loads(text)
        if doc.get("version") != TRACE_VERSION:
            raise ValueError(
                f"unsupported workload trace version {doc.get('version')!r} "
                f"(expected {TRACE_VERSION})")
        reqs = [Request(**r) for r in doc["requests"]]
        reqs.sort(key=lambda r: (r.arrival, r.id))
        return cls(requests=reqs, meta=dict(doc.get("meta", {})))

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Workload":
        with open(path) as f:
            return cls.from_json(f.read())


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Draw a workload from ``spec``; deterministic in ``spec.seed``.

    Arrivals are Poisson (exponential inter-arrival at ``spec.rate``);
    per-request draws happen in a fixed order so the stream is stable
    against numpy version-to-version sampling of *unused* distributions.
    """
    if spec.rate <= 0:
        raise ValueError("rate must be positive")
    if spec.n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if not spec.mix:
        raise ValueError("mix must name at least one matrix")
    rng = np.random.default_rng(spec.seed)
    mw = np.array([w for (_, _, w) in spec.mix], dtype=np.float64)
    mw = mw / mw.sum()
    pw = np.array([w for (_, w) in spec.priorities], dtype=np.float64)
    pw = pw / pw.sum()

    requests = []
    t = 0.0
    for i in range(spec.n_requests):
        t += float(rng.exponential(1.0 / spec.rate))
        mi = int(rng.choice(len(spec.mix), p=mw))
        pi = int(rng.choice(len(spec.priorities), p=pw))
        slack = spec.deadline * (0.75 + 0.5 * float(rng.random()))
        rhs_seed = int(rng.integers(0, 2**31 - 1))
        name, scale, _ = spec.mix[mi]
        requests.append(Request(
            id=i, arrival=t, matrix=name, scale=scale, rhs_seed=rhs_seed,
            deadline=t + slack, priority=int(spec.priorities[pi][0])))
    meta = {"seed": spec.seed, "rate": spec.rate,
            "n_requests": spec.n_requests,
            "mix": [list(m) for m in spec.mix],
            "deadline": spec.deadline,
            "priorities": [list(p) for p in spec.priorities]}
    return Workload(requests=requests, meta=meta)


def zipf_mix(matrices, scale: str = "tiny", s: float = 1.0) -> tuple:
    """Zipf-skewed matrix mix: weight ``1/(rank+1)**s`` by list position.

    The first matrix is the hottest; ``s`` is the skew exponent (``s=0``
    is uniform, ``s=1`` the classic web-traffic skew where the top item
    draws as much traffic as the entire tail).  Weights are exact
    rationals of the rank, no RNG involved, so the same call always
    yields the same mix — feed it to :class:`WorkloadSpec` (and through
    it to either generator) for a popularity-skewed fleet workload.
    """
    if not matrices:
        raise ValueError("zipf_mix needs at least one matrix")
    if s < 0:
        raise ValueError("zipf skew s must be >= 0")
    return tuple((name, scale, 1.0 / (i + 1) ** s)
                 for i, name in enumerate(matrices))


def generate_bulk_workload(spec: WorkloadSpec) -> Workload:
    """Vectorized workload generator for very large request counts.

    Semantically the same family as :func:`generate_workload` (Poisson
    arrivals, weighted mix, deadline jitter, priority classes) but drawn
    with whole-array numpy sampling, which keeps a multi-million-request
    fleet workload in the hundreds of milliseconds instead of minutes.
    The draw *order* necessarily differs from the scalar generator (one
    array per field rather than one tuple per request), so the two
    generators produce different-but-individually-deterministic streams
    from the same spec: same spec + same generator = bit-identical trace,
    pinned by ``tests/test_fleet.py``.
    """
    if spec.rate <= 0:
        raise ValueError("rate must be positive")
    if spec.n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if not spec.mix:
        raise ValueError("mix must name at least one matrix")
    rng = np.random.default_rng(spec.seed)
    n = spec.n_requests
    mw = np.array([w for (_, _, w) in spec.mix], dtype=np.float64)
    mw = mw / mw.sum()
    pw = np.array([w for (_, w) in spec.priorities], dtype=np.float64)
    pw = pw / pw.sum()

    arrivals = np.cumsum(rng.exponential(1.0 / spec.rate, size=n))
    mi = rng.choice(len(spec.mix), size=n, p=mw)
    pi = rng.choice(len(spec.priorities), size=n, p=pw)
    slack = spec.deadline * (0.75 + 0.5 * rng.random(size=n))
    rhs_seeds = rng.integers(0, 2**31 - 1, size=n)

    prio_of = [int(p) for (p, _) in spec.priorities]
    requests = [Request(id=i, arrival=float(arrivals[i]),
                        matrix=spec.mix[mi[i]][0], scale=spec.mix[mi[i]][1],
                        rhs_seed=int(rhs_seeds[i]),
                        deadline=float(arrivals[i] + slack[i]),
                        priority=prio_of[pi[i]])
                for i in range(n)]
    meta = {"seed": spec.seed, "rate": spec.rate,
            "n_requests": spec.n_requests,
            "mix": [list(m) for m in spec.mix],
            "deadline": spec.deadline,
            "priorities": [list(p) for p in spec.priorities],
            "generator": "bulk"}
    return Workload(requests=requests, meta=meta)
