"""Batch formation, admission control and load shedding.

The scheduler owns the waiting room between arrival and dispatch.  Its
job is the α-amortization at the heart of the serving tier: the paper
shows distributed SpTRSV is latency (α) bound, so coalescing ``k`` queued
single-RHS requests for the same matrix into one ``nrhs = k`` solve pays
the per-message α cost once instead of ``k`` times.

Policy knobs (:class:`BatchPolicy`):

- ``max_batch`` — batch width cap (the ``nrhs`` handed to the solver);
- ``max_wait`` — how long the oldest queued request for a matrix may age
  before its batch dispatches anyway (latency floor vs batching gain);
- ``queue_bound`` — admission control: total queued requests beyond this
  bound are shed on arrival (backpressure), with priority displacement —
  an arriving request outranking the lowest-priority queued one takes its
  slot instead of being rejected.

Dispatch is deadline-scheduled: among matrix groups that are *ready*
(full batch, or head aged past ``max_wait``), the group with the earliest
queued deadline dispatches first (EDF).  Requests whose deadline already
passed are shed rather than solved — finishing them would waste cluster
time on answers nobody is waiting for.

Deadline boundary convention (uniform across the tier, see
``docs/SERVING.md``): a request is *expired* once ``deadline < t``
strictly, and a completion *meets* its deadline when
``t_complete <= deadline``.  Finishing exactly at the deadline counts as
met; popping a batch exactly at a queued request's deadline still solves
it.  :meth:`BatchingScheduler.expire` sheds expired requests between
dispatches, and :meth:`BatchingScheduler.next_trigger` includes the
earliest queued deadline so an expiry during an idle gap is shed at its
deadline, not at the next unrelated dispatch.

Every shed produces a typed :class:`Rejection` with a
:class:`RejectReason`, never a silent drop.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.serve.workload import Request


class RejectReason(enum.Enum):
    """Why a request was shed instead of solved."""

    QUEUE_FULL = "queue-full"        # backpressure at admission
    DISPLACED = "displaced"          # evicted by a higher-priority arrival
    DEADLINE_PASSED = "deadline-passed"  # expired while queued
    POISON_INPUT = "poison-input"    # malformed matrix/RHS shed at dispatch
    WORKER_CRASH = "worker-crash"    # fleet: no live worker to route to

    def __str__(self) -> str:  # stable text for SLO reports
        return self.value


@dataclass(frozen=True)
class Rejection:
    """Typed load-shedding outcome for one request."""

    request: Request
    reason: RejectReason
    time: float          # virtual time of the shed decision
    detail: str = ""     # e.g. the validation slug behind a poison shed


@dataclass(frozen=True)
class BatchPolicy:
    """Tunable batching / admission policy of a :class:`SolveService`."""

    max_batch: int = 8
    max_wait: float = 1e-3
    queue_bound: int = 256

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")


def _queue_order(r: Request) -> tuple:
    """In-queue service order: priority first, then EDF, then FIFO."""
    return (-r.priority, r.deadline, r.arrival, r.id)


def dedup_key(r: Request) -> tuple:
    """Identity of the *solve* a request asks for, within a matrix group.

    Two queued requests for the same (matrix, scale) with equal dedup keys
    want the same answer by the same time: one solve serves both (the
    matrix/scale part of the identity is the group key itself).  Priority
    is deliberately excluded — a duplicate coalesces regardless of who
    asked louder.
    """
    return (r.rhs_seed, r.rhs_kind, r.deadline)


@dataclass
class BatchingScheduler:
    """Deterministic per-matrix batching queues under one policy."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    _queues: dict = field(default_factory=dict)  # (matrix, scale) -> [Request]

    # -- admission -----------------------------------------------------------

    def depth(self) -> int:
        """Total queued requests (the backpressure signal)."""
        return sum(len(q) for q in self._queues.values())

    def offer(self, req: Request, t: float) -> Rejection | None:
        """Admit ``req`` at time ``t``; returns the shed victim, if any.

        The victim may be ``req`` itself (queue full, nothing outranked)
        or the lowest-priority queued request it displaces.
        """
        victim = None
        if self.depth() >= self.policy.queue_bound:
            worst = self._worst_queued()
            if worst is not None and _queue_order(req) < _queue_order(worst):
                self._remove(worst)
                victim = Rejection(worst, RejectReason.DISPLACED, t)
            else:
                return Rejection(req, RejectReason.QUEUE_FULL, t)
        q = self._queues.setdefault((req.matrix, req.scale), [])
        q.append(req)
        q.sort(key=_queue_order)
        return victim

    def _worst_queued(self) -> Request | None:
        worst = None
        for q in self._queues.values():
            for r in q:
                if worst is None or _queue_order(r) > _queue_order(worst):
                    worst = r
        return worst

    def _remove(self, req: Request) -> None:
        key = (req.matrix, req.scale)
        self._queues[key].remove(req)
        if not self._queues[key]:
            del self._queues[key]

    # -- expiry --------------------------------------------------------------

    def expire(self, t: float) -> list[Rejection]:
        """Shed every queued request whose deadline passed (``deadline < t``).

        Called by the service loop between dispatches so an expiry during
        an idle gap is timestamped at the wake-up its deadline triggered
        (see :meth:`next_trigger`), not at the next unrelated dispatch.
        """
        shed: list[Rejection] = []
        for key in list(self._queues):
            q = self._queues[key]
            live = [r for r in q if not r.deadline < t]
            if len(live) == len(q):
                continue
            shed.extend(Rejection(r, RejectReason.DEADLINE_PASSED, t)
                        for r in q if r.deadline < t)
            if live:
                self._queues[key] = live
            else:
                del self._queues[key]
        return shed

    def drain(self) -> list[Request]:
        """Remove and return every queued request (deterministic order).

        The fleet tier uses this when a worker crashes or scales down: the
        waiting room is evacuated wholesale and the requests re-routed
        through the ring.  Order is by queue key then in-queue service
        order, so two replays evacuate identically.
        """
        out: list[Request] = []
        for key in sorted(self._queues):
            out.extend(self._queues[key])
        self._queues.clear()
        return out

    # -- dispatch ------------------------------------------------------------

    def _head_age_due(self, key: tuple, t: float) -> bool:
        q = self._queues[key]
        oldest = min(r.arrival for r in q)
        return t >= oldest + self.policy.max_wait

    def ready_group(self, t: float) -> tuple | None:
        """The group to dispatch now, or ``None`` if no batch is due.

        A group is due when its queue holds a full batch or its oldest
        request aged past ``max_wait``; among due groups the earliest
        queued deadline wins (EDF), ties broken by group key.
        """
        due = [key for key, q in self._queues.items()
               if len(q) >= self.policy.max_batch
               or self._head_age_due(key, t)]
        if not due:
            return None
        return min(due, key=lambda k: (min(r.deadline
                                           for r in self._queues[k]), k))

    def next_trigger(self) -> float | None:
        """Earliest future time the scheduler needs the service loop awake.

        That is the earlier of (a) the first instant a queued group becomes
        dispatch-due by age and (b) the first instant a queued request
        expires.  A request expires strictly *after* its deadline
        (``deadline < t``), so the expiry trigger is the smallest
        representable time past the earliest queued deadline — waking
        exactly at the deadline would shed nothing and stall the loop.
        A zero-slack request (deadline equal to its arrival) must not pull
        the wake-up before the arrival itself: a shed timestamped before
        the request exists would violate causality, so each expiry trigger
        is clamped to ``max(arrival, nextafter(deadline, inf))``.
        """
        if not self._queues:
            return None
        age = min(min(r.arrival for r in q) + self.policy.max_wait
                  for q in self._queues.values())
        dl = min(max(r.arrival, math.nextafter(r.deadline, math.inf))
                 for q in self._queues.values() for r in q)
        return min(age, dl)

    def pop_batch(self, key: tuple, t: float
                  ) -> tuple[list[Request], list[Rejection]]:
        """Take up to ``max_batch`` *distinct solves* of group ``key``.

        Requests whose deadline passed while queued (``deadline < t``; a
        pop exactly at the deadline still solves, matching the
        ``t_complete <= deadline`` completion convention) are shed
        (typed), not solved; they do not consume batch slots.

        Duplicate requests — identical :func:`dedup_key` within the group,
        i.e. the same RHS and the same deadline — coalesce: they ride
        along in the returned batch but do not consume batch slots, since
        the service solves each distinct key once and fans the one
        solution out to every caller (the ``deduped`` SLO counter).
        """
        q = self._queues.pop(key)
        batch: list[Request] = []
        keys: set[tuple] = set()
        shed: list[Rejection] = []
        rest: list[Request] = []
        for r in q:  # q is kept sorted by _queue_order
            if r.deadline < t:
                shed.append(Rejection(r, RejectReason.DEADLINE_PASSED, t))
                continue
            k = dedup_key(r)
            if k in keys:
                batch.append(r)       # coalesced: rides along for free
            elif len(keys) < self.policy.max_batch:
                keys.add(k)
                batch.append(r)
            else:
                rest.append(r)
        if rest:
            self._queues[key] = rest
        return batch, shed
