"""The solve service: a virtual-time loop tying the tier together.

:class:`SolveService` models a single-server solve endpoint in the same
virtual time as the communication simulator underneath it.  The loop is
classic discrete-event serving:

1. requests are admitted (or shed, typed) at their arrival instants by the
   :class:`~repro.serve.scheduler.BatchingScheduler`;
2. whenever the server is free and a matrix group is dispatch-due, the
   scheduler's EDF pick becomes one batched solve — requests' single
   right-hand sides stacked into an ``(n, k)`` block handed to
   ``SpTRSVSolver.solve_blocked``;
3. the batch's factorization comes from the
   :class:`~repro.serve.cache.FactorizationCache` (a miss charges the
   solver's virtual factorization estimate as setup time, a hit charges
   nothing);
4. the server advances its clock by setup + the solve's *simulated*
   makespan — the α/β cost model, not host wall-clock — and completes the
   batch's requests.

Because the kernels produce per-column bit-identical solutions (see
``matmul_columns``), every request's answer is the same bits whether it
was solved alone, inside any batch, against a cold factorization or a
cache hit — asserted by ``tests/test_serve.py``.

Optional integrations: ``profile=True`` attaches a
:class:`~repro.obs.metrics.MetricsRegistry` per batch and aggregates the
α/β communication split into the SLO report; ``faults=`` runs every batch
over a lossy fabric (each batch gets an independent fork of the plan) with
``resilience=`` providing PR 1's verified-degradation envelope.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.comm.costmodel import MACHINES
from repro.comm.faults import FaultPlan, FaultSchedule
from repro.core.solver import Resilience, SpTRSVSolver
from repro.matrices import (
    InvalidMatrixError,
    InvalidRhsError,
    get_matrix,
    matrix_fingerprint,
    validate_matrix,
    validate_rhs,
)
from repro.numfact import solve_residual, stability_report
from repro.obs.metrics import PhaseStats
from repro.serve.cache import CacheKey, FactorizationCache
from repro.serve.scheduler import (
    BatchingScheduler,
    BatchPolicy,
    Rejection,
    RejectReason,
    dedup_key,
)
from repro.serve.slo import SLOReport, build_slo
from repro.serve.workload import Request, Workload

#: Relative solve-residual bound for sampled integrity verification; an
#: accepted completion above this is a *corrupted answer*, the one thing
#: the degradation contracts forbid outright.
INTEGRITY_TOL = 1e-8


@dataclass(frozen=True)
class ServiceConfig:
    """Solver-side configuration shared by every batch the service runs."""

    px: int = 1
    py: int = 1
    pz: int = 4
    machine: str = "cori-haswell"
    algorithm: str = "new3d"
    device: str = "cpu"
    max_supernode: int = 16
    symbolic_mode: str = "detect"
    ordering: str = "nd"
    # Admission hardening: matrices above this row count are rejected
    # before any preprocessing (resource-exhaustion poison); matrices
    # whose no-pivoting factorization shows catastrophic element growth
    # are rejected after factoring (numeric poison) when the gate is on.
    max_matrix_n: int = 100_000
    stability_gate: bool = True
    # Serve cache-hit, fault-free CPU batches on the compiled
    # schedule-replay fast path (bit-identical answers and virtual clocks;
    # see repro.replay).  Off forces every batch through the simulator —
    # the benchmark's baseline leg and an escape hatch.
    replay: bool = True
    # Route every batch through the cost-model planner (repro.planner):
    # the dispatched algorithm becomes the planner's cached pick for
    # (matrix, grid, machine, batch width) instead of ``algorithm``.
    # Verification re-solves use the same resolved pick, so the batching
    # bit-identity contract is planner-transparent.
    planner: bool = False

    def __post_init__(self):
        if self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r} "
                             f"(have {sorted(MACHINES)})")
        if self.max_matrix_n < 1:
            raise ValueError("max_matrix_n must be >= 1")
        if self.planner and self.device != "cpu":
            raise ValueError(
                "planner=True plans over the CPU backends only "
                "(device='cpu')")


@dataclass
class BatchRecord:
    """One dispatched batch, for the histogram and for debugging."""

    batch_id: int
    matrix: str
    scale: str
    size: int                 # nrhs = number of coalesced requests
    request_ids: list[int]
    t_dispatch: float
    t_complete: float
    cache_hit: bool
    setup_time: float
    solve_time: float
    replayed: bool = False    # served (at least partly) by the replay path


@dataclass
class Completion:
    """One finished request with its end-to-end (queue + solve) latency."""

    request: Request
    t_complete: float
    batch_id: int

    @property
    def latency(self) -> float:
        return self.t_complete - self.request.arrival

    @property
    def deadline_met(self) -> bool:
        return self.t_complete <= self.request.deadline


@dataclass
class ServeResult:
    """Everything :meth:`SolveService.run` observed, plus the SLO fold."""

    completions: list[Completion]
    rejections: list[Rejection]
    batches: list[BatchRecord]
    queue_samples: list[int]
    solutions: dict = field(default_factory=dict)   # request id -> (n,) x
    slo: SLOReport = field(default_factory=SLOReport)
    deduped: int = 0                 # duplicates coalesced across all batches
    n_verified: int = 0              # completions sampled for integrity
    integrity_failures: list = field(default_factory=list)  # audit records
    n_replayed: int = 0              # batches served by the replay fast path


class _QueueDepthIntegral:
    """Time-weighted queue-depth accumulator over virtual time.

    The loop reports the depth after every depth-changing event at that
    event's virtual instant; the mean is then ``∫ depth dt / horizon``,
    independent of how many (possibly idle) loop iterations happened —
    unlike a per-iteration sample average, which over-weights whatever
    the scheduler internals iterate on.
    """

    def __init__(self):
        self.area = 0.0
        self._t = 0.0
        self._depth = 0

    def record(self, t: float, depth: int) -> None:
        if t > self._t:
            self.area += self._depth * (t - self._t)
            self._t = t
        self._depth = depth

    def mean(self) -> float:
        return self.area / self._t if self._t > 0 else 0.0


class SolveService:
    """Batching, caching, deadline-scheduled solve server (virtual time)."""

    def __init__(self, config: ServiceConfig | None = None,
                 policy: BatchPolicy | None = None,
                 cache: FactorizationCache | None = None,
                 faults: FaultPlan | None = None,
                 resilience: Resilience | None = None,
                 profile: bool = False,
                 keep_solutions: bool = True,
                 invariants: bool = False,
                 matrix_provider=None,
                 fault_schedule: FaultSchedule | None = None,
                 verify_fraction: float = 0.0,
                 verify_seed: int = 0):
        """``matrix_provider`` overrides matrix resolution (``(name,
        scale) -> sparse matrix``; default the paper suite) — adversarial
        scenarios route ``poison-*`` names through it.  ``fault_schedule``
        swaps the fabric's fault plan per dispatch instant (mid-run
        escalation); it takes precedence over the static ``faults`` plan.
        ``verify_fraction`` samples that fraction of completions for
        integrity verification (residual bound, plus bit-equality against
        a fresh single-RHS solve on fault-free batches), deterministic in
        ``verify_seed``; verification is an observer — it charges no
        virtual time.
        """
        self.config = config or ServiceConfig()
        self.policy = policy or BatchPolicy()
        self.cache = cache if cache is not None else FactorizationCache()
        self.faults = faults
        self.resilience = resilience
        self.profile = profile
        self.keep_solutions = keep_solutions
        self.invariants = invariants
        self.matrix_provider = matrix_provider
        self.fault_schedule = fault_schedule
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError("verify_fraction must be in [0, 1]")
        self.verify_fraction = verify_fraction
        self.verify_seed = verify_seed
        # (matrix, scale) -> (A, fingerprint hexdigest); fingerprints are
        # content hashes, so computing one per distinct matrix suffices.
        self._matrices: dict = {}
        # (matrix, scale) -> InvalidMatrixError: matrices that already
        # failed ingestion; later batches shed without re-validating.
        self._poison: dict = {}

    # -- solver construction --------------------------------------------------

    def _matrix(self, name: str, scale: str):
        key = (name, scale)
        known_bad = self._poison.get(key)
        if known_bad is not None:
            raise known_bad
        if key not in self._matrices:
            provider = self.matrix_provider or get_matrix
            try:
                A = provider(name, scale)
                validate_matrix(A)
                if A.shape[0] > self.config.max_matrix_n:
                    raise InvalidMatrixError(
                        "too-large",
                        f"matrix has {A.shape[0]} rows, above the service "
                        f"admission bound {self.config.max_matrix_n}")
            except InvalidMatrixError as err:
                self._poison[key] = err
                raise
            self._matrices[key] = (A, matrix_fingerprint(A).hexdigest)
        return self._matrices[key]

    def cache_key(self, name: str, scale: str) -> CacheKey:
        _, digest = self._matrix(name, scale)
        c = self.config
        return CacheKey(fingerprint=digest, px=c.px, py=c.py, pz=c.pz,
                        machine=c.machine, max_supernode=c.max_supernode,
                        symbolic_mode=c.symbolic_mode, ordering=c.ordering)

    def _build_solver(self, name: str, scale: str) -> SpTRSVSolver:
        A, _ = self._matrix(name, scale)
        c = self.config
        solver = SpTRSVSolver(A, px=c.px, py=c.py, pz=c.pz,
                              machine=MACHINES[c.machine],
                              max_supernode=c.max_supernode,
                              symbolic_mode=c.symbolic_mode,
                              ordering=c.ordering)
        if c.stability_gate:
            stab = stability_report(solver.A_perm, solver.lu)
            if not stab.is_stable():
                raise InvalidMatrixError(
                    "unstable-factorization",
                    f"element growth {stab.growth_factor:.3g} / pivot "
                    f"ratio {stab.pivot_ratio:.3g} outside the no-pivoting "
                    f"stability envelope")
        return solver

    # -- the service loop -----------------------------------------------------

    def run(self, workload: Workload) -> ServeResult:
        """Serve ``workload`` to completion; deterministic in its inputs."""
        arrivals = sorted(workload.requests, key=lambda r: (r.arrival, r.id))
        sched = BatchingScheduler(policy=self.policy)
        res = ServeResult(completions=[], rejections=[], batches=[],
                          queue_samples=[])
        comm = PhaseStats() if self.profile else None
        qdepth = _QueueDepthIntegral()
        setup_total = 0.0
        solve_total = 0.0
        t = 0.0
        i = 0
        while i < len(arrivals) or sched.depth():
            while i < len(arrivals) and arrivals[i].arrival <= t:
                r = arrivals[i]
                i += 1
                rej = sched.offer(r, r.arrival)
                if rej is not None:
                    res.rejections.append(rej)
                qdepth.record(r.arrival, sched.depth())
            expired = sched.expire(t)
            if expired:
                res.rejections.extend(expired)
                qdepth.record(t, sched.depth())
            res.queue_samples.append(sched.depth())

            key = sched.ready_group(t)
            if key is None:
                # Idle: jump to the next arrival, batch-age or expiry
                # trigger.
                nexts = []
                if i < len(arrivals):
                    nexts.append(arrivals[i].arrival)
                trig = sched.next_trigger()
                if trig is not None:
                    nexts.append(trig)
                if not nexts:
                    break
                t = max(t, min(nexts))
                continue

            batch, shed = sched.pop_batch(key, t)
            res.rejections.extend(shed)
            qdepth.record(t, sched.depth())
            if not batch:
                continue
            nb = len(res.batches)
            t = self._dispatch(batch, t, res, comm)
            if len(res.batches) > nb:  # batch may shed entirely (poison)
                setup_total += res.batches[-1].setup_time
                solve_total += res.batches[-1].solve_time

        qdepth.record(t, sched.depth())
        res.slo = build_slo(
            n_requests=len(workload),
            latencies=[c.latency for c in res.completions],
            deadline_met=[c.deadline_met for c in res.completions],
            shed_reasons=[str(r.reason) for r in res.rejections],
            batch_sizes=[b.size for b in res.batches],
            queue_samples=res.queue_samples,
            queue_time_mean=qdepth.mean(),
            cache_stats=self.cache.stats,
            setup_time=setup_total, solve_time=solve_total,
            makespan=max((c.t_complete for c in res.completions), default=t),
            comm=comm, deduped=res.deduped, n_verified=res.n_verified,
            n_integrity_failures=len(res.integrity_failures),
            n_replayed=res.n_replayed)
        if self.invariants:
            from repro.check.invariants import check_serve

            check_serve(workload, res, service=self)
        return res

    def _dispatch(self, batch: list[Request], t: float, res: ServeResult,
                  comm: PhaseStats | None) -> float:
        """Run one batched solve; returns the server's new free time.

        Hardened against poison inputs: a matrix that fails ingestion (or
        the stability gate) sheds the whole batch with typed
        ``poison-input`` rejections; a malformed right-hand side sheds
        only its request.  Duplicate requests (equal
        :func:`~repro.serve.scheduler.dedup_key`) share one solved column
        fanned out to every caller.  Shedding charges no virtual time —
        rejecting is the cheap path by design.
        """
        name, scale = batch[0].matrix, batch[0].scale
        try:
            solver, setup, hit = self.cache.get_or_build(
                self.cache_key(name, scale),
                lambda: self._build_solver(name, scale))
        except InvalidMatrixError as err:
            self._poison[(name, scale)] = err
            res.rejections.extend(
                Rejection(r, RejectReason.POISON_INPUT, t, detail=err.reason)
                for r in batch)
            return t

        # One column per distinct dedup key; malformed RHS sheds its
        # request (and, transitively, its duplicates — identical bits).
        live: list[Request] = []
        columns: list[np.ndarray] = []
        col_of: dict = {}
        for r in batch:
            k = dedup_key(r)
            if k in col_of:
                live.append(r)          # duplicate: column already built
                continue
            try:
                b = r.rhs(solver.n)
                validate_rhs(solver.n, b)
            except InvalidRhsError as err:
                res.rejections.append(Rejection(
                    r, RejectReason.POISON_INPUT, t, detail=err.reason))
                continue
            col_of[k] = len(columns)
            columns.append(b if b.ndim == 2 else b[:, None])
            live.append(r)
        if not columns:
            return t
        res.deduped += len(live) - len(columns)

        B = np.hstack(columns)
        batch_id = len(res.batches)
        algorithm = self._resolve_algorithm(solver, B.shape[1])
        kw: dict = dict(algorithm=algorithm,
                        device=self.config.device, profile=self.profile)
        if self.fault_schedule is not None:
            plan = self.fault_schedule.plan_at(t)
            if plan is not None:
                kw["faults"] = plan.fork(batch_id)
        elif self.faults is not None:
            kw["faults"] = self.faults.fork(batch_id)
        if self.resilience is not None:
            kw["resilience"] = self.resilience
        # Replay fast path: a cache-hit, fault-free CPU batch executes the
        # solver's compiled schedule (bit-identical answers and virtual
        # clocks by construction; see repro.replay).  The first batch of a
        # given shape records — a normal simulated solve — so misses,
        # faulted/resilient batches, and backends outside the schedule
        # compiler's coverage (REPLAYABLE) always take the simulator.
        replays_before = 0
        from repro.replay import REPLAYABLE, replay_state

        if (self.config.replay and hit and self.config.device == "cpu"
                and algorithm in REPLAYABLE
                and "faults" not in kw and self.resilience is None):
            kw["replay"] = True
            replays_before = replay_state(solver).stats.replays
        out = solver.solve_blocked(B, rhs_block=self.policy.max_batch, **kw)
        replayed = False
        if kw.get("replay"):
            st = replay_state(solver)
            replayed = st.stats.replays > replays_before
            if replayed:
                res.n_replayed += 1
            if self.invariants:
                # Replayed batches must still reconcile with the
                # observability layer: the copied timing result obeys the
                # same conservation laws as a live simulation.
                from repro.check.invariants import check_metrics, check_sim

                check_sim(out.report.sim)
                if out.report.metrics is not None:
                    check_metrics(out.report)
        solve_time = (out.resilience.total_time if out.resilience is not None
                      else out.report.total_time)
        if comm is not None and out.report.metrics is not None:
            comm.add(out.report.metrics.stats())

        t_done = t + setup + solve_time
        X = out.x if out.x.ndim == 2 else out.x[:, None]
        for r in live:
            res.completions.append(Completion(request=r, t_complete=t_done,
                                              batch_id=batch_id))
            if self.keep_solutions:
                res.solutions[r.id] = X[:, col_of[dedup_key(r)]].copy()
        res.batches.append(BatchRecord(
            batch_id=batch_id, matrix=name, scale=scale, size=len(columns),
            request_ids=[r.id for r in live], t_dispatch=t,
            t_complete=t_done, cache_hit=hit, setup_time=setup,
            solve_time=solve_time, replayed=replayed))
        if self.verify_fraction > 0.0:
            self._verify_batch(solver, live, columns, col_of, X, res,
                               batch_id, faulted="faults" in kw,
                               algorithm=algorithm)
        return t_done

    def _resolve_algorithm(self, solver: SpTRSVSolver, nrhs: int) -> str:
        """The algorithm this batch actually runs.

        With ``planner=True`` the cost-model planner's cached pick for
        (this matrix, this grid/machine, this batch width) replaces the
        configured algorithm; resolving once per batch keeps dispatch and
        verification on the same backend even if the planner's decision
        is later corrected by measured feedback.
        """
        if not self.config.planner:
            return self.config.algorithm
        from repro.planner import DEFAULT_PLANNER

        return DEFAULT_PLANNER.choose(solver, nrhs=nrhs).algorithm

    # -- sampled integrity verification ---------------------------------------

    def _sampled(self, request_id: int) -> bool:
        """Deterministic per-request sampling decision (seeded hash)."""
        h = zlib.crc32(f"{self.verify_seed}:{request_id}".encode())
        return (h % 1_000_000) < self.verify_fraction * 1_000_000

    def _verify_batch(self, solver: SpTRSVSolver, live: list[Request],
                      columns: list[np.ndarray], col_of: dict,
                      X: np.ndarray, res: ServeResult, batch_id: int,
                      faulted: bool, algorithm: str | None = None) -> None:
        """Re-check sampled completions of one batch (host-time observer).

        Every sampled answer must meet the residual bound; on fault-free
        batches it must additionally be bit-identical to a fresh
        single-RHS solve on the same cached factorization (the batching
        contract).  Faulted batches may have legitimately degraded to a
        fallback tier whose bits differ, so only the residual applies.
        Failures are recorded — never silently dropped — and surface as
        ``n_integrity_failures`` in the SLO report, where the degradation
        contracts pin them to zero.
        """
        checked: set = set()
        for r in live:
            if not self._sampled(r.id):
                continue
            col = col_of[dedup_key(r)]
            res.n_verified += 1
            if col in checked:
                continue            # duplicate shares the verified column
            checked.add(col)
            x = X[:, col]
            b = columns[col]
            rel = solve_residual(solver.A, x[:, None], b)
            if rel > INTEGRITY_TOL:
                res.integrity_failures.append(
                    {"request_id": r.id, "batch_id": batch_id,
                     "kind": "residual", "value": float(rel)})
                continue
            if not faulted:
                ref = solver.solve(b[:, 0],
                                   algorithm=algorithm
                                   or self.config.algorithm,
                                   device=self.config.device).x
                if not np.array_equal(x, ref):
                    res.integrity_failures.append(
                        {"request_id": r.id, "batch_id": batch_id,
                         "kind": "bit-mismatch", "value": 0.0})
