"""The solve service: a virtual-time loop tying the tier together.

:class:`SolveService` models a single-server solve endpoint in the same
virtual time as the communication simulator underneath it.  The loop is
classic discrete-event serving:

1. requests are admitted (or shed, typed) at their arrival instants by the
   :class:`~repro.serve.scheduler.BatchingScheduler`;
2. whenever the server is free and a matrix group is dispatch-due, the
   scheduler's EDF pick becomes one batched solve — requests' single
   right-hand sides stacked into an ``(n, k)`` block handed to
   ``SpTRSVSolver.solve_blocked``;
3. the batch's factorization comes from the
   :class:`~repro.serve.cache.FactorizationCache` (a miss charges the
   solver's virtual factorization estimate as setup time, a hit charges
   nothing);
4. the server advances its clock by setup + the solve's *simulated*
   makespan — the α/β cost model, not host wall-clock — and completes the
   batch's requests.

Because the kernels produce per-column bit-identical solutions (see
``matmul_columns``), every request's answer is the same bits whether it
was solved alone, inside any batch, against a cold factorization or a
cache hit — asserted by ``tests/test_serve.py``.

Optional integrations: ``profile=True`` attaches a
:class:`~repro.obs.metrics.MetricsRegistry` per batch and aggregates the
α/β communication split into the SLO report; ``faults=`` runs every batch
over a lossy fabric (each batch gets an independent fork of the plan) with
``resilience=`` providing PR 1's verified-degradation envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.costmodel import MACHINES
from repro.comm.faults import FaultPlan
from repro.core.solver import Resilience, SpTRSVSolver
from repro.matrices import get_matrix, matrix_fingerprint
from repro.obs.metrics import PhaseStats
from repro.serve.cache import CacheKey, FactorizationCache
from repro.serve.scheduler import BatchingScheduler, BatchPolicy, Rejection
from repro.serve.slo import SLOReport, build_slo
from repro.serve.workload import Request, Workload


@dataclass(frozen=True)
class ServiceConfig:
    """Solver-side configuration shared by every batch the service runs."""

    px: int = 1
    py: int = 1
    pz: int = 4
    machine: str = "cori-haswell"
    algorithm: str = "new3d"
    device: str = "cpu"
    max_supernode: int = 16
    symbolic_mode: str = "detect"
    ordering: str = "nd"

    def __post_init__(self):
        if self.machine not in MACHINES:
            raise ValueError(f"unknown machine {self.machine!r} "
                             f"(have {sorted(MACHINES)})")


@dataclass
class BatchRecord:
    """One dispatched batch, for the histogram and for debugging."""

    batch_id: int
    matrix: str
    scale: str
    size: int                 # nrhs = number of coalesced requests
    request_ids: list[int]
    t_dispatch: float
    t_complete: float
    cache_hit: bool
    setup_time: float
    solve_time: float


@dataclass
class Completion:
    """One finished request with its end-to-end (queue + solve) latency."""

    request: Request
    t_complete: float
    batch_id: int

    @property
    def latency(self) -> float:
        return self.t_complete - self.request.arrival

    @property
    def deadline_met(self) -> bool:
        return self.t_complete <= self.request.deadline


@dataclass
class ServeResult:
    """Everything :meth:`SolveService.run` observed, plus the SLO fold."""

    completions: list[Completion]
    rejections: list[Rejection]
    batches: list[BatchRecord]
    queue_samples: list[int]
    solutions: dict = field(default_factory=dict)   # request id -> (n,) x
    slo: SLOReport = field(default_factory=SLOReport)


class _QueueDepthIntegral:
    """Time-weighted queue-depth accumulator over virtual time.

    The loop reports the depth after every depth-changing event at that
    event's virtual instant; the mean is then ``∫ depth dt / horizon``,
    independent of how many (possibly idle) loop iterations happened —
    unlike a per-iteration sample average, which over-weights whatever
    the scheduler internals iterate on.
    """

    def __init__(self):
        self.area = 0.0
        self._t = 0.0
        self._depth = 0

    def record(self, t: float, depth: int) -> None:
        if t > self._t:
            self.area += self._depth * (t - self._t)
            self._t = t
        self._depth = depth

    def mean(self) -> float:
        return self.area / self._t if self._t > 0 else 0.0


class SolveService:
    """Batching, caching, deadline-scheduled solve server (virtual time)."""

    def __init__(self, config: ServiceConfig | None = None,
                 policy: BatchPolicy | None = None,
                 cache: FactorizationCache | None = None,
                 faults: FaultPlan | None = None,
                 resilience: Resilience | None = None,
                 profile: bool = False,
                 keep_solutions: bool = True,
                 invariants: bool = False):
        self.config = config or ServiceConfig()
        self.policy = policy or BatchPolicy()
        self.cache = cache if cache is not None else FactorizationCache()
        self.faults = faults
        self.resilience = resilience
        self.profile = profile
        self.keep_solutions = keep_solutions
        self.invariants = invariants
        # (matrix, scale) -> (A, fingerprint hexdigest); fingerprints are
        # content hashes, so computing one per distinct matrix suffices.
        self._matrices: dict = {}

    # -- solver construction --------------------------------------------------

    def _matrix(self, name: str, scale: str):
        key = (name, scale)
        if key not in self._matrices:
            A = get_matrix(name, scale)
            self._matrices[key] = (A, matrix_fingerprint(A).hexdigest)
        return self._matrices[key]

    def cache_key(self, name: str, scale: str) -> CacheKey:
        _, digest = self._matrix(name, scale)
        c = self.config
        return CacheKey(fingerprint=digest, px=c.px, py=c.py, pz=c.pz,
                        machine=c.machine, max_supernode=c.max_supernode,
                        symbolic_mode=c.symbolic_mode, ordering=c.ordering)

    def _build_solver(self, name: str, scale: str) -> SpTRSVSolver:
        A, _ = self._matrix(name, scale)
        c = self.config
        return SpTRSVSolver(A, px=c.px, py=c.py, pz=c.pz,
                            machine=MACHINES[c.machine],
                            max_supernode=c.max_supernode,
                            symbolic_mode=c.symbolic_mode,
                            ordering=c.ordering)

    # -- the service loop -----------------------------------------------------

    def run(self, workload: Workload) -> ServeResult:
        """Serve ``workload`` to completion; deterministic in its inputs."""
        arrivals = sorted(workload.requests, key=lambda r: (r.arrival, r.id))
        sched = BatchingScheduler(policy=self.policy)
        res = ServeResult(completions=[], rejections=[], batches=[],
                          queue_samples=[])
        comm = PhaseStats() if self.profile else None
        qdepth = _QueueDepthIntegral()
        setup_total = 0.0
        solve_total = 0.0
        t = 0.0
        i = 0
        while i < len(arrivals) or sched.depth():
            while i < len(arrivals) and arrivals[i].arrival <= t:
                r = arrivals[i]
                i += 1
                rej = sched.offer(r, r.arrival)
                if rej is not None:
                    res.rejections.append(rej)
                qdepth.record(r.arrival, sched.depth())
            expired = sched.expire(t)
            if expired:
                res.rejections.extend(expired)
                qdepth.record(t, sched.depth())
            res.queue_samples.append(sched.depth())

            key = sched.ready_group(t)
            if key is None:
                # Idle: jump to the next arrival, batch-age or expiry
                # trigger.
                nexts = []
                if i < len(arrivals):
                    nexts.append(arrivals[i].arrival)
                trig = sched.next_trigger()
                if trig is not None:
                    nexts.append(trig)
                if not nexts:
                    break
                t = max(t, min(nexts))
                continue

            batch, shed = sched.pop_batch(key, t)
            res.rejections.extend(shed)
            qdepth.record(t, sched.depth())
            if not batch:
                continue
            t = self._dispatch(batch, t, res, comm)
            setup_total += res.batches[-1].setup_time
            solve_total += res.batches[-1].solve_time

        qdepth.record(t, sched.depth())
        res.slo = build_slo(
            n_requests=len(workload),
            latencies=[c.latency for c in res.completions],
            deadline_met=[c.deadline_met for c in res.completions],
            shed_reasons=[str(r.reason) for r in res.rejections],
            batch_sizes=[b.size for b in res.batches],
            queue_samples=res.queue_samples,
            queue_time_mean=qdepth.mean(),
            cache_stats=self.cache.stats,
            setup_time=setup_total, solve_time=solve_total,
            makespan=max((c.t_complete for c in res.completions), default=t),
            comm=comm)
        if self.invariants:
            from repro.check.invariants import check_serve

            check_serve(workload, res, service=self)
        return res

    def _dispatch(self, batch: list[Request], t: float, res: ServeResult,
                  comm: PhaseStats | None) -> float:
        """Run one batched solve; returns the server's new free time."""
        name, scale = batch[0].matrix, batch[0].scale
        solver, setup, hit = self.cache.get_or_build(
            self.cache_key(name, scale),
            lambda: self._build_solver(name, scale))

        B = np.hstack([r.rhs(solver.n) for r in batch])
        batch_id = len(res.batches)
        kw: dict = dict(algorithm=self.config.algorithm,
                        device=self.config.device, profile=self.profile)
        if self.faults is not None:
            kw["faults"] = self.faults.fork(batch_id)
        if self.resilience is not None:
            kw["resilience"] = self.resilience
        out = solver.solve_blocked(B, rhs_block=self.policy.max_batch, **kw)
        solve_time = (out.resilience.total_time if out.resilience is not None
                      else out.report.total_time)
        if comm is not None and out.report.metrics is not None:
            comm.add(out.report.metrics.stats())

        t_done = t + setup + solve_time
        X = out.x if out.x.ndim == 2 else out.x[:, None]
        for j, r in enumerate(batch):
            res.completions.append(Completion(request=r, t_complete=t_done,
                                              batch_id=batch_id))
            if self.keep_solutions:
                res.solutions[r.id] = X[:, j].copy()
        res.batches.append(BatchRecord(
            batch_id=batch_id, matrix=name, scale=scale, size=len(batch),
            request_ids=[r.id for r in batch], t_dispatch=t,
            t_complete=t_done, cache_hit=hit, setup_time=setup,
            solve_time=solve_time))
        return t_done
