"""``repro.serve`` — a batching solve service over the simulated cluster.

The paper's result is that distributed SpTRSV is latency (α) bound; this
package turns that observation into a serving tier.  Single-RHS solve
requests arrive as a seeded Poisson stream (:mod:`~repro.serve.workload`),
a deadline-aware scheduler coalesces same-matrix requests into multi-RHS
batches that amortize the per-message α cost
(:mod:`~repro.serve.scheduler`), factorizations are reused across batches
through a content-fingerprinted LRU cache (:mod:`~repro.serve.cache`), and
a virtual-time service loop (:mod:`~repro.serve.service`) runs the batches
on the existing solver stack — including, optionally, over a lossy
simulated fabric with the resilience envelope.  :mod:`~repro.serve.slo`
folds a run into the operator-facing SLO report.

Entry points: the ``repro serve`` CLI subcommand and
``benchmarks/bench_serve.py``; the guided tour is ``docs/SERVING.md``.
"""

from repro.serve.cache import CacheKey, CacheStats, FactorizationCache
from repro.serve.scheduler import (
    BatchingScheduler,
    BatchPolicy,
    Rejection,
    RejectReason,
    dedup_key,
)
from repro.serve.service import (
    BatchRecord,
    Completion,
    ServeResult,
    ServiceConfig,
    SolveService,
)
from repro.serve.slo import SLOReport, build_slo, format_slo
from repro.serve.workload import (
    Request,
    Workload,
    WorkloadSpec,
    generate_bulk_workload,
    generate_workload,
    zipf_mix,
)

__all__ = [
    "BatchPolicy",
    "BatchRecord",
    "BatchingScheduler",
    "CacheKey",
    "CacheStats",
    "Completion",
    "FactorizationCache",
    "RejectReason",
    "Rejection",
    "Request",
    "SLOReport",
    "ServeResult",
    "ServiceConfig",
    "SolveService",
    "Workload",
    "WorkloadSpec",
    "build_slo",
    "dedup_key",
    "format_slo",
    "generate_bulk_workload",
    "generate_workload",
    "zipf_mix",
]
