"""Service-level objective accounting for a served workload.

An :class:`SLOReport` condenses one :meth:`SolveService.run` into the
numbers an operator tunes against: completion/shed counts (by typed
reason), deadline hit rate, the latency distribution (p50/p95/p99),
throughput over the virtual makespan, the batch-size histogram that shows
whether α-amortization actually happened, queue-depth pressure, cache
effectiveness, and — when the run was profiled — the aggregate α/β
communication split underneath it all.

Everything here is derived from virtual time and deterministic counters,
so two replays of the same trace render byte-identical reports; the
serve-smoke CI job diffs them to pin that property.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass
class SLOReport:
    """Deterministic summary of one served workload."""

    # request accounting
    n_requests: int = 0
    n_completed: int = 0
    n_shed: int = 0
    shed_by_reason: dict = field(default_factory=dict)   # reason -> count
    n_deadline_met: int = 0

    # latency (virtual seconds, completed requests only)
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    latency_mean: float = 0.0
    latency_max: float = 0.0

    # throughput
    makespan: float = 0.0          # last completion (virtual seconds)
    throughput: float = 0.0        # completed requests / makespan

    # batching
    n_batches: int = 0
    batch_hist: dict = field(default_factory=dict)       # size -> count
    batch_mean: float = 0.0
    deduped: int = 0               # duplicate requests coalesced into solves
    n_replayed: int = 0            # batches served by the replay fast path

    # sampled per-request integrity verification (scenario hardening)
    n_verified: int = 0            # completions re-checked against contract
    n_integrity_failures: int = 0  # MUST stay 0: corrupted accepted answers

    # queueing
    queue_depth_max: int = 0
    queue_depth_mean: float = 0.0   # time-weighted over virtual time

    # factorization cache
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_hit_rate: float = 0.0
    cache_resident_bytes: int = 0
    cache_peak_bytes: int = 0

    # time split (virtual seconds of server busy time)
    setup_time: float = 0.0        # factorization misses
    solve_time: float = 0.0        # batched solves

    # aggregate communication (profiled runs only)
    comm_msgs: int = 0
    comm_bytes: float = 0.0
    comm_alpha_time: float = 0.0
    comm_beta_time: float = 0.0
    profiled: bool = False

    @property
    def deadline_met_rate(self) -> float:
        return self.n_deadline_met / self.n_completed if self.n_completed \
            else 0.0

    def to_json(self) -> str:
        doc = asdict(self)
        doc["deadline_met_rate"] = self.deadline_met_rate
        return json.dumps(doc, indent=1, sort_keys=True)


def build_slo(*, n_requests: int, latencies: list[float],
              deadline_met: list[bool], shed_reasons: list[str],
              batch_sizes: list[int], queue_samples: list[int],
              cache_stats, setup_time: float, solve_time: float,
              makespan: float, comm=None,
              queue_time_mean: float | None = None, deduped: int = 0,
              n_verified: int = 0,
              n_integrity_failures: int = 0,
              n_replayed: int = 0) -> SLOReport:
    """Fold raw service-loop records into an :class:`SLOReport`.

    ``cache_stats`` is a :class:`~repro.serve.cache.CacheStats`; ``comm``
    is an aggregate :class:`~repro.obs.metrics.PhaseStats` (or ``None``
    for unprofiled runs).  ``queue_time_mean`` is the time-weighted mean
    queue depth over virtual time (the service loop integrates
    ``∫ depth dt``); when omitted the mean falls back to a plain average
    of ``queue_samples``, which over-weights idle loop iterations and is
    kept only for callers without a virtual-time trajectory.
    """
    rep = SLOReport(
        n_requests=n_requests,
        n_completed=len(latencies),
        n_shed=len(shed_reasons),
        n_deadline_met=sum(deadline_met),
        latency_p50=_percentile(latencies, 50),
        latency_p95=_percentile(latencies, 95),
        latency_p99=_percentile(latencies, 99),
        latency_mean=float(np.mean(latencies)) if latencies else 0.0,
        latency_max=max(latencies, default=0.0),
        makespan=makespan,
        throughput=len(latencies) / makespan if makespan > 0 else 0.0,
        n_batches=len(batch_sizes),
        batch_mean=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
        queue_depth_max=max(queue_samples, default=0),
        queue_depth_mean=(queue_time_mean if queue_time_mean is not None
                          else float(np.mean(queue_samples))
                          if queue_samples else 0.0),
        cache_hits=cache_stats.hits,
        cache_misses=cache_stats.misses,
        cache_evictions=cache_stats.evictions,
        cache_hit_rate=cache_stats.hit_rate,
        cache_resident_bytes=cache_stats.resident_bytes,
        cache_peak_bytes=cache_stats.peak_bytes,
        setup_time=setup_time,
        solve_time=solve_time,
        deduped=deduped,
        n_verified=n_verified,
        n_integrity_failures=n_integrity_failures,
        n_replayed=n_replayed,
    )
    for r in shed_reasons:
        rep.shed_by_reason[r] = rep.shed_by_reason.get(r, 0) + 1
    for s in batch_sizes:
        rep.batch_hist[s] = rep.batch_hist.get(s, 0) + 1
    if comm is not None:
        rep.profiled = True
        rep.comm_msgs = comm.msgs
        rep.comm_bytes = comm.bytes
        rep.comm_alpha_time = comm.alpha_time
        rep.comm_beta_time = comm.beta_time
    return rep


def format_slo(rep: SLOReport, title: str = "SLO report") -> str:
    """Render a report as stable, diffable text (no wall-clock anywhere)."""
    lines = [title, "=" * len(title)]
    lines.append(f"requests            {rep.n_requests}")
    lines.append(f"  completed         {rep.n_completed}")
    shed = ", ".join(f"{k}={v}" for k, v in sorted(rep.shed_by_reason.items()))
    lines.append(f"  shed              {rep.n_shed}"
                 + (f"  ({shed})" if shed else ""))
    lines.append(f"  deadlines met     {rep.n_deadline_met}"
                 f"  ({100.0 * rep.deadline_met_rate:.1f}% of completed)")
    lines.append("latency (virtual s)")
    lines.append(f"  p50 / p95 / p99   {rep.latency_p50:.3e} / "
                 f"{rep.latency_p95:.3e} / {rep.latency_p99:.3e}")
    lines.append(f"  mean / max        {rep.latency_mean:.3e} / "
                 f"{rep.latency_max:.3e}")
    lines.append(f"throughput          {rep.throughput:.1f} req/s over "
                 f"{rep.makespan:.3e} s makespan")
    hist = ", ".join(f"{k}x{v}" for k, v in sorted(rep.batch_hist.items()))
    lines.append(f"batches             {rep.n_batches}  "
                 f"(mean width {rep.batch_mean:.2f}; {hist})")
    if rep.deduped:
        lines.append(f"  deduped           {rep.deduped} duplicate requests "
                     f"coalesced")
    if rep.n_replayed:
        lines.append(f"  replayed          {rep.n_replayed} batches on the "
                     f"compiled fast path")
    if rep.n_verified:
        lines.append(f"integrity           {rep.n_verified} sampled, "
                     f"{rep.n_integrity_failures} failures")
    lines.append(f"queue depth         max {rep.queue_depth_max}, "
                 f"mean {rep.queue_depth_mean:.2f}")
    lines.append(f"cache               {rep.cache_hits} hits / "
                 f"{rep.cache_misses} misses "
                 f"(hit rate {100.0 * rep.cache_hit_rate:.1f}%), "
                 f"{rep.cache_evictions} evictions, "
                 f"{rep.cache_resident_bytes} B resident "
                 f"(peak {rep.cache_peak_bytes} B)")
    lines.append(f"server time         setup {rep.setup_time:.3e} s, "
                 f"solve {rep.solve_time:.3e} s")
    if rep.profiled:
        lines.append(f"communication       {rep.comm_msgs} msgs, "
                     f"{rep.comm_bytes:.0f} B, "
                     f"alpha {rep.comm_alpha_time:.3e} s, "
                     f"beta {rep.comm_beta_time:.3e} s")
    return "\n".join(lines)
