"""Observability layer: metrics registry, critical-path analysis, profiles.

The paper's claims are communication-accounting claims (one inter-grid
synchronization instead of ``O(log Pz)``, sparse allreduce touching only
ancestor subvectors, binary-tree vs flat broadcast cost); this package
makes them *measurable* on every run instead of derivable from trace JSON:

- :class:`~repro.obs.metrics.MetricsRegistry` — per-rank, per-phase
  counters (messages, bytes, flops, α/β time, overheads, idle time,
  retransmits) plus the send→recv dependency graph, recorded automatically
  by ``Simulator(metrics=...)`` without perturbing virtual clocks;
- :func:`~repro.obs.critpath.analyze_critical_path` — the binding chain of
  a recorded run: longest dependency path, per-rank slack, dominant phase;
- :func:`~repro.obs.render.format_profile` — the ``repro profile`` tables.

Entry points: ``SpTRSVSolver.solve(b, profile=True)`` attaches a registry
to ``outcome.report.metrics``; the ``repro profile`` CLI subcommand and the
benchmarks' ``--profile`` flag render it.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.critpath import (ChainStep, CriticalPathReport,
                                analyze_critical_path)
from repro.obs.metrics import (PHASE_NAMES, MessageRecord, MetricsRegistry,
                               OpRecord, PhaseStats, SyncStats, phase_name)
from repro.obs.render import (format_profile, phase_table, sync_table,
                              utilization_summary)

__all__ = [
    "MetricsRegistry",
    "PhaseStats",
    "MessageRecord",
    "OpRecord",
    "SyncStats",
    "PHASE_NAMES",
    "phase_name",
    "analyze_critical_path",
    "CriticalPathReport",
    "ChainStep",
    "format_profile",
    "phase_table",
    "sync_table",
    "utilization_summary",
]
