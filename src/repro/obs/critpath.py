"""Critical-path analysis over a *recorded* simulation.

:mod:`repro.perf.critical_path` bounds any schedule from below using only
the task DAG; this module answers the complementary question about one
*actual* run: which chain of operations — compute, message injection,
in-flight network time, receive overhead — determined the makespan, and
which phase dominates it.

The walk uses the send/recv dependency graph a
:class:`~repro.obs.metrics.MetricsRegistry` records.  Starting from the
last operation of the slowest rank it steps backwards; at a receive whose
message arrived *after* the rank started waiting (a binding wait) it jumps
to the sender's injection op, inserting a ``"wire"`` step for the in-flight
α-β time.  The resulting chain is contiguous: its summed durations equal
the makespan exactly (asserted by the tests), so "where did the time go"
has a complete, mechanical answer — e.g. the proposed algorithm's single
inter-grid synchronization shows up as exactly one block of ``z``-phase
wire/wait steps on the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry, phase_name


@dataclass(frozen=True)
class ChainStep:
    """One link of the critical chain (disjoint, contiguous intervals).

    ``kind`` is ``"compute"``, ``"send"``, ``"wait"`` (receive overhead
    after a binding arrival, or a non-binding wait consumed locally) or
    ``"wire"`` (message in flight between two ranks; ``rank`` is the
    sender, ``peer`` the receiver).
    """

    rank: int
    t0: float
    t1: float
    kind: str
    phase: str
    category: str
    peer: int | None = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CriticalPathReport:
    """The longest (binding) chain of one recorded run."""

    makespan: float
    steps: list[ChainStep]
    slack: np.ndarray                  # per-rank schedule slack
    phase_time: dict[str, float] = field(default_factory=dict)
    kind_time: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.phase_time:
            for s in self.steps:
                self.phase_time[s.phase] = \
                    self.phase_time.get(s.phase, 0.0) + s.duration
                self.kind_time[s.kind] = \
                    self.kind_time.get(s.kind, 0.0) + s.duration

    @property
    def dominant_phase(self) -> str:
        return max(self.phase_time, key=self.phase_time.get)

    @property
    def cross_rank_hops(self) -> int:
        """Number of rank-to-rank handoffs (wire steps) on the chain."""
        return sum(1 for s in self.steps if s.kind == "wire")

    @property
    def ranks_touched(self) -> list[int]:
        """Distinct ranks on the chain, in chain order."""
        seen: list[int] = []
        for s in self.steps:
            if s.kind != "wire" and (not seen or seen[-1] != s.rank):
                if s.rank not in seen:
                    seen.append(s.rank)
        return seen

    def coverage(self) -> float:
        """Summed chain time over the makespan (1.0 for a complete walk)."""
        total = sum(s.duration for s in self.steps)
        return total / self.makespan if self.makespan > 0 else 1.0

    def summary(self) -> str:
        lines = [
            f"critical path: {self.makespan * 1e3:.3f} ms over "
            f"{len(self.steps)} steps, {self.cross_rank_hops} cross-rank "
            f"hops, {len(self.ranks_touched)} rank(s)"]
        for ph, t in sorted(self.phase_time.items(),
                            key=lambda kv: -kv[1]):
            lines.append(f"  phase {phase_name(ph):<12s}: "
                         f"{t * 1e3:9.3f} ms ({t / self.makespan:6.1%})")
        for kind in ("compute", "wait", "send", "wire"):
            t = self.kind_time.get(kind, 0.0)
            if t:
                lines.append(f"  {kind:<18s}: {t * 1e3:9.3f} ms "
                             f"({t / self.makespan:6.1%})")
        sl = self.slack
        lines.append(f"  slack: min {sl.min() * 1e3:.3f} ms "
                     f"(rank {int(sl.argmin())}), "
                     f"max {sl.max() * 1e3:.3f} ms (rank {int(sl.argmax())})")
        return "\n".join(lines)


def analyze_critical_path(reg: MetricsRegistry) -> CriticalPathReport:
    """Walk the recorded dependency graph back from the slowest rank.

    Requires an event-complete registry (``reg.complete_timeline``); a
    registry holding merged GPU summaries has counters but no per-op
    timeline and raises ``ValueError``.
    """
    if not reg.complete_timeline:
        raise ValueError(
            "critical path needs an event-level timeline; this registry "
            "holds merged summaries (GPU dataflow phases) — counters and "
            "sync points remain available")
    if reg.nranks == 0 or all(not ops for ops in reg.ops):
        raise ValueError("registry holds no recorded operations")

    finish = reg.finish_times()
    # Per-rank chronological ops; map seq -> (rank, op index) for sends.
    ops = [sorted(r_ops, key=lambda o: (o.t0, o.t1)) for r_ops in reg.ops]
    send_at: dict[int, tuple[int, int]] = {}
    for r in range(reg.nranks):
        for i, op in enumerate(ops[r]):
            if op.kind == "send" and op.seq is not None:
                send_at[op.seq] = (r, i)

    rank = int(np.argmax(finish))
    i = len(ops[rank]) - 1
    steps: list[ChainStep] = []
    guard = sum(len(o) for o in ops) + len(reg.messages) + 1

    while i >= 0 and guard > 0:
        guard -= 1
        op = ops[rank][i]
        if op.kind == "wait" and op.seq is not None:
            msg = reg.messages.get(op.seq)
            arrival = msg.arrival if msg is not None else None
            binding = (msg is not None and op.seq in send_at
                       and arrival is not None and arrival > op.t0)
            if binding:
                # Receive overhead after the arrival, then the wire, then
                # continue on the sender at its injection op.
                steps.append(ChainStep(rank, arrival, op.t1, "wait",
                                       op.phase, op.category, peer=msg.src))
                steps.append(ChainStep(msg.src, msg.t_send1, arrival,
                                       "wire", msg.phase, msg.category,
                                       peer=msg.dst))
                rank, i = send_at[op.seq]
                continue
        if op.t1 > op.t0:
            steps.append(ChainStep(rank, op.t0, op.t1, op.kind, op.phase,
                                   op.category, peer=op.peer))
        i -= 1

    steps.reverse()
    return CriticalPathReport(makespan=float(finish.max()), steps=steps,
                              slack=reg.slack())
