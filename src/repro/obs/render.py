"""Human-readable rendering of recorded metrics (`repro profile`).

Turns a :class:`~repro.obs.metrics.MetricsRegistry` into the paper-style
per-phase communication-accounting tables: messages / bytes / flops /
compute / α-β / wait per ``(phase, category)`` label, the named inter-grid
synchronization points (the "1 vs O(log Pz)" claim as a printed number),
a rank-utilization summary, and the recorded-run critical path.
"""

from __future__ import annotations

from repro.obs.critpath import analyze_critical_path
from repro.obs.metrics import MetricsRegistry, phase_name


def _fmt_bytes(b: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if b < 1024.0 or unit == "GiB":
            return f"{b:8.1f} {unit}"
        b /= 1024.0
    return f"{b:8.1f} GiB"  # pragma: no cover - loop always returns


def _fmt_flops(f: float) -> str:
    for unit in ("", "K", "M", "G"):
        if f < 1e3 or unit == "G":
            return f"{f:7.1f} {unit:>1s}"
        f /= 1e3
    return f"{f:7.1f} G"  # pragma: no cover - loop always returns


def phase_table(reg: MetricsRegistry) -> str:
    """Per-(phase, category) accounting table, summed over ranks."""
    header = (f"{'phase':<12s} {'cat':<5s} {'msgs':>8s} {'bytes':>12s} "
              f"{'flops':>9s} {'compute':>11s} {'alpha':>9s} {'beta':>9s} "
              f"{'ovrhd':>9s} {'wait':>11s}")
    lines = [header, "-" * len(header)]

    def row(label_phase: str, label_cat: str, st) -> str:
        return (f"{label_phase:<12s} {label_cat:<5s} {st.msgs:>8d} "
                f"{_fmt_bytes(st.bytes):>12s} {_fmt_flops(st.flops):>9s} "
                f"{st.compute_time * 1e3:9.3f}ms "
                f"{st.alpha_time * 1e6:7.1f}us {st.beta_time * 1e6:7.1f}us "
                f"{st.overhead_time * 1e6:7.1f}us "
                f"{st.wait_time * 1e3:9.3f}ms")

    for phase, cat in reg.labels():
        lines.append(row(phase_name(phase), cat, reg.stats(phase, cat)))
    lines.append("-" * len(header))
    lines.append(row("total", "", reg.stats()))
    total = reg.stats()
    if total.retransmits or total.acks:
        lines.append(f"{'':<12s} {'':<5s} retransmits {total.retransmits}, "
                     f"acks {total.acks}")
    return "\n".join(lines)


def sync_table(reg: MetricsRegistry) -> str:
    """The named inter-grid synchronization points of the run."""
    pts = reg.sync_points()
    lines = [f"inter-grid synchronization points: {len(pts)}"]
    for s in pts.values():
        lines.append(
            f"  {s.name:<14s}: {s.msgs:6d} msgs, {_fmt_bytes(s.bytes)}, "
            f"{len(s.ranks)} ranks, "
            f"[{s.t_first * 1e3:.3f} .. {s.t_last * 1e3:.3f}] ms")
    return "\n".join(lines)


def utilization_summary(reg: MetricsRegistry) -> str:
    """Per-rank busy fraction and load-imbalance view (Figs. 7-8 style)."""
    util = reg.utilization()
    finish = reg.finish_times()
    comp = [reg.stats(rank=r).compute_time for r in range(reg.nranks)]
    mean_c = sum(comp) / len(comp) if comp else 0.0
    imbalance = (max(comp) / mean_c) if mean_c > 0 else 1.0
    return (
        f"rank utilization: busy {util.mean():.1%} mean "
        f"(min {util.min():.1%} rank {int(util.argmin())}, "
        f"max {util.max():.1%} rank {int(util.argmax())}); "
        f"load imbalance {imbalance:.2f}x; "
        f"finish spread [{finish.min() * 1e3:.3f} .. "
        f"{finish.max() * 1e3:.3f}] ms")


def format_profile(reg: MetricsRegistry, critical_path: bool = True) -> str:
    """Full profile text: tables + sync points + utilization (+ the
    critical path when the registry carries an event-level timeline)."""
    parts = [
        f"profile over {reg.nranks} ranks, makespan "
        f"{reg.makespan * 1e3:.3f} ms",
        "",
        phase_table(reg),
        "",
        sync_table(reg),
        "",
        utilization_summary(reg),
    ]
    if critical_path:
        if reg.complete_timeline:
            parts += ["", analyze_critical_path(reg).summary()]
        else:
            parts += ["", "critical path: unavailable (merged GPU phases "
                          "have no event-level timeline)"]
    return "\n".join(parts)
