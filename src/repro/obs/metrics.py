"""Structured metrics collection for simulated solves.

A :class:`MetricsRegistry` attached via ``Simulator(metrics=...)`` (or, one
level up, ``SpTRSVSolver.solve(profile=True)``) records every operation the
scheduler processes — sends, receive waits, compute — into per-rank,
per-``(phase, category)`` counters *plus* a full per-message record stream.
The counters power the ``repro profile`` tables (messages, bytes, flops,
α/β time, overheads, idle time, retransmits); the message records carry the
send→recv dependency graph consumed by
:mod:`repro.obs.critpath` and the Chrome-trace flow annotations of
:func:`repro.comm.trace_export.to_chrome_trace`.

Collection is strictly observational: the registry is only ever *told*
what the scheduler already decided, so virtual clocks with metrics enabled
are bit-identical to a metrics-off run (asserted by the test suite).

Two labels scope every record:

- ``phase`` — the coarse solver phase set with ``ctx.set_phase`` /
  ``ctx.phase_scope`` (``"l"``, ``"z"``, ``"u"``; display names in
  :data:`PHASE_NAMES`).
- ``sync`` — the *inter-grid synchronization point* set with
  ``ctx.set_sync``.  The solvers name each rendezvous structure once
  (the proposed algorithm's single ``"allreduce"``; the baseline's
  ``"level-k"`` per elimination-tree level, whose L-reduce and mirrored
  U-broadcast halves share the name exactly as the allreduce's reduce and
  broadcast halves do).  ``MetricsRegistry.sync_points()`` therefore counts
  the paper's "one sync vs O(log Pz)" claim mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Display names for the solvers' phase labels (tables stay keyed by the raw
# labels so they line up with ``SimResult.time_by(phase=...)``).
PHASE_NAMES = {
    "l": "L-solve",
    "z": "inter-grid",
    "u": "U-solve",
    "": "(setup)",
    "reference": "reference",
}


def phase_name(phase: str) -> str:
    """Human-readable name of a solver phase label."""
    return PHASE_NAMES.get(phase, phase)


@dataclass
class PhaseStats:
    """Accumulated counters for one ``(phase, category)`` label on one rank.

    Times are virtual seconds.  ``overhead_time`` is CPU time spent on
    message handling (send injection + receive matching/ack); ``wait_time``
    is idle time blocked on arrivals; ``alpha_time``/``beta_time`` split
    each sent message's in-flight latency into its α (per-message) and β
    (per-byte) components of the machine's network model.
    """

    msgs: int = 0
    bytes: float = 0.0
    flops: float = 0.0
    compute_time: float = 0.0
    overhead_time: float = 0.0
    wait_time: float = 0.0
    alpha_time: float = 0.0
    beta_time: float = 0.0
    retransmits: int = 0
    acks: int = 0

    def add(self, other: "PhaseStats") -> None:
        self.msgs += other.msgs
        self.bytes += other.bytes
        self.flops += other.flops
        self.compute_time += other.compute_time
        self.overhead_time += other.overhead_time
        self.wait_time += other.wait_time
        self.alpha_time += other.alpha_time
        self.beta_time += other.beta_time
        self.retransmits += other.retransmits
        self.acks += other.acks

    @property
    def comm_time(self) -> float:
        """Total communication-attributed time (overhead + idle wait)."""
        return self.overhead_time + self.wait_time


@dataclass
class MessageRecord:
    """One point-to-point message: the send side, joined with its delivery.

    ``seq`` is the simulator's global message sequence number (the join
    key).  ``t_send0``/``t_send1`` bracket the sender's injection overhead;
    ``arrival`` is when the payload reached the receiver's mailbox and
    ``t_deliver`` when the receiver finished consuming it (``None`` until
    delivered — messages dropped by an unreliable fabric never are).
    """

    seq: int
    src: int
    dst: int
    nbytes: int
    phase: str
    category: str
    sync: str
    t_send0: float
    t_send1: float
    alpha: float
    beta_time: float
    arrival: float | None = None
    t_deliver: float | None = None
    recv_wait: float = 0.0

    @property
    def delivered(self) -> bool:
        return self.t_deliver is not None


@dataclass
class OpRecord:
    """One scheduled operation on one rank's timeline.

    ``kind`` is ``"compute"``, ``"send"`` or ``"wait"`` (a receive,
    including its matching overhead; ``seq`` is the consumed message for
    waits and the emitted message for sends, ``None`` for timeout waits and
    dropped sends).
    """

    t0: float
    t1: float
    kind: str
    phase: str
    category: str
    seq: int | None = None
    peer: int | None = None


@dataclass
class SyncStats:
    """Aggregate over one named inter-grid synchronization point."""

    name: str
    msgs: int = 0
    bytes: float = 0.0
    ranks: set = field(default_factory=set)
    t_first: float = float("inf")
    t_last: float = 0.0


class MetricsRegistry:
    """Per-rank, per-phase observability store for one simulation run.

    Create one, pass it to ``Simulator(metrics=reg)`` (or let
    ``SpTRSVSolver.solve(profile=True)`` do both), then query it after the
    run.  The registry records:

    - ``counters[rank][(phase, category)]`` → :class:`PhaseStats`
    - ``ops[rank]`` → chronological :class:`OpRecord` timeline
    - ``messages[seq]`` → :class:`MessageRecord` dependency edges
    - ``sync_points()`` → named inter-grid rendezvous aggregates

    A registry is reset by ``start_run`` and therefore describes exactly
    one simulation; reusing it on a second run discards the first run's
    data.
    """

    def __init__(self):
        self.nranks = 0
        self.machine = None
        self.counters: list[dict[tuple[str, str], PhaseStats]] = []
        self.ops: list[list[OpRecord]] = []
        self.messages: dict[int, MessageRecord] = {}
        self._syncs: dict[str, SyncStats] = {}
        self._phase_order: list[str] = []
        # True while every recorded interval came from the event-level
        # hooks; merged summaries (the GPU dataflow phases) clear it, which
        # disables the critical-path walk but keeps all counters valid.
        self.complete_timeline = True

    # -- lifecycle (called by the simulator) --------------------------------

    def start_run(self, nranks: int, machine) -> None:
        """Reset and bind to a run of ``nranks`` ranks on ``machine``."""
        self.nranks = nranks
        self.machine = machine
        self.counters = [{} for _ in range(nranks)]
        self.ops = [[] for _ in range(nranks)]
        self.messages = {}
        self._syncs = {}
        self._phase_order = []
        self.complete_timeline = True

    def _stats(self, rank: int, phase: str, category: str) -> PhaseStats:
        key = (phase, category)
        st = self.counters[rank].get(key)
        if st is None:
            st = self.counters[rank][key] = PhaseStats()
            if phase not in self._phase_order:
                self._phase_order.append(phase)
        return st

    def _sync(self, name: str) -> SyncStats:
        st = self._syncs.get(name)
        if st is None:
            st = self._syncs[name] = SyncStats(name)
        return st

    # -- recording hooks (called by the simulator; observational only) ------

    def on_send(self, rank: int, phase: str, sync: str, category: str,
                seq: int | None, dst: int, nbytes: int, t0: float, t1: float,
                alpha: float, beta_time: float) -> None:
        st = self._stats(rank, phase, category)
        st.msgs += 1
        st.bytes += nbytes
        st.overhead_time += t1 - t0
        st.alpha_time += alpha
        st.beta_time += beta_time
        self.ops[rank].append(OpRecord(t0, t1, "send", phase, category,
                                       seq=seq, peer=dst))
        if seq is not None:
            self.messages[seq] = MessageRecord(
                seq, rank, dst, nbytes, phase, category, sync, t0, t1,
                alpha, beta_time)
        if sync:
            ss = self._sync(sync)
            ss.msgs += 1
            ss.bytes += nbytes
            ss.ranks.add(rank)
            ss.ranks.add(dst)
            ss.t_first = min(ss.t_first, t0)
            ss.t_last = max(ss.t_last, t1)

    def on_compute(self, rank: int, phase: str, category: str,
                   t0: float, t1: float, flops: float) -> None:
        st = self._stats(rank, phase, category)
        st.compute_time += t1 - t0
        st.flops += flops
        self.ops[rank].append(OpRecord(t0, t1, "compute", phase, category))

    def on_wait(self, rank: int, phase: str, sync: str, category: str,
                t0: float, arrival: float | None, t1: float,
                seq: int | None, src: int | None) -> None:
        """A receive completed (or timed out, ``seq is None``) at ``t1``.

        ``arrival`` is the consumed message's mailbox arrival; the idle
        portion of the interval is ``min(max(arrival, t0), t1) - t0`` and
        the rest is matching/ack overhead.
        """
        st = self._stats(rank, phase, category)
        if arrival is None:
            idle = t1 - t0
        else:
            idle = min(max(arrival, t0), t1) - t0
        st.wait_time += idle
        st.overhead_time += (t1 - t0) - idle
        self.ops[rank].append(OpRecord(t0, t1, "wait", phase, category,
                                       seq=seq, peer=src))
        if seq is not None:
            m = self.messages.get(seq)
            if m is not None:
                m.arrival = arrival
                m.t_deliver = t1
                m.recv_wait = idle
        if sync:
            ss = self._sync(sync)
            ss.t_last = max(ss.t_last, t1)

    def on_retransmit(self, rank: int, phase: str, category: str,
                      nbytes: int) -> None:
        st = self._stats(rank, phase, category)
        st.retransmits += 1
        st.msgs += 1
        st.bytes += nbytes

    def on_ack(self, rank: int, phase: str, category: str,
               nbytes: int) -> None:
        st = self._stats(rank, phase, category)
        st.acks += 1
        st.bytes += nbytes

    def add_external(self, rank: int, phase: str, category: str,
                     compute_time: float = 0.0, wait_time: float = 0.0,
                     flops: float = 0.0, msgs: int = 0,
                     nbytes: float = 0.0) -> None:
        """Merge an externally-simulated interval (the GPU dataflow phases).

        Externally merged time has no event-level timeline, so the
        critical-path walk is disabled for this registry
        (``complete_timeline`` becomes ``False``); all counter-based
        queries remain exact.
        """
        st = self._stats(rank, phase, category)
        st.compute_time += compute_time
        st.wait_time += wait_time
        st.flops += flops
        st.msgs += msgs
        st.bytes += nbytes
        self.complete_timeline = False

    # -- queries -------------------------------------------------------------

    def phases(self) -> list[str]:
        """Phase labels in first-recorded order."""
        return list(self._phase_order)

    def labels(self) -> list[tuple[str, str]]:
        """All ``(phase, category)`` labels, phase-major, first-seen order."""
        cats: dict[str, list[str]] = {p: [] for p in self._phase_order}
        for rank_counters in self.counters:
            for (p, c) in rank_counters:
                if c not in cats[p]:
                    cats[p].append(c)
        return [(p, c) for p in self._phase_order for c in sorted(cats[p])]

    def stats(self, phase: str | None = None, category: str | None = None,
              rank: int | None = None) -> PhaseStats:
        """Aggregate :class:`PhaseStats` over the matching labels/ranks."""
        out = PhaseStats()
        ranks = range(self.nranks) if rank is None else (rank,)
        for r in ranks:
            for (p, c), st in self.counters[r].items():
                if (phase is None or p == phase) and \
                        (category is None or c == category):
                    out.add(st)
        return out

    def per_rank_stats(self, phase: str | None = None,
                       category: str | None = None) -> list[PhaseStats]:
        return [self.stats(phase, category, rank=r)
                for r in range(self.nranks)]

    def finish_times(self) -> np.ndarray:
        """Per-rank completion clock (last recorded interval end)."""
        out = np.zeros(self.nranks)
        for r in range(self.nranks):
            ends = [op.t1 for op in self.ops[r]]
            total = 0.0
            st = self.stats(rank=r)
            # Externally merged phases have no ops; fall back to summed time.
            total = (st.compute_time + st.overhead_time + st.wait_time)
            out[r] = max(ends) if ends and self.complete_timeline else max(
                max(ends, default=0.0), total)
        return out

    @property
    def makespan(self) -> float:
        return float(self.finish_times().max()) if self.nranks else 0.0

    def sync_points(self) -> dict[str, SyncStats]:
        """Named inter-grid synchronization points that carried traffic,
        in order of first activity."""
        active = [s for s in self._syncs.values() if s.msgs > 0]
        return {s.name: s for s in sorted(active, key=lambda s: s.t_first)}

    @property
    def nsyncs(self) -> int:
        """Number of distinct inter-grid synchronization points.

        This is the quantity the paper's headline claim is about: 1 for
        the proposed algorithm's single sparse allreduce,
        ``ceil(log2(Pz))`` for the baseline's per-level rendezvous.
        """
        return len(self.sync_points())

    def utilization(self) -> np.ndarray:
        """Per-rank busy fraction: compute time / own finish clock."""
        finish = self.finish_times()
        out = np.zeros(self.nranks)
        for r in range(self.nranks):
            if finish[r] > 0:
                out[r] = self.stats(rank=r).compute_time / finish[r]
        return out

    def slack(self) -> np.ndarray:
        """Per-rank schedule slack: idle wait plus time to the makespan.

        A rank on the critical path has (near-)zero slack; large slack
        marks ranks that could absorb more work.
        """
        finish = self.finish_times()
        mk = finish.max() if self.nranks else 0.0
        return np.array([mk - finish[r] + self.stats(rank=r).wait_time
                         for r in range(self.nranks)])
