"""Small shared helpers used across the repro packages."""

from __future__ import annotations

import numpy as np


def is_power_of_two(x: int) -> bool:
    """Return True if ``x`` is a positive power of two (1, 2, 4, ...)."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2 of a positive power of two.

    Raises ``ValueError`` if ``x`` is not a power of two.
    """
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def as_2d_rhs(b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Normalize a right-hand side to shape ``(n, nrhs)``.

    Returns ``(b2d, was_1d)`` so callers can restore the original shape.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 1:
        return b.reshape(-1, 1), True
    if b.ndim == 2:
        return b, False
    raise ValueError(f"RHS must be 1-D or 2-D, got ndim={b.ndim}")


def matmul_columns(M: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """``M @ Y`` with per-column bit-reproducibility.

    Each column of the product is computed as its own contiguous
    ``(k, 1)`` matmul, so column ``j`` of the result is bit-identical to
    ``M @ Y[:, j:j+1]`` evaluated in isolation.  BLAS does not guarantee
    this for a single ``(m, k) @ (k, nrhs)`` call (wide GEMMs tile the
    summation differently than column GEMMs), and the serving tier's
    batching contract requires it: coalescing single-RHS requests into a
    multi-RHS batch must not change any individual answer.  For one
    column this is exactly ``M @ Y``.
    """
    if Y.ndim != 2 or Y.shape[1] <= 1:
        return M @ Y
    out = np.empty((M.shape[0], Y.shape[1]), dtype=np.result_type(M, Y))
    for j in range(Y.shape[1]):
        out[:, j:j + 1] = M @ np.ascontiguousarray(Y[:, j:j + 1])
    return out


def check_permutation(perm: np.ndarray, n: int) -> None:
    """Validate that ``perm`` is a permutation of ``range(n)``."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        raise ValueError(f"permutation has shape {perm.shape}, expected ({n},)")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ValueError("not a permutation: some indices missing")


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of permutation ``perm`` (iperm[perm[i]] = i)."""
    perm = np.asarray(perm)
    iperm = np.empty_like(perm)
    iperm[perm] = np.arange(len(perm))
    return iperm
