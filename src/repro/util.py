"""Small shared helpers used across the repro packages."""

from __future__ import annotations

import numpy as np


def is_power_of_two(x: int) -> bool:
    """Return True if ``x`` is a positive power of two (1, 2, 4, ...)."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2 of a positive power of two.

    Raises ``ValueError`` if ``x`` is not a power of two.
    """
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def as_2d_rhs(b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Normalize a right-hand side to shape ``(n, nrhs)``.

    Returns ``(b2d, was_1d)`` so callers can restore the original shape.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 1:
        return b.reshape(-1, 1), True
    if b.ndim == 2:
        return b, False
    raise ValueError(f"RHS must be 1-D or 2-D, got ndim={b.ndim}")


def check_permutation(perm: np.ndarray, n: int) -> None:
    """Validate that ``perm`` is a permutation of ``range(n)``."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        raise ValueError(f"permutation has shape {perm.shape}, expected ({n},)")
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        raise ValueError("not a permutation: some indices missing")


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse of permutation ``perm`` (iperm[perm[i]] = i)."""
    perm = np.asarray(perm)
    iperm = np.empty_like(perm)
    iperm[perm] = np.arange(len(perm))
    return iperm
