"""Declarative adversarial scenarios and their degradation contracts.

A :class:`Scenario` is a fully seeded description of one attack or
degraded-mode episode against the serving tier: a sequence of workload
:class:`PhaseSpec` phases (baseline traffic, the disturbance itself,
recovery traffic), optional fabric :class:`FaultPhaseSpec` windows that
escalate mid-run, the service/policy knobs the episode runs under, and a
:class:`DegradationContract` — the machine-checked statement of what
"degrading gracefully" means for that episode.

Determinism is the design center: the ONLY randomness source in a
scenario is ``Scenario.seed``.  Phases carry no seeds of their own; the
runner derives every stream (arrivals, matrix mix, RHS seeds, fault-plan
seeds) from ``(seed, phase index)``, which is what makes the lint rule
RPR006 (no literal seeds outside the ``Scenario`` spec) structurally
satisfiable and a replay of the same scenario bit-identical.

The contract splits into two tiers:

- **hard** guarantees hold at *any* seed — every shed is typed, no
  accepted request ever receives a corrupted solution
  (``n_integrity_failures == 0``), no untyped exception escapes.  The
  differential fuzzer re-checks these on freshly drawn seeds.
- **soft** SLO bounds quantify graceful degradation *at the declared
  seed* — minimum completion fraction, required/forbidden shed reasons,
  p95 recovery within a factor of the pre-disturbance baseline, bounded
  queue drain time after the disturbance ends.

:class:`ScenarioReport` is the runner's artifact: one JSON document per
episode, byte-identical across replays, diffed by the ``scenario-smoke``
CI job.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

SCENARIO_VERSION = 1


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase of a scenario (no seed — derived by the runner).

    ``dup_factor`` repeats every generated request that many times with
    fresh ids (the duplicate-storm knob: identical RHS and deadline, so
    the scheduler's dedup coalesces them).  ``poison_rhs_fraction``
    poisons that fraction of requests' right-hand sides with kinds drawn
    from ``poison_rhs_kinds``.  ``disturbance`` marks the phase as part
    of the attack window for the contract's recovery accounting.
    ``gap_after`` inserts idle virtual time before the next phase.
    """

    label: str
    n_requests: int
    rate: float                   # mean arrivals per virtual second
    mix: tuple = (("s2D9pt2048", "tiny", 1.0),)
    deadline: float = 0.02        # relative completion budget, seconds
    priorities: tuple = ((0, 1.0),)
    poison_rhs_fraction: float = 0.0
    poison_rhs_kinds: tuple = ("poison-nan",)
    dup_factor: int = 1
    gap_after: float = 0.0
    disturbance: bool = False

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.dup_factor < 1:
            raise ValueError("dup_factor must be >= 1")
        if not 0.0 <= self.poison_rhs_fraction <= 1.0:
            raise ValueError("poison_rhs_fraction must be in [0, 1]")


@dataclass(frozen=True)
class FaultPhaseSpec:
    """One fabric-fault window ``[t0, t1)`` in service virtual time.

    ``kind``/``rate`` use the chaos coordinates of
    :func:`repro.comm.chaos.plan_for`; ``solve_makespan`` is the
    time-scale hint for crash instants and delay spikes (a typical
    single-batch solve, not the window length — fault plans act on each
    batch's internal simulator clock).  The plan's seed is derived from
    the scenario seed by the runner.
    """

    t0: float
    t1: float
    kind: str                     # drop/duplicate/delay/reorder/corrupt/crash
    rate: float
    solve_makespan: float = 2e-3

    def __post_init__(self):
        if not self.t0 < self.t1:
            raise ValueError(f"fault window [{self.t0}, {self.t1}) is empty")
        if self.rate < 0:
            raise ValueError("rate must be >= 0")


@dataclass(frozen=True)
class DegradationContract:
    """Machine-checked definition of graceful degradation for a scenario.

    Hard tier (any seed): ``max_integrity_failures`` (always 0 in the
    catalog — an accepted request must never receive a corrupted
    solution), every shed typed, no untyped exception.  Soft tier (the
    declared seed): the quantitative knobs below; a knob at its default
    is inactive and emits no check.

    ``recovery_p95_factor`` compares the p95 latency of completions that
    *arrived after* the disturbance window against those that arrived
    before it; ``max_drain_time`` bounds ``makespan - disturbance end``
    — the service must finish all accepted work within bounded virtual
    time of the attack stopping.
    """

    max_integrity_failures: int = 0
    min_completed_fraction: float = 0.0
    max_shed_fraction: float = 1.0
    min_deadline_met_rate: float = 0.0
    require_sheds: tuple = ()     # RejectReason values that MUST appear
    forbid_sheds: tuple = ()      # RejectReason values that must NOT appear
    min_deduped: int = 0
    min_cache_evictions: int = 0
    recovery_p95_factor: float | None = None
    max_drain_time: float | None = None


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, replayable adversarial episode.

    ``seed`` is the single randomness root (see module docstring).  The
    execution knobs mirror the serving tier's own configuration surface:
    process grid, algorithm, batching policy, cache bound, resilience
    envelope and the sampled integrity-verification fraction.
    """

    name: str
    summary: str
    seed: int
    phases: tuple                 # (PhaseSpec, ...)
    fault_phases: tuple = ()      # (FaultPhaseSpec, ...)
    contract: DegradationContract = DegradationContract()
    workers: int = 1              # > 1 runs the episode on a fleet
    worker_crash: tuple = ()      # ((worker, t_crash, t_recover), ...)
    grid: tuple = (1, 1, 2)
    machine: str = "cori-haswell"
    algorithm: str = "new3d"
    max_batch: int = 8
    max_wait: float = 1e-3
    queue_bound: int = 64
    cache_entries: int | None = None
    resilience: bool = False
    verify_fraction: float = 0.5
    tags: tuple = ()

    def __post_init__(self):
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if not 0.0 <= self.verify_fraction <= 1.0:
            raise ValueError("verify_fraction must be in [0, 1]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        for w, tc, tr in self.worker_crash:
            if not 0 <= w < self.workers:
                raise ValueError(f"crash names worker {w} of a "
                                 f"{self.workers}-worker fleet")
            if not tc < tr:
                raise ValueError(f"crash window [{tc}, {tr}) is empty")


@dataclass
class ScenarioReport:
    """Deterministic artifact of one scenario run (JSON-diffable).

    ``checks`` holds one record per evaluated contract clause:
    ``{"check", "hard", "passed", "detail"}``.  ``hard_ok`` is the
    any-seed guarantee (hard clauses only, and no escaped exception);
    ``passed`` additionally requires every soft clause.
    """

    scenario: str
    seed: int
    version: int = SCENARIO_VERSION
    n_requests: int = 0
    slo: dict = field(default_factory=dict)       # SLOReport as a dict
    windows: dict = field(default_factory=dict)   # disturbance/recovery stats
    checks: list = field(default_factory=list)
    error: str = ""

    @property
    def hard_ok(self) -> bool:
        return not self.error and all(
            c["passed"] for c in self.checks if c["hard"])

    @property
    def passed(self) -> bool:
        return not self.error and all(c["passed"] for c in self.checks)

    def to_json(self) -> str:
        doc = asdict(self)
        doc["hard_ok"] = self.hard_ok
        doc["passed"] = self.passed
        return json.dumps(doc, indent=1, sort_keys=True)

    def summary_line(self) -> str:
        verdict = ("ERROR" if self.error
                   else "PASS" if self.passed
                   else "HARD-OK" if self.hard_ok else "FAIL")
        nfail = sum(1 for c in self.checks if not c["passed"])
        return (f"{self.scenario:<20s} seed={self.seed:<6d} "
                f"req={self.n_requests:<4d} "
                f"done={self.slo.get('n_completed', 0):<4} "
                f"shed={self.slo.get('n_shed', 0):<4} "
                f"{verdict}" + (f" ({nfail} check(s) failed)" if nfail
                                else ""))
