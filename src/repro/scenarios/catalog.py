"""The named adversarial-scenario catalog.

Each entry is a fully declarative :class:`~repro.scenarios.spec.Scenario`
— attack shape, service knobs, degradation contract and ONE seed.  Per
the scenario determinism convention (lint rule RPR006), no workload or
fault-plan constructor in this package takes a literal seed: every
stream derives from ``Scenario.seed``, so a catalog entry is replayable
bit-for-bit from its name alone.

The catalog spans the attack classes the serving tier must degrade
gracefully under:

- **flash-crowd** — a 25x arrival burst against a bounded queue;
- **hot-key-flip** — popularity flips between two matrices with a
  single-entry factorization cache (worst-case thrash);
- **slow-loris** — a trickle of far-deadline requests squatting queue
  slots until a high-priority burst displaces them;
- **poison-rhs** / **poison-matrix** — malformed right-hand sides and
  singular/NaN/ill-conditioned/oversized matrices mixed into legitimate
  traffic;
- **duplicate-storm** — every request replayed several times (retry
  storm); the scheduler must coalesce, not amplify;
- **byzantine-fabric** — the fabric degrades mid-run (corrupt, then
  crash, then heals) under the resilience envelope;
- **displacement-flood** — a high-priority flood displacing queued
  low-priority work at admission;
- **cache-thrash** — a wide matrix mix against a two-entry cache;
- **worker-crash-storm** — two of a three-worker fleet crash mid-run;
  in-flight work re-routes, the recovered incarnations restart with
  cold caches, and recovery p95 must stay bounded.

Calibration note: virtual single-batch solves on the tiny suite run
~0.2–1.2 ms, so rates around 2 000 req/s are sustainable baseline load
and 50 000 req/s is a flood; deadlines are tens of milliseconds.
"""

from __future__ import annotations

from repro.scenarios.spec import (
    DegradationContract,
    FaultPhaseSpec,
    PhaseSpec,
    Scenario,
)

_M1 = ("s2D9pt2048", "tiny", 1.0)
_M2 = ("nlpkkt80", "tiny", 1.0)
_M3 = ("ldoor", "tiny", 1.0)
_M4 = ("Ga19As19H42", "tiny", 1.0)


def _catalog() -> tuple:
    return (
        Scenario(
            name="flash-crowd",
            summary="25x arrival burst against a bounded queue; shed "
                    "typed, recover p95 and drain after the spike",
            seed=101,
            queue_bound=24,
            phases=(
                PhaseSpec(label="baseline", n_requests=10, rate=2000.0,
                          deadline=0.03),
                PhaseSpec(label="burst", n_requests=60, rate=50000.0,
                          deadline=0.03, disturbance=True, gap_after=0.05),
                PhaseSpec(label="recovery", n_requests=10, rate=2000.0,
                          deadline=0.03),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.3,
                require_sheds=("queue-full",),
                forbid_sheds=("poison-input",),
                recovery_p95_factor=3.0,
                max_drain_time=0.06,
            ),
            tags=("overload", "cheap"),
        ),
        Scenario(
            name="hot-key-flip",
            summary="popularity flips between two matrices with a "
                    "single-entry factorization cache",
            seed=202,
            cache_entries=1,
            phases=(
                PhaseSpec(label="hot-A", n_requests=12, rate=2000.0,
                          mix=(_M1,), deadline=0.06),
                PhaseSpec(label="flip-to-B", n_requests=12, rate=2000.0,
                          mix=(_M2,), deadline=0.06, disturbance=True),
                PhaseSpec(label="flip-back", n_requests=12, rate=2000.0,
                          mix=(_M1,), deadline=0.06),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.9,
                min_cache_evictions=2,
                min_deadline_met_rate=0.8,
            ),
            tags=("cache",),
        ),
        Scenario(
            name="slow-loris",
            summary="far-deadline trickle squats queue slots until a "
                    "high-priority burst displaces it",
            seed=303,
            queue_bound=16,
            phases=(
                PhaseSpec(label="loris", n_requests=20, rate=800.0,
                          deadline=5.0, priorities=((0, 1.0),)),
                PhaseSpec(label="victims", n_requests=30, rate=20000.0,
                          deadline=0.03, priorities=((1, 1.0),),
                          disturbance=True),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.5,
                require_sheds=("displaced",),
            ),
            tags=("overload", "priority"),
        ),
        Scenario(
            name="poison-rhs",
            summary="a third of requests carry NaN/Inf/misshapen "
                    "right-hand sides; shed them typed, solve the rest",
            seed=404,
            phases=(
                PhaseSpec(label="mixed", n_requests=32, rate=2000.0,
                          deadline=0.05, poison_rhs_fraction=0.3,
                          poison_rhs_kinds=("poison-nan", "poison-inf",
                                            "poison-shape",
                                            "poison-empty")),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.5,
                min_deadline_met_rate=0.9,
                require_sheds=("poison-input",),
            ),
            tags=("poison", "cheap"),
        ),
        Scenario(
            name="poison-matrix",
            summary="singular/NaN/ill-conditioned/oversized matrices mixed "
                    "into legitimate traffic",
            seed=505,
            phases=(
                PhaseSpec(label="mixed", n_requests=28, rate=2000.0,
                          deadline=0.06,
                          mix=(("s2D9pt2048", "tiny", 2.0),
                               ("poison-singular", "tiny", 0.5),
                               ("poison-nan", "tiny", 0.5),
                               ("poison-illcond", "tiny", 0.5),
                               ("poison-huge", "tiny", 0.5))),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.35,
                require_sheds=("poison-input",),
            ),
            tags=("poison",),
        ),
        Scenario(
            name="duplicate-storm",
            summary="every request replayed 5x (retry storm); coalesce "
                    "into single solves, never amplify",
            seed=606,
            phases=(
                PhaseSpec(label="storm", n_requests=10, rate=5000.0,
                          deadline=0.03, dup_factor=5),
            ),
            contract=DegradationContract(
                min_completed_fraction=1.0,
                min_deduped=30,
                min_deadline_met_rate=0.95,
            ),
            tags=("dedup", "cheap"),
        ),
        Scenario(
            name="byzantine-fabric",
            summary="the fabric corrupts, then crashes ranks, then heals "
                    "mid-run; the resilience envelope must hold integrity",
            seed=707,
            resilience=True,
            phases=(
                PhaseSpec(label="calm", n_requests=8, rate=2000.0,
                          deadline=0.08),
                PhaseSpec(label="storm", n_requests=16, rate=2000.0,
                          deadline=0.08, disturbance=True),
                PhaseSpec(label="healed", n_requests=8, rate=2000.0,
                          deadline=0.08),
            ),
            fault_phases=(
                FaultPhaseSpec(t0=0.004, t1=0.010, kind="corrupt",
                               rate=0.05),
                FaultPhaseSpec(t0=0.010, t1=0.016, kind="crash", rate=0.3),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.9,
                recovery_p95_factor=4.0,
                max_drain_time=0.1,
            ),
            tags=("faults",),
        ),
        Scenario(
            name="displacement-flood",
            summary="a high-priority flood displaces queued low-priority "
                    "work at admission",
            seed=808,
            queue_bound=12,
            phases=(
                PhaseSpec(label="low-pri", n_requests=16, rate=10000.0,
                          deadline=0.1, priorities=((0, 1.0),)),
                PhaseSpec(label="flood", n_requests=24, rate=50000.0,
                          deadline=0.03, priorities=((1, 1.0),),
                          disturbance=True),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.2,
                require_sheds=("displaced", "queue-full"),
            ),
            tags=("overload", "priority"),
        ),
        Scenario(
            name="cache-thrash",
            summary="a four-matrix mix against a two-entry cache; evict "
                    "and refactor without losing completions",
            seed=909,
            cache_entries=2,
            phases=(
                PhaseSpec(label="thrash", n_requests=32, rate=1500.0,
                          deadline=0.1,
                          mix=(_M1, _M2, _M3, _M4)),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.9,
                min_cache_evictions=4,
            ),
            tags=("cache",),
        ),
        Scenario(
            name="worker-crash-storm",
            summary="two of a three-worker fleet crash mid-run; re-route "
                    "in-flight work, recover with cold caches, keep "
                    "recovery p95 bounded",
            seed=1010,
            workers=3,
            worker_crash=((0, 0.006, 0.012), (2, 0.008, 0.013)),
            phases=(
                PhaseSpec(label="baseline", n_requests=12, rate=2000.0,
                          mix=(_M1, _M2, _M3), deadline=0.08),
                PhaseSpec(label="storm", n_requests=16, rate=2000.0,
                          mix=(_M1, _M2, _M3), deadline=0.08,
                          disturbance=True),
                PhaseSpec(label="recovery", n_requests=12, rate=2000.0,
                          mix=(_M1, _M2, _M3), deadline=0.08),
            ),
            contract=DegradationContract(
                min_completed_fraction=0.9,
                forbid_sheds=("poison-input",),
                recovery_p95_factor=4.0,
                max_drain_time=0.1,
            ),
            tags=("fleet", "faults"),
        ),
    )


CATALOG: dict = {sc.name: sc for sc in _catalog()}


def scenario_names() -> list:
    """Catalog names, in declaration order."""
    return list(CATALOG)


def get_scenario(name: str) -> Scenario:
    try:
        return CATALOG[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r} "
                         f"(have {', '.join(CATALOG)})") from None
