"""``repro.scenarios`` — seeded adversarial & degraded-mode episodes.

The robustness counterpart to ``repro.serve``: a catalog of named,
replayable attack scenarios (flash crowds, poison inputs, duplicate
storms, byzantine fabric faults, ...) that drive the serving tier and
machine-check a *degradation contract* over the deterministic SLO
report — shed gracefully with typed rejections, never corrupt an
accepted answer, recover within bounded virtual time.

Entry points: the ``repro scenarios`` CLI subcommand,
:func:`repro.comm.chaos.scenario_sweep`, and the differential fuzzer's
``kind="scenario"`` cases.  The guided tour is ``docs/SCENARIOS.md``.
"""

from repro.scenarios.catalog import CATALOG, get_scenario, scenario_names
from repro.scenarios.runner import (
    build_fault_schedule,
    build_service,
    build_workload,
    evaluate_contract,
    run_all,
    run_scenario,
)
from repro.scenarios.spec import (
    SCENARIO_VERSION,
    DegradationContract,
    FaultPhaseSpec,
    PhaseSpec,
    Scenario,
    ScenarioReport,
)

__all__ = [
    "CATALOG",
    "DegradationContract",
    "FaultPhaseSpec",
    "PhaseSpec",
    "SCENARIO_VERSION",
    "Scenario",
    "ScenarioReport",
    "build_fault_schedule",
    "build_service",
    "build_workload",
    "evaluate_contract",
    "get_scenario",
    "run_all",
    "run_scenario",
    "scenario_names",
]
