"""Execute scenarios: seeded workload synthesis, service wiring, contracts.

The runner turns a declarative :class:`~repro.scenarios.spec.Scenario`
into one :class:`~repro.serve.SolveService` run and folds the outcome
into a :class:`~repro.scenarios.spec.ScenarioReport`.  Everything is a
pure function of the scenario and the seed:

- :func:`build_workload` synthesizes the request stream phase by phase,
  deriving each phase's RNG from ``(seed, phase index)`` — same
  convention as ``generate_workload``, extended with duplicate fan-out,
  poison RHS injection and inter-phase gaps;
- :func:`build_service` wires the service with the scenario's knobs: the
  poison-aware matrix provider, the escalating
  :class:`~repro.comm.faults.FaultSchedule` (plans built through the
  chaos coordinates of :func:`repro.comm.chaos.plan_for`), runtime
  invariants on, and sampled integrity verification;
- :func:`run_scenario` runs it (catching any escaped exception as a hard
  contract failure) and evaluates the degradation contract;
- :func:`run_all` is the sweep used by the CLI and CI smoke job.

Running at a non-declared seed (``run_scenario(sc, seed=...)``) is how
the differential fuzzer stresses the *hard* contract tier on fresh
seeds; soft SLO bounds are calibrated to the declared seed only.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import replace

import numpy as np

from repro.comm.chaos import plan_for
from repro.comm.faults import FaultSchedule
from repro.core.solver import Resilience
from repro.matrices import resolve_matrix
from repro.scenarios.spec import DegradationContract, Scenario, ScenarioReport
from repro.serve import (
    BatchPolicy,
    FactorizationCache,
    Request,
    RejectReason,
    ServeResult,
    ServiceConfig,
    SolveService,
    Workload,
)


def _phase_rng(seed: int, phase_index: int) -> np.random.Generator:
    """The one RNG-derivation convention every phase stream uses."""
    return np.random.default_rng([seed, phase_index])


def build_workload(sc: Scenario) -> Workload:
    """Synthesize the scenario's request stream; deterministic in seed.

    Per-request draw order within a phase is fixed (inter-arrival, matrix
    pick, priority pick, deadline slack, RHS seed, poison decision) so
    the stream is stable against unused distributions.  Duplicates share
    their original's RHS seed/kind and deadline — the scheduler's dedup
    key — under fresh ids.  ``meta["disturbance"]`` records the attack
    window ``[t0, t1]`` spanned by disturbance phases and fault windows,
    which the contract's recovery checks read back.
    """
    requests: list[Request] = []
    dist_lo: float | None = None
    dist_hi: float | None = None
    t = 0.0
    rid = 0
    for pi, ph in enumerate(sc.phases):
        rng = _phase_rng(sc.seed, pi)
        mw = np.array([w for (_, _, w) in ph.mix], dtype=np.float64)
        mw = mw / mw.sum()
        pw = np.array([w for (_, w) in ph.priorities], dtype=np.float64)
        pw = pw / pw.sum()
        for _ in range(ph.n_requests):
            t += float(rng.exponential(1.0 / ph.rate))
            mi = int(rng.choice(len(ph.mix), p=mw))
            pri = int(ph.priorities[int(rng.choice(len(ph.priorities),
                                                   p=pw))][0])
            slack = ph.deadline * (0.75 + 0.5 * float(rng.random()))
            rhs_seed = int(rng.integers(0, 2**31 - 1))
            kind = "random"
            if float(rng.random()) < ph.poison_rhs_fraction:
                kind = ph.poison_rhs_kinds[
                    int(rng.integers(len(ph.poison_rhs_kinds)))]
            name, scale, _ = ph.mix[mi]
            for _dup in range(ph.dup_factor):
                requests.append(Request(
                    id=rid, arrival=t, matrix=name, scale=scale,
                    rhs_seed=rhs_seed, deadline=t + slack, priority=pri,
                    rhs_kind=kind))
                rid += 1
            if ph.disturbance:
                dist_lo = t if dist_lo is None else min(dist_lo, t)
                dist_hi = t if dist_hi is None else max(dist_hi, t)
        t += ph.gap_after
    for fp in sc.fault_phases:
        dist_lo = fp.t0 if dist_lo is None else min(dist_lo, fp.t0)
        dist_hi = fp.t1 if dist_hi is None else max(dist_hi, fp.t1)
    for _w, tc, tr in sc.worker_crash:
        dist_lo = tc if dist_lo is None else min(dist_lo, tc)
        dist_hi = tr if dist_hi is None else max(dist_hi, tr)
    meta = {"scenario": sc.name, "seed": sc.seed,
            "disturbance": (None if dist_lo is None
                            else [dist_lo, dist_hi])}
    return Workload(requests=requests, meta=meta)


def _fault_seed(sc: Scenario, index: int, kind: str) -> int:
    """Derive a fault-plan seed from the scenario seed (crc32: stable
    across processes, unlike hash())."""
    return (sc.seed * 7919 + 131 * index
            + zlib.crc32(kind.encode()) % 997) % (2**31 - 1)


def build_fault_schedule(sc: Scenario) -> FaultSchedule | None:
    """The scenario's escalating fabric-fault timeline (None if benign)."""
    if not sc.fault_phases:
        return None
    nranks = sc.grid[0] * sc.grid[1] * sc.grid[2]
    phases = []
    for i, fp in enumerate(sc.fault_phases):
        plan = plan_for(fp.kind, fp.rate, _fault_seed(sc, i, fp.kind),
                        nranks, fp.solve_makespan)
        phases.append((fp.t0, fp.t1, plan))
    return FaultSchedule(tuple(phases))


def build_worker_crash_schedule(sc: Scenario) -> FaultSchedule | None:
    """The fleet's worker crash/recovery timeline (None if benign).

    Each declared ``(worker, t_crash, t_recover)`` window becomes one
    schedule phase whose plan crashes exactly that worker; the plan seed
    derives from the scenario seed, per the RPR006 convention.
    """
    from repro.comm.faults import FaultPlan

    if not sc.worker_crash:
        return None
    phases = []
    for i, (w, tc, tr) in enumerate(sorted(sc.worker_crash)):
        plan = FaultPlan.uniform(seed=_fault_seed(sc, i, "worker-crash"),
                                 crash={w: tc})
        phases.append((tc, tr, plan))
    return FaultSchedule(tuple(phases))


def build_service(sc: Scenario):
    """Wire a service exactly as the scenario declares it.

    Always: the poison-aware matrix provider, runtime invariants on, and
    sampled integrity verification seeded from the scenario seed.  A
    fleet-shaped scenario (``workers > 1`` or declared ``worker_crash``
    windows) runs on a :class:`~repro.fleet.FleetService` instead — its
    :class:`~repro.fleet.FleetResult` exposes the same ``slo`` /
    ``completions`` / ``rejections`` surface the contract evaluator
    reads.
    """
    px, py, pz = sc.grid
    config = ServiceConfig(px=px, py=py, pz=pz, machine=sc.machine,
                           algorithm=sc.algorithm)
    policy = BatchPolicy(max_batch=sc.max_batch, max_wait=sc.max_wait,
                         queue_bound=sc.queue_bound)
    if sc.workers > 1 or sc.worker_crash:
        from repro.fleet import FleetConfig, FleetService

        return FleetService(
            FleetConfig(workers=sc.workers),
            config=config, policy=policy,
            crash_schedule=build_worker_crash_schedule(sc),
            fault_schedule=build_fault_schedule(sc),
            matrix_provider=resolve_matrix,
            invariants=True,
            verify_fraction=sc.verify_fraction,
            verify_seed=sc.seed ^ 0x5EED)
    cache = FactorizationCache(max_entries=sc.cache_entries)
    return SolveService(
        config=config, policy=policy, cache=cache,
        resilience=Resilience() if sc.resilience else None,
        matrix_provider=resolve_matrix,
        fault_schedule=build_fault_schedule(sc),
        invariants=True,
        verify_fraction=sc.verify_fraction,
        verify_seed=sc.seed ^ 0x5EED)


# ---------------------------------------------------------------------------
# Contract evaluation.
# ---------------------------------------------------------------------------


def _p95(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), 95))


def _window_stats(res: ServeResult, window) -> dict:
    """Latency stats of completions arriving before/after the disturbance."""
    if window is None:
        return {"disturbance": None}
    t0, t1 = window
    base = [c.latency for c in res.completions if c.request.arrival < t0]
    rec = [c.latency for c in res.completions if c.request.arrival >= t1]
    return {"disturbance": [t0, t1],
            "baseline_n": len(base), "baseline_p95": _p95(base),
            "recovery_n": len(rec), "recovery_p95": _p95(rec)}


def _check(checks: list, name: str, hard: bool, passed: bool,
           detail: str) -> None:
    checks.append({"check": name, "hard": hard, "passed": bool(passed),
                   "detail": detail})


def evaluate_contract(contract: DegradationContract, res: ServeResult,
                      n_requests: int, windows: dict) -> list:
    """Evaluate every active contract clause against one run's records."""
    checks: list = []
    slo = res.slo
    known = {r.value for r in RejectReason}
    untyped = sorted(set(slo.shed_by_reason) - known)
    _check(checks, "typed-sheds", True, not untyped,
           f"shed reasons {sorted(slo.shed_by_reason)} all typed"
           if not untyped else f"untyped shed reason(s): {untyped}")
    _check(checks, "integrity", True,
           slo.n_integrity_failures <= contract.max_integrity_failures,
           f"{slo.n_integrity_failures} integrity failure(s) over "
           f"{slo.n_verified} sampled verification(s) "
           f"(allowed {contract.max_integrity_failures})")

    c = contract
    if c.min_completed_fraction > 0.0:
        frac = slo.n_completed / n_requests if n_requests else 0.0
        _check(checks, "completed-fraction", False,
               frac >= c.min_completed_fraction,
               f"completed {slo.n_completed}/{n_requests} = {frac:.3f} "
               f"(need >= {c.min_completed_fraction})")
    if c.max_shed_fraction < 1.0:
        frac = slo.n_shed / n_requests if n_requests else 0.0
        _check(checks, "shed-fraction", False, frac <= c.max_shed_fraction,
               f"shed {slo.n_shed}/{n_requests} = {frac:.3f} "
               f"(allowed <= {c.max_shed_fraction})")
    if c.min_deadline_met_rate > 0.0:
        rate = slo.deadline_met_rate
        _check(checks, "deadline-met-rate", False,
               slo.n_completed > 0 and rate >= c.min_deadline_met_rate,
               f"met {slo.n_deadline_met}/{slo.n_completed} = {rate:.3f} "
               f"(need >= {c.min_deadline_met_rate})")
    for reason in c.require_sheds:
        _check(checks, f"require-shed:{reason}", False,
               slo.shed_by_reason.get(reason, 0) > 0,
               f"{slo.shed_by_reason.get(reason, 0)} shed(s) with reason "
               f"{reason!r} (need >= 1)")
    for reason in c.forbid_sheds:
        _check(checks, f"forbid-shed:{reason}", False,
               slo.shed_by_reason.get(reason, 0) == 0,
               f"{slo.shed_by_reason.get(reason, 0)} shed(s) with "
               f"forbidden reason {reason!r}")
    if c.min_deduped > 0:
        _check(checks, "deduped", False, slo.deduped >= c.min_deduped,
               f"coalesced {slo.deduped} duplicate(s) "
               f"(need >= {c.min_deduped})")
    if c.min_cache_evictions > 0:
        _check(checks, "cache-evictions", False,
               slo.cache_evictions >= c.min_cache_evictions,
               f"{slo.cache_evictions} eviction(s) "
               f"(need >= {c.min_cache_evictions})")
    if c.recovery_p95_factor is not None:
        if windows.get("disturbance") is None or not windows["baseline_n"] \
                or not windows["recovery_n"]:
            _check(checks, "recovery-p95", False, True,
                   "vacuous: no baseline or no recovery completions")
        else:
            bound = c.recovery_p95_factor * windows["baseline_p95"]
            _check(checks, "recovery-p95", False,
                   windows["recovery_p95"] <= bound,
                   f"recovery p95 {windows['recovery_p95']:.3e} vs "
                   f"baseline p95 {windows['baseline_p95']:.3e} "
                   f"(allowed factor {c.recovery_p95_factor})")
    if c.max_drain_time is not None:
        if windows.get("disturbance") is None:
            _check(checks, "drain-time", False, True,
                   "vacuous: scenario declares no disturbance window")
        else:
            drain = max(0.0, slo.makespan - windows["disturbance"][1])
            _check(checks, "drain-time", False, drain <= c.max_drain_time,
                   f"drained {drain:.3e}s after the disturbance ended "
                   f"(allowed <= {c.max_drain_time})")
    return checks


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def run_scenario(sc: Scenario, seed: int | None = None) -> ScenarioReport:
    """Run one scenario end to end; never raises on service failure.

    ``seed`` overrides the declared seed (the fuzzer's hard-tier replay
    knob); the workload, fault plans and verification sampling all follow
    it.  An exception escaping the service is itself a hard contract
    breach and is captured into ``report.error``.
    """
    if seed is not None and seed != sc.seed:
        sc = replace(sc, seed=seed)
    workload = build_workload(sc)
    report = ScenarioReport(scenario=sc.name, seed=sc.seed,
                            n_requests=len(workload))
    try:
        service = build_service(sc)
        res = service.run(workload)
    except Exception as e:  # noqa: BLE001 - any escape is a contract breach
        report.error = f"{type(e).__name__}: {e}"
        _check(report.checks, "no-escaped-exception", True, False,
               report.error)
        return report
    _check(report.checks, "no-escaped-exception", True, True,
           "service loop ran to completion")
    report.slo = json.loads(res.slo.to_json())
    report.windows = _window_stats(res, workload.meta["disturbance"])
    report.checks.extend(
        evaluate_contract(sc.contract, res, len(workload), report.windows))
    return report


def run_all(names=None, seed: int | None = None) -> dict:
    """Run the catalog (or the named subset); ``{name: ScenarioReport}``."""
    from repro.scenarios.catalog import get_scenario, scenario_names

    out: dict = {}
    for name in (names if names is not None else scenario_names()):
        out[name] = run_scenario(get_scenario(name), seed=seed)
    return out
