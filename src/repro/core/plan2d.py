"""Per-rank communication/computation plans for the 2D SpTRSV kernel.

A *plan* is everything a rank precomputes before a 2D triangular solve (the
paper precomputes the same artifacts: ``fmod``/``bmod`` counters and the
broadcast/reduction trees of every supernode row and column).  The L- and
U-solves share one plan structure by viewing the solve symmetrically:

- a **producer** supernode ``J`` yields its subvector value (``y(J)`` in the
  L-solve, ``x(J)`` in the U-solve) at its diagonal owner and broadcasts it
  down the process column ``J mod Py`` to the owners of the consumer blocks;
- a **consumer** row ``I`` accumulates ``block(I, J) @ value(J)`` partial
  sums, which are reduced across process columns to row ``I``'s diagonal
  owner; when all contributions arrived, ``I`` itself becomes a producer.

The baseline 3D algorithm reuses the same builder with three knobs: a
restricted ``solve_set`` (one elimination-tree node), an ``update_set``
reaching into ancestor rows (partial sums exported to later levels), and an
``ext_set`` of already-solved producers (ancestor ``x`` values in the
U-phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.comm.trees import CommTree, binary_tree, flat_tree
from repro.grids.grid3d import BlockCyclicMap, Grid3D
from repro.numfact.lu import BlockSparseLU

# Fan-out above which "auto" switches from a flat tree to a binary tree.
# Calibrated on the simulator's cost model: below ~16 members the root's
# injection cost is cheaper than the extra tree-hop latency; above it the
# flat root serializes and the binary tree wins (the §3.3 optimization).
AUTO_TREE_CUTOFF = 16


def u_blockrows(lu: BlockSparseLU) -> list[np.ndarray]:
    """Transpose adjacency of U: for each J, the rows K < J with U(K,J) != 0.

    This is the producer->consumer map of the U-solve (x(J) updates row K).
    """
    rows: list[list[int]] = [[] for _ in range(lu.nsup)]
    for K in range(lu.nsup):
        for J in lu.u_blockcols[K]:
            rows[J].append(K)
    return [np.array(sorted(r), dtype=np.int64) for r in rows]


@dataclass
class RankPlan:
    """One rank's share of a 2D solve.

    ``consumer_blocks[J]`` lists ``(I, block)`` pairs this rank applies when
    the value of producer ``J`` arrives; ``fmod0``/``frecv0`` are the
    dependency counters of Algorithm 3 (local blocks / reduction-tree
    children per consumer row); ``nrecv`` is the total message count this
    rank will receive, the loop bound of the message-driven solve.
    """

    rank: int
    solve_cols: list[int] = field(default_factory=list)
    ext_cols: list[int] = field(default_factory=list)
    consumer_blocks: dict[int, list[tuple[int, np.ndarray]]] = field(default_factory=dict)
    bcast_trees: dict[int, CommTree] = field(default_factory=dict)
    red_trees: dict[int, CommTree] = field(default_factory=dict)
    fmod0: dict[int, int] = field(default_factory=dict)
    frecv0: dict[int, int] = field(default_factory=dict)
    nrecv: int = 0
    out_rows: list[int] = field(default_factory=list)

    def total_messages_sent(self) -> int:
        """Upper bound on messages this rank sends (tree edges it drives)."""
        total = 0
        for J, t in self.bcast_trees.items():
            if t.contains(self.rank):
                total += t.nchildren(self.rank)
        for I, t in self.red_trees.items():
            if t.contains(self.rank) and t.root != self.rank:
                total += 1
        return total


@dataclass
class Plan2D:
    """All ranks' plans for one 2D solve, plus shared metadata."""

    grid: Grid3D
    z: int
    ranks: dict[int, RankPlan]
    solve_set: list[int]
    update_set: set[int]
    ext_set: list[int]
    diag_inv: list[np.ndarray]
    sn_size: Callable[[int], int]

    def plan_of(self, rank: int) -> RankPlan:
        return self.ranks[rank]


def build_2d_plans(
    lu: BlockSparseLU,
    grid: Grid3D,
    z: int,
    phase: str,
    solve_set: Iterable[int],
    update_set: Iterable[int] | None = None,
    ext_set: Iterable[int] = (),
    tree_kind: str = "binary",
    u_adj: list[np.ndarray] | None = None,
) -> Plan2D:
    """Build the per-rank plans of one 2D solve on grid ``z``.

    ``phase`` is ``"L"`` or ``"U"``; ``solve_set`` are the supernodes whose
    subvectors this solve produces, ``update_set`` (defaults to
    ``solve_set``) the rows that accumulate partial sums, and ``ext_set``
    producers whose values are already known at their diagonal owners.
    ``tree_kind`` selects ``"binary"`` trees (the paper's latency
    optimization) or ``"flat"`` fan-out/fan-in.
    """
    if phase == "L":
        adj = lu.l_blockrows
        blocks = lu.Lblocks
        diag_inv = lu.diagLinv
    elif phase == "U":
        adj = u_adj if u_adj is not None else u_blockrows(lu)
        blocks = lu.Ublocks
        diag_inv = lu.diagUinv
    else:
        raise ValueError(f"phase must be 'L' or 'U', got {phase!r}")
    if tree_kind == "binary":
        tree_fn = binary_tree
    elif tree_kind == "flat":
        tree_fn = flat_tree
    elif tree_kind == "auto":
        # Adaptive selection (as production tree solvers do): a binary tree
        # only pays off once the fan-out is large enough that the root's
        # per-message injection cost exceeds the extra tree-hop latency.
        def tree_fn(members, root):
            if len(members) > AUTO_TREE_CUTOFF:
                return binary_tree(members, root)
            return flat_tree(members, root)
    else:
        raise ValueError(
            f"tree_kind must be 'binary', 'flat' or 'auto', got {tree_kind!r}")

    solve_set = sorted(solve_set)
    solve_lookup = set(solve_set)
    update_lookup = (set(update_set) if update_set is not None
                     else set(solve_set))
    if not solve_lookup <= update_lookup:
        raise ValueError("update_set must contain solve_set")
    ext_set = sorted(ext_set)
    if solve_lookup & set(ext_set):
        raise ValueError("ext_set must be disjoint from solve_set")

    cmap = BlockCyclicMap(grid)
    plans = {r: RankPlan(rank=r) for r in grid.grid_ranks(z)}

    # Contributor ranks per consumer row (for the reduction trees).
    contributors: dict[int, set[int]] = {}

    for J in list(solve_set) + ext_set:
        root = cmap.diag_owner_rank(J, z)
        members = {root}
        for I in adj[J]:
            I = int(I)
            if I not in update_lookup:
                continue
            blk = blocks[(I, J)]
            owner = cmap.owner_rank(I, J, z)
            members.add(owner)
            p = plans[owner]
            p.consumer_blocks.setdefault(J, []).append((I, blk))
            p.fmod0[I] = p.fmod0.get(I, 0) + 1
            contributors.setdefault(I, set()).add(owner)
        if len(members) > 1:
            tree = tree_fn(sorted(members), root)
            for m in members:
                plans[m].bcast_trees[J] = tree
                if m != root:
                    plans[m].nrecv += 1
        if J in solve_lookup:
            plans[root].solve_cols.append(J)
        else:
            plans[root].ext_cols.append(J)

    for I, contribs in contributors.items():
        root = cmap.diag_owner_rank(I, z)
        members = set(contribs) | {root}
        if len(members) > 1:
            tree = tree_fn(sorted(members), root)
            for m in members:
                p = plans[m]
                p.red_trees[I] = tree
                nch = tree.nchildren(m)
                if nch:
                    p.frecv0[I] = nch
                    p.nrecv += nch

    # Output rows: update-only rows whose reduced partial sums this rank
    # exports (it is their diagonal owner).
    for I in update_lookup - solve_lookup:
        if I in contributors:
            plans[cmap.diag_owner_rank(I, z)].out_rows.append(I)

    for p in plans.values():
        p.solve_cols.sort()
        p.ext_cols.sort()
        p.out_rows.sort()

    return Plan2D(grid=grid, z=z, ranks=plans, solve_set=solve_set,
                  update_set=update_lookup, ext_set=ext_set,
                  diag_inv=diag_inv, sn_size=lu.partition.size)
