"""Shared-memory level-set SpTRSV — the paper's §1 baseline class.

Before distributed algorithms, the paper surveys shared-memory solvers that
"rely on level-set, color-set or blocking methods to exploit available
parallelism from the DAG".  This module implements the classic level-set
scheduler for a simulated multicore node: supernodes on the same DAG level
run concurrently on up to ``nthreads`` cores with a barrier between levels.

It provides the single-node reference point for the distributed solvers
(and demonstrates the motivation of §1: shared-memory SpTRSV "quickly
becomes incapable of handling large linear systems") with both real
numerics and a simulated-time estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.costmodel import Machine, gemm_bytes, gemm_flops
from repro.core.plan2d import u_blockrows
from repro.numfact.lu import BlockSparseLU
from repro.perf.levels import level_profile
from repro.util import as_2d_rhs


@dataclass
class LevelSetResult:
    """Solution plus the simulated schedule of a level-set solve."""

    x: np.ndarray
    time: float
    levels_l: int
    levels_u: int
    barrier_time: float


def _schedule_level(costs: list[float], nthreads: int) -> float:
    """Makespan of one level: longest-processing-time list scheduling."""
    if not costs:
        return 0.0
    loads = [0.0] * min(nthreads, len(costs))
    for c in sorted(costs, reverse=True):
        i = int(np.argmin(loads))
        loads[i] += c
    return max(loads)


def solve_levelset(lu: BlockSparseLU, b: np.ndarray, machine: Machine,
                   nthreads: int = 8,
                   barrier_cost: float = 2.0e-6) -> LevelSetResult:
    """Level-set L+U solve on one simulated ``nthreads``-core node.

    Each supernode task = diagonal solve + the GEMVs of its column (L) or
    transpose-column (U); tasks within a level are list-scheduled onto the
    threads, with a ``barrier_cost`` synchronization between levels (the
    per-level barrier is the known scalability limit of the method).
    """
    part = lu.partition
    y2, was1d = as_2d_rhs(b)
    nrhs = y2.shape[1]
    cpu = machine.cpu

    def col_cost(K: int, adj) -> float:
        w = part.size(K)
        t = cpu.op_time(gemm_flops(w, nrhs, w), gemm_bytes(w, nrhs, w))
        for I in adj[K]:
            m = part.size(int(I))
            t += cpu.op_time(gemm_flops(m, nrhs, w), gemm_bytes(m, nrhs, w))
        return t

    total = 0.0
    barrier_total = 0.0

    # ---- L phase (numerics are the sequential reference; the schedule
    # only orders independent work, so results are identical).
    prof_l = level_profile(lu, "L")
    y = lu.solve_L(y2)
    for lev in range(prof_l.depth):
        ks = np.flatnonzero(prof_l.levels == lev)
        total += _schedule_level([col_cost(int(K), lu.l_blockrows)
                                  for K in ks], nthreads)
        total += barrier_cost
        barrier_total += barrier_cost

    # ---- U phase
    prof_u = level_profile(lu, "U")
    uadj = u_blockrows(lu)
    x = lu.solve_U(y)
    for lev in range(prof_u.depth):
        ks = np.flatnonzero(prof_u.levels == lev)
        total += _schedule_level([col_cost(int(K), uadj) for K in ks],
                                 nthreads)
        total += barrier_cost
        barrier_total += barrier_cost

    return LevelSetResult(x=x[:, 0] if was1d else x, time=total,
                          levels_l=prof_l.depth, levels_u=prof_u.depth,
                          barrier_time=barrier_total)
