"""The paper's contribution: 2D and 3D SpTRSV algorithms.

Public entry point is :class:`repro.core.solver.SpTRSVSolver`, which wires
the substrates together (ordering → symbolic → numeric LU → 3D layout →
distributed solves) and exposes every algorithm variant of the paper:

- ``algorithm="2d"``        — communication-optimized 2D SpTRSV (CSC'18);
  equivalently ``algorithm="new3d"`` with ``Pz=1``.
- ``algorithm="baseline3d"``— the ICS'19 communication-avoiding 3D SpTRSV
  with per-level inter-grid synchronization.
- ``algorithm="new3d"``     — the paper's proposed 3D SpTRSV: replicated
  ancestor computation, one sparse allreduce between L and U solves.
- ``algorithm="sparse_allreduce_v2"`` — the proposed 3D SpTRSV with the
  SpComm3D-style structure-filtered allreduce (only structurally-nonzero
  subvector blocks cross the reduce wires).
- ``algorithm="ca_trsm"``   — communication-avoiding level-set block TRSM
  with selective inversion over a flattened 1D rank pool.
- ``algorithm="auto"``      — the cost-model planner (:mod:`repro.planner`)
  picks among the CPU backends per (structure, grid, machine).

GPU execution (Algorithms 4-5) lives in :mod:`repro.gpu`.
"""

from repro.core.ca_trsm import CaTrsmSetup, build_ca_trsm_setup
from repro.core.levelset import LevelSetResult, solve_levelset
from repro.core.plan2d import RankPlan, build_2d_plans, u_blockrows
from repro.core.solver import (
    AttemptRecord,
    PerfReport,
    Resilience,
    ResilienceExhausted,
    ResilienceReport,
    SolveOutcome,
    SpTRSVSolver,
)
from repro.core.sparse_allreduce import sparse_allreduce, sparse_allreduce_v2
from repro.core.sptrsv2d import sptrsv_2d

__all__ = [
    "SpTRSVSolver",
    "SolveOutcome",
    "PerfReport",
    "Resilience",
    "ResilienceReport",
    "ResilienceExhausted",
    "AttemptRecord",
    "build_2d_plans",
    "RankPlan",
    "u_blockrows",
    "sptrsv_2d",
    "sparse_allreduce",
    "sparse_allreduce_v2",
    "CaTrsmSetup",
    "build_ca_trsm_setup",
    "solve_levelset",
    "LevelSetResult",
]
