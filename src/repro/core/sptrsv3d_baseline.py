"""The baseline communication-avoiding 3D SpTRSV (Sao/Vuduc/Li, ICS 2019).

The algorithm walks the elimination tree level by level.  In the L phase
each active grid 2D-solves its current node's diagonal block, applies the
off-diagonal blocks to produce partial sums for ancestor rows, then a
pairwise inter-grid reduction merges those partials onto the grid with the
smallest id — the other grid idles for the rest of the L phase.  The U
phase mirrors it top-down: solved ancestor subvectors are handed to the
re-activating partner grid before it solves its own node.

This gives ``O(log Pz)`` inter-grid synchronizations and per-node
communication trees — the two costs the paper's proposed algorithm removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.collectives import barrier
from repro.comm.simulator import RankCtx
from repro.core.plan2d import Plan2D, build_2d_plans, u_blockrows
from repro.grids.grid3d import BlockCyclicMap, Grid3D
from repro.core.sptrsv2d import sptrsv_2d
from repro.numfact.lu import BlockSparseLU
from repro.ordering.layout import LayoutTree
from repro.symbolic.supernodes import SupernodePartition


def _active_steps(z: int, depth: int) -> int:
    """Number of L steps grid ``z`` is active for: trailing zeros of z,
    capped at ``depth`` (grid 0 is active at every level)."""
    k = 0
    while k < depth and z % (1 << (k + 1)) == 0:
        k += 1
    return k


@dataclass
class Baseline3DSetup:
    """Per-grid, per-level plans of the baseline algorithm."""

    grid: Grid3D
    layout: LayoutTree
    part: SupernodePartition
    lu: BlockSparseLU
    # per grid z: list over active steps k of (node_sns, ancestor_sns, planL, planU)
    steps: list[list[tuple[list[int], list[int], Plan2D, Plan2D]]]
    sn_owner_grid: dict[int, int]


def build_baseline3d_setup(lu: BlockSparseLU, layout: LayoutTree,
                           grid: Grid3D,
                           tree_kind: str = "flat") -> Baseline3DSetup:
    """Build per-level plans.  The baseline defaults to flat communication
    (per the paper, integrating the tree optimization into the level-by-level
    structure is impractical); ``tree_kind="binary"`` remains available as an
    ablation knob."""
    part = lu.partition
    uadj = u_blockrows(lu)
    sn_owner_grid: dict[int, int] = {}
    for node in layout.nodes:
        lo, hi = part.sn_range(node.first, node.last)
        for K in range(lo, hi):
            sn_owner_grid[K] = node.owner_grid

    steps: list[list[tuple[list[int], list[int], Plan2D, Plan2D]]] = []
    for z in range(grid.pz):
        path = layout.path(z)
        kmax = _active_steps(z, layout.depth)
        zsteps = []
        for k in range(kmax + 1):
            node = path[k]
            lo, hi = part.sn_range(node.first, node.last)
            node_sns = list(range(lo, hi))
            anc_sns: list[int] = []
            for a in path[k + 1:]:
                alo, ahi = part.sn_range(a.first, a.last)
                anc_sns.extend(range(alo, ahi))
            anc_sns.sort()
            plan_l = build_2d_plans(
                lu, grid, z, "L", node_sns,
                update_set=node_sns + anc_sns, tree_kind=tree_kind)
            plan_u = build_2d_plans(
                lu, grid, z, "U", node_sns, ext_set=anc_sns,
                tree_kind=tree_kind, u_adj=uadj)
            zsteps.append((node_sns, anc_sns, plan_l, plan_u))
        steps.append(zsteps)
    return Baseline3DSetup(grid=grid, layout=layout, part=part, lu=lu,
                           steps=steps, sn_owner_grid=sn_owner_grid)


def _my_diag_sns(sns: list[int], grid: Grid3D, i: int, j: int) -> list[int]:
    return [K for K in sns if K % grid.px == i and K % grid.py == j]


def baseline3d_rank_fn(setup: Baseline3DSetup, b_perm: np.ndarray, nrhs: int,
                       level_sync: bool = True):
    """Build the simulator rank function for the baseline 3D algorithm.

    ``level_sync`` keeps the paper's characterization of the baseline:
    the grid pair exchanging data synchronizes at every elimination-tree
    level (``O(log Pz)`` synchronizations total); disable it for the
    ablation that isolates the synchronization cost.
    """
    grid = setup.grid
    part = setup.part
    depth = setup.layout.depth

    def rank_fn(ctx: RankCtx):
        i, j, z = grid.coords_of(ctx.rank)
        zsteps = setup.steps[z]
        kmax = len(zsteps) - 1

        # ---------------- L phase: leaf level upward -----------------------
        ctx.set_phase("l")
        ctx.mark("l_start")
        carry: dict[int, np.ndarray] = {}  # partial sums for ancestor rows
        y_all: dict[int, np.ndarray] = {}
        for k in range(kmax + 1):
            node_sns, anc_sns, plan_l, _ = zsteps[k]
            my_plan = plan_l.plan_of(ctx.rank)
            rhs = {}
            init = {}
            for K in my_plan.solve_cols:
                c0, c1 = part.first(K), part.last(K)
                rhs[K] = np.array(b_perm[c0:c1], copy=True)
                if K in carry:
                    init[K] = carry.pop(K)
            y, out = yield from sptrsv_2d(ctx, plan_l, rhs, nrhs,
                                          initial_lsum=init,
                                          comm_category="xy",
                                          fp_category="fp",
                                          tag_salt=("bL", z, k))
            y_all.update(y)
            for I, v in out.items():
                if I in carry:
                    carry[I] += v
                else:
                    carry[I] = v

            # Pairwise inter-grid reduction of the ancestor partial sums
            # onto the smaller grid id; the sender idles afterwards.
            if k < depth:
                # Each elimination-tree level is one inter-grid
                # synchronization point; its L-reduce half here and the
                # mirrored U-broadcast half below share the label, exactly
                # as the sparse allreduce's two halves count as one.
                ctx.set_sync(f"level-{k}")
                stride = 1 << k
                ks = _my_diag_sns(anc_sns, grid, i, j)
                if ks:
                    if z % (2 * stride) == stride:
                        buf = np.concatenate(
                            [carry.get(K, np.zeros((part.size(K), nrhs)))
                             for K in ks], axis=0)
                        yield ctx.send(grid.zpeer(ctx.rank, z - stride), buf,
                                       tag=("bzl", k), category="z")
                    else:
                        _, _, buf = yield ctx.recv(
                            src=grid.zpeer(ctx.rank, z + stride),
                            tag=("bzl", k), category="z")
                        ofs = 0
                        for K in ks:
                            w = part.size(K)
                            if K in carry:
                                carry[K] += buf[ofs:ofs + w]
                            else:
                                carry[K] = np.array(buf[ofs:ofs + w])
                            ofs += w
                if level_sync:
                    # Per-level synchronization of the exchanging grid pair
                    # (the baseline's O(log Pz) sync structure).
                    pair_lo = z - (z % (2 * stride))
                    members = (grid.grid_ranks(pair_lo)
                               + grid.grid_ranks(pair_lo + stride))
                    yield from barrier(ctx, members,
                                       tag=("blbar", k, pair_lo),
                                       category="z", sync=f"level-{k}")
                ctx.set_sync("")
        ctx.mark("l_end")

        # ---------------- U phase: top level downward -----------------------
        ctx.set_phase("u")
        x_all: dict[int, np.ndarray] = {}
        x_known: dict[int, np.ndarray] = {}
        # Re-activation: receive solved ancestor subvectors from the partner.
        if z != 0:
            _, anc_sns, _, _ = zsteps[kmax]
            partner = z - (1 << kmax)
            ctx.set_sync(f"level-{kmax}")
            ks = _my_diag_sns(anc_sns, grid, i, j)
            if ks:
                _, _, buf = yield ctx.recv(
                    src=grid.zpeer(ctx.rank, partner),
                    tag=("bzu", kmax), category="z")
                ofs = 0
                for K in ks:
                    w = part.size(K)
                    x_known[K] = np.array(buf[ofs:ofs + w])
                    ofs += w
            if level_sync:
                members = (grid.grid_ranks(partner) + grid.grid_ranks(z))
                yield from barrier(ctx, members, tag=("bubar", kmax, partner),
                                   category="z", sync=f"level-{kmax}")
            ctx.set_sync("")
        for k in range(kmax, -1, -1):
            node_sns, anc_sns, _, plan_u = zsteps[k]
            my_plan = plan_u.plan_of(ctx.rank)
            rhs = {K: y_all[K] for K in my_plan.solve_cols}
            ext = {J: x_known[J] for J in my_plan.ext_cols}
            x, _ = yield from sptrsv_2d(ctx, plan_u, rhs, nrhs,
                                        ext_values=ext,
                                        comm_category="xy",
                                        fp_category="fp",
                                        tag_salt=("bU", z, k))
            x_all.update(x)
            x_known.update(x)
            # Hand the solved path down to the grid activating at step k-1.
            if k >= 1:
                stride = 1 << (k - 1)
                peer_z = z + stride
                ctx.set_sync(f"level-{k - 1}")
                # Supernodes the partner needs: ancestors of its next node,
                # i.e. this node plus our ancestors.
                need = sorted(node_sns) + anc_sns
                ks = _my_diag_sns(need, grid, i, j)
                if ks:
                    buf = np.concatenate([x_known[K] for K in ks], axis=0)
                    yield ctx.send(grid.zpeer(ctx.rank, peer_z), buf,
                                   tag=("bzu", k - 1), category="z")
                if level_sync:
                    members = (grid.grid_ranks(z) + grid.grid_ranks(peer_z))
                    yield from barrier(ctx, members, tag=("bubar", k - 1, z),
                                       category="z", sync=f"level-{k - 1}")
                ctx.set_sync("")
        ctx.mark("u_end")
        return x_all

    return rank_fn


def collect_solution_baseline(setup: Baseline3DSetup, results: list, n: int,
                              nrhs: int) -> np.ndarray:
    """Assemble the permuted-order solution: each node was solved exactly
    once, on its owner grid."""
    cmap = BlockCyclicMap(setup.grid)
    x = np.empty((n, nrhs))
    for K in range(setup.part.nsup):
        z = setup.sn_owner_grid[K]
        r = cmap.diag_owner_rank(K, z)
        x[setup.part.first(K):setup.part.last(K)] = results[r][K]
    return x
