"""High-level API: factor a sparse matrix once, solve with any algorithm.

:class:`SpTRSVSolver` runs the full preprocessing pipeline of the paper
(nested dissection → symbolic factorization → supernodal LU → 3D layout)
and then executes the requested distributed SpTRSV on the simulated
machine, returning both the (verified-exact) solution and a
:class:`PerfReport` with the simulated timing breakdown the paper's figures
are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.comm.costmodel import CORI_HASWELL, Machine
from repro.comm.simulator import Simulator, SimResult
from repro.core.sptrsv3d_baseline import (
    Baseline3DSetup,
    baseline3d_rank_fn,
    build_baseline3d_setup,
    collect_solution_baseline,
)
from repro.core.sptrsv3d_new import (
    New3DSetup,
    build_new3d_setup,
    collect_solution,
    new3d_rank_fn,
)
from repro.grids.grid3d import Grid3D
from repro.numfact.lu import lu_factorize
from repro.ordering.layout import build_layout_tree
from repro.ordering.nested_dissection import nested_dissection
from repro.symbolic.fill import symbolic_factor
from repro.util import as_2d_rhs, ilog2, inverse_permutation


@dataclass
class PerfReport:
    """Timing view over a simulation run.

    Phases: ``"l"`` (L-solve), ``"z"`` (inter-grid), ``"u"`` (U-solve).
    Categories: ``"fp"`` (GEMV/GEMM + diagonal solves), ``"xy"`` (intra-grid
    communication incl. waits), ``"z"`` (inter-grid communication).
    """

    sim: SimResult
    algorithm: str
    grid: Grid3D
    nrhs: int

    @property
    def total_time(self) -> float:
        """Simulated wall-clock of the whole solve (max over ranks)."""
        return self.sim.makespan

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank seconds by category, as in the paper's Figs. 5-6."""
        return {
            "fp": float(self.sim.time_by(category="fp").mean()),
            "xy_comm": float(self.sim.time_by(category="xy").mean()),
            "z_comm": float(self.sim.time_by(category="z").mean()),
        }

    def per_rank(self, phase: str | None = None,
                 category: str | None = None) -> np.ndarray:
        """Per-rank seconds matching the filters (load-balance figures)."""
        return self.sim.time_by(phase=phase, category=category)

    def phase_time(self, phase: str) -> float:
        """Mean per-rank seconds spent in a phase."""
        return float(self.sim.time_by(phase=phase).mean())

    def message_count(self, category: str | None = None) -> int:
        return self.sim.msgs_by(category=category)

    def message_bytes(self, category: str | None = None) -> float:
        return self.sim.bytes_by(category=category)


@dataclass
class SolveOutcome:
    """A solution (original ordering/shape) plus its performance report."""

    x: np.ndarray
    report: PerfReport


class SpTRSVSolver:
    """Factor ``A`` once; solve ``A x = b`` with any of the paper's solvers.

    Parameters
    ----------
    A : scipy sparse, structurally symmetric, LU-factorizable w/o pivoting
    px, py, pz : 3D process grid (``pz`` must be a power of two)
    machine : simulated machine preset (see ``repro.comm.MACHINES``)
    max_supernode : supernode size cap
    symbolic_mode : ``"detect"`` (exact supernodes) or ``"fixed"`` (chunked)
    leaf_size : nested-dissection leaf subdomain size (default: heuristic)
    ordering : ``"nd"`` (nested dissection; required for ``pz > 1``) or
        ``"mmd"`` (minimum degree; 2D layouts only)
    """

    def __init__(self, A: sp.spmatrix, px: int = 1, py: int = 1, pz: int = 1,
                 machine: Machine = CORI_HASWELL, max_supernode: int = 16,
                 symbolic_mode: str = "detect", leaf_size: int | None = None,
                 ordering: str = "nd"):
        A = sp.csr_matrix(A)
        n = A.shape[0]
        self.A = A
        self.grid = Grid3D(px, py, pz)
        self.machine = machine
        depth = ilog2(pz)
        if leaf_size is None:
            leaf_size = max(8, n // max(4 * pz, 8))
        if ordering == "nd":
            self.tree = nested_dissection(A, leaf_size=leaf_size,
                                          min_depth=depth)
        elif ordering == "mmd":
            if pz != 1:
                raise ValueError(
                    "minimum-degree ordering has no separator tree; the 3D "
                    "layout (pz > 1) requires ordering='nd'")
            from repro.ordering.min_degree import min_degree_tree

            self.tree = min_degree_tree(A)
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.perm = self.tree.perm
        self.iperm = inverse_permutation(self.perm)
        self.A_perm = sp.csr_matrix(A[self.perm][:, self.perm])
        self.sym = symbolic_factor(self.A_perm, max_supernode=max_supernode,
                                   boundaries=self.tree.boundaries(),
                                   mode=symbolic_mode)
        self.lu = lu_factorize(self.A_perm, self.sym.partition)
        self.layout = build_layout_tree(self.tree, pz)
        self._setups: dict[tuple, object] = {}

    @classmethod
    def from_pipeline(cls, A: sp.spmatrix, tree, sym, lu, px: int = 1,
                      py: int = 1, pz: int = 1,
                      machine: Machine = CORI_HASWELL) -> "SpTRSVSolver":
        """Build a solver from a precomputed pipeline (ND tree, symbolic,
        LU).  Lets benchmarks factor a matrix once and sweep grid shapes;
        the separator tree must be binary-complete to depth ``log2(pz)``.
        """
        self = object.__new__(cls)
        self.A = sp.csr_matrix(A)
        self.grid = Grid3D(px, py, pz)
        self.machine = machine
        self.tree = tree
        self.perm = tree.perm
        self.iperm = inverse_permutation(tree.perm)
        self.A_perm = sp.csr_matrix(self.A[self.perm][:, self.perm])
        self.sym = sym
        self.lu = lu
        self.layout = build_layout_tree(tree, pz)
        self._setups = {}
        return self

    @property
    def n(self) -> int:
        return self.A.shape[0]

    # -- setup caches ---------------------------------------------------------

    def _new3d_setup(self, tree_kind: str) -> New3DSetup:
        key = ("new3d", tree_kind)
        if key not in self._setups:
            self._setups[key] = build_new3d_setup(self.lu, self.layout,
                                                  self.grid, tree_kind)
        return self._setups[key]  # type: ignore[return-value]

    def _baseline_setup(self, tree_kind: str) -> Baseline3DSetup:
        key = ("baseline3d", tree_kind)
        if key not in self._setups:
            self._setups[key] = build_baseline3d_setup(self.lu, self.layout,
                                                       self.grid, tree_kind)
        return self._setups[key]  # type: ignore[return-value]

    # -- solving --------------------------------------------------------------

    def solve(self, b: np.ndarray, algorithm: str = "new3d",
              tree_kind: str | None = None, machine: Machine | None = None,
              device: str = "cpu", baseline_level_sync: bool = True,
              allreduce_impl: str = "sparse") -> SolveOutcome:
        """Solve ``A x = b``; ``b`` may be ``(n,)`` or ``(n, nrhs)``.

        ``algorithm``: ``"new3d"`` (proposed; adaptive "auto" trees),
        ``"baseline3d"`` (ICS'19, default flat communication), or ``"2d"``
        (requires ``pz == 1``; the CSC'18 2D solver, which is exactly the
        proposed algorithm on a single grid).

        ``device="gpu"`` runs the proposed algorithm with GPU 2D solves
        (Algorithms 4-5); requires a machine with a GPU model and, for
        multi-GPU grids, ``Py == 1``.
        """
        b2, was1d = as_2d_rhs(b)
        if b2.shape[0] != self.n:
            raise ValueError(f"b has {b2.shape[0]} rows, expected {self.n}")
        nrhs = b2.shape[1]
        b_perm = b2[self.perm]
        machine = machine or self.machine

        if device == "gpu":
            if algorithm not in ("new3d", "2d"):
                raise ValueError(
                    "GPU solves implement the proposed algorithm only "
                    "(algorithm='new3d', or '2d' with pz == 1)")
            if algorithm == "2d" and self.grid.pz != 1:
                raise ValueError("algorithm='2d' requires pz == 1")
            from repro.gpu.solver3d import solve_new3d_gpu

            setup = self._new3d_setup(tree_kind or "binary")
            gres = solve_new3d_gpu(setup, machine, b_perm, nrhs)
            x_perm = collect_solution(setup, gres.results, self.n, nrhs)
            x = np.empty_like(x_perm)
            x[self.perm] = x_perm
            report = PerfReport(sim=gres.sim, algorithm=f"{algorithm}-gpu",
                                grid=self.grid, nrhs=nrhs)
            return SolveOutcome(x=x[:, 0] if was1d else x, report=report)
        if device != "cpu":
            raise ValueError(f"unknown device {device!r}")

        sim = Simulator(self.grid.nranks, machine)

        if algorithm == "2d":
            if self.grid.pz != 1:
                raise ValueError("algorithm='2d' requires pz == 1")
            algorithm_impl = "new3d"
        elif algorithm in ("new3d", "baseline3d"):
            algorithm_impl = algorithm
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")

        if algorithm_impl == "new3d":
            kind = tree_kind or "auto"
            setup = self._new3d_setup(kind)
            res = sim.run(new3d_rank_fn(setup, b_perm, nrhs,
                                        allreduce_impl=allreduce_impl))
            x_perm = collect_solution(setup, res.results, self.n, nrhs)
        else:
            kind = tree_kind or "flat"
            setup = self._baseline_setup(kind)
            res = sim.run(baseline3d_rank_fn(setup, b_perm, nrhs,
                                             level_sync=baseline_level_sync))
            x_perm = collect_solution_baseline(setup, res.results, self.n,
                                               nrhs)

        x = np.empty_like(x_perm)
        x[self.perm] = x_perm
        report = PerfReport(sim=res, algorithm=algorithm, grid=self.grid,
                            nrhs=nrhs)
        return SolveOutcome(x=x[:, 0] if was1d else x, report=report)

    def solve_blocked(self, b: np.ndarray, rhs_block: int = 16,
                      **solve_kw) -> SolveOutcome:
        """Solve a wide multi-RHS problem in column panels.

        Very wide RHS matrices (e.g. hundreds of columns) are processed in
        panels of ``rhs_block`` columns — the standard memory/cache
        trade-off for GEMM-heavy solves.  The report of the returned
        outcome aggregates the panels' simulated times (panels run one
        after another, as a real implementation would).
        """
        if rhs_block < 1:
            raise ValueError("rhs_block must be >= 1")
        b2, was1d = as_2d_rhs(b)
        nrhs = b2.shape[1]
        if nrhs <= rhs_block:
            return self.solve(b, **solve_kw)
        x = np.empty_like(b2)
        first: SolveOutcome | None = None
        total = 0.0
        for c0 in range(0, nrhs, rhs_block):
            c1 = min(nrhs, c0 + rhs_block)
            out = self.solve(b2[:, c0:c1], **solve_kw)
            x[:, c0:c1] = out.x
            total += out.report.total_time
            if first is None:
                first = out
        # Aggregate view: scale the first panel's clocks to the summed
        # panel times (panels are independent, identical-shape solves).
        rep = first.report
        rep.sim.clocks = rep.sim.clocks + (total - rep.sim.makespan)
        return SolveOutcome(x=x[:, 0] if was1d else x, report=rep)

    def reference_solve(self, b: np.ndarray) -> np.ndarray:
        """Sequential reference solve through the same LU factors."""
        b2, was1d = as_2d_rhs(b)
        xp = self.lu.solve(b2[self.perm])
        x = np.empty_like(xp)
        x[self.perm] = xp
        return x[:, 0] if was1d else x
