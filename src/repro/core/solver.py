"""High-level API: factor a sparse matrix once, solve with any algorithm.

:class:`SpTRSVSolver` runs the full preprocessing pipeline of the paper
(nested dissection → symbolic factorization → supernodal LU → 3D layout)
and then executes the requested distributed SpTRSV on the simulated
machine, returning both the (verified-exact) solution and a
:class:`PerfReport` with the simulated timing breakdown the paper's figures
are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.comm.costmodel import CORI_HASWELL, Machine
from repro.comm.faults import FaultPlan, ReliableTransport
from repro.comm.simulator import Simulator, SimResult
from repro.core.ca_trsm import (
    CaTrsmSetup,
    build_ca_trsm_setup,
    ca_trsm_rank_fn,
    collect_solution_ca,
)
from repro.core.sptrsv3d_baseline import (
    Baseline3DSetup,
    baseline3d_rank_fn,
    build_baseline3d_setup,
    collect_solution_baseline,
)
from repro.core.sptrsv3d_new import (
    New3DSetup,
    build_new3d_setup,
    collect_solution,
    new3d_rank_fn,
)
from repro.grids.grid3d import Grid3D
from repro.matrices.validate import validate_matrix, validate_rhs
from repro.numfact.lu import lu_factorize
from repro.obs.metrics import MetricsRegistry
from repro.ordering.layout import build_layout_tree
from repro.ordering.nested_dissection import nested_dissection
from repro.symbolic.fill import symbolic_factor
from repro.util import as_2d_rhs, ilog2, inverse_permutation


@dataclass
class PerfReport:
    """Timing view over a simulation run.

    Phases: ``"l"`` (L-solve), ``"z"`` (inter-grid), ``"u"`` (U-solve).
    Categories: ``"fp"`` (GEMV/GEMM + diagonal solves), ``"xy"`` (intra-grid
    communication incl. waits), ``"z"`` (inter-grid communication).

    ``metrics`` is populated by ``solve(..., profile=True)`` with the run's
    :class:`~repro.obs.metrics.MetricsRegistry` (per-rank/per-phase
    counters, sync points, critical path; see ``docs/OBSERVABILITY.md``);
    ``None`` otherwise.
    """

    sim: SimResult
    algorithm: str
    grid: Grid3D
    nrhs: int
    metrics: MetricsRegistry | None = None

    @property
    def total_time(self) -> float:
        """Simulated wall-clock of the whole solve (max over ranks)."""
        return self.sim.makespan

    def breakdown(self) -> dict[str, float]:
        """Mean per-rank seconds by category, as in the paper's Figs. 5-6."""
        return {
            "fp": float(self.sim.time_by(category="fp").mean()),
            "xy_comm": float(self.sim.time_by(category="xy").mean()),
            "z_comm": float(self.sim.time_by(category="z").mean()),
        }

    def per_rank(self, phase: str | None = None,
                 category: str | None = None) -> np.ndarray:
        """Per-rank seconds matching the filters (load-balance figures)."""
        return self.sim.time_by(phase=phase, category=category)

    def phase_time(self, phase: str) -> float:
        """Mean per-rank seconds spent in a phase."""
        return float(self.sim.time_by(phase=phase).mean())

    def message_count(self, category: str | None = None) -> int:
        return self.sim.msgs_by(category=category)

    def message_bytes(self, category: str | None = None) -> float:
        return self.sim.bytes_by(category=category)


@dataclass(frozen=True)
class Resilience:
    """Knobs for fault-tolerant solving (``SpTRSVSolver.solve(resilience=...)``).

    The resilient solve verifies the residual of every returned solution
    and, on any failure (typed communication error, kernel exception, or a
    residual above ``residual_tol``), retries the same algorithm up to
    ``retries_per_tier`` more times, then degrades through the fallback
    tiers — ``new3d`` → ``baseline3d`` → sequential ``reference`` — until a
    verified answer is produced.  The returned outcome's ``.resilience``
    report names the tier that answered and the virtual-time cost of
    recovery.

    - ``reliable``: run every message under the ack/retransmit envelope
      (``True`` or a :class:`~repro.comm.faults.ReliableTransport`).
    - ``checksums``: verify payload checksums on delivery.
    - ``watchdog_events``: scheduler stall detector threshold (``None``
      disables it).
    - ``retries_per_tier``: extra attempts per algorithm tier.
    - ``residual_tol``: acceptance bound on the relative solve residual.
    """

    reliable: bool | ReliableTransport = False
    checksums: bool = True
    watchdog_events: int | None = 5_000_000
    retries_per_tier: int = 1
    residual_tol: float = 1e-10

    def sim_kwargs(self) -> dict:
        return {"reliable": self.reliable, "checksums": self.checksums,
                "watchdog_events": self.watchdog_events}


@dataclass
class AttemptRecord:
    """One solve attempt inside a resilient solve."""

    algorithm: str
    status: str                 # "ok" | "error" | "bad-residual"
    virtual_time: float         # simulated seconds burned by this attempt
    residual: float | None = None
    error: str | None = None    # exception type name for "error" attempts
    fault_events: int = 0


@dataclass
class ResilienceReport:
    """How a resilient solve reached its answer."""

    tier: str                   # algorithm that produced the answer
    attempts: list[AttemptRecord]
    recovery_time: float        # virtual seconds spent on failed attempts
    total_time: float           # recovery + successful attempt
    residual: float

    @property
    def degraded(self) -> bool:
        return self.tier != self.attempts[0].algorithm

    def summary(self) -> str:
        lines = [f"resilient solve answered by tier {self.tier!r} "
                 f"(residual {self.residual:.2e}); recovery cost "
                 f"{self.recovery_time:.3e}s of {self.total_time:.3e}s total"]
        for i, a in enumerate(self.attempts):
            what = a.error or a.status
            res = "" if a.residual is None else f", residual {a.residual:.2e}"
            lines.append(f"  attempt {i}: {a.algorithm} -> {what} "
                         f"({a.virtual_time:.3e}s, {a.fault_events} fault "
                         f"events{res})")
        return "\n".join(lines)


class ResilienceExhausted(RuntimeError):
    """Every tier of a resilient solve failed (including the reference)."""

    def __init__(self, attempts: list[AttemptRecord]):
        self.attempts = attempts
        detail = "; ".join(
            f"{a.algorithm}: {a.error or a.status}" for a in attempts)
        super().__init__(
            f"resilient solve exhausted all {len(attempts)} attempts "
            f"without a verified solution: {detail}")


@dataclass
class SolveOutcome:
    """A solution (original ordering/shape) plus its performance report."""

    x: np.ndarray
    report: PerfReport
    resilience: ResilienceReport | None = None


class SpTRSVSolver:
    """Factor ``A`` once; solve ``A x = b`` with any of the paper's solvers.

    Parameters
    ----------
    A : scipy sparse, structurally symmetric, LU-factorizable w/o pivoting
    px, py, pz : 3D process grid (``pz`` must be a power of two)
    machine : simulated machine preset (see ``repro.comm.MACHINES``)
    max_supernode : supernode size cap
    symbolic_mode : ``"detect"`` (exact supernodes) or ``"fixed"`` (chunked)
    leaf_size : nested-dissection leaf subdomain size (default: heuristic)
    ordering : ``"nd"`` (nested dissection; required for ``pz > 1``) or
        ``"mmd"`` (minimum degree; 2D layouts only)
    """

    def __init__(self, A: sp.spmatrix, px: int = 1, py: int = 1, pz: int = 1,
                 machine: Machine = CORI_HASWELL, max_supernode: int = 16,
                 symbolic_mode: str = "detect", leaf_size: int | None = None,
                 ordering: str = "nd"):
        validate_matrix(A)
        A = sp.csr_matrix(A)
        n = A.shape[0]
        self.A = A
        self.grid = Grid3D(px, py, pz)
        self.machine = machine
        depth = ilog2(pz)
        if leaf_size is None:
            leaf_size = max(8, n // max(4 * pz, 8))
        if ordering == "nd":
            self.tree = nested_dissection(A, leaf_size=leaf_size,
                                          min_depth=depth)
        elif ordering == "mmd":
            if pz != 1:
                raise ValueError(
                    "minimum-degree ordering has no separator tree; the 3D "
                    "layout (pz > 1) requires ordering='nd'")
            from repro.ordering.min_degree import min_degree_tree

            self.tree = min_degree_tree(A)
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.perm = self.tree.perm
        self.iperm = inverse_permutation(self.perm)
        self.A_perm = sp.csr_matrix(A[self.perm][:, self.perm])
        self.sym = symbolic_factor(self.A_perm, max_supernode=max_supernode,
                                   boundaries=self.tree.boundaries(),
                                   mode=symbolic_mode)
        self.lu = lu_factorize(self.A_perm, self.sym.partition)
        self.layout = build_layout_tree(self.tree, pz)
        self._setups: dict[tuple, object] = {}

    @classmethod
    def from_pipeline(cls, A: sp.spmatrix, tree, sym, lu, px: int = 1,
                      py: int = 1, pz: int = 1,
                      machine: Machine = CORI_HASWELL) -> "SpTRSVSolver":
        """Build a solver from a precomputed pipeline (ND tree, symbolic,
        LU).  Lets benchmarks factor a matrix once and sweep grid shapes;
        the separator tree must be binary-complete to depth ``log2(pz)``.
        """
        self = object.__new__(cls)
        self.A = sp.csr_matrix(A)
        self.grid = Grid3D(px, py, pz)
        self.machine = machine
        self.tree = tree
        self.perm = tree.perm
        self.iperm = inverse_permutation(tree.perm)
        self.A_perm = sp.csr_matrix(self.A[self.perm][:, self.perm])
        self.sym = sym
        self.lu = lu
        self.layout = build_layout_tree(tree, pz)
        self._setups = {}
        return self

    @property
    def n(self) -> int:
        return self.A.shape[0]

    def storage_nbytes(self) -> int:
        """Resident bytes of the factored pipeline (matrix, permutations,
        LU blocks).  This is the unit :class:`repro.serve.FactorizationCache`
        accounts capacity in.
        """
        total = 0
        for M in (self.A, self.A_perm):
            total += M.data.nbytes + M.indices.nbytes + M.indptr.nbytes
        total += self.perm.nbytes + self.iperm.nbytes
        lu = self.lu
        for arrs in (lu.diagL, lu.diagU, lu.diagLinv, lu.diagUinv):
            total += sum(a.nbytes for a in arrs)
        total += sum(b.nbytes for b in lu.Lblocks.values())
        total += sum(b.nbytes for b in lu.Ublocks.values())
        return int(total)

    def factor_time_estimate(self, machine: Machine | None = None) -> float:
        """Virtual seconds the preprocessing pipeline is charged on a
        factorization-cache miss (serving tier, ``repro.serve``).

        Crude but deterministic model: a right-looking supernodal LU
        touches every stored factor entry O(mean supernode width) times,
        so flops ≈ ``2 · nnz(LU) · (n / nsup)`` and traffic ≈ three sweeps
        over the factor storage, priced by the machine's CPU roofline.
        """
        machine = machine or self.machine
        nnz = float(self.lu.nnz_stored())
        w_bar = self.n / max(1, self.lu.nsup)
        return machine.cpu.op_time(2.0 * nnz * w_bar, 24.0 * nnz)

    # -- setup caches ---------------------------------------------------------

    def _new3d_setup(self, tree_kind: str) -> New3DSetup:
        key = ("new3d", tree_kind)
        if key not in self._setups:
            self._setups[key] = build_new3d_setup(self.lu, self.layout,
                                                  self.grid, tree_kind)
        return self._setups[key]  # type: ignore[return-value]

    def _baseline_setup(self, tree_kind: str) -> Baseline3DSetup:
        key = ("baseline3d", tree_kind)
        if key not in self._setups:
            self._setups[key] = build_baseline3d_setup(self.lu, self.layout,
                                                       self.grid, tree_kind)
        return self._setups[key]  # type: ignore[return-value]

    def _ca_trsm_setup(self) -> CaTrsmSetup:
        key = ("ca_trsm",)
        if key not in self._setups:
            self._setups[key] = build_ca_trsm_setup(self.lu, self.grid)
        return self._setups[key]  # type: ignore[return-value]

    # -- solving --------------------------------------------------------------

    def solve(self, b: np.ndarray, algorithm: str = "new3d",
              tree_kind: str | None = None, machine: Machine | None = None,
              device: str = "cpu", baseline_level_sync: bool = True,
              allreduce_impl: str = "sparse",
              faults: FaultPlan | None = None,
              resilience: Resilience | None = None,
              profile: bool = False, trace: bool = False,
              strict_match: bool = False,
              replay: bool = False) -> SolveOutcome:
        """Solve ``A x = b``; ``b`` may be ``(n,)`` or ``(n, nrhs)``.

        ``algorithm``: ``"new3d"`` (proposed; adaptive "auto" trees),
        ``"baseline3d"`` (ICS'19, default flat communication), ``"2d"``
        (requires ``pz == 1``; the CSC'18 2D solver, which is exactly the
        proposed algorithm on a single grid), ``"sparse_allreduce_v2"``
        (the proposed algorithm with the SpComm3D-style structure-filtered
        allreduce), ``"onesided_put"`` (the proposed algorithm with a
        put-based one-sided inter-grid reduction — one RMA epoch per solve,
        bit-identical to ``"new3d"``; certified race-free by
        :mod:`repro.analyze.rma`), ``"ca_trsm"`` (communication-avoiding
        level-set block TRSM with selective inversion), or ``"auto"`` (the cost-model
        planner of :mod:`repro.planner` picks among the CPU backends and
        the solve then proceeds bit-identically to naming that backend
        directly).

        ``device="gpu"`` runs the proposed algorithm with GPU 2D solves
        (Algorithms 4-5); requires a machine with a GPU model and, for
        multi-GPU grids, ``Py == 1``.

        ``faults`` injects a deterministic
        :class:`~repro.comm.faults.FaultPlan` into the simulated fabric;
        ``resilience`` additionally verifies residuals and degrades
        gracefully through algorithm tiers on any failure (see
        :class:`Resilience` and ``docs/FAULTS.md``).  Both default off, in
        which case the solve is bit-identical to the lossless runtime.

        ``profile=True`` attaches a
        :class:`~repro.obs.metrics.MetricsRegistry` to the returned
        ``report.metrics`` (per-rank/per-phase counters, inter-grid sync
        points, critical path); ``trace=True`` additionally records the
        per-op event list on ``report.sim.trace`` for Chrome-trace export.
        Both are purely observational — virtual clocks are bit-identical
        either way.  Under ``resilience``, the registry describes the
        distributed attempt that produced the answer (``None`` when the
        sequential reference tier answered).

        ``strict_match=True`` runs the CPU simulator in strict wildcard
        matching mode: any ANY-source receive that could match queued
        messages from two or more senders raises
        :class:`~repro.comm.simulator.AmbiguousRecvError` instead of
        picking one.  The static analyzer (``repro analyze``) proves the
        solver kernels' receive loops set-deterministic, so a strict solve
        that *does* complete is bit-identical to a normal one.

        ``replay=True`` takes the compile-once fast path
        (:mod:`repro.replay`): the first solve of a given
        (algorithm, machine, nrhs) shape runs the instrumented simulator
        and compiles a flat replay program; every later solve executes
        that program — bit-identical solutions, virtual clocks, time
        labels and marks, at a fraction of the cost (see
        ``docs/PERFORMANCE.md``).  CPU fault-free path only: faults,
        resilience, tracing, strict matching, the naive-allreduce
        ablation and GPU solves all stay on the simulator.
        """
        validate_rhs(self.n, b)
        b2, was1d = as_2d_rhs(b)
        nrhs = b2.shape[1]
        b_perm = b2[self.perm]
        machine = machine or self.machine

        if algorithm == "auto":
            if device != "cpu":
                raise ValueError(
                    "algorithm='auto' plans over the CPU backends only "
                    "(device='cpu'); name the GPU algorithm explicitly")
            from repro.planner import DEFAULT_PLANNER

            algorithm = DEFAULT_PLANNER.choose(self, nrhs=nrhs,
                                               machine=machine).algorithm
            # From here on the solve is indistinguishable from the caller
            # having passed the planned algorithm directly.

        if device != "cpu" and strict_match:
            raise ValueError(
                "strict_match is a CPU message-passing runtime mode "
                "(device='cpu')")
        if device != "cpu" and (faults is not None or resilience is not None):
            raise ValueError(
                "fault injection / resilience are modeled on the CPU "
                "message-passing runtime only (device='cpu')")
        if replay:
            if device != "cpu":
                raise ValueError(
                    "replay compiles the CPU message-passing runtime only "
                    "(device='cpu')")
            if faults is not None or resilience is not None:
                raise ValueError(
                    "replay is the fault-free fast path; faulted/resilient "
                    "solves run on the simulator")
            if trace or strict_match:
                raise ValueError(
                    "replay executes no per-message dispatch, so trace/"
                    "strict_match (per-op observation modes) require the "
                    "simulated path")
            from repro.replay import replay_solve

            return replay_solve(self, b_perm, nrhs, was1d, algorithm,
                                tree_kind, machine, baseline_level_sync,
                                allreduce_impl, profile)

        metrics = MetricsRegistry() if profile else None
        if resilience is not None and strict_match:
            raise ValueError(
                "strict_match is a debugging mode; combining it with "
                "resilience would mask AmbiguousRecvError as a tier failure")
        if resilience is not None:
            return self._solve_resilient(b2, was1d, algorithm, tree_kind,
                                         machine, baseline_level_sync,
                                         allreduce_impl, faults, resilience,
                                         metrics=metrics, trace=trace)

        if device == "gpu":
            if algorithm not in ("new3d", "2d"):
                raise ValueError(
                    "GPU solves implement the proposed algorithm only "
                    "(algorithm='new3d', or '2d' with pz == 1)")
            if algorithm == "2d" and self.grid.pz != 1:
                raise ValueError("algorithm='2d' requires pz == 1")
            from repro.gpu.solver3d import solve_new3d_gpu

            setup = self._new3d_setup(tree_kind or "binary")
            gres = solve_new3d_gpu(setup, machine, b_perm, nrhs,
                                   metrics=metrics)
            x_perm = collect_solution(setup, gres.results, self.n, nrhs)
            x = np.empty_like(x_perm)
            x[self.perm] = x_perm
            report = PerfReport(sim=gres.sim, algorithm=f"{algorithm}-gpu",
                                grid=self.grid, nrhs=nrhs, metrics=metrics)
            return SolveOutcome(x=x[:, 0] if was1d else x, report=report)
        if device != "cpu":
            raise ValueError(f"unknown device {device!r}")

        sim_kwargs: dict = {}
        if metrics is not None:
            sim_kwargs["metrics"] = metrics
        if trace:
            sim_kwargs["trace"] = True
        if strict_match:
            sim_kwargs["strict_match"] = True
        x, res = self._solve_cpu(b_perm, nrhs, algorithm, tree_kind,
                                 machine, baseline_level_sync,
                                 allreduce_impl, faults,
                                 sim_kwargs=sim_kwargs or None)
        report = PerfReport(sim=res, algorithm=algorithm, grid=self.grid,
                            nrhs=nrhs, metrics=metrics)
        return SolveOutcome(x=x[:, 0] if was1d else x, report=report)

    def _solve_cpu(self, b_perm: np.ndarray, nrhs: int, algorithm: str,
                   tree_kind: str | None, machine: Machine,
                   baseline_level_sync: bool, allreduce_impl: str,
                   faults: FaultPlan | None = None,
                   sim_kwargs: dict | None = None
                   ) -> tuple[np.ndarray, SimResult]:
        """One distributed CPU solve; returns ``(x, sim_result)`` with ``x``
        already mapped back to the original ordering."""
        kwargs = dict(sim_kwargs or {})
        if faults is not None:
            kwargs["faults"] = faults
        sim = Simulator(self.grid.nranks, machine, **kwargs)

        if algorithm == "2d":
            if self.grid.pz != 1:
                raise ValueError("algorithm='2d' requires pz == 1")
            algorithm_impl = "new3d"
        elif algorithm == "sparse_allreduce_v2":
            # The proposed algorithm with the structure-filtered allreduce.
            algorithm_impl = "new3d"
            allreduce_impl = "sparse_v2"
        elif algorithm == "onesided_put":
            # Put-based inter-grid reduction: one RMA epoch per solve,
            # bit-identical to new3d's hypercube (see onesided_allreduce).
            algorithm_impl = "new3d"
            allreduce_impl = "onesided"
        elif algorithm in ("new3d", "baseline3d", "ca_trsm"):
            algorithm_impl = algorithm
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")

        if algorithm_impl == "ca_trsm":
            ca_setup = self._ca_trsm_setup()
            res = sim.run(ca_trsm_rank_fn(ca_setup, b_perm, nrhs))
            x_perm = collect_solution_ca(ca_setup, res.results, self.n, nrhs)
        elif algorithm_impl == "new3d":
            kind = tree_kind or "auto"
            setup = self._new3d_setup(kind)
            res = sim.run(new3d_rank_fn(setup, b_perm, nrhs,
                                        allreduce_impl=allreduce_impl))
            x_perm = collect_solution(setup, res.results, self.n, nrhs)
        else:
            kind = tree_kind or "flat"
            setup = self._baseline_setup(kind)
            res = sim.run(baseline3d_rank_fn(setup, b_perm, nrhs,
                                             level_sync=baseline_level_sync))
            x_perm = collect_solution_baseline(setup, res.results, self.n,
                                               nrhs)

        x = np.empty_like(x_perm)
        x[self.perm] = x_perm
        return x, res

    # -- graceful degradation -------------------------------------------------

    def _reference_report(self, machine: Machine, nrhs: int) -> PerfReport:
        """Cost-model view of the sequential fallback tier: one rank doing
        the full bandwidth-bound L+U sweep through the factors."""
        nnz = float(getattr(self.sym, "nnz_LU", self.A.nnz))
        t = machine.cpu.op_time(2.0 * nnz * nrhs,
                                8.0 * (nnz + 2.0 * self.n * nrhs))
        sim = SimResult(clocks=np.array([t]),
                        times=[{("reference", "fp"): t}],
                        sent_msgs=[{}], sent_bytes=[{}], marks=[{}],
                        results=[None])
        return PerfReport(sim=sim, algorithm="reference", grid=self.grid,
                          nrhs=nrhs)

    def _solve_resilient(self, b2: np.ndarray, was1d: bool, algorithm: str,
                         tree_kind: str | None, machine: Machine,
                         baseline_level_sync: bool, allreduce_impl: str,
                         faults: FaultPlan | None,
                         resilience: Resilience,
                         metrics: MetricsRegistry | None = None,
                         trace: bool = False) -> SolveOutcome:
        """Verified solve with retries and tier fallback (the recovery side
        of the fault model: detect via typed errors + residuals, recover via
        retry, degrade new-3D → baseline-3D → sequential reference)."""
        from repro.numfact import solve_residual

        if algorithm == "new3d":
            tiers = ["new3d", "baseline3d"]
        elif algorithm == "sparse_allreduce_v2":
            tiers = ["sparse_allreduce_v2", "baseline3d"]
        elif algorithm == "onesided_put":
            # RMA primitives refuse to run under injected faults (no typed
            # recovery story for half-applied epochs), so a faulty run falls
            # back to the two-sided tiers below.
            tiers = ["onesided_put", "new3d", "baseline3d"]
        elif algorithm in ("baseline3d", "2d", "ca_trsm"):
            tiers = [algorithm]
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")

        nrhs = b2.shape[1]
        b_perm = b2[self.perm]
        sim_kwargs = resilience.sim_kwargs()
        # The registry resets on every attempt's run, so after the loop it
        # describes the attempt that produced the answer.
        if metrics is not None:
            sim_kwargs["metrics"] = metrics
        if trace:
            sim_kwargs["trace"] = True
        attempts: list[AttemptRecord] = []
        recovery = 0.0
        attempt_idx = 0

        for tier in tiers:
            for retry in range(resilience.retries_per_tier + 1):
                # Attempt 0 runs the caller's plan verbatim; retries draw
                # independent (but seed-deterministic) fault schedules.
                plan = None
                if faults is not None:
                    plan = faults if attempt_idx == 0 else faults.fork(
                        attempt_idx)
                attempt_idx += 1
                try:
                    x, res = self._solve_cpu(b_perm, nrhs, tier, tree_kind,
                                             machine, baseline_level_sync,
                                             allreduce_impl, plan, sim_kwargs)
                except Exception as e:  # typed comm errors + kernel fallout
                    vt = float(getattr(e, "sim_time", 0.0))
                    recovery += vt
                    attempts.append(AttemptRecord(
                        tier, "error", vt, error=type(e).__name__,
                        fault_events=len(getattr(e, "fault_events", []))))
                    continue
                residual = solve_residual(self.A, x, b2)
                nflt = len(res.fault_events or [])
                if residual <= resilience.residual_tol:
                    attempts.append(AttemptRecord(
                        tier, "ok", res.makespan, residual=residual,
                        fault_events=nflt))
                    report = PerfReport(sim=res, algorithm=tier,
                                        grid=self.grid, nrhs=nrhs,
                                        metrics=metrics)
                    rr = ResilienceReport(
                        tier=tier, attempts=attempts, recovery_time=recovery,
                        total_time=recovery + res.makespan,
                        residual=residual)
                    return SolveOutcome(x=x[:, 0] if was1d else x,
                                        report=report, resilience=rr)
                recovery += res.makespan
                attempts.append(AttemptRecord(
                    tier, "bad-residual", res.makespan, residual=residual,
                    fault_events=nflt))

        # Last tier: the sequential reference solve through the same
        # factors — local, so immune to the injected fabric faults.
        x = self.reference_solve(b2)
        residual = solve_residual(self.A, x, b2)
        report = self._reference_report(machine, nrhs)
        if residual <= resilience.residual_tol:
            attempts.append(AttemptRecord(
                "reference", "ok", report.total_time, residual=residual))
            rr = ResilienceReport(
                tier="reference", attempts=attempts, recovery_time=recovery,
                total_time=recovery + report.total_time, residual=residual)
            return SolveOutcome(x=x[:, 0] if was1d else x, report=report,
                                resilience=rr)
        attempts.append(AttemptRecord("reference", "bad-residual",
                                      report.total_time, residual=residual))
        raise ResilienceExhausted(attempts)

    def solve_blocked(self, b: np.ndarray, rhs_block: int = 16,
                      **solve_kw) -> SolveOutcome:
        """Solve a wide multi-RHS problem in column panels.

        Very wide RHS matrices (e.g. hundreds of columns) are processed in
        panels of ``rhs_block`` columns — the standard memory/cache
        trade-off for GEMM-heavy solves.  The report of the returned
        outcome aggregates the panels' simulated times (panels run one
        after another, as a real implementation would).
        """
        if rhs_block < 1:
            raise ValueError("rhs_block must be >= 1")
        b2, was1d = as_2d_rhs(b)
        nrhs = b2.shape[1]
        if nrhs <= rhs_block:
            return self.solve(b, **solve_kw)
        x = np.empty_like(b2)
        first: SolveOutcome | None = None
        total = 0.0
        for c0 in range(0, nrhs, rhs_block):
            c1 = min(nrhs, c0 + rhs_block)
            out = self.solve(b2[:, c0:c1], **solve_kw)
            x[:, c0:c1] = out.x
            total += out.report.total_time
            if first is None:
                first = out
        # Aggregate view: scale the first panel's clocks to the summed
        # panel times (panels are independent, identical-shape solves).
        rep = first.report
        rep.sim.clocks = rep.sim.clocks + (total - rep.sim.makespan)
        return SolveOutcome(x=x[:, 0] if was1d else x, report=rep)

    def reference_solve(self, b: np.ndarray) -> np.ndarray:
        """Sequential reference solve through the same LU factors."""
        b2, was1d = as_2d_rhs(b)
        xp = self.lu.solve(b2[self.perm])
        x = np.empty_like(xp)
        x[self.perm] = xp
        return x[:, 0] if was1d else x
