"""Communication-avoiding block TRSM with selective inversion (``ca_trsm``).

An alternative solver backend in the spirit of Wicky & Solomonik's
communication-avoiding parallel TRSM (arXiv:1612.01855): instead of the
paper's 2D block-cyclic message-driven kernel, the whole 3D grid is
flattened into one 1D rank pool, supernode *columns* are distributed
block-cyclically over it, and the solve proceeds level set by level set
over the elimination DAG.  Two structural choices keep communication low:

- **Selective inversion.**  Every diagonal supernode block is applied as
  its precomputed inverse (``diagLinv`` / ``diagUinv`` from
  :class:`~repro.numfact.lu.BlockSparseLU`), so the per-level critical
  path is GEMM-only — no distributed triangular solves, no intra-block
  dependency chains.
- **Per-level message packing.**  Within a level, a rank computes every
  update its solved columns produce and sends **one** packed message per
  destination rank, instead of one message per block — O(P) messages per
  level in the worst case, independent of the block sparsity.

Contributions are buffered per (row, source column) and summed in
canonical source-column order before a row is solved, so multi-RHS
columns stay bit-identical to single-RHS solves (the same reproducibility
contract as :mod:`repro.core.sptrsv2d`).  All receives name their exact
source rank — the schedule has no wildcard to race on, which makes the
static analyzer's certification of this backend trivial.

Like every backend, ``ca_trsm`` runs as rank programs on the simulator
(:mod:`repro.comm.simulator`), so it inherits fault injection, metrics,
static schedule extraction and the α-β virtual clock unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.simulator import RankCtx
from repro.core.plan2d import u_blockrows
from repro.grids.grid3d import Grid3D
from repro.numfact.lu import BlockSparseLU
from repro.util import matmul_columns


@dataclass
class CaTrsmSetup:
    """Precomputed level-set schedule of the communication-avoiding TRSM.

    ``levels_L`` / ``levels_U`` list the supernodes of each level (level 0
    has no unresolved dependencies).  ``senders_L`` / ``senders_U`` give,
    per level, the exact packed-message sources each rank must drain
    before advancing — the static receive schedule.
    """

    grid: Grid3D
    lu: BlockSparseLU
    u_adj: list[np.ndarray]             # consumer rows of each U column
    levels_L: list[list[int]]
    levels_U: list[list[int]]
    senders_L: list[dict[int, list[int]]]   # level -> {dest: [src, ...]}
    senders_U: list[dict[int, list[int]]]


def _level_sets(nsup: int, producers: list[list[int]],
                order: range) -> list[list[int]]:
    """Level of each supernode: 1 + max level of its producers.

    ``order`` must topologically sort the DAG (ascending for L, whose
    producers have smaller indices; descending for U).
    """
    level = [0] * nsup
    for K in order:
        deps = producers[K]
        if len(deps):
            level[K] = 1 + max(level[int(J)] for J in deps)
    out: list[list[int]] = [[] for _ in range(max(level, default=0) + 1)]
    for K in range(nsup):
        out[level[K]].append(K)
    return out if nsup else []


def _sender_schedule(levels: list[list[int]], adj, nranks: int
                     ) -> list[dict[int, list[int]]]:
    """Per level, the sorted packed-message sources of every destination."""
    out: list[dict[int, list[int]]] = []
    for sns in levels:
        pairs: set[tuple[int, int]] = set()
        for K in sns:
            s = K % nranks
            for I in adj[K]:
                d = int(I) % nranks
                if d != s:
                    pairs.add((d, s))
        sched: dict[int, list[int]] = {}
        for d, s in sorted(pairs):
            sched.setdefault(d, []).append(s)
        out.append(sched)
    return out


def build_ca_trsm_setup(lu: BlockSparseLU, grid: Grid3D) -> CaTrsmSetup:
    """Build the level-set schedule over the flattened rank pool."""
    nsup = lu.nsup
    P = grid.nranks
    u_adj = u_blockrows(lu)
    # Producers of an L column K are the columns J whose block row set
    # contains K; of a U column K, the columns J in u_blockcols[K].
    l_prod: list[list[int]] = [[] for _ in range(nsup)]
    for J in range(nsup):
        for I in lu.l_blockrows[J]:
            l_prod[int(I)].append(J)
    u_prod = [list(map(int, lu.u_blockcols[K])) for K in range(nsup)]
    levels_L = _level_sets(nsup, l_prod, range(nsup))
    levels_U = _level_sets(nsup, u_prod, range(nsup - 1, -1, -1))
    return CaTrsmSetup(
        grid=grid, lu=lu, u_adj=u_adj,
        levels_L=levels_L, levels_U=levels_U,
        senders_L=_sender_schedule(levels_L, lu.l_blockrows, P),
        senders_U=_sender_schedule(levels_U, u_adj, P))


def ca_trsm_rank_fn(setup: CaTrsmSetup, b_perm: np.ndarray, nrhs: int):
    """Build the simulator rank function of the level-set solve.

    Each rank returns ``{K: x_K}`` for the supernode columns it owns
    (1D block-cyclic: owner of ``K`` is ``K % nranks``).
    """
    lu = setup.lu
    part = lu.partition
    P = setup.grid.nranks

    def rank_fn(ctx: RankCtx):
        r = ctx.rank
        mine = [K for K in range(lu.nsup) if K % P == r]
        rhs = {K: np.array(b_perm[part.first(K):part.last(K)], copy=True)
               for K in mine}
        # Buffered contributions: row -> {source column -> partial};
        # materialized in canonical source order, never arrival order.
        contribs: dict[int, dict[int, np.ndarray]] = {}

        def add_contrib(I: int, K: int, arr: np.ndarray) -> None:
            c = contribs.setdefault(I, {})
            c[K] = c[K] + arr if K in c else arr

        def materialize(I: int) -> np.ndarray:
            out = np.zeros((part.size(I), nrhs))
            c = contribs.pop(I, None)
            if c:
                for K in sorted(c):
                    out += c[K]
            return out

        def run_phase(levels, senders, adj, blocks, diag_inv, rhs_in, tagp):
            """One triangular sweep; returns the solved owned subvectors."""
            values: dict[int, np.ndarray] = {}
            for lev, sns in enumerate(levels):
                outgoing: dict[int, list] = {}
                for K in sns:
                    if K % P != r:
                        continue
                    w = part.size(K)
                    yield ctx.gemm(w, nrhs, w, category="fp")
                    val = matmul_columns(diag_inv[K],
                                         rhs_in[K] - materialize(K))
                    values[K] = val
                    for I in adj[K]:
                        I = int(I)
                        blk = blocks[(I, K)]
                        m, k = blk.shape
                        yield ctx.gemm(m, nrhs, k, category="fp")
                        upd = matmul_columns(blk, val)
                        if I % P == r:
                            add_contrib(I, K, upd)
                        else:
                            outgoing.setdefault(I % P, []).append((I, K, upd))
                for d in sorted(outgoing):
                    yield ctx.send(d, outgoing[d], tag=(tagp, lev),
                                   category="xy")
                for s in senders[lev].get(r, ()):
                    _, _, packed = yield ctx.recv(src=s, tag=(tagp, lev),
                                                  category="xy")
                    for (I, K, upd) in packed:
                        add_contrib(I, K, upd)
            return values

        ctx.set_phase("l")
        ctx.mark("l_start")
        y = yield from run_phase(setup.levels_L, setup.senders_L,
                                 lu.l_blockrows, lu.Lblocks, lu.diagLinv,
                                 rhs, "caL")
        ctx.mark("l_end")
        ctx.set_phase("u")
        x = yield from run_phase(setup.levels_U, setup.senders_U,
                                 setup.u_adj, lu.Ublocks, lu.diagUinv,
                                 y, "caU")
        ctx.mark("u_end")
        return x

    return rank_fn


def collect_solution_ca(setup: CaTrsmSetup, results: list, n: int,
                        nrhs: int) -> np.ndarray:
    """Assemble the permuted-order solution from per-rank results."""
    part = setup.lu.partition
    P = setup.grid.nranks
    x = np.empty((n, nrhs))
    for K in range(part.nsup):
        x[part.first(K):part.last(K)] = results[K % P][K]
    return x
