"""Sparse inter-grid allreduce (the paper's Algorithm 2).

After the per-grid 2D L-solves, the partial solutions of every *replicated*
(ancestor) supernode must be summed across the grids sharing it.  A naive
per-node ``MPI_Allreduce`` costs a latency per elimination-tree node; the
sparse allreduce instead performs ``log2(Pz)`` pairwise exchange steps each
way — a hypercube reduce toward grid 0 followed by the mirrored broadcast —
with each rank packing all its supernode subvectors for a step into one
buffer.

Note on the paper's pseudocode: Algorithm 2 as printed sends from
``z % 2^(l+1) == 0`` during the reduce, but Fig. 3 (and the baseline's
"reduce to the smallest grid id" convention) show the accumulation flowing
*toward* the smaller grid; we follow the figure.
"""

from __future__ import annotations

import numpy as np

from repro.comm.simulator import RankCtx
from repro.grids.grid3d import Grid3D
from repro.ordering.layout import LayoutTree
from repro.symbolic.supernodes import SupernodePartition


def ancestor_supernodes(layout: LayoutTree, part: SupernodePartition,
                        z: int) -> list[list[int]]:
    """For each allreduce step ``l``, the supernodes exchanged by grid ``z``.

    Step ``l`` pairs grids differing in bit ``l`` and moves the nodes those
    two grids still share: the ancestors of the level-``(depth-l)`` node on
    ``z``'s path, i.e. ``path[l+1:]``.  The per-step lists are identical for
    both members of a pair, which keeps the exchange symmetric.
    """
    path = layout.path(z)
    out: list[list[int]] = []
    for l in range(layout.depth):
        sns: list[int] = []
        for node in path[l + 1:]:
            lo, hi = part.sn_range(node.first, node.last)
            sns.extend(range(lo, hi))
        out.append(sorted(sns))
    return out


def _my_sns(sns: list[int], grid: Grid3D, i: int, j: int) -> list[int]:
    """Supernodes in ``sns`` whose diagonal block lives at 2D coords (i, j)."""
    return [K for K in sns if K % grid.px == i and K % grid.py == j]


def sparse_allreduce(ctx: RankCtx, grid: Grid3D, layout: LayoutTree,
                     part: SupernodePartition, values: dict[int, np.ndarray],
                     category: str = "z"):
    """Sum ``values[K]`` across all grids replicating supernode ``K``.

    ``values`` holds the partial subvectors this rank diagonally owns; the
    entries for replicated supernodes are updated in place to the full sum.
    Every rank of every grid must call this (ranks with nothing to exchange
    at a step skip it — their partner skips symmetrically).
    """
    i, j, z = grid.coords_of(ctx.rank)
    depth = layout.depth
    if depth == 0:
        return
    steps = ancestor_supernodes(layout, part, z)
    my_steps = [_my_sns(sns, grid, i, j) for sns in steps]

    def pack(ks: list[int]) -> np.ndarray:
        return np.concatenate([values[K] for K in ks], axis=0)

    def unpack(ks: list[int], buf: np.ndarray, accumulate: bool) -> None:
        ofs = 0
        for K in ks:
            w = values[K].shape[0]
            if accumulate:
                values[K] += buf[ofs:ofs + w]
            else:
                values[K][:] = buf[ofs:ofs + w]
            ofs += w

    # The whole reduce+broadcast is ONE inter-grid synchronization point —
    # the quantity the paper's headline claim counts.
    ctx.set_sync("allreduce")

    # Sparse reduce: accumulate toward grid 0.
    for l in range(depth):
        ks = my_steps[l]
        if not ks:
            continue
        stride = 1 << l
        if z % (2 * stride) == stride:
            yield ctx.send(grid.zpeer(ctx.rank, z - stride), pack(ks),
                           tag=("sar", "r", l), category=category)
        elif z % (2 * stride) == 0:
            _, _, buf = yield ctx.recv(src=grid.zpeer(ctx.rank, z + stride),
                                       tag=("sar", "r", l), category=category)
            unpack(ks, buf, accumulate=True)

    # Sparse broadcast: mirrored, full sums flow back out.
    for l in range(depth - 1, -1, -1):
        ks = my_steps[l]
        if not ks:
            continue
        stride = 1 << l
        if z % (2 * stride) == 0:
            yield ctx.send(grid.zpeer(ctx.rank, z + stride), pack(ks),
                           tag=("sar", "b", l), category=category)
        elif z % (2 * stride) == stride:
            _, _, buf = yield ctx.recv(src=grid.zpeer(ctx.rank, z - stride),
                                       tag=("sar", "b", l), category=category)
            unpack(ks, buf, accumulate=False)

    ctx.set_sync("")


def structural_nonzeros(lu, grid_sns: list[list[int]],
                        sn_owner_grid: dict[int, int]) -> list[set[int]]:
    """Per grid, the supernodes whose L-solve partial can be nonzero.

    Grid ``z``'s right-hand side is zeroed everywhere except the supernodes
    it owns, so after the 2D L-solve its partial ``y^z[K]`` is exactly zero
    unless ``K`` is reachable from an owned supernode along L's block
    sparsity (``y = L^{-1} b`` propagates strictly forward over the edges
    ``K -> I`` with ``L(I, K) != 0``).  The reachable sets are the block
    analogue of SpComm3D's precomputed communication sparsity: both
    partners of an exchange derive them from the shared symbolic structure,
    so the filtered schedules agree without any extra negotiation.
    """
    out: list[set[int]] = []
    for z, sns in enumerate(grid_sns):
        seed = [K for K in sns if sn_owner_grid[K] == z]
        nz = set(seed)
        stack = list(seed)
        while stack:
            K = stack.pop()
            for I in lu.l_blockrows[K]:
                I = int(I)
                if I not in nz:
                    nz.add(I)
                    stack.append(I)
        out.append(nz)
    return out


def sparse_allreduce_v2(ctx: RankCtx, grid: Grid3D, layout: LayoutTree,
                        part: SupernodePartition,
                        values: dict[int, np.ndarray],
                        nz_sets: list[set[int]], category: str = "z"):
    """Structure-filtered variant of :func:`sparse_allreduce`.

    Identical hypercube schedule, but during the *reduce* sweep a sender
    only packs the supernodes whose accumulated partial is structurally
    nonzero — i.e. nonzero for at least one grid of the subcube it has
    already absorbed (``nz_sets`` from :func:`structural_nonzeros`).  A
    skipped supernode's contribution is exactly ``0.0``, so the receiver
    keeping its own partial is bit-identical to adding the zeros.  The
    broadcast sweep stays unfiltered: every grid needs the *full* sums.
    Both members of a pair filter by the same subcube union, so sends and
    receives stay paired and the exchange cannot deadlock.
    """
    i, j, z = grid.coords_of(ctx.rank)
    depth = layout.depth
    if depth == 0:
        return
    steps = ancestor_supernodes(layout, part, z)
    my_steps = [_my_sns(sns, grid, i, j) for sns in steps]

    def pack(ks: list[int]) -> np.ndarray:
        return np.concatenate([values[K] for K in ks], axis=0)

    def subcube_nz(z0: int, width: int) -> set[int]:
        return set().union(*(nz_sets[zz] for zz in range(z0, z0 + width)))

    ctx.set_sync("allreduce")

    # Filtered sparse reduce: accumulate toward grid 0, sending only the
    # structurally-nonzero subvector blocks of the sender's subcube.
    for l in range(depth):
        stride = 1 << l
        if z % (2 * stride) == stride:
            ks = [K for K in my_steps[l]
                  if K in subcube_nz(z, stride)]
            if ks:
                yield ctx.send(grid.zpeer(ctx.rank, z - stride), pack(ks),
                               tag=("sar2", "r", l), category=category)
        elif z % (2 * stride) == 0:
            ks = [K for K in my_steps[l]
                  if K in subcube_nz(z + stride, stride)]
            if ks:
                _, _, buf = yield ctx.recv(
                    src=grid.zpeer(ctx.rank, z + stride),
                    tag=("sar2", "r", l), category=category)
                ofs = 0
                for K in ks:
                    w = values[K].shape[0]
                    values[K] += buf[ofs:ofs + w]
                    ofs += w

    # Unfiltered mirrored broadcast: the full sums flow back out.
    for l in range(depth - 1, -1, -1):
        ks = my_steps[l]
        if not ks:
            continue
        stride = 1 << l
        if z % (2 * stride) == 0:
            yield ctx.send(grid.zpeer(ctx.rank, z + stride), pack(ks),
                           tag=("sar2", "b", l), category=category)
        elif z % (2 * stride) == stride:
            _, _, buf = yield ctx.recv(src=grid.zpeer(ctx.rank, z - stride),
                                       tag=("sar2", "b", l),
                                       category=category)
            ofs = 0
            for K in ks:
                w = values[K].shape[0]
                values[K][:] = buf[ofs:ofs + w]
                ofs += w

    ctx.set_sync("")


def _tree_sum(bufs: list[np.ndarray]) -> np.ndarray:
    """Balanced pairwise sum: halve the list by adding adjacent pairs until
    one buffer remains.

    For a power-of-two share width this reproduces, bit for bit, the
    association order of :func:`sparse_allreduce`'s hypercube reduce
    (step ``l`` adds aligned subcube partials pairwise), so every grid
    computing the sum locally gets the exact bytes the hypercube's root
    would have broadcast.
    """
    while len(bufs) > 1:
        nxt = [bufs[a] + bufs[a + 1] for a in range(0, len(bufs) - 1, 2)]
        if len(bufs) % 2:
            nxt.append(bufs[-1])
        bufs = nxt
    return bufs[0]


def onesided_allreduce(ctx: RankCtx, grid: Grid3D, layout: LayoutTree,
                       part: SupernodePartition,
                       values: dict[int, np.ndarray],
                       category: str = "z"):
    """Put-based variant of :func:`sparse_allreduce` (one fence per solve).

    Every rank packs, per shared layout node, its partial subvectors into
    one buffer and *puts* it into the window of each peer grid sharing the
    node, under a key naming the (origin grid, node range) — so no two
    writes ever target the same key and the epoch is race-free by
    construction (:mod:`repro.analyze.rma` certifies this).  A single
    ``ctx.fence`` then delimits the epoch: afterwards each rank reads the
    peers' buffers from its own window and reduces locally with the
    balanced pairwise association of the hypercube, keeping the result
    bit-identical to :func:`sparse_allreduce` on every grid.

    Communication structure after Xie et al. (arXiv:2012.06959): GPU-style
    one-sided exchange needs exactly one synchronization per solve, the
    same count the paper's Algorithm 2 achieves with two-sided pairs.
    """
    i, j, z = grid.coords_of(ctx.rank)
    shares: list[tuple[int, int, list[int]]] = []
    for node in layout.nodes:
        nshare = node.grid_hi - node.grid_lo
        if nshare < 2 or not (node.grid_lo <= z < node.grid_hi):
            continue
        lo, hi = part.sn_range(node.first, node.last)
        ks = [K for K in range(lo, hi)
              if K % grid.px == i and K % grid.py == j]
        if ks:
            shares.append((node.grid_lo, node.grid_hi, ks))
    if not shares:
        # Still participate in the epoch: the fence is collective.
        yield ctx.fence(tag="allreduce", category=category)
        return

    # Like the two-sided variants, the whole exchange is ONE inter-grid
    # synchronization point (the puts carry the sync label; the fence is
    # the single barrier).
    ctx.set_sync("allreduce")
    for glo, ghi, ks in shares:
        buf = np.concatenate([values[K] for K in ks], axis=0)
        for z2 in range(glo, ghi):
            if z2 != z:
                yield ctx.put(grid.zpeer(ctx.rank, z2), ("osp", z, glo, ghi),
                              buf, category=category)
    yield ctx.fence(tag="allreduce", category=category)
    ctx.set_sync("")

    for glo, ghi, ks in shares:
        bufs: list[np.ndarray] = []
        for z2 in range(glo, ghi):
            if z2 == z:
                bufs.append(np.concatenate([values[K] for K in ks], axis=0))
            else:
                buf = yield ctx.read(("osp", z2, glo, ghi),
                                     category=category)
                bufs.append(buf)
        total = _tree_sum(bufs)
        ofs = 0
        for K in ks:
            w = values[K].shape[0]
            values[K][:] = total[ofs:ofs + w]
            ofs += w


def naive_allreduce(ctx: RankCtx, grid: Grid3D, layout: LayoutTree,
                    part: SupernodePartition, values: dict[int, np.ndarray],
                    category: str = "z"):
    """The straw-man the paper argues against (§3.2): one ``MPI_Allreduce``
    per elimination-tree node over the grids sharing it.

    Functionally equivalent to :func:`sparse_allreduce` but pays a full
    reduce+broadcast latency per *node* instead of one packed pairwise
    exchange per *level* — the ablation benchmark quantifies the gap.
    """
    from repro.comm.collectives import allreduce

    i, j, z = grid.coords_of(ctx.rank)
    for node in layout.nodes:
        nshare = node.grid_hi - node.grid_lo
        if nshare < 2 or not (node.grid_lo <= z < node.grid_hi):
            continue
        lo, hi = part.sn_range(node.first, node.last)
        ks = [K for K in range(lo, hi)
              if K % grid.px == i and K % grid.py == j]
        if not ks:
            continue
        buf = np.concatenate([values[K] for K in ks], axis=0)
        members = [grid.zpeer(ctx.rank, zz)
                   for zz in range(node.grid_lo, node.grid_hi)]
        # One rendezvous per tree node — the sync-point count the sparse
        # allreduce collapses to 1.
        out = yield from allreduce(ctx, members, buf,
                                   tag=("nar", node.heap_id),
                                   category=category,
                                   sync=f"node-{node.heap_id}")
        ofs = 0
        for K in ks:
            w = values[K].shape[0]
            values[K][:] = out[ofs:ofs + w]
            ofs += w
