"""Message-driven 2D SpTRSV kernel (the paper's Algorithm 3, generalized).

One generator runs per rank inside the simulator.  The kernel is fully
message-driven: after seeding the dependency-free supernodes, each rank
loops over a precomputed number of expected messages
(``MPI_Recv(MPI_ANY_SOURCE)`` in the paper), forwarding broadcast values
down the column trees, accumulating ``lsum`` partial sums, reducing them up
the row trees, and solving a supernode the moment its dependencies are met.

The same kernel executes L-solves and U-solves (the plan encodes the
direction) and the baseline algorithm's per-node restricted solves
(``ext_cols`` producers and exported ``out_rows``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.comm.simulator import ANY, RankCtx
from repro.core.plan2d import Plan2D
from repro.util import matmul_columns


def sptrsv_2d(ctx: RankCtx, plan2d: Plan2D, rhs: dict[int, np.ndarray],
              nrhs: int, ext_values: dict[int, np.ndarray] | None = None,
              initial_lsum: dict[int, np.ndarray] | None = None,
              comm_category: str = "xy", fp_category: str = "fp",
              tag_salt: object = None):
    """Run one 2D triangular solve on the calling rank.

    - ``rhs[K]``: ``(size(K), nrhs)`` right-hand side at K's diagonal owner,
      for every K in this rank's ``solve_cols``.
    - ``ext_values[J]``: known producer values at J's diagonal owner.
    - ``initial_lsum[I]``: partial sums carried in from earlier solves
      (baseline levels), at I's diagonal owner.
    - ``tag_salt`` disambiguates messages when several kernel instances
      overlap in one simulation phase.

    Returns ``(values, out_lsum)``: solved subvectors for this rank's
    ``solve_cols`` and exported partial sums for its ``out_rows``.
    """
    plan = plan2d.plan_of(ctx.rank)
    size = plan2d.sn_size
    diag_inv = plan2d.diag_inv
    my_solve = set(plan.solve_cols)
    rank = ctx.rank

    # Partial sums are buffered per contribution and materialized in
    # canonical key order, NOT accumulated in message-arrival order:
    # arrival order shifts with ``nrhs`` (GEMM durations scale with the
    # batch width), and floating-point addition is order-sensitive.  The
    # canonical order makes every solved column bit-identical to the same
    # column solved alone — the batching contract ``repro.serve`` relies
    # on.  Keys: (0, 0) carried-in lsum, (1, J) local block of column J,
    # (2, src) reduce-tree partial from rank ``src``.
    contribs: dict[int, dict[tuple[int, int], np.ndarray]] = {}

    def add_contrib(I: int, key: tuple[int, int], arr: np.ndarray) -> None:
        c = contribs.setdefault(I, {})
        c[key] = c[key] + arr if key in c else arr

    def materialize(I: int) -> np.ndarray:
        """Sum of row I's contributions, in canonical key order."""
        out = np.zeros((size(I), nrhs))
        c = contribs.pop(I, None)
        if c:
            for key in sorted(c):
                out += c[key]
        return out

    if initial_lsum:
        for I, v in initial_lsum.items():
            add_contrib(I, (0, 0), v)

    fmod = dict(plan.fmod0)
    frecv = dict(plan.frecv0)
    values: dict[int, np.ndarray] = {}
    work: deque = deque()

    def row_ready(I: int) -> bool:
        return fmod.get(I, 0) == 0 and frecv.get(I, 0) == 0

    def drain():
        """Process queued work items until none remain (no recursion)."""
        while work:
            item = work.popleft()
            kind = item[0]
            if kind == "solve":
                K = item[1]
                w = size(K)
                yield ctx.gemm(w, nrhs, w, category=fp_category)
                val = matmul_columns(diag_inv[K], rhs[K] - materialize(K))
                values[K] = val
                work.append(("emit", K, val))
            elif kind == "emit":
                J, val = item[1], item[2]
                tree = plan.bcast_trees.get(J)
                if tree is not None:
                    for c in tree.children(rank):
                        yield ctx.send(c, val, tag=("bc", J, tag_salt),
                                       category=comm_category)
                for I, blk in plan.consumer_blocks.get(J, ()):
                    m, k = blk.shape
                    yield ctx.gemm(m, nrhs, k, category=fp_category)
                    add_contrib(I, (1, J), matmul_columns(blk, val))
                    fmod[I] -= 1
                    if row_ready(I):
                        work.append(("rowdone", I))
            elif kind == "rowdone":
                I = item[1]
                tree = plan.red_trees.get(I)
                if tree is None or tree.root == rank:
                    if I in my_solve:
                        work.append(("solve", I))
                    # else: exported out_row, value stays in lsum
                else:
                    yield ctx.send(tree.parent(rank), materialize(I),
                                   tag=("rd", I, tag_salt),
                                   category=comm_category)

    # Seed: external producers first, then dependency-free solve columns.
    for J in plan.ext_cols:
        work.append(("emit", J, ext_values[J]))
    for K in plan.solve_cols:
        if row_ready(K):
            work.append(("solve", K))
    yield from drain()

    def my_tag(t) -> bool:
        return (isinstance(t, tuple) and len(t) == 3 and t[2] == tag_salt
                and t[0] in ("bc", "rd"))

    for _ in range(plan.nrecv):
        src, tag, payload = yield ctx.recv(src=ANY, tag=my_tag,
                                           category=comm_category)
        kind, key, _salt = tag
        if kind == "bc":
            work.append(("emit", key, payload))
        elif kind == "rd":
            add_contrib(key, (2, src), payload)
            frecv[key] -= 1
            if row_ready(key):
                work.append(("rowdone", key))
        else:  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected message tag {tag!r}")
        yield from drain()

    missing = my_solve - set(values)
    if missing:  # pragma: no cover - indicates a plan bug
        raise RuntimeError(
            f"rank {rank}: solve incomplete, missing {sorted(missing)[:5]}")
    return values, {I: materialize(I) for I in plan.out_rows}
