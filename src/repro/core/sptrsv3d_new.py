"""The proposed 3D SpTRSV algorithm (the paper's Algorithm 1).

Every grid ``z`` treats its leaf node plus *all* ancestors as one 2D
block-cyclic matrix ``L^z``/``U^z`` and runs plain 2D solves over it,
replicating the ancestor computation instead of synchronizing per tree
level.  The right-hand side entries of a replicated node are zeroed on
every grid except the smallest grid id sharing it, so the per-grid partial
solutions of the ancestors sum — linearly — to the true solution; the
single sparse allreduce between the L- and U-solves performs that sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.simulator import RankCtx
from repro.core.plan2d import Plan2D, build_2d_plans, u_blockrows
from repro.core.sparse_allreduce import sparse_allreduce
from repro.core.sptrsv2d import sptrsv_2d
from repro.grids.grid3d import BlockCyclicMap, Grid3D
from repro.numfact.lu import BlockSparseLU
from repro.ordering.layout import LayoutTree
from repro.symbolic.supernodes import SupernodePartition


@dataclass
class New3DSetup:
    """Precomputed per-grid plans for the proposed algorithm.

    Built once per (grid shape, tree kind); the plans play the role of the
    ``fmod`` arrays and communication trees SuperLU_DIST precomputes before
    its solve phase.
    """

    grid: Grid3D
    layout: LayoutTree
    part: SupernodePartition
    lu: BlockSparseLU
    plans_L: list[Plan2D]          # per grid z
    plans_U: list[Plan2D]
    grid_sns: list[list[int]]      # supernodes of grid z (leaf + ancestors)
    sn_owner_grid: dict[int, int]  # smallest grid id replicating a supernode


def grid_supernodes(layout: LayoutTree, part: SupernodePartition,
                    z: int) -> list[int]:
    """All supernodes grid ``z`` holds: its leaf node plus every ancestor."""
    sns: list[int] = []
    for node in layout.path(z):
        lo, hi = part.sn_range(node.first, node.last)
        sns.extend(range(lo, hi))
    return sorted(sns)


def build_new3d_setup(lu: BlockSparseLU, layout: LayoutTree, grid: Grid3D,
                      tree_kind: str = "binary") -> New3DSetup:
    """Build the per-grid L/U plans of the proposed 3D algorithm."""
    part = lu.partition
    uadj = u_blockrows(lu)
    plans_L, plans_U, grid_sns = [], [], []
    sn_owner_grid: dict[int, int] = {}
    for node in layout.nodes:
        lo, hi = part.sn_range(node.first, node.last)
        for K in range(lo, hi):
            sn_owner_grid[K] = node.owner_grid
    for z in range(grid.pz):
        sns = grid_supernodes(layout, part, z)
        sset = set(sns)
        # Ancestor-closure invariant: every block row of a grid's columns
        # lies inside the grid's supernode set (guaranteed by a valid ND
        # separator tree; a violation means the ordering is broken and the
        # distributed solve would silently drop blocks).
        for K in sns:
            for I in lu.l_blockrows[K]:
                if int(I) not in sset:
                    raise AssertionError(
                        f"grid {z}: block row {int(I)} of column {K} falls "
                        f"outside the grid's node path — the separator tree "
                        f"violates the ancestor-closure property")
        grid_sns.append(sns)
        plans_L.append(build_2d_plans(lu, grid, z, "L", sns,
                                      tree_kind=tree_kind))
        plans_U.append(build_2d_plans(lu, grid, z, "U", sns,
                                      tree_kind=tree_kind, u_adj=uadj))
    return New3DSetup(grid=grid, layout=layout, part=part, lu=lu,
                      plans_L=plans_L, plans_U=plans_U, grid_sns=grid_sns,
                      sn_owner_grid=sn_owner_grid)


def new3d_rank_fn(setup: New3DSetup, b_perm: np.ndarray, nrhs: int,
                  allreduce_impl: str = "sparse"):
    """Build the simulator rank function executing Algorithm 1.

    ``b_perm`` is the full RHS in the permuted ordering, shape ``(n, nrhs)``
    (the solve phase is what the paper times; RHS staging is preprocessing).
    Each rank returns its diagonally-owned solution subvectors.
    """
    grid = setup.grid
    part = setup.part
    nz_sets: list[set[int]] | None = None
    if allreduce_impl == "sparse_v2":
        from repro.core.sparse_allreduce import structural_nonzeros

        # Shared symbolic structure, computed once for all ranks.
        nz_sets = structural_nonzeros(setup.lu, setup.grid_sns,
                                      setup.sn_owner_grid)

    def rank_fn(ctx: RankCtx):
        _, _, z = grid.coords_of(ctx.rank)
        plan_L = setup.plans_L[z]
        plan_U = setup.plans_U[z]
        my_cols = plan_L.plan_of(ctx.rank).solve_cols

        # Form b^z: zero the replicated entries except on the owner grid
        # (Algorithm 1 lines 4-10).
        rhs: dict[int, np.ndarray] = {}
        for K in my_cols:
            c0, c1 = part.first(K), part.last(K)
            if setup.sn_owner_grid[K] == z:
                rhs[K] = np.array(b_perm[c0:c1], copy=True)
            else:
                rhs[K] = np.zeros((c1 - c0, nrhs))

        ctx.set_phase("l")
        ctx.mark("l_start")
        y, _ = yield from sptrsv_2d(ctx, plan_L, rhs, nrhs,
                                    comm_category="xy", fp_category="fp",
                                    tag_salt=("nL", z))
        ctx.mark("l_end")

        # Single inter-grid synchronization: the sparse allreduce
        # (or the naive per-node allreduce, kept for the ablation).
        # The allreduce labels itself via ctx.set_sync, so a profiled run
        # reports exactly one sync point here (MetricsRegistry.nsyncs == 1)
        # vs the baseline's ceil(log2(Pz)) "level-k" points.
        ctx.set_phase("z")
        if allreduce_impl == "sparse":
            yield from sparse_allreduce(ctx, grid, setup.layout, part, y,
                                        category="z")
        elif allreduce_impl == "sparse_v2":
            from repro.core.sparse_allreduce import sparse_allreduce_v2

            yield from sparse_allreduce_v2(ctx, grid, setup.layout, part, y,
                                           nz_sets, category="z")
        elif allreduce_impl == "naive":
            from repro.core.sparse_allreduce import naive_allreduce

            yield from naive_allreduce(ctx, grid, setup.layout, part, y,
                                       category="z")
        elif allreduce_impl == "onesided":
            from repro.core.sparse_allreduce import onesided_allreduce

            yield from onesided_allreduce(ctx, grid, setup.layout, part, y,
                                          category="z")
        else:
            raise ValueError(f"unknown allreduce_impl {allreduce_impl!r}")
        ctx.mark("z_end")

        ctx.set_phase("u")
        x, _ = yield from sptrsv_2d(ctx, plan_U, y, nrhs,
                                    comm_category="xy", fp_category="fp",
                                    tag_salt=("nU", z))
        ctx.mark("u_end")
        return x

    return rank_fn


def collect_solution(setup: New3DSetup, results: list, n: int,
                     nrhs: int) -> np.ndarray:
    """Assemble the global (permuted-order) solution from per-rank results.

    Each supernode's subvector is taken from its diagonal owner on the
    owner grid (the replicas on other grids are bitwise-identical after the
    U-solve, which the integration tests assert).
    """
    cmap = BlockCyclicMap(setup.grid)
    x = np.empty((n, nrhs))
    for K in range(setup.part.nsup):
        z = setup.sn_owner_grid[K]
        r = cmap.diag_owner_rank(K, z)
        x[setup.part.first(K):setup.part.last(K)] = results[r][K]
    return x
