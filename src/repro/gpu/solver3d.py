"""GPU 3D SpTRSV: the proposed algorithm with GPU 2D solves (Alg. 1 GPU path).

Orchestrates three phases exactly as the paper's implementation does:

1. per-grid GPU 2D L-solves (Alg. 4/5; dataflow simulation, no CPU in the
   loop),
2. the MPI-based inter-grid sparse allreduce (Alg. 2) — the only
   CPU-involved communication,
3. per-grid GPU 2D U-solves starting from each GPU's post-allreduce clock.

The result carries per-rank time splits compatible with the CPU solver's
:class:`~repro.core.solver.PerfReport` (``fp`` = SM busy time, ``xy`` =
intra-grid wait incl. spin waits, ``z`` = inter-grid communication).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.costmodel import Machine
from repro.comm.simulator import SimResult, Simulator
from repro.core.sparse_allreduce import sparse_allreduce
from repro.core.sptrsv3d_new import New3DSetup
from repro.gpu.dataflow import run_gpu_2d_solve


@dataclass
class Gpu3DResult:
    """Per-rank results + the synthesized timing view of the 3-phase run."""

    sim: SimResult
    results: list


def solve_new3d_gpu(setup: New3DSetup, machine: Machine,
                    b_perm: np.ndarray, nrhs: int,
                    metrics=None) -> Gpu3DResult:
    """Run the proposed 3D SpTRSV with GPU 2D solves.

    ``setup`` is the same plan bundle the CPU path uses (binary trees); the
    machine must carry a GPU model.  Grids with more than one GPU require
    ``Py == 1`` and one-sided sub-communicator support (NVSHMEM; absent on
    the Crusher preset, mirroring ROC-SHMEM's limitation).

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) records the
    CPU-side phase-2 allreduce at event level; the GPU dataflow phases are
    merged in as external summaries afterwards, so all counters and sync
    points are exact but the critical-path walk is unavailable
    (``metrics.complete_timeline`` becomes ``False``).
    """
    gpu = machine.gpu
    if gpu is None:
        raise ValueError(f"machine {machine.name!r} has no GPU model")
    grid = setup.grid
    if grid.grid_size > 1 and not getattr(gpu, "one_sided_subcomms", True):
        raise ValueError(
            f"{machine.name}: the GPU one-sided library does not support "
            f"sub-communicators; use Px = Py = 1 (as the paper does on "
            f"Crusher)")
    part = setup.part

    # ---- Phase 1: per-grid GPU L-solves --------------------------------
    rhs_by_rank: dict[int, dict[int, np.ndarray]] = {}
    for z in range(grid.pz):
        for r in grid.grid_ranks(z):
            cols = setup.plans_L[z].plan_of(r).solve_cols
            rr = {}
            for K in cols:
                c0, c1 = part.first(K), part.last(K)
                if setup.sn_owner_grid[K] == z:
                    rr[K] = np.array(b_perm[c0:c1], copy=True)
                else:
                    rr[K] = np.zeros((c1 - c0, nrhs))
            rhs_by_rank[r] = rr

    l_results = {}
    for z in range(grid.pz):
        l_results[z] = run_gpu_2d_solve(setup.plans_L[z], machine,
                                        rhs_by_rank, nrhs, u_solve=False)

    busy_l: dict[int, float] = {}
    finish_l: dict[int, float] = {}
    y_by_rank: dict[int, dict[int, np.ndarray]] = {}
    for z in range(grid.pz):
        busy_l.update(l_results[z].occupied)
        finish_l.update(l_results[z].finish)
        y_by_rank.update(l_results[z].values)

    # ---- Phase 2: inter-grid sparse allreduce over MPI ------------------
    def rank_fn(ctx):
        r = ctx.rank
        ctx.set_phase("l")
        yield ctx.compute(busy_l[r], category="fp")
        yield ctx.compute(max(0.0, finish_l[r] - busy_l[r]), category="xy")
        ctx.mark("l_end")
        ctx.set_phase("z")
        vals = y_by_rank[r]
        yield from sparse_allreduce(ctx, grid, setup.layout, part, vals,
                                    category="z")
        ctx.mark("z_end")
        return vals

    sim = Simulator(grid.nranks, machine, metrics=metrics)
    res = sim.run(rank_fn)
    y_reduced = {r: res.results[r] for r in range(grid.nranks)}
    start_u = {r: float(res.clocks[r]) for r in range(grid.nranks)}

    # ---- Phase 3: per-grid GPU U-solves ----------------------------------
    u_results = {}
    for z in range(grid.pz):
        u_results[z] = run_gpu_2d_solve(setup.plans_U[z], machine,
                                        y_reduced, nrhs, u_solve=True,
                                        start_times=start_u)

    # ---- Synthesize the combined timing view ------------------------------
    clocks = np.zeros(grid.nranks)
    times = [dict(res.times[r]) for r in range(grid.nranks)]
    results: list = [None] * grid.nranks
    msgs = [dict(res.sent_msgs[r]) for r in range(grid.nranks)]
    nbytes = [dict(res.sent_bytes[r]) for r in range(grid.nranks)]
    marks = [dict(res.marks[r]) for r in range(grid.nranks)]
    for z in range(grid.pz):
        ur = u_results[z]
        nv = ur.nvshmem_msgs
        nb = ur.nvshmem_bytes
        lr = l_results[z]
        for idx, r in enumerate(grid.grid_ranks(z)):
            clocks[r] = ur.finish[r]
            times[r][("u", "fp")] = ur.occupied[r]
            times[r][("u", "xy")] = max(
                0.0, ur.finish[r] - start_u[r] - ur.occupied[r])
            results[r] = ur.values[r]
            marks[r]["u_end"] = ur.finish[r]
            if idx == 0:  # attribute grid-level NVSHMEM stats to rank 0
                msgs[r][("l", "xy")] = msgs[r].get(("l", "xy"), 0) + lr.nvshmem_msgs
                nbytes[r][("l", "xy")] = nbytes[r].get(("l", "xy"), 0.0) + lr.nvshmem_bytes
                msgs[r][("u", "xy")] = msgs[r].get(("u", "xy"), 0) + nv
                nbytes[r][("u", "xy")] = nbytes[r].get(("u", "xy"), 0.0) + nb
            if metrics is not None:
                # The GPU U-phase has no event timeline; merge its busy and
                # spin-wait time (and, on the grid's rank 0, the NVSHMEM
                # message totals) as external summaries.
                metrics.add_external(r, "u", "fp",
                                     compute_time=ur.occupied[r])
                metrics.add_external(
                    r, "u", "xy",
                    wait_time=max(0.0, ur.finish[r] - start_u[r]
                                  - ur.occupied[r]))
                if idx == 0:
                    metrics.add_external(r, "l", "xy",
                                         msgs=lr.nvshmem_msgs,
                                         nbytes=lr.nvshmem_bytes)
                    metrics.add_external(r, "u", "xy", msgs=nv, nbytes=nb)

    merged = SimResult(clocks=clocks, times=times, sent_msgs=msgs,
                       sent_bytes=nbytes, marks=marks, results=results)
    return Gpu3DResult(sim=merged, results=results)
