"""GPU execution model: the paper's Algorithms 4 (single-GPU) and 5
(NVSHMEM multi-GPU) as a resource-constrained dataflow simulation.

The CUDA kernels assign one thread block per supernode column; thread 0
spin-waits on the column's dependency counter (``fmod``) or on the arrival
flag of a one-sided NVSHMEM message, then the block performs the diagonal
solve and the column's GEMV/GEMMs with all threads.  The dataflow simulator
reproduces exactly that schedule: a column task becomes ready when its
dependencies or its message arrive, at most ``num_sms`` tasks compute
concurrently per GPU, and NVSHMEM messages hop down the binary broadcast
trees with intra-node (NVLink) or inter-node (Slingshot) latency/bandwidth.

Numerics are executed for real during the simulation, so GPU solves are
verified against the CPU solvers bit-for-bit (modulo float addition order).
"""

from repro.gpu.dataflow import GpuSolveResult, run_gpu_2d_solve
from repro.gpu.solver3d import Gpu3DResult, solve_new3d_gpu

__all__ = [
    "run_gpu_2d_solve",
    "GpuSolveResult",
    "solve_new3d_gpu",
    "Gpu3DResult",
]
