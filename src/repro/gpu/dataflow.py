"""Resource-constrained dataflow simulation of the GPU 2D solves.

Executes one 2D triangular solve (L or U) over the GPUs of one 2D grid.
The grid must have ``Py == 1`` (the paper's choice for NVSHMEM solves:
reduction trees are slower than broadcast trees on GPUs, §4.2.2), which
makes every supernode *row* local to a single GPU — only the broadcast of
solved subvectors crosses GPUs, exactly Algorithm 5.

Task model per GPU (one thread block per supernode column, as in the CUDA
kernels):

- ``DIAG(K)`` on K's owner: ready when ``fmod(K)`` hits zero; computes
  ``value(K)``, fires the NVSHMEM sends down K's broadcast tree at the
  moment the value exists, then applies the GPU's own blocks of column K.
- ``RECV(K)`` on a non-root tree member: ready when the one-sided message
  arrives; forwards to its tree children, then applies local blocks.

At most ``num_sms`` tasks compute concurrently per GPU (the WAIT/SOLVE
two-kernel trick means *waiting* columns do not occupy SMs, so only running
tasks count).  Real numpy numerics run inside the tasks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.comm.costmodel import Machine, gemm_bytes, gemm_flops
from repro.core.plan2d import Plan2D
from repro.util import matmul_columns


@dataclass
class GpuSolveResult:
    """Outcome of one dataflow solve over the GPUs of a 2D grid.

    Keys of the per-rank dicts are global simulator rank ids.
    ``busy``: seconds of SM compute; ``finish``: completion clock (includes
    spin waits); ``values``: solved subvectors at their diagonal owners.
    """

    values: dict[int, dict[int, np.ndarray]]
    busy: dict[int, float]       # SM-seconds (sum of task durations)
    occupied: dict[int, float]   # wall seconds with >= 1 task computing
    finish: dict[int, float]
    nvshmem_msgs: int
    nvshmem_bytes: float


def run_gpu_2d_solve(plan2d: Plan2D, machine: Machine,
                     rhs: dict[int, dict[int, np.ndarray]], nrhs: int,
                     u_solve: bool = False,
                     start_times: dict[int, float] | None = None,
                     two_kernel: bool = True,
                     ) -> GpuSolveResult:
    """Simulate one GPU 2D solve for the grid/plan in ``plan2d``.

    ``rhs[rank][K]`` holds the right-hand side subvectors at each diagonal
    owner; ``start_times[rank]`` lets a later phase (the U-solve after the
    inter-grid allreduce) begin from per-GPU clock offsets.

    ``two_kernel`` models the paper's WAIT/SOLVE design (§3.4): waiting
    columns do not occupy SMs, so any *ready* column may compute.  With
    ``two_kernel=False`` the pre-fix NVSHMEM behavior is modeled: at most
    ``num_sms`` thread blocks are resident, admitted in ascending column
    order, and a resident block spin-waiting on its dependencies *blocks
    its SM* — the concurrency restriction the two-kernel trick removes.
    """
    gpu = machine.gpu
    if gpu is None:
        raise ValueError(f"machine {machine.name!r} has no GPU model")
    grid = plan2d.grid
    if grid.py != 1:
        raise ValueError("GPU 2D solves require Py == 1 (see module docs)")
    if not two_kernel:
        return _run_single_kernel(plan2d, machine, rhs, nrhs, u_solve,
                                  start_times or {})
    z = plan2d.z
    ranks = grid.grid_ranks(z)
    start_times = start_times or {}
    size = plan2d.sn_size
    diag_inv = plan2d.diag_inv

    # Per-rank state.
    # Contributions are buffered per (row, producer column) and summed in
    # canonical column order at solve time (not in event-completion order,
    # which shifts with ``nrhs``) so each solved column is bit-identical to
    # a single-RHS solve — see ``repro.util.matmul_columns``.
    contribs: dict[int, dict[int, dict[int, np.ndarray]]] = {
        r: {} for r in ranks}
    values: dict[int, dict[int, np.ndarray]] = {r: {} for r in ranks}
    fmod: dict[int, dict[int, int]] = {
        r: dict(plan2d.plan_of(r).fmod0) for r in ranks}
    busy = {r: 0.0 for r in ranks}
    occupied = {r: 0.0 for r in ranks}
    last_t = {r: start_times.get(r, 0.0) for r in ranks}
    finish = {r: start_times.get(r, 0.0) for r in ranks}
    running = {r: 0 for r in ranks}
    waiting: dict[int, list] = {r: [] for r in ranks}
    nvshmem_msgs = 0
    nvshmem_bytes = 0.0

    def add_contrib(r: int, I: int, J: int, arr: np.ndarray) -> None:
        c = contribs[r].setdefault(I, {})
        c[J] = c[J] + arr if J in c else arr

    def settled(r: int, I: int) -> np.ndarray:
        """Sum of row I's contributions, in canonical column order."""
        out = np.zeros((size(I), nrhs))
        c = contribs[r].pop(I, None)
        if c:
            for J in sorted(c):
                out += c[J]
        return out

    def apply_cost(r: int, J: int) -> float:
        """One thread block processes all local blocks of column J at once."""
        fl = bt = 0.0
        for I, blk in plan2d.plan_of(r).consumer_blocks.get(J, ()):
            m, k = blk.shape
            fl += gemm_flops(m, nrhs, k)
            bt += gemm_bytes(m, nrhs, k)
        if fl == 0.0:
            return 0.0
        return gpu.op_time(fl, bt, u_solve=u_solve)

    events: list = []  # (time, seq, kind, payload)
    seq = 0

    def push(t: float, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, payload))
        seq += 1

    def release(t: float, kind: str, r: int, J: int) -> None:
        """A column task became ready at time t on GPU r."""
        if running[r] < gpu.num_sms:
            start_task(t, kind, r, J)
        else:
            heapq.heappush(waiting[r], (t, seq, kind, J))

    def _occupy(t: float, r: int) -> None:
        """Advance the occupancy integral for GPU r up to time t."""
        if running[r] > 0:
            occupied[r] += max(0.0, t - last_t[r])
        last_t[r] = t

    def start_task(t: float, kind: str, r: int, J: int) -> None:
        _occupy(t, r)
        running[r] += 1
        plan = plan2d.plan_of(r)
        if kind == "diag":
            w = size(J)
            dur_diag = gpu.op_time(gemm_flops(w, nrhs, w),
                                   gemm_bytes(w, nrhs, w), u_solve=u_solve)
            val = matmul_columns(diag_inv[J], rhs[r][J] - settled(r, J))
            values[r][J] = val
            send_tree(t + dur_diag, r, J, val)
            dur = dur_diag + apply_cost(r, J)
        else:  # recv: value already stored by the message event
            val = values[r][J]
            send_tree(t, r, J, val)
            dur = apply_cost(r, J)
        busy[r] += dur
        push(t + dur, "done", (r, J))

    def send_tree(t: float, r: int, J: int, val: np.ndarray) -> None:
        """Fire one-sided sends to this GPU's children in J's bcast tree."""
        nonlocal nvshmem_msgs, nvshmem_bytes
        tree = plan2d.plan_of(r).bcast_trees.get(J)
        if tree is None or not tree.contains(r):
            return
        for c in tree.children(r):
            lat = gpu.msg_latency(val.nbytes, machine.same_node(r, c))
            nvshmem_msgs += 1
            nvshmem_bytes += val.nbytes
            push(t + lat, "arrive", (c, J, val))

    def post_contributions(t: float, r: int, J: int) -> None:
        """Apply column J's local blocks (numerics) and release new tasks."""
        for I, blk in plan2d.plan_of(r).consumer_blocks.get(J, ()):
            add_contrib(r, I, J, matmul_columns(blk, values[r][J]))
            fmod[r][I] -= 1
            if fmod[r][I] == 0 and I in my_diag[r]:
                release(t, "diag", r, I)

    # Diagonal owners and initially-ready columns.
    my_diag = {r: set(plan2d.plan_of(r).solve_cols) for r in ranks}
    for r in ranks:
        for K in plan2d.plan_of(r).solve_cols:
            if fmod[r].get(K, 0) == 0:
                release(start_times.get(r, 0.0), "diag", r, K)

    while events:
        t, _, kind, payload = heapq.heappop(events)
        if kind == "arrive":
            r, J, val = payload
            values[r][J] = val
            release(t, "recv", r, J)
        elif kind == "done":
            r, J = payload
            _occupy(t, r)
            running[r] -= 1
            finish[r] = max(finish[r], t)
            post_contributions(t, r, J)
            if waiting[r] and running[r] < gpu.num_sms:
                _, _, wkind, wcol = heapq.heappop(waiting[r])
                start_task(t, wkind, r, wcol)

    # Sanity: every solve column must have produced a value.
    for r in ranks:
        missing = my_diag[r] - set(values[r])
        if missing:  # pragma: no cover - indicates a dependency bug
            raise RuntimeError(
                f"GPU dataflow deadlock on rank {r}: {sorted(missing)[:5]}")

    # Strip non-diag-owned received values so callers see owner values only.
    out_values = {r: {K: values[r][K] for K in my_diag[r]} for r in ranks}
    return GpuSolveResult(values=out_values, busy=busy, occupied=occupied,
                          finish=finish, nvshmem_msgs=nvshmem_msgs,
                          nvshmem_bytes=nvshmem_bytes)


def _run_single_kernel(plan2d: Plan2D, machine: Machine,
                       rhs: dict[int, dict[int, np.ndarray]], nrhs: int,
                       u_solve: bool,
                       start_times: dict[int, float]) -> GpuSolveResult:
    """Pre-WAIT/SOLVE NVSHMEM execution model (§3.4's limitation).

    At most ``num_sms`` thread blocks are resident per GPU, admitted in
    topological column order (ascending for L, descending for U); a
    resident block spin-waiting on dependencies *occupies its SM* until its
    work completes.  Admission order is topological across GPUs too, so no
    deadlock arises — only the concurrency loss the two-kernel fix removes.
    """
    gpu = machine.gpu
    grid = plan2d.grid
    ranks = grid.grid_ranks(plan2d.z)
    size = plan2d.sn_size
    diag_inv = plan2d.diag_inv

    contribs: dict[int, dict[int, dict[int, np.ndarray]]] = {
        r: {} for r in ranks}
    values: dict[int, dict[int, np.ndarray]] = {r: {} for r in ranks}
    fmod = {r: dict(plan2d.plan_of(r).fmod0) for r in ranks}
    my_diag = {r: set(plan2d.plan_of(r).solve_cols) for r in ranks}
    busy = {r: 0.0 for r in ranks}
    occupied = {r: 0.0 for r in ranks}
    finish = {r: start_times.get(r, 0.0) for r in ranks}
    nvshmem_msgs = 0
    nvshmem_bytes = 0.0

    # Admission order: every column this GPU has a thread block for.
    admission = {}
    cursor = {}
    resident_at: dict[tuple[int, int], float] = {}
    ready_at: dict[tuple[int, int], float] = {}
    done_scheduled: set[tuple[int, int]] = set()
    for r in ranks:
        plan = plan2d.plan_of(r)
        cols = set(plan.consumer_blocks) | set(plan.solve_cols)
        admission[r] = sorted(cols, reverse=u_solve)
        cursor[r] = 0

    def add_contrib(r: int, I: int, J: int, arr: np.ndarray) -> None:
        c = contribs[r].setdefault(I, {})
        c[J] = c[J] + arr if J in c else arr

    def settled(r: int, I: int) -> np.ndarray:
        out = np.zeros((size(I), nrhs))
        c = contribs[r].pop(I, None)
        if c:
            for J in sorted(c):
                out += c[J]
        return out

    def apply_cost(r: int, J: int) -> float:
        fl = bt = 0.0
        for I, blk in plan2d.plan_of(r).consumer_blocks.get(J, ()):
            m, k = blk.shape
            fl += gemm_flops(m, nrhs, k)
            bt += gemm_bytes(m, nrhs, k)
        return gpu.op_time(fl, bt, u_solve=u_solve) if fl else 0.0

    events: list = []
    seq = 0

    def push(t: float, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, payload))
        seq += 1

    def send_tree(t: float, r: int, J: int, val: np.ndarray) -> None:
        nonlocal nvshmem_msgs, nvshmem_bytes
        tree = plan2d.plan_of(r).bcast_trees.get(J)
        if tree is None or not tree.contains(r):
            return
        for c in tree.children(r):
            lat = gpu.msg_latency(val.nbytes, machine.same_node(r, c))
            nvshmem_msgs += 1
            nvshmem_bytes += val.nbytes
            push(t + lat, "arrive", (c, J, val))

    def maybe_start(t: float, r: int, J: int) -> None:
        """If task (r, J) is both resident and ready, run it to completion."""
        key = (r, J)
        if key in done_scheduled:
            return
        if key not in resident_at or key not in ready_at:
            return
        start = max(resident_at[key], ready_at[key], t)
        if J in my_diag[r]:
            w = size(J)
            dur_diag = gpu.op_time(gemm_flops(w, nrhs, w),
                                   gemm_bytes(w, nrhs, w), u_solve=u_solve)
            val = matmul_columns(diag_inv[J], rhs[r][J] - settled(r, J))
            values[r][J] = val
            send_tree(start + dur_diag, r, J, val)
            dur = dur_diag + apply_cost(r, J)
        else:
            val = values[r][J]
            send_tree(start, r, J, val)
            dur = apply_cost(r, J)
        busy[r] += dur
        # Occupied = residency (includes the spin wait before `start`).
        done_scheduled.add(key)
        push(start + dur, "done", (r, J))

    def admit(t: float, r: int) -> None:
        """Admit further columns up to the SM residency cap."""
        while (cursor[r] < len(admission[r])
               and sum(1 for (rr, _) in resident_at if rr == r)
               - sum(1 for (rr, _) in done_counted if rr == r)
               < gpu.num_sms):
            J = admission[r][cursor[r]]
            cursor[r] += 1
            resident_at[(r, J)] = t
            if J in my_diag[r] and fmod[r].get(J, 0) == 0:
                ready_at[(r, J)] = t
            maybe_start(t, r, J)

    done_counted: set[tuple[int, int]] = set()

    def post_contributions(t: float, r: int, J: int) -> None:
        for I, blk in plan2d.plan_of(r).consumer_blocks.get(J, ()):
            add_contrib(r, I, J, matmul_columns(blk, values[r][J]))
            fmod[r][I] -= 1
            if fmod[r][I] == 0 and I in my_diag[r]:
                key = (r, I)
                if key not in ready_at:
                    ready_at[key] = t
                    maybe_start(t, r, I)

    for r in ranks:
        admit(start_times.get(r, 0.0), r)

    while events:
        t, _, kind, payload = heapq.heappop(events)
        if kind == "arrive":
            r, J, val = payload
            values[r][J] = val
            key = (r, J)
            if key not in ready_at:
                ready_at[key] = t
                maybe_start(t, r, J)
        elif kind == "done":
            r, J = payload
            key = (r, J)
            done_counted.add(key)
            occupied[r] += t - resident_at[key]
            finish[r] = max(finish[r], t)
            post_contributions(t, r, J)
            admit(t, r)

    for r in ranks:
        missing = my_diag[r] - set(values[r])
        if missing:  # pragma: no cover - indicates a scheduling bug
            raise RuntimeError(
                f"single-kernel GPU schedule stalled on rank {r}: "
                f"{sorted(missing)[:5]}")

    out_values = {r: {K: values[r][K] for K in my_diag[r]} for r in ranks}
    return GpuSolveResult(values=out_values, busy=busy, occupied=occupied,
                          finish=finish, nvshmem_msgs=nvshmem_msgs,
                          nvshmem_bytes=nvshmem_bytes)
