"""Runtime invariants over simulation, observability and serving state.

Every function here takes finished result objects, re-derives a
conservation law the runtime is supposed to obey, and raises a typed
:class:`InvariantViolation` naming the broken law when it does not hold.
The checks are *observers*: they never mutate what they inspect, so a run
with checking enabled is bit-identical to one without.

Catalog (see ``docs/CHECKING.md`` for the prose version):

- :func:`check_sim` — per-rank clock sanity and monotone trace order,
  time conservation (every virtual second on a rank's clock is charged
  to exactly one ``(phase, category)`` label) and message conservation
  (a fault-free run leaves no unconsumed mailbox messages behind).
- :func:`check_metrics` — the :class:`~repro.obs.metrics.MetricsRegistry`
  attached to a profiled solve agrees with the simulator's own
  accounting: per-rank α+β+compute+wait sums, message and byte counts.
- :func:`check_solve` — both of the above over one
  :class:`~repro.core.solver.SolveOutcome`.
- :func:`check_serve` — serve-loop conservation: every request is
  completed or shed exactly once, shed timestamps respect the deadline
  convention, batch accounting is self-consistent, and the cache obeys
  :func:`check_cache`.
- :func:`check_cache` — ``resident_bytes == Σ entry.nbytes``,
  ``resident_entries == len(cache)``, peak/lookup counter consistency.
- :func:`check_fleet` — the serve conservation laws lifted to a sharded
  fleet: the request partition holds *globally* across every worker plus
  the front door (crashes re-route, they never lose or duplicate a
  request), per-worker batch/dedup/SLO accounting is self-consistent,
  the fleet SLO fold equals the sum of its parts, and the event log is
  monotone in virtual time with counters that match it.

Plug-in points: ``Simulator(invariants=True)`` runs :func:`check_sim` on
every result; ``SolveService(invariants=True)`` runs :func:`check_serve`
after every workload.  The fuzzer (:mod:`repro.check.fuzz`) enables both
on every case it draws.
"""

from __future__ import annotations

import math

import numpy as np

#: Relative tolerance for conservation sums: the simulator accumulates the
#: same increments into the clock (one float) and the per-label time dict
#: (many floats), so the two disagree only by addition-order rounding.
REL_TOL = 1e-9


class InvariantViolation(AssertionError):
    """A runtime invariant does not hold; ``invariant`` names which one."""

    def __init__(self, invariant: str, detail: str):
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"[{invariant}] {detail}")


def _ensure(cond: bool, invariant: str, detail: str) -> None:
    if not cond:
        raise InvariantViolation(invariant, detail)


def _close(a: float, b: float, scale: float = 0.0) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), scale, 1e-300) \
        or a == b


# ---------------------------------------------------------------------------
# Simulation results.
# ---------------------------------------------------------------------------


def check_sim(result, *, faulted: bool = False,
              conservation: bool = True) -> int:
    """Invariants over one :class:`~repro.comm.simulator.SimResult`.

    ``faulted`` relaxes message conservation (drops, duplicates and
    crashes legitimately leave mailbox leftovers).  ``conservation``
    gates the per-rank time-conservation sum — exact for the CPU
    message-passing runtime, not for merged GPU phase summaries.
    Returns the number of checks evaluated.
    """
    checks = 0
    clocks = np.asarray(result.clocks, dtype=np.float64)
    checks += 1
    _ensure(bool(np.all(np.isfinite(clocks)) and np.all(clocks >= 0.0)),
            "sim.clock-sane",
            f"per-rank clocks must be finite and >= 0, got {clocks}")
    for r, times in enumerate(result.times):
        checks += 1
        _ensure(all(v >= 0.0 and math.isfinite(v) for v in times.values()),
                "sim.time-nonnegative",
                f"rank {r} charged a negative/non-finite label time: {times}")
        if conservation:
            total = sum(times.values())
            checks += 1
            _ensure(_close(total, float(clocks[r])),
                    "sim.time-conservation",
                    f"rank {r}: sum of per-label times {total!r} != clock "
                    f"{float(clocks[r])!r} — some clock advance was not "
                    f"charged to a (phase, category) label")
    if result.trace is not None:
        for r in range(result.nranks):
            evs = [e for e in result.trace
                   if e.rank == r and e.kind != "fault"]
            checks += 1
            _ensure(all(e.t0 <= e.t1 for e in evs),
                    "sim.trace-interval", f"rank {r} has an event ending "
                    f"before it starts")
            checks += 1
            _ensure(all(a.t1 <= b.t1 for a, b in zip(evs, evs[1:])),
                    "sim.clock-monotone",
                    f"rank {r} trace is not monotone in virtual time")
    checks += 1
    if not faulted and not result.crashed:
        leftover = result.unconsumed_msgs
        _ensure(not leftover, "sim.message-conservation",
                f"fault-free run left {len(leftover)} unconsumed mailbox "
                f"message(s): "
                + "; ".join(f"dst={m.dst} src={m.src} tag={m.tag!r}"
                            for m in leftover[:5])
                + ("..." if len(leftover) > 5 else ""))
        pend = getattr(result, "unapplied_puts", [])
        checks += 1
        _ensure(not pend, "sim.rma-conservation",
                f"fault-free run left {len(pend)} one-sided write(s) "
                f"unapplied (missing flush/fence): "
                + "; ".join(f"origin={p.origin} dst={p.dst} key={p.key!r}"
                            for p in pend[:5])
                + ("..." if len(pend) > 5 else ""))
    put_b = getattr(result, "rma_put_bytes", 0)
    if put_b:
        applied = result.rma_applied_bytes
        pending_b = sum(p.nbytes for p in result.unapplied_puts)
        checks += 1
        _ensure(applied + pending_b == put_b, "sim.rma-byte-conservation",
                f"put bytes {put_b} != applied {applied} + pending "
                f"{pending_b} — some one-sided write was lost or double-"
                f"applied")
    return checks


def check_metrics(report) -> int:
    """The profiled registry agrees with the simulator's own accounting.

    ``report`` is a :class:`~repro.core.solver.PerfReport` whose
    ``metrics`` is a populated registry.  Per rank: the registry's
    compute + overhead + wait sum equals the simulator's charged time,
    non-ack message/byte counts match, and ack counts match the
    simulator's ``"ack"`` category.  Skipped (returns 0) for registries
    with merged external phases (GPU), whose counters are summary-level.
    """
    reg = report.metrics
    if reg is None or not reg.complete_timeline:
        return 0
    sim = report.sim
    checks = 0
    for r in range(sim.nranks):
        st = reg.stats(rank=r)
        sim_total = sum(sim.times[r].values())
        reg_total = st.compute_time + st.overhead_time + st.wait_time
        checks += 1
        _ensure(_close(reg_total, sim_total),
                "metrics.time-conservation",
                f"rank {r}: registry compute+overhead+wait {reg_total!r} != "
                f"simulator charged time {sim_total!r}")
        sim_msgs = sum(v for (p, c), v in sim.sent_msgs[r].items()
                       if c != "ack")
        sim_acks = sum(v for (p, c), v in sim.sent_msgs[r].items()
                       if c == "ack")
        sim_bytes = sum(sim.sent_bytes[r].values())
        checks += 1
        _ensure(st.msgs == sim_msgs, "metrics.msg-conservation",
                f"rank {r}: registry counted {st.msgs} messages, simulator "
                f"charged {sim_msgs}")
        checks += 1
        _ensure(st.acks == sim_acks, "metrics.ack-conservation",
                f"rank {r}: registry counted {st.acks} acks, simulator "
                f"charged {sim_acks}")
        checks += 1
        _ensure(_close(st.bytes, sim_bytes, scale=1.0),
                "metrics.byte-conservation",
                f"rank {r}: registry counted {st.bytes!r} bytes, simulator "
                f"charged {sim_bytes!r}")
    return checks


def check_solve(outcome, *, faulted: bool = False) -> int:
    """Simulation + metrics invariants over one solver outcome."""
    conservation = not outcome.report.algorithm.endswith("-gpu")
    checks = check_sim(outcome.report.sim, faulted=faulted,
                       conservation=conservation)
    checks += check_metrics(outcome.report)
    return checks


# ---------------------------------------------------------------------------
# Serving tier.
# ---------------------------------------------------------------------------


def check_cache(cache) -> int:
    """Byte/entry accounting of a :class:`FactorizationCache` is conserved."""
    stats = cache.stats
    entries = cache._entries
    actual_bytes = sum(e.nbytes for e in entries.values())
    checks = 1
    _ensure(stats.resident_bytes == actual_bytes,
            "cache.byte-conservation",
            f"stats.resident_bytes {stats.resident_bytes} != sum of entry "
            f"nbytes {actual_bytes}")
    checks += 1
    _ensure(stats.resident_entries == len(entries),
            "cache.entry-conservation",
            f"stats.resident_entries {stats.resident_entries} != "
            f"{len(entries)} entries actually resident")
    checks += 1
    _ensure(stats.peak_bytes >= stats.resident_bytes >= 0,
            "cache.peak-bound",
            f"peak_bytes {stats.peak_bytes} < resident_bytes "
            f"{stats.resident_bytes}")
    checks += 1
    _ensure(stats.lookups == stats.hits + stats.misses
            and min(stats.hits, stats.misses, stats.evictions) >= 0,
            "cache.counter-sane",
            f"hits={stats.hits} misses={stats.misses} "
            f"evictions={stats.evictions}")
    return checks


def check_serve(workload, result, service=None) -> int:
    """Serve-loop conservation over one :class:`ServeResult`.

    Every workload request is completed or shed, never both, never twice;
    shed records respect the deadline boundary convention
    (``deadline < t`` sheds); batch and SLO accounting are
    self-consistent; and, when ``service`` is given, its cache passes
    :func:`check_cache` and batches respect its policy.
    """
    from repro.serve.scheduler import RejectReason

    all_ids = [r.id for r in workload.requests]
    done = [c.request.id for c in result.completions]
    shed = [r.request.id for r in result.rejections]
    checks = 1
    _ensure(len(set(all_ids)) == len(all_ids), "serve.unique-request-ids",
            "workload contains duplicate request ids")
    checks += 1
    _ensure(len(done) == len(set(done)), "serve.single-completion",
            f"request(s) completed more than once: "
            f"{sorted({i for i in done if done.count(i) > 1})}")
    checks += 1
    _ensure(len(shed) == len(set(shed)), "serve.single-shed",
            f"request(s) shed more than once: "
            f"{sorted({i for i in shed if shed.count(i) > 1})}")
    checks += 1
    _ensure(not set(done) & set(shed), "serve.completed-xor-shed",
            f"request(s) both completed and shed: "
            f"{sorted(set(done) & set(shed))}")
    checks += 1
    _ensure(set(done) | set(shed) == set(all_ids),
            "serve.request-conservation",
            f"n_requests {len(all_ids)} != completed {len(done)} + shed "
            f"{len(shed)}; lost: {sorted(set(all_ids) - set(done) - set(shed))}"
            f", invented: {sorted((set(done) | set(shed)) - set(all_ids))}")
    for c in result.completions:
        checks += 1
        _ensure(c.t_complete >= c.request.arrival, "serve.causal-completion",
                f"request {c.request.id} completed at {c.t_complete} before "
                f"its arrival {c.request.arrival}")
    for rej in result.rejections:
        checks += 1
        _ensure(rej.reason in RejectReason, "serve.typed-shed",
                f"rejection of request {rej.request.id} has untyped reason "
                f"{rej.reason!r}")
        checks += 1
        _ensure(rej.time >= rej.request.arrival, "serve.causal-shed",
                f"request {rej.request.id} shed at t={rej.time!r} before "
                f"its arrival {rej.request.arrival!r}")
        if rej.reason is RejectReason.DEADLINE_PASSED:
            checks += 1
            _ensure(rej.time > rej.request.deadline, "serve.deadline-boundary",
                    f"request {rej.request.id} shed as deadline-passed at "
                    f"t={rej.time!r} <= its deadline "
                    f"{rej.request.deadline!r} (convention: deadline < t "
                    f"sheds)")
        if rej.reason is RejectReason.POISON_INPUT:
            checks += 1
            _ensure(bool(rej.detail), "serve.poison-typed",
                    f"poison-input shed of request {rej.request.id} carries "
                    f"no validation slug in Rejection.detail")
    batched_ids = [i for b in result.batches for i in b.request_ids]
    checks += 1
    _ensure(sorted(batched_ids) == sorted(done), "serve.batch-conservation",
            f"batched request ids != completed request ids "
            f"({len(batched_ids)} batched vs {len(done)} completed)")
    coalesced = sum(len(b.request_ids) - b.size for b in result.batches)
    checks += 1
    _ensure(result.deduped == coalesced, "serve.dedup-accounting",
            f"result.deduped {result.deduped} != sum over batches of "
            f"(requests - solved columns) {coalesced}")
    for b in result.batches:
        checks += 1
        _ensure(len(b.request_ids) >= b.size >= 1, "serve.dedup-width",
                f"batch {b.batch_id} solved {b.size} columns for "
                f"{len(b.request_ids)} requests")
    slo = result.slo
    checks += 1
    _ensure(slo.n_requests == len(all_ids)
            and slo.n_completed == len(done)
            and slo.n_shed == len(shed)
            and slo.n_batches == len(result.batches),
            "serve.slo-counts",
            f"SLO counts ({slo.n_requests}/{slo.n_completed}/{slo.n_shed}/"
            f"{slo.n_batches}) disagree with the raw records "
            f"({len(all_ids)}/{len(done)}/{len(shed)}/{len(result.batches)})")
    checks += 1
    _ensure(sum(slo.shed_by_reason.values()) == slo.n_shed,
            "serve.shed-by-reason",
            f"shed_by_reason sums to {sum(slo.shed_by_reason.values())}, "
            f"n_shed is {slo.n_shed}")
    checks += 1
    _ensure(slo.deduped == result.deduped
            and slo.n_verified == result.n_verified
            and slo.n_integrity_failures == len(result.integrity_failures),
            "serve.hardening-counters",
            f"SLO dedup/verify counters ({slo.deduped}/{slo.n_verified}/"
            f"{slo.n_integrity_failures}) disagree with the raw records "
            f"({result.deduped}/{result.n_verified}/"
            f"{len(result.integrity_failures)})")
    replayed = [b for b in result.batches if b.replayed]
    checks += 1
    _ensure(result.n_replayed == len(replayed) == slo.n_replayed,
            "serve.replay-accounting",
            f"replay counters disagree: result.n_replayed "
            f"{result.n_replayed}, batches flagged {len(replayed)}, SLO "
            f"{slo.n_replayed}")
    for b in replayed:
        checks += 1
        _ensure(b.cache_hit, "serve.replay-needs-hit",
                f"batch {b.batch_id} took the replay fast path on a "
                f"factorization-cache miss — replay artifacts are cached "
                f"with the factorization, so a miss must simulate")
    if result.solutions:
        checks += 1
        _ensure(set(result.solutions) == set(done), "serve.solution-coverage",
                "kept solutions do not match completed request ids")
    if service is not None:
        for b in result.batches:
            checks += 1
            _ensure(1 <= b.size <= service.policy.max_batch,
                    "serve.batch-width",
                    f"batch {b.batch_id} width {b.size} violates "
                    f"max_batch {service.policy.max_batch}")
        checks += check_cache(service.cache)
    return checks


def check_fleet(workload, result, service=None) -> int:
    """Fleet-level conservation over one :class:`FleetResult`.

    The single-service laws, lifted to N workers plus a front door: the
    workload's requests partition exactly into global completions and
    typed sheds (a crash re-routes work, it never loses or duplicates
    it); each worker's batch, dedup and SLO accounting is
    self-consistent; the fleet SLO fold agrees with the per-worker sums;
    and the routing/rebalance event log is monotone in virtual time with
    matching counters.  When ``service`` (the
    :class:`~repro.fleet.service.FleetService`) is given, live caches
    pass :func:`check_cache` and batch widths respect its policy.
    """
    from repro.serve.scheduler import RejectReason

    all_ids = [r.id for r in workload.requests]
    done = [c.request.id for c in result.completions]
    shed = [r.request.id for r in result.rejections]
    checks = 1
    _ensure(len(set(all_ids)) == len(all_ids), "fleet.unique-request-ids",
            "workload contains duplicate request ids")
    checks += 1
    _ensure(len(done) == len(set(done)), "fleet.single-completion",
            f"request(s) completed more than once across the fleet: "
            f"{sorted({i for i in done if done.count(i) > 1})}")
    checks += 1
    _ensure(len(shed) == len(set(shed)), "fleet.single-shed",
            f"request(s) shed more than once across the fleet: "
            f"{sorted({i for i in shed if shed.count(i) > 1})}")
    checks += 1
    _ensure(not set(done) & set(shed), "fleet.completed-xor-shed",
            f"request(s) both completed and shed: "
            f"{sorted(set(done) & set(shed))}")
    checks += 1
    _ensure(set(done) | set(shed) == set(all_ids),
            "fleet.request-conservation",
            f"n_requests {len(all_ids)} != completed {len(done)} + shed "
            f"{len(shed)}; lost: {sorted(set(all_ids) - set(done) - set(shed))}"
            f", invented: {sorted((set(done) | set(shed)) - set(all_ids))}")
    for c in result.completions:
        checks += 1
        _ensure(c.t_complete >= c.request.arrival, "fleet.causal-completion",
                f"request {c.request.id} completed at {c.t_complete} before "
                f"its arrival {c.request.arrival}")
    for rej in result.rejections:
        checks += 1
        _ensure(rej.reason in RejectReason, "fleet.typed-shed",
                f"rejection of request {rej.request.id} has untyped reason "
                f"{rej.reason!r}")
        checks += 1
        _ensure(rej.time >= rej.request.arrival, "fleet.causal-shed",
                f"request {rej.request.id} shed at t={rej.time!r} before "
                f"its arrival {rej.request.arrival!r} — a crash re-route "
                f"must not deliver (or shed) a request before it exists")
        if rej.reason is RejectReason.DEADLINE_PASSED:
            checks += 1
            _ensure(rej.time > rej.request.deadline, "fleet.deadline-boundary",
                    f"request {rej.request.id} shed as deadline-passed at "
                    f"t={rej.time!r} <= its deadline "
                    f"{rej.request.deadline!r}")

    for i in sorted(result.workers):
        wr = result.workers[i]
        wdone = [c.request.id for c in wr.completions]
        batched = [j for b in wr.batches for j in b.request_ids]
        checks += 1
        _ensure(sorted(batched) == sorted(wdone),
                "fleet.worker-batch-conservation",
                f"worker {i}: batched request ids != completed ids "
                f"({len(batched)} batched vs {len(wdone)} completed) — a "
                f"crash rollback left a stale batch or completion behind")
        coalesced = sum(len(b.request_ids) - b.size for b in wr.batches)
        checks += 1
        _ensure(wr.deduped == coalesced, "fleet.worker-dedup-accounting",
                f"worker {i}: deduped {wr.deduped} != batch fan-out sum "
                f"{coalesced}")
        for b in wr.batches:
            checks += 1
            _ensure(len(b.request_ids) >= b.size >= 1, "fleet.dedup-width",
                    f"worker {i} batch {b.batch_id} solved {b.size} columns "
                    f"for {len(b.request_ids)} requests")
        slo = wr.slo
        checks += 1
        _ensure(slo.n_requests == len(wr.completions) + len(wr.rejections)
                and slo.n_completed == len(wr.completions)
                and slo.n_shed == len(wr.rejections)
                and slo.n_batches == len(wr.batches),
                "fleet.worker-slo-counts",
                f"worker {i}: SLO counts ({slo.n_requests}/{slo.n_completed}/"
                f"{slo.n_shed}/{slo.n_batches}) disagree with raw records")

    agg = result.slo
    checks += 1
    _ensure(agg.n_requests == len(all_ids)
            and agg.n_completed == len(done)
            and agg.n_shed == len(shed),
            "fleet.slo-counts",
            f"fleet SLO counts ({agg.n_requests}/{agg.n_completed}/"
            f"{agg.n_shed}) disagree with the merged records "
            f"({len(all_ids)}/{len(done)}/{len(shed)})")
    checks += 1
    _ensure(sum(agg.shed_by_reason.values()) == agg.n_shed,
            "fleet.shed-by-reason",
            f"shed_by_reason sums to {sum(agg.shed_by_reason.values())}, "
            f"n_shed is {agg.n_shed}")
    parts = result.workers.values()
    checks += 1
    _ensure(agg.n_batches == sum(len(w.batches) for w in parts)
            and agg.deduped == sum(w.deduped for w in parts)
            and agg.n_replayed == sum(w.n_replayed for w in parts)
            and agg.n_verified == sum(w.n_verified for w in parts)
            and agg.n_integrity_failures == sum(len(w.integrity_failures)
                                                for w in parts),
            "fleet.slo-fold",
            "fleet SLO aggregate disagrees with the per-worker sums")
    times = [e["t"] for e in result.events]
    checks += 1
    _ensure(all(a <= b for a, b in zip(times, times[1:])),
            "fleet.event-monotone",
            "routing/rebalance event log is not monotone in virtual time")
    by_kind: dict = {}
    for e in result.events:
        if not e["detail"].startswith("ignored"):
            by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
    cnt = result.counters
    checks += 1
    _ensure(cnt.get("n_crashes", 0) == by_kind.get("crash", 0)
            and cnt.get("n_recoveries", 0) == by_kind.get("recover", 0)
            and cnt.get("n_scale_up", 0) == by_kind.get("scale-up", 0)
            and cnt.get("n_scale_down", 0) == by_kind.get("scale-down", 0),
            "fleet.event-counters",
            f"counters {cnt} disagree with the event log {by_kind}")
    if service is not None:
        for i in sorted(result.workers):
            for b in result.workers[i].batches:
                checks += 1
                _ensure(1 <= b.size <= service.policy.max_batch,
                        "fleet.batch-width",
                        f"worker {i} batch {b.batch_id} width {b.size} "
                        f"violates max_batch {service.policy.max_batch}")
            checks += check_cache(service.workers[i].svc.cache)
    return checks
