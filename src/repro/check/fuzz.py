"""Differential fuzzing over solver and serving configurations.

A :class:`FuzzCase` is one seeded, fully replayable configuration draw:
either a *solve* case (matrix generator × size × grid shape × ordering ×
symbolic mode × device × ``nrhs`` × optional fault rates) or a *serve*
case (workload spec × batching policy × grid).  :func:`run_case` executes
every applicable path of the case and cross-checks them:

- every distributed algorithm (``new3d``, ``baseline3d``, ``2d`` when
  ``pz == 1``, GPU when drawn) solves to a small relative residual
  against the right-hand side, and the sequential reference tier agrees
  with an independent ``scipy.sparse.linalg.spsolve``;
- multi-RHS solves are **bit-identical** per column to single-RHS solves
  (the serving tier's batching contract from PR 3);
- replaying a solve reproduces **bit-identical** virtual clocks and
  solution bits, and profiling is an observer (clocks with ``profile=``
  equal clocks without);
- on replay-enabled draws, the compiled fast path (:mod:`repro.replay`)
  — both its recording solve and its compiled re-execution — matches the
  simulated solve bit-for-bit: solution, clocks, per-label times, marks
  and message accounting;
- profiled runs report the paper's headline sync counts mechanically:
  one inter-grid sync point for the proposed algorithm, ``ceil(log2 Pz)``
  for the baseline, zero when ``Pz == 1``;
- strict-match draws cross-check the dynamic and static ambiguity
  detectors: a ``strict_match=True`` solve either completes bit-identical
  to the normal run, or its :class:`AmbiguousRecvError` is corroborated
  by :mod:`repro.analyze` finding a wildcard recv group with more than
  one feasible sender;
- every run passes the :mod:`repro.check.invariants` layer (time /
  message / metrics conservation), and serve cases additionally pass the
  serve-loop and cache conservation checks plus SLO-report replay
  equality;
- *fleet* cases run a sharded multi-worker fleet (random worker count,
  replication factor, Zipf skew and optional mid-run worker crash
  windows) twice: the :class:`~repro.fleet.report.FleetReport` must be
  byte-identical across the two runs and the full
  :func:`~repro.check.invariants.check_fleet` conservation catalog must
  hold — crashes re-route work, they never lose or duplicate a request.

Failures come back as a :class:`CaseResult` with human-readable mismatch
strings; :mod:`repro.check.reduce` shrinks them and writes corpus repro
files.  Entry point: ``repro fuzz --cases N --seed S``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.analyze import solver_schedule, verify_schedule
from repro.comm.costmodel import MACHINES
from repro.comm.faults import FaultPlan
from repro.comm.simulator import AmbiguousRecvError
from repro.core.solver import Resilience, SpTRSVSolver
from repro.replay import REPLAYABLE
from repro.matrices import (
    block_tridiagonal,
    chemistry_like,
    elasticity3d,
    kkt3d,
    make_rhs,
    poisson2d,
    poisson3d,
)
from repro.check.invariants import (
    InvariantViolation,
    check_serve,
    check_solve,
)

CASE_VERSION = 1

#: Relative residual bound for differential solution checks.  The solvers
#: are exact triangular sweeps through one LU factorization; anything
#: above this is a wrong answer, not roundoff.
RESIDUAL_TOL = 1e-8

#: Matrix generators the fuzzer draws from, with the sizes that keep a
#: case under ~a second: name -> (factory(size) -> csr_matrix, sizes).
GENERATORS = {
    "poisson2d": (lambda s: poisson2d(s, stencil=9, seed=1),
                  (8, 10, 12, 16)),
    "poisson2d5": (lambda s: poisson2d(s, stencil=5, seed=2), (10, 14)),
    "poisson3d": (lambda s: poisson3d(s, seed=3), (3, 4, 5)),
    "kkt3d": (lambda s: kkt3d(s, seed=4), (3, 4)),
    "elasticity3d": (lambda s: elasticity3d(s, dof=2, seed=5), (3, 4)),
    "chemistry": (lambda s: chemistry_like(s, seed=6), (48, 72)),
    "blocktri": (lambda s: block_tridiagonal(s, block=8, seed=7), (4, 8)),
}

#: Suite matrices serve cases draw their workload mix from (tiny scale).
SERVE_MATRICES = ("s2D9pt2048", "nlpkkt80")

#: Suite matrices fleet cases shard over (tiny scale).
FLEET_MATRICES = ("s2D9pt2048", "nlpkkt80", "ldoor")


@dataclass(frozen=True)
class FuzzCase:
    """One replayable configuration draw (JSON round-trippable)."""

    index: int
    seed: int
    kind: str = "solve"            # "solve" | "serve" | "fleet" | "scenario"
    # -- solve cases --------------------------------------------------------
    generator: str = "poisson2d"
    size: int = 10
    px: int = 1
    py: int = 1
    pz: int = 1
    ordering: str = "nd"
    symbolic_mode: str = "detect"
    max_supernode: int = 16
    device: str = "cpu"
    machine: str = "cori-haswell"
    nrhs: int = 1
    strict_match: bool = False
    replay: bool = False           # also run the compiled replay fast path
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    fault_seed: int = 0
    # -- serve cases --------------------------------------------------------
    matrices: tuple = ()
    n_requests: int = 0
    rate: float = 2000.0
    deadline: float = 0.1
    max_batch: int = 4
    max_wait: float = 1e-3
    queue_bound: int = 256
    # -- fleet cases --------------------------------------------------------
    workers: int = 0               # fleet size (> 0 only for fleet cases)
    replication: int = 1           # ring successors per fingerprint
    zipf_s: float = 1.0            # Zipf skew of the matrix mix
    crash: tuple = ()              # ((worker, t_crash, t_recover), ...)
    # -- scenario cases -----------------------------------------------------
    scenario: str = ""             # catalog name; run at this case's seed

    @property
    def faulted(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.delay > 0

    def fault_plan(self) -> FaultPlan | None:
        if not self.faulted:
            return None
        return FaultPlan.uniform(seed=self.fault_seed, drop=self.drop,
                                 duplicate=self.duplicate, delay=self.delay)

    def describe(self) -> str:
        if self.kind == "scenario":
            return (f"scenario[{self.index}] {self.scenario} "
                    f"seed={self.seed}")
        if self.kind == "fleet":
            crash = ",".join(f"w{w}@{tc:g}:{tr:g}"
                             for (w, tc, tr) in self.crash) or "none"
            return (f"fleet[{self.index}] workers={self.workers} "
                    f"repl={self.replication} zipf={self.zipf_s:g} "
                    f"mix={','.join(self.matrices)} n={self.n_requests} "
                    f"rate={self.rate:g} deadline={self.deadline:g} "
                    f"batch={self.max_batch} bound={self.queue_bound} "
                    f"crash={crash} grid={self.px}x{self.py}x{self.pz}")
        if self.kind == "serve":
            return (f"serve[{self.index}] mix={','.join(self.matrices)} "
                    f"n={self.n_requests} rate={self.rate:g} "
                    f"deadline={self.deadline:g} batch={self.max_batch} "
                    f"wait={self.max_wait:g} bound={self.queue_bound} "
                    f"grid={self.px}x{self.py}x{self.pz}")
        extra = (f" faults(drop={self.drop:g},dup={self.duplicate:g},"
                 f"delay={self.delay:g})" if self.faulted else "")
        if self.strict_match:
            extra += " strict"
        if self.replay:
            extra += " replay"
        return (f"solve[{self.index}] {self.generator}({self.size}) "
                f"grid={self.px}x{self.py}x{self.pz} ord={self.ordering} "
                f"sym={self.symbolic_mode} sup={self.max_supernode} "
                f"dev={self.device} nrhs={self.nrhs}{extra}")

    # -- JSON round trip (corpus repro files) -------------------------------

    def to_json(self) -> str:
        doc = {"version": CASE_VERSION, **asdict(self)}
        doc["matrices"] = list(self.matrices)
        doc["crash"] = [list(w) for w in self.crash]
        return json.dumps(doc, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        doc = json.loads(text)
        if doc.pop("version", None) != CASE_VERSION:
            raise ValueError("unsupported fuzz-case version")
        doc["matrices"] = tuple(doc.get("matrices", ()))
        doc["crash"] = tuple(tuple(w) for w in doc.get("crash", ()))
        return cls(**doc)

    def digest(self) -> str:
        """Short content hash, used for corpus file names."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:12]


@dataclass
class CaseResult:
    """What one case execution observed."""

    case: FuzzCase
    checks: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        head = f"{self.case.describe()} — {self.checks} checks"
        if self.ok:
            return head + ", ok"
        return head + "".join(f"\n    FAIL: {m}" for m in self.mismatches)


@dataclass
class FuzzReport:
    """Aggregate over one fuzzing session."""

    cases: int = 0
    checks: int = 0
    failures: list = field(default_factory=list)   # failing CaseResults

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [f"fuzz: {self.cases} cases, {self.checks} checks, "
                 f"{len(self.failures)} failing"]
        lines.extend("  " + f.summary() for f in self.failures)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Drawing cases.
# ---------------------------------------------------------------------------


def draw_case(rng: np.random.Generator, index: int) -> FuzzCase:
    """Draw one case; consumes a fixed draw pattern so streams replay."""
    seed = int(rng.integers(0, 2**31 - 1))
    r = rng.random()
    if r < 0.14:
        return _draw_serve(rng, index, seed)
    if r < 0.26:
        return _draw_fleet(rng, index, seed)
    if r < 0.36:
        return _draw_scenario(rng, index, seed)
    gen = str(rng.choice(sorted(GENERATORS)))
    size = int(rng.choice(GENERATORS[gen][1]))
    pz = int(rng.choice((1, 2, 4)))
    px = int(rng.choice((1, 2)))
    py = int(rng.choice((1, 2)))
    device = "gpu" if rng.random() < 0.15 else "cpu"
    ordering = "mmd" if pz == 1 and rng.random() < 0.25 else "nd"
    symbolic = str(rng.choice(("detect", "fixed")))
    sup = int(rng.choice((4, 8, 16)))
    nrhs = int(rng.choice((1, 2, 3, 4)))
    drop = dup = delay = 0.0
    fault_seed = int(rng.integers(0, 2**31 - 1))
    if device == "cpu" and rng.random() < 0.25:
        drop = float(rng.choice((0.02, 0.05)))
        dup = float(rng.choice((0.0, 0.02)))
        delay = float(rng.choice((0.0, 0.05)))
    machine = "cori-haswell"
    strict = bool(rng.random() < 0.25)
    replay = bool(rng.random() < 0.75) and device == "cpu"
    if device == "gpu":
        py = 1                      # multi-GPU grids require Py == 1
        machine = "perlmutter-gpu"
        drop = dup = delay = 0.0    # faults are CPU-runtime only
    return FuzzCase(index=index, seed=seed, kind="solve", generator=gen,
                    size=size, px=px, py=py, pz=pz, ordering=ordering,
                    symbolic_mode=symbolic, max_supernode=sup, device=device,
                    machine=machine, nrhs=nrhs, strict_match=strict,
                    replay=replay, drop=drop, duplicate=dup, delay=delay,
                    fault_seed=fault_seed)


def _draw_scenario(rng: np.random.Generator, index: int,
                   seed: int) -> FuzzCase:
    """An adversarial-scenario case: a catalog entry at a fresh seed.

    Random seeds stress the *hard* tier of the degradation contract
    (typed sheds, zero corrupted answers, no untyped escape) plus
    replay determinism; soft SLO bounds stay calibrated to the declared
    catalog seed and are not enforced here.
    """
    from repro.scenarios import scenario_names

    name = str(rng.choice(scenario_names()))
    return FuzzCase(index=index, seed=seed, kind="scenario", scenario=name)


def _draw_fleet(rng: np.random.Generator, index: int, seed: int) -> FuzzCase:
    """A sharded-fleet case: random topology, skew and crash windows."""
    k = int(rng.integers(1, len(FLEET_MATRICES) + 1))
    mix = tuple(sorted(rng.choice(FLEET_MATRICES, size=k, replace=False)))
    workers = int(rng.choice((2, 3, 4)))
    fault_seed = int(rng.integers(0, 2**31 - 1))
    crash: tuple = ()
    if rng.random() < 0.5:
        w = int(rng.integers(0, workers))
        tc = float(rng.choice((0.0005, 0.001, 0.002)))
        dur = float(rng.choice((0.002, 0.004)))
        crash = ((w, tc, tc + dur),)
    return FuzzCase(
        index=index, seed=seed, kind="fleet", matrices=mix,
        px=1, py=1, pz=int(rng.choice((1, 2))),
        n_requests=int(rng.integers(8, 28)),
        rate=float(rng.choice((2000.0, 8000.0, 1e6))),
        # 0.0 is the zero-slack draw: every absolute deadline equals its
        # arrival (jitter multiplies the relative budget), stressing the
        # causal-shed boundary — especially across crash re-routes.
        deadline=float(rng.choice((0.0, 0.01, 0.1))),
        max_batch=int(rng.choice((2, 4, 8))),
        max_wait=float(rng.choice((1e-4, 1e-3))),
        queue_bound=int(rng.choice((8, 256))),
        fault_seed=fault_seed,
        workers=workers,
        replication=int(rng.choice((1, 2))),
        zipf_s=float(rng.choice((0.0, 1.0))),
        crash=crash)


def _draw_serve(rng: np.random.Generator, index: int, seed: int) -> FuzzCase:
    k = int(rng.integers(1, len(SERVE_MATRICES) + 1))
    mix = tuple(sorted(rng.choice(SERVE_MATRICES, size=k, replace=False)))
    return FuzzCase(
        index=index, seed=seed, kind="serve", matrices=mix,
        px=1, py=1, pz=int(rng.choice((1, 2))),
        n_requests=int(rng.integers(6, 20)),
        rate=float(rng.choice((500.0, 2000.0, 8000.0, 30000.0))),
        # 0.0 draws zero-slack deadlines (absolute deadline == arrival):
        # the scheduler's expiry trigger must clamp to the arrival, never
        # wake — or shed — before the request exists.
        deadline=float(rng.choice((0.0, 0.002, 0.01, 0.1))),
        max_batch=int(rng.choice((1, 2, 4, 8))),
        max_wait=float(rng.choice((1e-4, 1e-3))),
        queue_bound=int(rng.choice((3, 8, 256))))


# ---------------------------------------------------------------------------
# Running cases.
# ---------------------------------------------------------------------------


def run_case(case: FuzzCase) -> CaseResult:
    """Execute one case over every applicable path; never raises."""
    res = CaseResult(case)
    try:
        if case.kind == "serve":
            _run_serve_case(case, res)
        elif case.kind == "fleet":
            _run_fleet_case(case, res)
        elif case.kind == "scenario":
            _run_scenario_case(case, res)
        elif case.kind == "solve":
            _run_solve_case(case, res)
        else:
            res.mismatches.append(f"unknown case kind {case.kind!r}")
    except InvariantViolation as e:
        res.mismatches.append(f"invariant violation: {e}")
    except Exception as e:  # a crash is a finding, not a fuzzer abort
        res.mismatches.append(f"crashed: {type(e).__name__}: {e}")
    return res


def _residual(A, x, b) -> float:
    r = A @ x - b
    scale = spla.norm(A, np.inf) * np.abs(x).max() + np.abs(b).max()
    return float(np.abs(r).max() / scale) if scale > 0 else 0.0


def _check(res: CaseResult, cond: bool, msg: str) -> None:
    res.checks += 1
    if not cond:
        res.mismatches.append(msg)


def _run_solve_case(case: FuzzCase, res: CaseResult) -> None:
    factory, _ = GENERATORS[case.generator]
    A = sp.csr_matrix(factory(case.size))
    machine = MACHINES[case.machine]
    solver = SpTRSVSolver(A, case.px, case.py, case.pz, machine=machine,
                          max_supernode=case.max_supernode,
                          symbolic_mode=case.symbolic_mode,
                          ordering=case.ordering)
    b = make_rhs(A.shape[0], case.nrhs, kind="random", seed=case.seed)

    # Reference tier vs an independent scipy solve of the original system.
    x_ref = solver.reference_solve(b)
    _check(res, _residual(A, x_ref, b) <= RESIDUAL_TOL,
           f"reference solve residual {_residual(A, x_ref, b):.3e} > "
           f"{RESIDUAL_TOL:g}")
    x_scipy = spla.spsolve(sp.csc_matrix(A), b)
    if x_scipy.ndim == 1 and x_ref.ndim == 2:
        x_scipy = x_scipy[:, None]
    _check(res, bool(np.allclose(x_ref, x_scipy, rtol=1e-6, atol=1e-9)),
           "reference solve disagrees with scipy.sparse.linalg.spsolve")

    algorithms = ["new3d", "baseline3d"] + (
        ["2d"] if case.pz == 1 else ["onesided_put"])
    for alg in algorithms:
        _differential_solve(case, res, solver, A, b, alg, "cpu", machine)
    if case.pz > 1:
        # The one-sided reduction promises bit-identity with the two-sided
        # hypercube, not just a small residual.
        x_two = solver.solve(b, algorithm="new3d").x
        x_one = solver.solve(b, algorithm="onesided_put").x
        _check(res, bool(np.array_equal(x_two, x_one)),
               "onesided_put solution bits differ from new3d (the "
               "put-based reduction must be bit-identical)")
    if case.device == "gpu":
        _differential_solve(case, res, solver, A, b, "new3d", "gpu", machine)
    if case.faulted:
        _faulted_solve(case, res, solver, A, b)


def _differential_solve(case, res, solver, A, b, algorithm, device,
                        machine) -> None:
    what = f"{algorithm}/{device}"
    out = solver.solve(b, algorithm=algorithm, device=device,
                       profile=True, trace=(device == "cpu"))
    res.checks += check_solve(out)
    _check(res, _residual(A, out.x, b) <= RESIDUAL_TOL,
           f"{what}: residual {_residual(A, out.x, b):.3e} > "
           f"{RESIDUAL_TOL:g}")

    # Replay determinism — and profiling/tracing must be pure observers:
    # the second run records nothing yet must land on the same clocks.
    out2 = solver.solve(b, algorithm=algorithm, device=device)
    _check(res, bool(np.array_equal(out.report.sim.clocks,
                                    out2.report.sim.clocks)),
           f"{what}: virtual clocks differ across replays (or profiling "
           f"perturbed them)")
    _check(res, bool(np.array_equal(out.x, out2.x)),
           f"{what}: solution bits differ across replays")

    # Headline sync counts, counted mechanically from the sync labels.
    nsyncs = out.report.metrics.nsyncs
    if case.pz == 1:
        expect = 0
    elif algorithm in ("new3d", "onesided_put"):
        expect = 1
    else:
        expect = int(math.ceil(math.log2(case.pz)))
    _check(res, nsyncs == expect,
           f"{what}: {nsyncs} inter-grid sync points, expected {expect} "
           f"for pz={case.pz}")

    # Strict wildcard matching vs the static analyzer: a strict run either
    # completes — and set-determinism must make it bit-identical to the
    # normal run — or raises AmbiguousRecvError, in which case the static
    # schedule must contain a wildcard recv group with >1 feasible sender
    # (otherwise one of the two detectors is lying).
    if case.strict_match and device == "cpu":
        try:
            sout = solver.solve(b, algorithm=algorithm, strict_match=True)
        except AmbiguousRecvError:
            rep = verify_schedule(solver_schedule(solver,
                                                  algorithm=algorithm,
                                                  nrhs=case.nrhs))
            _check(res, any(g.nfeasible > 1 for g in rep.wildcard_groups)
                   or not rep.match_deterministic,
                   f"{what}: strict_match raised AmbiguousRecvError but "
                   f"the static analyzer sees no ambiguous wildcard group")
        else:
            _check(res, bool(np.array_equal(out2.report.sim.clocks,
                                            sout.report.sim.clocks))
                   and bool(np.array_equal(out2.x, sout.x)),
                   f"{what}: strict_match solve completed but is not "
                   f"bit-identical to the normal solve")

    # The compiled replay fast path (repro.replay): the recording solve
    # AND the compiled re-execution must both be bit-identical to the
    # plain simulated solve — solution bits, virtual clocks, per-label
    # times, phase marks and message accounting alike.
    if case.replay and device == "cpu" and algorithm in REPLAYABLE:
        rec = solver.solve(b, algorithm=algorithm, replay=True)
        hot = solver.solve(b, algorithm=algorithm, replay=True)
        for tag, rout in (("recording", rec), ("compiled", hot)):
            _check(res, bool(np.array_equal(out2.x, rout.x)),
                   f"{what}: replay {tag} solution bits differ from the "
                   f"simulated solve")
            _check(res, bool(np.array_equal(out2.report.sim.clocks,
                                            rout.report.sim.clocks)),
                   f"{what}: replay {tag} virtual clocks differ from the "
                   f"simulated solve")
            _check(res, out2.report.sim.times == rout.report.sim.times
                   and out2.report.sim.marks == rout.report.sim.marks
                   and out2.report.sim.sent_msgs == rout.report.sim.sent_msgs
                   and out2.report.sim.sent_bytes
                   == rout.report.sim.sent_bytes,
                   f"{what}: replay {tag} per-label accounting differs from "
                   f"the simulated solve")

    # The serving tier's batching contract: every column of a multi-RHS
    # solve is bit-identical to solving that column alone.
    if case.nrhs > 1:
        X = out.x
        for j in range(case.nrhs):
            xj = solver.solve(b[:, j], algorithm=algorithm,
                              device=device).x
            _check(res, bool(np.array_equal(X[:, j], xj)),
                   f"{what}: column {j} of nrhs={case.nrhs} differs from "
                   f"its single-RHS solve (batching not bit-identical)")


def _faulted_solve(case, res, solver, A, b) -> None:
    resil = Resilience(reliable=True)
    plan = case.fault_plan()
    out = solver.solve(b, algorithm="new3d", faults=plan, resilience=resil)
    res.checks += check_solve(out, faulted=True)
    _check(res, out.resilience is not None
           and out.resilience.residual <= resil.residual_tol,
           f"faulted: resilient solve returned unverified answer")
    _check(res, _residual(A, out.x, b) <= RESIDUAL_TOL,
           f"faulted: residual {_residual(A, out.x, b):.3e} > "
           f"{RESIDUAL_TOL:g} despite resilience verification")
    out2 = solver.solve(b, algorithm="new3d", faults=case.fault_plan(),
                        resilience=resil)
    _check(res, out2.resilience is not None
           and out.resilience.tier == out2.resilience.tier
           and out.resilience.total_time == out2.resilience.total_time,
           f"faulted: replay reached tier {out2.resilience.tier!r} in "
           f"{out2.resilience.total_time!r}s vs {out.resilience.tier!r} in "
           f"{out.resilience.total_time!r}s — fault schedule not "
           f"deterministic")
    _check(res, bool(np.array_equal(out.x, out2.x)),
           "faulted: solution bits differ across fault-plan replays")


def _run_serve_case(case: FuzzCase, res: CaseResult) -> None:
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        WorkloadSpec,
        generate_workload,
    )

    spec = WorkloadSpec(seed=case.seed, rate=case.rate,
                        n_requests=case.n_requests,
                        mix=tuple((m, "tiny", 1.0) for m in case.matrices),
                        deadline=case.deadline,
                        priorities=((0, 3.0), (5, 1.0)))
    wl = generate_workload(spec)
    cfg = ServiceConfig(px=case.px, py=case.py, pz=case.pz)
    policy = BatchPolicy(max_batch=case.max_batch, max_wait=case.max_wait,
                         queue_bound=case.queue_bound)

    def serve():
        svc = SolveService(cfg, policy, invariants=True)
        return svc, svc.run(wl)

    svc, r1 = serve()
    res.checks += check_serve(wl, r1, service=svc)
    _, r2 = serve()
    _check(res, r1.slo.to_json() == r2.slo.to_json(),
           "serve: SLO reports differ across replays of the same workload")
    _check(res, [b.request_ids for b in r1.batches]
           == [b.request_ids for b in r2.batches],
           "serve: batch composition differs across replays")

    # Spot-check the batching contract end to end: a served answer is the
    # same bits as a cold, unbatched solve of that request alone.
    done = sorted(r1.solutions)[:3]
    cold: dict = {}
    by_id = {r.id: r for r in wl.requests}
    for i in done:
        req = by_id[i]
        key = (req.matrix, req.scale)
        if key not in cold:
            cold[key] = svc._build_solver(req.matrix, req.scale)
        x = cold[key].solve(req.rhs(cold[key].n)).x
        _check(res, bool(np.array_equal(r1.solutions[i], x.ravel())),
               f"serve: request {i} answer differs from its cold "
               f"single-RHS solve")


def _run_fleet_case(case: FuzzCase, res: CaseResult) -> None:
    """Double-run a sharded fleet: report bit-equality + conservation.

    The case's crash windows become a ``repro.comm.faults`` schedule
    (worker ``w`` down at ``t_crash``, back — cold — at ``t_recover``),
    so re-routing, rollback and recovery are all on the fuzzed path.
    """
    from repro.check.invariants import check_fleet
    from repro.comm.faults import FaultPlan, FaultSchedule
    from repro.fleet import FleetConfig, FleetService
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        WorkloadSpec,
        generate_workload,
        zipf_mix,
    )

    spec = WorkloadSpec(seed=case.seed, rate=case.rate,
                        n_requests=case.n_requests,
                        mix=zipf_mix(case.matrices, "tiny", case.zipf_s),
                        deadline=case.deadline,
                        priorities=((0, 3.0), (5, 1.0)))
    wl = generate_workload(spec)
    cfg = ServiceConfig(px=case.px, py=case.py, pz=case.pz)
    policy = BatchPolicy(max_batch=case.max_batch, max_wait=case.max_wait,
                         queue_bound=case.queue_bound)
    sched = None
    if case.crash:
        sched = FaultSchedule(tuple(
            (tc, tr, FaultPlan.uniform(seed=case.fault_seed, crash={w: tc}))
            for (w, tc, tr) in case.crash))

    def run():
        fs = FleetService(
            FleetConfig(workers=case.workers,
                        replication=case.replication),
            cfg, policy, crash_schedule=sched)
        return fs, fs.run(wl)

    fs, r1 = run()
    res.checks += check_fleet(wl, r1, service=fs)
    _, r2 = run()
    _check(res, r1.report.to_json() == r2.report.to_json(),
           "fleet: FleetReport not byte-identical across replays")
    _check(res, r1.slo.n_completed + r1.slo.n_shed == len(wl),
           f"fleet: completed {r1.slo.n_completed} + shed {r1.slo.n_shed} "
           f"!= {len(wl)} requests (lost or duplicated work)")


def _run_scenario_case(case: FuzzCase, res: CaseResult) -> None:
    """Replay a catalog scenario at this case's (random) seed.

    Checks the hard degradation tier — soft SLO bounds are seed-specific
    calibrations, hard guarantees are not allowed to depend on the seed —
    and that the ScenarioReport is bit-identical across two runs.
    """
    from repro.scenarios import get_scenario, run_scenario

    sc = get_scenario(case.scenario)
    r1 = run_scenario(sc, seed=case.seed)
    res.checks += len(r1.checks)
    bad = [f"{c['check']}: {c['detail']}"
           for c in r1.checks if c["hard"] and not c["passed"]]
    _check(res, r1.hard_ok,
           f"scenario {case.scenario} @ seed {case.seed}: hard degradation "
           f"guarantee(s) violated — " + ("; ".join(bad) or r1.error))
    r2 = run_scenario(sc, seed=case.seed)
    _check(res, r1.to_json() == r2.to_json(),
           f"scenario {case.scenario} @ seed {case.seed}: ScenarioReport "
           f"not bit-identical across replays")


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------


def fuzz(cases: int = 50, seed: int = 0, progress=None) -> FuzzReport:
    """Draw and run ``cases`` cases; deterministic in ``seed``.

    ``progress`` (optional) is called with each :class:`CaseResult` as it
    finishes — the CLI uses it for live output.
    """
    rng = np.random.default_rng([seed, 0xF022])
    report = FuzzReport()
    for i in range(cases):
        case = draw_case(rng, i)
        result = run_case(case)
        report.cases += 1
        report.checks += result.checks
        if not result.ok:
            report.failures.append(result)
        if progress is not None:
            progress(result)
    return report
