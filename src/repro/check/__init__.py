"""``repro.check`` — differential fuzzing and runtime invariant checking.

The reproduction's headline claims (bit-identical multi-RHS batching,
exactly one inter-grid sync for the proposed algorithm vs
``ceil(log2 Pz)`` for the baseline, typed load shedding) are pinned by
hand-picked example tests; this package holds the line as the codebase
grows by checking them *systematically*:

- :mod:`~repro.check.invariants` — always-on runtime invariants over
  :class:`~repro.comm.simulator.SimResult`,
  :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.serve.service.ServeResult` /
  :class:`~repro.serve.cache.FactorizationCache` state (clock and time
  conservation, message conservation, serve-loop request conservation,
  cache byte accounting).  Pluggable via ``Simulator(invariants=True)``
  and ``SolveService(invariants=True)``.
- :mod:`~repro.check.fuzz` — a seeded differential fuzzer drawing random
  solver and serving configurations, running every applicable execution
  path plus the scipy/dense reference, and cross-checking solutions,
  sync counts and replay determinism.
- :mod:`~repro.check.reduce` — a shrinking reducer that minimizes a
  failing case before writing a replayable repro file to
  ``tests/corpus/``.

Entry point: the ``repro fuzz`` CLI subcommand; the guided tour is
``docs/CHECKING.md``.
"""

from repro.check.fuzz import (
    CaseResult,
    FuzzCase,
    FuzzReport,
    draw_case,
    fuzz,
    run_case,
)
from repro.check.invariants import (
    InvariantViolation,
    check_cache,
    check_fleet,
    check_metrics,
    check_serve,
    check_sim,
    check_solve,
)
from repro.check.reduce import shrink, write_repro

__all__ = [
    "CaseResult",
    "FuzzCase",
    "FuzzReport",
    "InvariantViolation",
    "check_cache",
    "check_fleet",
    "check_metrics",
    "check_serve",
    "check_sim",
    "check_solve",
    "draw_case",
    "fuzz",
    "run_case",
    "shrink",
    "write_repro",
]
