"""Shrinking reducer for failing fuzz cases.

Given a failing :class:`~repro.check.fuzz.FuzzCase` and a predicate that
re-runs it, :func:`shrink` greedily tries simpler variants — strip the
fault plan, collapse the grid one axis at a time, drop to one right-hand
side, fall back from GPU to CPU, shrink the matrix, thin the workload —
and keeps any variant that still fails.  The result is the smallest case
the greedy pass can reach, which :func:`write_repro` serializes to a
replayable JSON file under ``tests/corpus/`` so the failure becomes an
ordinary pytest the moment it is found.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable

from repro.check.fuzz import GENERATORS, FuzzCase

#: Default corpus directory, relative to the repository root.
CORPUS_DIR = os.path.join("tests", "corpus")


def _candidates(case: FuzzCase) -> list[FuzzCase]:
    """Simpler one-step variants of ``case``, most aggressive first."""
    out: list[FuzzCase] = []
    if case.faulted:
        out.append(replace(case, drop=0.0, duplicate=0.0, delay=0.0))
    if case.kind == "solve":
        if case.strict_match:
            out.append(replace(case, strict_match=False))
        if case.device == "gpu":
            out.append(replace(case, device="cpu", machine="cori-haswell"))
        if case.nrhs > 1:
            out.append(replace(case, nrhs=1))
        if case.pz > 1:
            out.append(replace(case, pz=case.pz // 2))
        if case.px > 1:
            out.append(replace(case, px=1))
        if case.py > 1:
            out.append(replace(case, py=1))
        if case.ordering != "nd":
            out.append(replace(case, ordering="nd"))
        if case.symbolic_mode != "detect":
            out.append(replace(case, symbolic_mode="detect"))
        sizes = [s for s in GENERATORS[case.generator][1] if s < case.size]
        if sizes:
            out.append(replace(case, size=min(sizes)))
    elif case.kind == "serve":
        if case.n_requests > 2:
            out.append(replace(case, n_requests=case.n_requests // 2))
        if len(case.matrices) > 1:
            out.append(replace(case, matrices=case.matrices[:1]))
        if case.pz > 1:
            out.append(replace(case, pz=case.pz // 2))
        if case.max_batch > 1:
            out.append(replace(case, max_batch=1))
    # A scenario case is already minimal — (catalog name, seed) is the
    # whole coordinate; the declarative Scenario is not shrinkable here.
    return out


def shrink(case: FuzzCase, is_failing: Callable[[FuzzCase], bool],
           max_attempts: int = 64) -> FuzzCase:
    """Greedily minimize ``case`` while ``is_failing`` stays true.

    ``is_failing`` must be deterministic (fuzz cases replay exactly, so
    re-running the case is safe).  The original case is returned untouched
    if no simpler variant reproduces the failure.  ``max_attempts`` bounds
    total predicate evaluations — shrinking is best-effort, not a search.
    """
    attempts = 0
    current = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in _candidates(current):
            attempts += 1
            if is_failing(cand):
                current = cand
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current


def write_repro(case: FuzzCase, corpus_dir: str = CORPUS_DIR) -> str:
    """Write ``case`` as ``<corpus_dir>/case-<digest>.json``; return path.

    The file is the exact JSON round-trip of the case, so
    ``FuzzCase.from_json(path.read_text())`` replays it bit-for-bit — the
    corpus pytest job does exactly that for every file in the directory.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"case-{case.digest()}.json")
    with open(path, "w") as f:
        f.write(case.to_json() + "\n")
    return path
