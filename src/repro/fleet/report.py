"""FleetReport: the byte-identical artifact of one fleet run.

A :class:`FleetReport` is to the fleet what the SLO report is to one
service: everything an operator (or the CI diff job) needs, serialized
with ``sort_keys`` and a fixed indent so two replays of the same seed
render the same bytes.  It nests:

- ``config`` — the full fleet topology (ring, replication, admission
  bound, autoscaler policy, crash windows) plus the per-worker solver
  configuration, so the artifact is self-describing;
- ``fleet`` — the aggregate SLO fold over every worker plus the front
  door;
- ``workers`` — one entry per worker that ever ran: its own SLO report,
  final state, incarnation count and routing counters;
- ``events`` — the ordered routing/rebalance log: crashes, recoveries,
  scale-ups, scale-downs, each at its virtual instant;
- ``counters`` — fleet totals (re-routes, crashes, scaling actions,
  front-door sheds by reason).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

FLEET_REPORT_VERSION = 1


@dataclass
class FleetReport:
    """Deterministic, serializable summary of one fleet run."""

    version: int = FLEET_REPORT_VERSION
    config: dict = field(default_factory=dict)
    n_requests: int = 0
    fleet: dict = field(default_factory=dict)      # aggregate SLO document
    workers: dict = field(default_factory=dict)    # str(index) -> summary
    events: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=1, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")


def build_fleet_report(service, workload, result) -> FleetReport:
    """Fold a :class:`~repro.fleet.service.FleetService` run into a report."""
    from repro.fleet.service import crash_windows

    fl, cfg, pol = service.fleet, service.config, service.policy
    config = {
        "workers": fl.workers,
        "vnodes": fl.vnodes,
        "replication": fl.replication,
        "ring_seed": fl.ring_seed,
        "admit_bound": fl.admit_bound,
        "grid": f"{cfg.px}x{cfg.py}x{cfg.pz}",
        "machine": cfg.machine,
        "algorithm": cfg.algorithm,
        "max_batch": pol.max_batch,
        "max_wait": pol.max_wait,
        "queue_bound": pol.queue_bound,
        "autoscaler": (asdict(service.autoscaler)
                       if service.autoscaler is not None else None),
        "crash_windows": [[tc, tr, w] for (tc, tr, w)
                          in crash_windows(service.crash_schedule)],
    }
    workers = {}
    for i in sorted(result.workers):
        ws = service.workers[i]
        workers[str(i)] = {
            "slo": json.loads(result.workers[i].slo.to_json()),
            "final_state": ws.state,
            "incarnations": ws.incarnations,
            "n_routed": ws.n_routed,
            "n_rerouted_away": ws.n_rerouted_away,
        }
    return FleetReport(
        config=config,
        n_requests=len(workload),
        fleet=json.loads(result.slo.to_json()),
        workers=workers,
        events=list(result.events),
        counters=dict(result.counters))


def format_fleet(report: FleetReport, title: str = "Fleet report") -> str:
    """Render a report as stable, diffable text (no wall clock anywhere)."""
    cfg, agg = report.config, report.fleet
    lines = [title, "=" * len(title)]
    lines.append(f"topology            {cfg['workers']} workers, "
                 f"{cfg['vnodes']} vnodes, "
                 f"replication {cfg['replication']}, "
                 f"ring seed {cfg['ring_seed']}")
    lines.append(f"requests            {report.n_requests}")
    lines.append(f"  completed         {agg['n_completed']}")
    shed = ", ".join(f"{k}={v}"
                     for k, v in sorted(agg["shed_by_reason"].items()))
    lines.append(f"  shed              {agg['n_shed']}"
                 + (f"  ({shed})" if shed else ""))
    lines.append(f"  deadlines met     {agg['n_deadline_met']}  "
                 f"({100.0 * agg['deadline_met_rate']:.1f}% of completed)")
    lines.append(f"latency p50/p95/p99 {agg['latency_p50']:.3e} / "
                 f"{agg['latency_p95']:.3e} / {agg['latency_p99']:.3e} s")
    lines.append(f"throughput          {agg['throughput']:.1f} req/s over "
                 f"{agg['makespan']:.3e} s makespan")
    cnt = report.counters
    lines.append(f"resilience          {cnt.get('n_crashes', 0)} crashes, "
                 f"{cnt.get('n_recoveries', 0)} recoveries, "
                 f"{cnt.get('n_rerouted', 0)} requests re-routed")
    if cnt.get("n_scale_up", 0) or cnt.get("n_scale_down", 0):
        lines.append(f"autoscaler          {cnt['n_scale_up']} scale-ups, "
                     f"{cnt['n_scale_down']} scale-downs")
    lines.append("per worker")
    for idx in sorted(report.workers, key=int):
        w = report.workers[idx]
        slo = w["slo"]
        lines.append(
            f"  [{idx}] {w['final_state']:<8s} "
            f"routed {w['n_routed']:>5d}  done {slo['n_completed']:>5d}  "
            f"shed {slo['n_shed']:>4d}  batches {slo['n_batches']:>4d}  "
            f"cache {100.0 * slo['cache_hit_rate']:5.1f}%  "
            f"incarnations {w['incarnations']}")
    if report.events:
        lines.append("events")
        for e in report.events:
            who = "fleet" if e["worker"] is None else f"w{e['worker']}"
            lines.append(f"  t={e['t']:.6f}  {e['kind']:<10s} {who:<6s} "
                         f"{e['detail']}")
    return "\n".join(lines)
