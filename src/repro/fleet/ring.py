"""Consistent-hash ring: which worker owns which matrix fingerprint.

The fleet's front door routes every request by the *content fingerprint*
of the matrix it wants solved (``matrix_fingerprint``), so all traffic
for one matrix lands on the shard whose :class:`FactorizationCache`
already holds its factorization.  The ring is the classic
Karger/Dynamo-style construction:

- each worker contributes ``vnodes`` points on a 64-bit circle, placed
  by a keyed blake2b hash of ``(ring seed, worker index, vnode index)``;
- a key routes to the first ``n`` *distinct* workers clockwise from the
  key's own point (``n > 1`` is the replication set for hot matrices);
- adding or removing a worker only remaps the keys whose clockwise walk
  crossed that worker's points — an expected ``1/N`` fraction of the key
  space, never a full reshuffle (``tests/test_fleet.py`` pins the bound).

Everything is derived from stable content hashes (never Python's
process-randomized ``hash()``), so two processes with the same seed and
membership route identically — the property the byte-identical
``FleetReport`` replays stand on.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(text: str) -> int:
    """Stable 64-bit ring coordinate of ``text``."""
    return int.from_bytes(hashlib.blake2b(text.encode(),
                                          digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring over integer worker ids."""

    def __init__(self, workers=(), vnodes: int = 64, seed: int = 0):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._points: list[tuple[int, int]] = []   # sorted (point, worker)
        self._workers: set[int] = set()
        for w in workers:
            self.add(w)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: int) -> bool:
        return worker in self._workers

    @property
    def workers(self) -> tuple[int, ...]:
        return tuple(sorted(self._workers))

    def add(self, worker: int) -> None:
        if worker in self._workers:
            raise ValueError(f"worker {worker} already on the ring")
        self._workers.add(worker)
        for v in range(self.vnodes):
            pt = _point(f"{self.seed}:w{worker}:v{v}")
            # Tie-break equal points by worker id so membership changes
            # among *other* workers never reorder a collision.
            bisect.insort(self._points, (pt, worker))

    def remove(self, worker: int) -> None:
        if worker not in self._workers:
            raise ValueError(f"worker {worker} not on the ring")
        self._workers.discard(worker)
        self._points = [(pt, w) for (pt, w) in self._points if w != worker]

    def route(self, key: str, n: int = 1) -> tuple[int, ...]:
        """First ``n`` distinct workers clockwise from ``key``'s point.

        Returns fewer than ``n`` when the ring has fewer members, and
        ``()`` when it is empty.  The order is the preference order: the
        first entry is the key's primary owner, the rest its replicas.
        """
        if not self._points:
            return ()
        n = min(n, len(self._workers))
        start = bisect.bisect_left(self._points, (_point(f"k:{key}"), -1))
        picked: list[int] = []
        for i in range(len(self._points)):
            _, w = self._points[(start + i) % len(self._points)]
            if w not in picked:
                picked.append(w)
                if len(picked) == n:
                    break
        return tuple(picked)

    def owner(self, key: str) -> int | None:
        """The key's primary owner, or ``None`` on an empty ring."""
        owners = self.route(key, 1)
        return owners[0] if owners else None
