"""``repro.fleet`` — a sharded multi-worker serving tier, in virtual time.

The paper's argument is about scaling SpTRSV *across* a cluster; this
package scales the serving tier the same way.  A fleet is N independent
:class:`~repro.serve.service.SolveService` workers (per-shard
factorization caches, schedulers and clocks) behind a consistent-hash
front door (:mod:`~repro.fleet.ring`) that routes requests by matrix
content fingerprint, with replication for hot matrices, front-door
admission control, worker crash + recovery driven by
``repro.comm.faults`` schedules (:mod:`~repro.fleet.service`), and a
queue-depth/latency autoscaler (:mod:`~repro.fleet.autoscaler`).  One
run folds into a byte-identical :class:`~repro.fleet.report.FleetReport`
(:mod:`~repro.fleet.report`), replayable from a seed.

Entry points: the ``repro fleet`` CLI subcommand and
``benchmarks/bench_fleet.py``; the guided tour is ``docs/FLEET.md``.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscalerPolicy, ScaleDecision
from repro.fleet.report import (
    FLEET_REPORT_VERSION,
    FleetReport,
    build_fleet_report,
    format_fleet,
)
from repro.fleet.ring import HashRing
from repro.fleet.service import (
    FleetConfig,
    FleetResult,
    FleetService,
    crash_windows,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "FLEET_REPORT_VERSION",
    "FleetConfig",
    "FleetReport",
    "FleetResult",
    "FleetService",
    "HashRing",
    "ScaleDecision",
    "build_fleet_report",
    "crash_windows",
    "format_fleet",
]
