"""The fleet: N solve-service workers behind a consistent-hash front door.

:class:`FleetService` scales the single virtual-time loop of
:class:`~repro.serve.service.SolveService` out to a simulated shard
fleet.  Each worker is a full ``SolveService`` — its own
:class:`~repro.serve.cache.FactorizationCache`, its own
:class:`~repro.serve.scheduler.BatchingScheduler`, its own clock — and
the front door routes every request by the content fingerprint of the
matrix it wants solved, over a :class:`~repro.fleet.ring.HashRing`, so
repeat traffic for one matrix keeps landing where its factorization is
already warm.  ``replication > 1`` spreads a hot fingerprint over that
many ring successors (per-request pick by a stable hash of the request
id), trading duplicate factorizations for parallelism on skewed mixes.

Time is co-simulated conservatively: the run is cut into *epochs* at
every instant the routing table can change (a worker crash, a recovery,
an autoscaler tick).  Within an epoch the ring is frozen, so each worker
advances independently to the epoch horizon with exactly the
single-service event loop — a one-worker fleet therefore reproduces the
``SolveService`` SLO *bit for bit* (pinned by ``tests/test_fleet.py``).
At a crash instant the dying worker's world is evacuated: a batch still
in flight is rolled back (its completions un-happen — the cluster died
mid-solve), the waiting room is drained, and everything is re-routed
through the ring at the crash time, keeping original arrivals so the
re-routed requests' latencies honestly include the detour.  Recovery
brings the worker back as a *new incarnation* with a cold cache.

Crash schedules reuse ``repro.comm.faults``: a
:class:`~repro.comm.faults.FaultSchedule` whose plans carry ``crash``
maps is read as "worker ``w`` crashes at its plan time (clamped into the
phase window) and recovers when the window closes".

Everything — routing, crashes, scaling, SLO folds — is derived from
virtual time and stable content hashes, so one seed yields one
byte-identical :class:`~repro.fleet.report.FleetReport`, crashes
included; the fleet-smoke CI job diffs two runs to pin it.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

import numpy as np

from repro.comm.faults import FaultSchedule
from repro.fleet.autoscaler import Autoscaler, AutoscalerPolicy
from repro.fleet.report import FleetReport, build_fleet_report
from repro.fleet.ring import HashRing
from repro.matrices import get_matrix, matrix_fingerprint, validate_matrix
from repro.serve.cache import CacheStats, FactorizationCache
from repro.serve.scheduler import (
    BatchingScheduler,
    BatchPolicy,
    Rejection,
    RejectReason,
)
from repro.serve.service import (
    Completion,
    ServeResult,
    ServiceConfig,
    SolveService,
    _QueueDepthIntegral,
)
from repro.serve.slo import SLOReport, build_slo
from repro.serve.workload import Request, Workload


@dataclass(frozen=True)
class FleetConfig:
    """Topology and routing knobs of one fleet."""

    workers: int = 2              # initial fleet size (indices 0..workers-1)
    vnodes: int = 64              # ring points per worker
    replication: int = 1          # ring successors a fingerprint spreads over
    ring_seed: int = 0            # placement seed for the hash ring
    # Front-door admission: an arrival is shed (typed ``queue-full``)
    # when the fleet's total logical depth — queued plus routed-but-not-
    # yet-admitted — is at or above this bound.  ``None`` disables the
    # front door, leaving backpressure to the per-worker queue bounds
    # (which is exactly the single-service behaviour, preserving parity).
    admit_bound: int | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.admit_bound is not None and self.admit_bound < 1:
            raise ValueError("admit_bound must be >= 1 (or None)")


def crash_windows(schedule: FaultSchedule | None
                  ) -> list[tuple[float, float, int]]:
    """Read a fault schedule as worker crash windows.

    Each phase ``(t0, t1, plan)`` contributes one ``(t_crash, t_recover,
    worker)`` triple per entry of ``plan.crash``: the worker goes down at
    its plan-declared crash time clamped into the window and comes back
    when the window closes.
    """
    if schedule is None:
        return []
    out = []
    for (t0, t1, plan) in schedule.phases:
        if plan is None:
            continue
        for rank in sorted(plan.crash):
            tc = min(max(float(plan.crash[rank]), t0), t1)
            out.append((tc, float(t1), int(rank)))
    return sorted(out)


class _WorkerState:
    """One shard: a SolveService incarnation plus fleet bookkeeping."""

    def __init__(self, index: int, svc: SolveService, policy: BatchPolicy,
                 t0: float = 0.0):
        self.index = index
        self.svc = svc
        self.sched = BatchingScheduler(policy=policy)
        self.res = ServeResult(completions=[], rejections=[], batches=[],
                               queue_samples=[])
        self.qdepth = _QueueDepthIntegral()
        # Routed-but-not-yet-admitted backlog: sorted (t_effective, id,
        # Request).  t_effective is the arrival for normal routes and the
        # crash instant for re-routes — the moment the request reached
        # *this* worker's door.  ``pi`` is the admission cursor.
        self.pending: list[tuple[float, int, Request]] = []
        self.pi = 0
        self.t = t0
        self.state = "up"         # up / draining / down / retired
        self.setup_total = 0.0
        self.solve_total = 0.0
        self.past_cache: list[CacheStats] = []   # stats of dead incarnations
        self.incarnations = 1
        self.n_routed = 0
        self.n_rerouted_away = 0
        self.tick_mark = 0        # completions already seen by the autoscaler

    def backlog(self) -> int:
        return len(self.pending) - self.pi

    def logical_depth(self) -> int:
        """Queued plus routed-but-unadmitted — the backpressure gauge."""
        return self.backlog() + self.sched.depth()

    def merged_cache_stats(self) -> CacheStats:
        """Lifetime cache counters across every incarnation.

        Hit/miss/eviction counts accumulate; residency is the live
        incarnation's (dead incarnations freed their memory at the
        crash); the peak is the max any single incarnation reached.
        """
        live = self.svc.cache.stats
        if not self.past_cache:
            return live
        all_ = [*self.past_cache, live]
        return CacheStats(
            hits=sum(s.hits for s in all_),
            misses=sum(s.misses for s in all_),
            evictions=sum(s.evictions for s in all_),
            resident_bytes=live.resident_bytes,
            resident_entries=live.resident_entries,
            peak_bytes=max(s.peak_bytes for s in all_))


@dataclass
class FleetResult:
    """Everything one :meth:`FleetService.run` observed.

    Duck-compatible with :class:`~repro.serve.service.ServeResult` where
    the scenario machinery needs it (``.slo``, ``.completions``,
    ``.rejections``, ``.solutions``), plus the per-worker records, the
    event log and the serialized :class:`FleetReport`.
    """

    workers: dict                  # index -> ServeResult (slo filled in)
    completions: list[Completion]  # merged, worker-index order
    rejections: list[Rejection]    # merged: front door + every worker
    solutions: dict                # merged request id -> x
    slo: SLOReport                 # fleet-level aggregate
    events: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    report: FleetReport | None = None


class FleetService:
    """Consistent-hash sharded fleet of batching solve services."""

    def __init__(self, fleet: FleetConfig | None = None,
                 config: ServiceConfig | None = None,
                 policy: BatchPolicy | None = None,
                 crash_schedule: FaultSchedule | None = None,
                 autoscaler: AutoscalerPolicy | None = None,
                 fault_schedule: FaultSchedule | None = None,
                 keep_solutions: bool = False,
                 invariants: bool = False,
                 matrix_provider=None,
                 verify_fraction: float = 0.0,
                 verify_seed: int = 0):
        """``crash_schedule`` drives *worker* crash/recovery (see
        :func:`crash_windows`); ``fault_schedule`` is handed to every
        worker and degrades the *fabric inside* its solves, exactly as on
        a single ``SolveService``.  ``autoscaler`` enables tick-driven
        scaling between ``min_workers`` and ``max_workers``.
        """
        self.fleet = fleet or FleetConfig()
        self.config = config or ServiceConfig()
        self.policy = policy or BatchPolicy()
        self.crash_schedule = crash_schedule
        self.autoscaler = autoscaler
        self.fault_schedule = fault_schedule
        self.keep_solutions = keep_solutions
        self.invariants = invariants
        self.matrix_provider = matrix_provider
        self.verify_fraction = verify_fraction
        self.verify_seed = verify_seed
        if autoscaler is not None and self.fleet.workers > \
                autoscaler.max_workers:
            raise ValueError("initial fleet exceeds autoscaler max_workers")

    # -- construction ---------------------------------------------------------

    def _spawn_service(self) -> SolveService:
        return SolveService(
            self.config, self.policy, cache=FactorizationCache(),
            fault_schedule=self.fault_schedule,
            keep_solutions=self.keep_solutions,
            matrix_provider=self.matrix_provider,
            verify_fraction=self.verify_fraction,
            verify_seed=self.verify_seed)

    def _spawn(self, index: int, t0: float) -> _WorkerState:
        return _WorkerState(index, self._spawn_service(), self.policy, t0=t0)

    # -- routing --------------------------------------------------------------

    def _fingerprint(self, name: str, scale: str) -> str:
        """Routing key of a (matrix, scale): content hash when it resolves.

        A matrix that cannot be resolved or validated still needs a
        *stable* routing key — its requests route consistently to one
        shard, which sheds them with typed poison rejections exactly as
        the single service would.  The front door must never die on a
        poison input, hence the broad except.
        """
        key = (name, scale)
        if key not in self._fps:
            provider = self.matrix_provider or get_matrix
            try:
                A = provider(name, scale)
                validate_matrix(A)
                self._fps[key] = matrix_fingerprint(A).hexdigest
            except Exception:
                self._fps[key] = f"poison:{name}/{scale}"
        return self._fps[key]

    def _pick(self, r: Request) -> int | None:
        """Ring owner for one request.

        With replication the replica is the least-loaded owner by logical
        queue depth (power-of-choices over the ring successors) — a pure
        function of the fleet's virtual state, so routing stays
        replay-deterministic; ring-walk order breaks depth ties.
        """
        fp = self._fingerprint(r.matrix, r.scale)
        owners = self.ring.route(fp, self.fleet.replication)
        if not owners:
            return None
        if len(owners) == 1:
            return owners[0]
        return min(owners,
                   key=lambda i: (self.workers[i].logical_depth(),
                                  owners.index(i)))

    def _deliver(self, ws: _WorkerState, r: Request, t_eff: float) -> None:
        bisect.insort(ws.pending, (t_eff, r.id, r))
        ws.n_routed += 1

    def _admit(self, r: Request) -> None:
        """Front-door admission + routing of one fresh arrival."""
        if self.fleet.admit_bound is not None:
            depth = sum(self.workers[i].logical_depth()
                        for i in self.ring.workers)
            if depth >= self.fleet.admit_bound:
                self.front_rejections.append(Rejection(
                    r, RejectReason.QUEUE_FULL, r.arrival,
                    detail="front-door admission bound"))
                return
        target = self._pick(r)
        if target is None:
            self.front_rejections.append(Rejection(
                r, RejectReason.WORKER_CRASH, r.arrival,
                detail="no live workers"))
            return
        self._deliver(self.workers[target], r, r.arrival)

    def _reroute(self, r: Request, t: float) -> None:
        """Re-home an evacuated request at the crash instant.

        Re-routes bypass the front-door bound — the request was already
        admitted once; shedding it again for a failure it did not cause
        would double-charge the client.

        The crash may evacuate requests that were routed ahead of their
        own arrival (``run`` pre-delivers every arrival before the epoch
        horizon), so the effective delivery time is clamped to the
        request's arrival: nothing may reach — or be shed at — a worker's
        door before it exists.
        """
        t_eff = max(t, r.arrival)
        target = self._pick(r)
        if target is None:
            self.front_rejections.append(Rejection(
                r, RejectReason.WORKER_CRASH, t_eff,
                detail="no live workers"))
            return
        self._deliver(self.workers[target], r, t_eff)
        self.counters["n_rerouted"] += 1

    # -- the per-worker event loop --------------------------------------------

    def _advance(self, ws: _WorkerState, horizon: float) -> None:
        """Run one worker's service loop up to ``horizon``.

        Structurally the :meth:`SolveService.run` loop — admission at
        arrival instants, expiry, EDF-due batch dispatch, idle jumps —
        restricted to events strictly before the horizon, so the epoch
        cut is invisible to the virtual-time trajectory.  A dispatch may
        finish past the horizon (the server is busy across the boundary);
        the next epoch resumes from its completion.
        """
        sched, res = ws.sched, ws.res
        while True:
            if ws.t >= horizon:
                break
            while ws.pi < len(ws.pending) and ws.pending[ws.pi][0] <= ws.t:
                t_eff, _, r = ws.pending[ws.pi]
                ws.pi += 1
                rej = sched.offer(r, t_eff)
                if rej is not None:
                    res.rejections.append(rej)
                ws.qdepth.record(t_eff, sched.depth())
            expired = sched.expire(ws.t)
            if expired:
                res.rejections.extend(expired)
                ws.qdepth.record(ws.t, sched.depth())
            res.queue_samples.append(sched.depth())

            key = sched.ready_group(ws.t)
            if key is None:
                nexts = []
                if ws.pi < len(ws.pending) \
                        and ws.pending[ws.pi][0] < horizon:
                    nexts.append(ws.pending[ws.pi][0])
                trig = sched.next_trigger()
                if trig is not None and trig < horizon:
                    nexts.append(trig)
                if not nexts:
                    break
                ws.t = max(ws.t, min(nexts))
                continue

            batch, shed = sched.pop_batch(key, ws.t)
            res.rejections.extend(shed)
            ws.qdepth.record(ws.t, sched.depth())
            if not batch:
                continue
            nb = len(res.batches)
            ws.t = ws.svc._dispatch(batch, ws.t, res, None)
            if len(res.batches) > nb:
                ws.setup_total += res.batches[-1].setup_time
                ws.solve_total += res.batches[-1].solve_time

    # -- crash / recovery -----------------------------------------------------

    def _collapse(self, ws: _WorkerState, t: float) -> list[Request]:
        """Evacuate a crashing worker at instant ``t``.

        Returns every request that was alive on the worker, in a fixed
        order: the rolled-back in-flight batch first (the solve died with
        the worker — its completions are removed, counters restored),
        then the drained waiting room, then the routed-but-unadmitted
        backlog.
        """
        lost: list[Request] = []
        res = ws.res
        if res.batches and res.batches[-1].t_complete > t:
            b = res.batches.pop()
            gone = [c for c in res.completions if c.batch_id == b.batch_id]
            res.completions = [c for c in res.completions
                               if c.batch_id != b.batch_id]
            for c in gone:
                res.solutions.pop(c.request.id, None)
                lost.append(c.request)
            res.deduped -= len(b.request_ids) - b.size
            if b.replayed:
                res.n_replayed -= 1
            res.n_verified -= sum(1 for c in gone
                                  if ws.svc._sampled(c.request.id))
            res.integrity_failures = [f for f in res.integrity_failures
                                      if f["batch_id"] != b.batch_id]
            ws.setup_total -= b.setup_time
            ws.solve_total -= b.solve_time
        lost.extend(ws.sched.drain())
        while ws.pi < len(ws.pending):
            lost.append(ws.pending[ws.pi][2])
            ws.pi += 1
        ws.qdepth.record(t, 0)
        ws.t = t
        return lost

    def _revive(self, ws: _WorkerState, t: float) -> None:
        """New incarnation: fresh service, fresh (cold) cache, clock at t."""
        ws.past_cache.append(ws.svc.cache.stats)
        ws.svc = self._spawn_service()
        ws.sched = BatchingScheduler(policy=self.policy)
        ws.t = max(ws.t, t)
        ws.state = "up"
        ws.incarnations += 1

    def _apply_crashes(self, t: float,
                       windows: list[tuple[float, float, int]]) -> None:
        due = [w for (tc, _tr, w) in windows if tc == t]
        acting = []
        for w in due:
            ws = self.workers.get(w)
            if ws is None or ws.state not in ("up", "draining"):
                self._event(t, "crash", w, "ignored (worker not running)")
                continue
            if w in self.ring:
                self.ring.remove(w)
            acting.append(ws)
        lost_all: list[Request] = []
        for ws in sorted(acting, key=lambda s: s.index):
            lost = self._collapse(ws, t)
            ws.state = "down"
            ws.n_rerouted_away += len(lost)
            self.counters["n_crashes"] += 1
            self._event(t, "crash", ws.index,
                        f"incarnation {ws.incarnations} down, "
                        f"{len(lost)} requests evacuated")
            lost_all.extend(lost)
        for r in lost_all:
            self._reroute(r, t)

    def _apply_recoveries(self, t: float,
                          windows: list[tuple[float, float, int]]) -> None:
        for (_tc, tr, w) in windows:
            if tr != t:
                continue
            ws = self.workers.get(w)
            if ws is None or ws.state != "down":
                continue
            self._revive(ws, t)
            if w not in self.ring:
                self.ring.add(w)
            self.counters["n_recoveries"] += 1
            self._event(t, "recover", w,
                        f"incarnation {ws.incarnations} up, cache cold")

    # -- autoscaling ----------------------------------------------------------

    def _tick(self, t: float, scaler: Autoscaler) -> None:
        routable = [i for i in self.ring.workers
                    if self.workers[i].state == "up"]
        depths = {i: self.workers[i].logical_depth() for i in routable}
        lats: list[float] = []
        for i in sorted(self.workers):
            ws = self.workers[i]
            lats.extend(c.latency
                        for c in ws.res.completions[ws.tick_mark:])
            ws.tick_mark = len(ws.res.completions)
        p95 = (float(np.percentile(np.asarray(lats, dtype=np.float64), 95))
               if lats else None)
        d = scaler.decide(depths, len(routable), p95)
        if d.action == "up":
            cap = scaler.policy.max_workers
            idx = next((i for i in range(cap)
                        if i not in self.workers
                        or self.workers[i].state == "retired"), None)
            if idx is None:
                return
            if idx in self.workers:
                self._revive(self.workers[idx], t)
            else:
                self.workers[idx] = self._spawn(idx, t0=t)
            self.ring.add(idx)
            self.counters["n_scale_up"] += 1
            self._event(t, "scale-up", idx, d.reason)
        elif d.action == "down":
            victim = self._drain_victim(routable, depths)
            self.ring.remove(victim)
            self.workers[victim].state = "draining"
            self.counters["n_scale_down"] += 1
            self._event(t, "scale-down", victim,
                        f"{d.reason}; draining {depths[victim]} queued")

    def _drain_victim(self, routable: list[int], depths: dict) -> int:
        """Scale-down victim choice: cache locality first, then load.

        Draining a worker discards its warm factorizations with it, so
        the fleet prefers victims whose every warm fingerprint is still
        resident on another routable worker — draining the *only* warm
        replica of a hot matrix forces a cold refactorization storm on
        the next burst even though that worker looked cheapest by queue
        depth.  Ties break by logical depth (least loaded), then by
        highest worker index, all pure functions of virtual state so the
        choice replays byte-identically.
        """
        warm = {i: self.workers[i].svc.cache.warm_fingerprints()
                for i in routable}

        def n_solo(i: int) -> int:
            elsewhere: set = set()
            for j in routable:
                if j != i:
                    elsewhere |= warm[j]
            return sum(1 for fp in warm[i] if fp not in elsewhere)

        return min(routable, key=lambda i: (n_solo(i), depths[i], -i))

    # -- the fleet loop -------------------------------------------------------

    def _event(self, t: float, kind: str, worker: int | None,
               detail: str) -> None:
        self.events.append({"t": t, "kind": kind, "worker": worker,
                            "detail": detail})

    def run(self, workload: Workload) -> FleetResult:
        """Serve ``workload`` across the fleet; deterministic in its inputs."""
        arrivals = sorted(workload.requests, key=lambda r: (r.arrival, r.id))
        self.workers: dict[int, _WorkerState] = {}
        self.ring = HashRing(range(self.fleet.workers),
                             vnodes=self.fleet.vnodes,
                             seed=self.fleet.ring_seed)
        for i in range(self.fleet.workers):
            self.workers[i] = self._spawn(i, t0=0.0)
        self.events = []
        self.front_rejections: list[Rejection] = []
        self.counters = {"n_rerouted": 0, "n_crashes": 0, "n_recoveries": 0,
                         "n_scale_up": 0, "n_scale_down": 0}
        self._fps: dict = {}
        scaler = Autoscaler(self.autoscaler) if self.autoscaler else None
        windows = crash_windows(self.crash_schedule)
        bounds = sorted({t for (tc, tr, _w) in windows for t in (tc, tr)})
        bi = 0
        next_tick = scaler.policy.period if scaler else None
        ai = 0

        while True:
            have_work = ai < len(arrivals) or any(
                ws.state in ("up", "draining")
                and (ws.backlog() or ws.sched.depth())
                for ws in self.workers.values())
            cands = []
            if bi < len(bounds):
                cands.append(bounds[bi])
            if next_tick is not None and have_work:
                cands.append(next_tick)
            horizon = min(cands) if cands else math.inf

            while ai < len(arrivals) and arrivals[ai].arrival < horizon:
                self._admit(arrivals[ai])
                ai += 1
            for i in sorted(self.workers):
                ws = self.workers[i]
                if ws.state in ("up", "draining"):
                    self._advance(ws, horizon)
            if not cands:
                break
            if bi < len(bounds) and bounds[bi] == horizon:
                bi += 1
                self._apply_crashes(horizon, windows)
                self._apply_recoveries(horizon, windows)
            if next_tick is not None and next_tick == horizon:
                self._tick(horizon, scaler)
                next_tick += scaler.policy.period

        return self._finalize(workload)

    # -- folding --------------------------------------------------------------

    def _finalize(self, workload: Workload) -> FleetResult:
        worker_results: dict[int, ServeResult] = {}
        for i in sorted(self.workers):
            ws = self.workers[i]
            if ws.state == "draining" and ws.logical_depth() == 0:
                ws.state = "retired"
            ws.qdepth.record(ws.t, ws.sched.depth())
            res = ws.res
            res.slo = build_slo(
                n_requests=len(res.completions) + len(res.rejections),
                latencies=[c.latency for c in res.completions],
                deadline_met=[c.deadline_met for c in res.completions],
                shed_reasons=[str(r.reason) for r in res.rejections],
                batch_sizes=[b.size for b in res.batches],
                queue_samples=res.queue_samples,
                queue_time_mean=ws.qdepth.mean(),
                cache_stats=ws.merged_cache_stats(),
                setup_time=ws.setup_total, solve_time=ws.solve_total,
                makespan=max((c.t_complete for c in res.completions),
                             default=ws.t),
                deduped=res.deduped, n_verified=res.n_verified,
                n_integrity_failures=len(res.integrity_failures),
                n_replayed=res.n_replayed)
            worker_results[i] = res

        completions = [c for i in sorted(worker_results)
                       for c in worker_results[i].completions]
        rejections = list(self.front_rejections)
        for i in sorted(worker_results):
            rejections.extend(worker_results[i].rejections)
        solutions: dict = {}
        for i in sorted(worker_results):
            solutions.update(worker_results[i].solutions)

        t_end = max((ws.t for ws in self.workers.values()), default=0.0)
        merged_stats = CacheStats(
            hits=sum(r.slo.cache_hits for r in worker_results.values()),
            misses=sum(r.slo.cache_misses for r in worker_results.values()),
            evictions=sum(r.slo.cache_evictions
                          for r in worker_results.values()),
            resident_bytes=sum(r.slo.cache_resident_bytes
                               for r in worker_results.values()),
            resident_entries=sum(
                ws.svc.cache.stats.resident_entries
                for ws in self.workers.values()),
            peak_bytes=max((r.slo.cache_peak_bytes
                            for r in worker_results.values()), default=0))
        areas = [ws.qdepth.area for ws in self.workers.values()]
        horizon = max((ws.qdepth._t for ws in self.workers.values()),
                      default=0.0)
        fleet_slo = build_slo(
            n_requests=len(workload),
            latencies=[c.latency for c in completions],
            deadline_met=[c.deadline_met for c in completions],
            shed_reasons=[str(r.reason) for r in rejections],
            batch_sizes=[b.size for i in sorted(worker_results)
                         for b in worker_results[i].batches],
            queue_samples=[s for i in sorted(worker_results)
                           for s in worker_results[i].queue_samples],
            queue_time_mean=(sum(areas) / horizon if horizon > 0 else 0.0),
            cache_stats=merged_stats,
            setup_time=sum(ws.setup_total for ws in self.workers.values()),
            solve_time=sum(ws.solve_total for ws in self.workers.values()),
            makespan=max((c.t_complete for c in completions), default=t_end),
            deduped=sum(r.deduped for r in worker_results.values()),
            n_verified=sum(r.n_verified for r in worker_results.values()),
            n_integrity_failures=sum(len(r.integrity_failures)
                                     for r in worker_results.values()),
            n_replayed=sum(r.n_replayed for r in worker_results.values()))

        front_shed: dict[str, int] = {}
        for rej in self.front_rejections:
            front_shed[str(rej.reason)] = front_shed.get(str(rej.reason),
                                                         0) + 1
        self.counters["front_shed"] = front_shed
        result = FleetResult(
            workers=worker_results, completions=completions,
            rejections=rejections, solutions=solutions, slo=fleet_slo,
            events=self.events, counters=dict(self.counters))
        result.report = build_fleet_report(self, workload, result)
        if self.invariants:
            from repro.check.invariants import check_fleet

            check_fleet(workload, result, service=self)
        return result
