"""Queue-depth / latency autoscaler for the fleet tier.

The autoscaler is evaluated at fixed virtual-time ticks (``period``), on
metrics the fleet loop already maintains in the ``repro.obs`` style —
point-in-time gauges (per-worker logical queue depth) plus a windowed
latency percentile (p95 of the completions since the previous tick).  It
is deliberately a pure decision function over those samples:

- **scale up** when the mean logical depth per routable worker exceeds
  ``high_depth``, or the windowed latency p95 exceeds ``high_latency``
  (when set) — one worker per tick, up to ``max_workers``;
- **scale down** when the mean depth falls below ``low_depth`` *and* the
  latency signal is quiet — the victim is drained (removed from the
  ring, queue served to empty) rather than killed.  Victim choice is
  cache-locality-aware: the fleet prefers workers whose every warm
  fingerprint is still resident on another routable worker, then the
  least loaded (see :meth:`repro.fleet.service.FleetService._drain_victim`)
  — draining the only warm replica of a hot matrix would force a cold
  refactorization storm on the next burst;
- ``cooldown_ticks`` ticks must pass after any action before the next,
  so one burst cannot flap the fleet.

Determinism: decisions depend only on virtual-time samples, so a replay
of the same workload reproduces the same scaling event log byte for
byte (the ``FleetReport`` CI diff covers runs with the autoscaler on).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Tunable thresholds of the fleet autoscaler."""

    period: float = 2e-3          # virtual seconds between evaluations
    high_depth: float = 8.0       # mean logical depth/worker that adds one
    low_depth: float = 1.0        # mean depth below which one drains
    high_latency: float | None = None  # windowed p95 bound (None = depth only)
    min_workers: int = 1
    max_workers: int = 8
    cooldown_ticks: int = 2       # ticks to hold after any action

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if self.low_depth > self.high_depth:
            raise ValueError("low_depth must not exceed high_depth")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be >= 0")


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler verdict: ``action`` is 'up', 'down' or 'hold'."""

    action: str
    reason: str


class Autoscaler:
    """Stateful wrapper: policy + cooldown bookkeeping between ticks."""

    def __init__(self, policy: AutoscalerPolicy | None = None):
        self.policy = policy or AutoscalerPolicy()
        self._cooldown = 0

    def decide(self, depths: dict[int, int], n_routable: int,
               latency_p95: float | None) -> ScaleDecision:
        """Evaluate one tick.

        ``depths`` maps routable worker -> logical queue depth (queued +
        routed-but-unadmitted); ``latency_p95`` is the p95 over the
        completions of the window just ended (``None`` when it saw none).
        """
        pol = self.policy
        if self._cooldown > 0:
            self._cooldown -= 1
            return ScaleDecision("hold", "cooldown")
        if n_routable <= 0:
            return ScaleDecision("hold", "no routable workers")
        mean_depth = sum(depths.values()) / n_routable
        hot_latency = (pol.high_latency is not None
                       and latency_p95 is not None
                       and latency_p95 > pol.high_latency)
        if (mean_depth > pol.high_depth or hot_latency) \
                and n_routable < pol.max_workers:
            self._cooldown = pol.cooldown_ticks
            why = (f"latency p95 {latency_p95:.3e} > {pol.high_latency:.3e}"
                   if hot_latency else
                   f"mean depth {mean_depth:.2f} > {pol.high_depth:.2f}")
            return ScaleDecision("up", why)
        if mean_depth < pol.low_depth and not hot_latency \
                and n_routable > pol.min_workers:
            self._cooldown = pol.cooldown_ticks
            return ScaleDecision(
                "down", f"mean depth {mean_depth:.2f} < {pol.low_depth:.2f}")
        return ScaleDecision("hold", "within band")
